#!/usr/bin/env python
"""Quickstart: build a PAMA cache, replay a workload, read the results.

Runs the ETC-like workload (the paper's "most representative" trace)
through PAMA and through the no-reallocation Memcached baseline, and
prints the paper's two metrics: hit ratio and average service time.

    python examples/quickstart.py
"""

from repro import PamaPolicy, SizeClassConfig, SlabCache, StaticMemcachedPolicy, simulate
from repro._util import fmt_seconds
from repro.traces import ETC, generate


def main() -> None:
    # A scaled-down experiment: 32 MiB cache of 64 KiB slabs, 300k requests
    # over a ~60k-key ETC-like universe.  All knobs scale together; see
    # DESIGN.md "substitutions".
    trace = generate(ETC.scaled(0.2), 300_000, seed=42)
    print(f"workload: {len(trace)} requests, {trace.unique_keys} unique keys, "
          f"{trace.num_gets} GETs\n")

    classes = SizeClassConfig(slab_size=64 << 10, base_size=64)

    for policy in (StaticMemcachedPolicy(), PamaPolicy()):
        cache = SlabCache(32 << 20, policy, classes)
        result = simulate(trace, cache, window_gets=50_000)
        print(f"{policy.name:>10s}:  hit ratio {result.hit_ratio:.3f}   "
              f"avg service time {fmt_seconds(result.avg_service_time)}   "
              f"migrations {result.cache_stats['migrations']:.0f}")

    print("\nPAMA trades a little hit ratio for a lot of service time — "
          "the paper's headline point.")


if __name__ == "__main__":
    main()
