#!/usr/bin/env python
"""Compare all eight allocation policies on the ETC workload.

Covers the paper's four evaluated schemes (original Memcached, PSA,
pre-PAMA, PAMA) plus the related-work schemes it discusses but does not
plot (Facebook age balancer, Twemcache random donor, the 1.4.11
automover) and the LAMA-lite extension.

    python examples/policy_comparison.py
"""

from repro import ExperimentSpec, run_comparison
from repro.sim.report import ascii_chart, comparison_summary
from repro.traces import ETC, generate


def main() -> None:
    trace = generate(ETC.scaled(0.2), 400_000, seed=7)
    spec = ExperimentSpec(
        name="etc-comparison",
        cache_bytes=32 << 20,
        slab_size=64 << 10,
        window_gets=50_000,
        policy_kwargs={
            "pama": {"value_window": 50_000},
            "pre-pama": {"value_window": 50_000},
            "psa": {"m_misses": 500},
            "automove": {"window_accesses": 50_000},
        },
    )
    print(spec.describe(), "\n")

    cmp = run_comparison(
        trace, spec,
        ["memcached", "psa", "facebook", "twemcache", "automove",
         "lama", "pre-pama", "pama"],
        verbose=True)

    print("\n" + comparison_summary(cmp.results))

    print("\nService-time ranking (best first):")
    for name, t in cmp.ranking_by_service_time():
        print(f"  {name:>10s}  {t * 1e3:8.2f} ms")

    print("\n" + ascii_chart(
        {n: cmp.results[n].service_time_series()
         for n in ("memcached", "psa", "pre-pama", "pama")},
        title="avg service time per window (s) — paper Fig 6 shape"))


if __name__ == "__main__":
    main()
