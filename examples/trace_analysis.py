#!/usr/bin/env python
"""Trace tooling walkthrough: generate, analyze, persist, infer penalties.

* synthesizes the APP workload (large values, heavy cold-miss share);
* prints the Fig 1-style penalty-by-size-decade table;
* round-trips the trace through the binary format;
* demonstrates the paper's GET-miss→SET gap penalty estimator on a
  timestamped trace.

    python examples/trace_analysis.py
"""

import os
import tempfile

import numpy as np

from repro.traces import (APP, analyze, generate, infer_penalties, load_npz,
                          save_npz)


def main() -> None:
    trace = generate(APP.scaled(0.25), 150_000, seed=3)

    print("=== APP workload summary (Fig 1 data underneath) ===")
    print(analyze(trace).format())

    # persistence round trip
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "app.npz")
        save_npz(trace, path)
        loaded = load_npz(path)
        assert len(loaded) == len(trace)
        assert (loaded.keys == trace.keys).all()
        size = os.path.getsize(path)
        print(f"\nbinary round trip ok: {size / (1 << 20):.2f} MiB on disk "
              f"for {len(trace)} requests")

    # penalty inference from timestamps (the paper's §IV estimator)
    inferred = infer_penalties(trace)
    known = inferred[inferred != 0.1]
    print(f"\npenalty inference: {len(known)} requests got gap-measured "
          f"penalties (median {np.median(known) * 1e3:.1f} ms), "
          f"{np.count_nonzero(inferred == 0.1)} kept the 100 ms default")


if __name__ == "__main__":
    main()
