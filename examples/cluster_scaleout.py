#!/usr/bin/env python
"""Cluster scale-out and node-failure study.

The paper's deployment setting (§I) is a fleet of independent cache
servers sharded by the clients.  This example runs the same ETC
workload against 1-, 2- and 4-node PAMA clusters with a fixed total
memory budget, then kills a node mid-workload to show the remap churn
and recovery.

    python examples/cluster_scaleout.py
"""

from repro._util import MIB, fmt_seconds
from repro.cache import SizeClassConfig
from repro.cluster import CacheCluster, ConsistentHashRing
from repro.core import PamaPolicy
from repro.sim import simulate
from repro.sim.report import format_table
from repro.traces import ETC, generate

TOTAL_MEMORY = 32 * MIB
CLASSES = SizeClassConfig(slab_size=64 << 10)


def build(n_nodes: int) -> CacheCluster:
    return CacheCluster([f"node{i}" for i in range(n_nodes)],
                        capacity_bytes=TOTAL_MEMORY // n_nodes,
                        policy_factory=PamaPolicy,
                        size_classes=CLASSES)


def main() -> None:
    trace = generate(ETC.scaled(0.2), 300_000, seed=21)
    print(f"workload: {len(trace)} requests, total memory fixed at "
          f"{TOTAL_MEMORY // MIB} MiB\n")

    rows = []
    for n in (1, 2, 4):
        cluster = build(n)
        result = simulate(trace, cluster, window_gets=50_000)
        rows.append([n, result.hit_ratio,
                     fmt_seconds(result.avg_service_time),
                     result.cache_stats["migrations"]])
    print(format_table(["nodes", "hit_ratio", "avg_service", "migrations"],
                       rows))
    print("\nSharding the same memory over more nodes costs a little "
          "hit ratio\n(smaller per-node slab pools fragment the classes) "
          "but distributes load.\n")

    # node failure: how much of the key space remaps?
    ring_before = ConsistentHashRing()
    ring_after = ConsistentHashRing()
    for i in range(4):
        ring_before.add_node(f"node{i}")
        if i != 2:
            ring_after.add_node(f"node{i}")
    moved = ring_before.remap_fraction(range(50_000), ring_after)
    print(f"losing 1 of 4 nodes remaps {moved:.1%} of keys "
          f"(ideal 25%; naive mod-N would remap ~75%)")

    # and live: kill a node mid-run, watch the hit-ratio dent heal
    cluster = build(4)
    first = trace.slice(0, 150_000)
    second = trace.slice(150_000)
    r1 = simulate(first, cluster, window_gets=25_000)
    cluster.remove_node("node2")
    r2 = simulate(second, cluster, window_gets=25_000)
    print(f"\nbefore failure: hit ratio {r1.hit_ratio:.3f}; "
          f"after losing node2: {r2.windows[0].hit_ratio:.3f} "
          f"(first window) -> {r2.windows[-1].hit_ratio:.3f} (last window)")


if __name__ == "__main__":
    main()
