#!/usr/bin/env python
"""Cold-item burst study (paper §IV-C, Fig 9).

Injects a burst of unpopular SETs worth ~10% of the cache into a
running ETC workload, confined to a narrow size range (about three
classes), and compares how PSA and PAMA absorb it: PSA chases the burst
misses with slabs it then reclaims slowly, while PAMA sees the cold
items sink to stack bottoms with low slab values and barely reacts.

    python examples/burst_impact.py
"""

from repro import ExperimentSpec, run_comparison
from repro.sim.report import ascii_chart, format_table
from repro.traces import ETC, generate, inject_burst

CACHE_BYTES = 32 << 20


def run(trace, label):
    spec = ExperimentSpec(
        name=label, cache_bytes=CACHE_BYTES, slab_size=64 << 10,
        window_gets=20_000,
        policy_kwargs={"pama": {"value_window": 50_000},
                       "psa": {"m_misses": 200}})
    return run_comparison(trace, spec, ["psa", "pama"])


def main() -> None:
    base = generate(ETC.scaled(0.2), 400_000, seed=11)
    # burst after 100k GETs (the paper's 0.35M, scaled), 10% of cache,
    # value sizes 256B-1KiB ≈ three size classes at 64 B base / doubling
    burst = inject_burst(base, at_get=100_000,
                         total_bytes=CACHE_BYTES // 10,
                         size_lo=256, size_hi=1_024, seed=5)
    print(f"base trace: {len(base)} requests; burst adds "
          f"{len(burst) - len(base)} cold SETs "
          f"({burst.meta['burst_bytes'] / (1 << 20):.1f} MiB)\n")

    plain = run(base, "no-burst")
    hit = run(burst, "burst")

    rows = []
    for policy in ("psa", "pama"):
        rows.append([
            policy,
            f"{plain.results[policy].hit_ratio:.4f}",
            f"{hit.results[policy].hit_ratio:.4f}",
            f"{plain.results[policy].avg_service_time * 1e3:.2f}",
            f"{hit.results[policy].avg_service_time * 1e3:.2f}",
        ])
    print(format_table(
        ["policy", "hit_ratio", "hit_ratio+burst",
         "service_ms", "service_ms+burst"], rows))

    series = {}
    for policy in ("psa", "pama"):
        series[f"{policy}+burst"] = hit.results[policy].service_time_series()
        series[policy] = plain.results[policy].service_time_series()
    print("\n" + ascii_chart(series, title="avg service time per window (s) "
                                           "— paper Fig 9(b) shape"))


if __name__ == "__main__":
    main()
