#!/usr/bin/env python
"""Run the memcached-protocol server with a PAMA-managed cache.

Starts the server in-process, drives it with the client over a real
socket — including a miss path that "recomputes" values from the
simulated backend and stores them with their measured penalty — then
prints the server-side stats.

    python examples/server_demo.py
"""

import random
import time

from repro.backend import SimulatedBackend
from repro.cache import SlabCache, SizeClassConfig
from repro.core import PamaPolicy
from repro.server import CacheClient, start_server


def main() -> None:
    cache = SlabCache(8 << 20, PamaPolicy(),
                      SizeClassConfig(slab_size=64 << 10))
    server = start_server(cache)
    backend = SimulatedBackend()
    print(f"server listening on 127.0.0.1:{server.port} "
          f"({cache.describe()})\n")

    rng = random.Random(0)
    hits = misses = 0
    backend_time = 0.0
    with CacheClient(port=server.port) as client:
        t0 = time.perf_counter()
        for i in range(3_000):
            key = f"user:{rng.randrange(600)}"
            value = client.get(key)
            if value is None:
                misses += 1
                # cache-aside pattern: recompute via the backend, then
                # store with the measured penalty riding in the flags.
                size = rng.choice((120, 800, 4_000))
                cost = backend.fetch(hash(key) & 0xFFFF, size, now=i * 0.01)
                backend_time += cost
                client.set(key, b"x" * size, penalty=cost)
            else:
                hits += 1
        elapsed = time.perf_counter() - t0

        stats = client.stats()
        print(f"client: {hits} hits / {misses} misses in {elapsed:.2f}s "
              f"({3_000 / elapsed:.0f} ops/s over the socket)")
        print(f"backend: {backend.fetches} fetches, "
              f"{backend_time:.1f}s simulated recompute time avoided by hits")
        print("\nserver stats:")
        for key in ("gets", "hits", "misses", "sets", "evictions",
                    "migrations", "items", "slabs_total", "slabs_free",
                    "policy"):
            print(f"  {key:12s} {stats[key]}")

    server.shutdown()


if __name__ == "__main__":
    main()
