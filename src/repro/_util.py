"""Small shared helpers used across the repro packages."""

from __future__ import annotations

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def fmt_bytes(n: int) -> str:
    """Render a byte count in a human-friendly unit (``1.5MiB``)."""
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{unit}"
        value /= 1024
    raise AssertionError("unreachable")


def fmt_seconds(t: float) -> str:
    """Render a duration with an appropriate unit (``250.0us``, ``1.20s``)."""
    if t < 0:
        raise ValueError(f"duration must be non-negative, got {t}")
    if t == 0:
        return "0s"
    if t < 1e-3:
        return f"{t * 1e6:.1f}us"
    if t < 1.0:
        return f"{t * 1e3:.1f}ms"
    return f"{t:.2f}s"


def parse_size(text: str) -> int:
    """Parse ``"64KiB"``/``"4GB"``/``"1048576"`` into a byte count.

    Decimal (``KB``) and binary (``KiB``) suffixes are both treated as
    binary multiples, matching memcached's convention.
    """
    s = text.strip().lower()
    multipliers = {
        "tib": GIB * 1024, "tb": GIB * 1024, "t": GIB * 1024,
        "gib": GIB, "gb": GIB, "g": GIB,
        "mib": MIB, "mb": MIB, "m": MIB,
        "kib": KIB, "kb": KIB, "k": KIB,
        "b": 1,
    }
    for suffix, mult in multipliers.items():
        if s.endswith(suffix):
            num = s[: -len(suffix)].strip()
            if not num:
                raise ValueError(f"missing number in size {text!r}")
            return int(float(num) * mult)
    return int(s)


def next_pow2(n: int) -> int:
    """Smallest power of two >= n (n must be positive)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return 1 << (n - 1).bit_length()
