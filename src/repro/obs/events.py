"""Structured event trace: a bounded ring buffer of cache events.

Captures the *sequence* the windowed aggregates average away: which
slab moved where, what was evicted to make room, which misses were
ghost hits, when PAMA's value windows rolled over.  Every event carries
the cache's access tick (the paper's notion of time), so traces line up
with the per-window series.

The buffer is a ``deque(maxlen=...)``: recording is O(1), memory is
bounded, and old events fall off the back (``dropped`` counts them).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator


class Event:
    """One traced occurrence: a kind, an access tick, and a payload."""

    __slots__ = ("kind", "tick", "data")

    def __init__(self, kind: str, tick: int, data: dict) -> None:
        self.kind = kind
        self.tick = tick
        self.data = data

    def as_dict(self) -> dict:
        """Flat dict form: ``kind``/``tick`` plus the payload.

        Payload keys named ``kind`` or ``tick`` would silently overwrite
        the event's own fields, so they are namespaced to ``data_kind``
        / ``data_tick`` instead of colliding.
        """
        out = {"kind": self.kind, "tick": self.tick}
        for key, value in self.data.items():
            out["data_" + key if key in ("kind", "tick") else key] = value
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        fields = " ".join(f"{k}={v!r}" for k, v in self.data.items())
        return f"Event({self.kind}@{self.tick} {fields})"


class EventTrace:
    """Fixed-capacity ring buffer of :class:`Event`."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.recorded = 0
        self._buf: deque[Event] = deque(maxlen=capacity)

    def record(self, kind: str, tick: int, /, **data) -> None:
        self.recorded += 1
        self._buf.append(Event(kind, tick, data))

    @property
    def dropped(self) -> int:
        """Events that have fallen off the back of the ring."""
        return self.recorded - len(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._buf)

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self._buf if e.kind == kind]

    def kinds(self) -> dict[str, int]:
        """Event count per kind, over what the ring still holds."""
        out: dict[str, int] = {}
        for e in self._buf:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def snapshot(self, last: int | None = None) -> list[dict]:
        """The newest ``last`` events (all retained ones by default)."""
        events = list(self._buf)
        if last is not None:
            events = events[-last:]
        return [e.as_dict() for e in events]

    def clear(self) -> None:
        self._buf.clear()
        self.recorded = 0
