"""Snapshot export: JSON documents and Prometheus text exposition.

A *snapshot* is a plain JSON-able dict of everything a registry (and
optionally an event trace) knows; two snapshots diff into per-metric
deltas, which is how ``repro-kv obs diff`` turns "before" and "after"
dumps into a rate report.
"""

from __future__ import annotations

import json

from repro.obs.events import EventTrace
from repro.obs.registry import Counter, Gauge, Histogram, Registry

#: quantiles included in snapshots and flat stats dumps.
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99, 0.999)


def _label_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    """Render labels for flat keys: ``{a=b,c=d}`` (no spaces)."""
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def snapshot(registry: Registry, events: EventTrace | None = None,
             meta: dict | None = None) -> dict:
    """A JSON-able dump of every metric (and, optionally, the events)."""
    counters, gauges, histograms = [], [], []
    for m in registry.collect():
        entry: dict = {"name": m.name, "labels": dict(m.labels)}
        if isinstance(m, Counter):
            entry["value"] = m.value
            counters.append(entry)
        elif isinstance(m, Gauge):
            entry["value"] = m.value
            gauges.append(entry)
        else:
            entry.update(
                count=m.count, sum=m.sum,
                min=m.min if m.count else None,
                max=m.max if m.count else None,
                quantiles=m.quantiles(SNAPSHOT_QUANTILES),
                buckets=[[le, cum] for le, cum in m.cumulative_buckets()
                         if cum or le == float("inf")])
            histograms.append(entry)
    doc = {"meta": meta or {}, "counters": counters, "gauges": gauges,
           "histograms": histograms}
    if events is not None:
        doc["events"] = {"recorded": events.recorded,
                         "dropped": events.dropped,
                         "kinds": events.kinds(),
                         "tail": events.snapshot(last=100)}
    return doc


def to_json(registry: Registry, events: EventTrace | None = None,
            meta: dict | None = None, indent: int = 2) -> str:
    # inf bucket bounds are not valid JSON; render them as the string
    # "+Inf" (the Prometheus spelling) so snapshots round-trip.
    def default(obj):  # pragma: no cover - only hit on exotic payloads
        return repr(obj)

    doc = snapshot(registry, events=events, meta=meta)
    for hist in doc["histograms"]:
        hist["buckets"] = [["+Inf" if le == float("inf") else le, cum]
                           for le, cum in hist["buckets"]]
    return json.dumps(doc, indent=indent, default=default)


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _prom_labels(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: Registry) -> str:
    """Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for m in registry.collect():
        if m.name not in seen_headers:
            seen_headers.add(m.name)
            if m.help:
                lines.append(f"# HELP {m.name} {m.help}")
            lines.append(f"# TYPE {m.name} {m.kind}")
        if isinstance(m, (Counter, Gauge)):
            lines.append(f"{m.name}{_prom_labels(m.labels)} {_fmt(m.value)}")
        else:
            for le, cum in m.cumulative_buckets():
                labels = _prom_labels(m.labels, (("le", _fmt(le)),))
                lines.append(f"{m.name}_bucket{labels} {cum}")
            base = _prom_labels(m.labels)
            lines.append(f"{m.name}_sum{base} {_fmt(m.sum)}")
            lines.append(f"{m.name}_count{base} {m.count}")
    return "\n".join(lines) + "\n"


def flat_items(registry: Registry,
               histograms: bool = True) -> list[tuple[str, object]]:
    """Flatten every metric to space-free ``(key, value)`` pairs.

    This is the ``stats detail`` wire format: counters/gauges one pair
    each, histograms expanded to ``_count``/``_sum``/``_mean``/
    ``_min``/``_max`` plus the snapshot quantiles.
    """
    out: list[tuple[str, object]] = []
    for m in registry.collect():
        key = m.name + _label_suffix(m.labels)
        if isinstance(m, (Counter, Gauge)):
            value = m.value
            out.append((key, int(value) if float(value).is_integer()
                        else value))
        elif histograms:
            out.append((key + "_count", m.count))
            out.append((key + "_sum", m.sum))
            if m.count:
                out.append((key + "_mean", m.mean))
                out.append((key + "_min", m.min))
                out.append((key + "_max", m.max))
                for name, value in m.quantiles(SNAPSHOT_QUANTILES).items():
                    out.append((key + "_" + name, value))
    return out


def diff_snapshots(old: dict, new: dict) -> dict[str, float]:
    """Per-metric deltas between two snapshot dicts (new - old).

    Counters and histogram count/sum diff numerically; gauges report
    their new value minus the old.  Metrics absent from ``old`` diff
    against zero.
    """
    def flatten(doc: dict) -> dict[str, float]:
        flat: dict[str, float] = {}
        for entry in doc.get("counters", []) + doc.get("gauges", []):
            flat[entry["name"] + _label_suffix(
                tuple(sorted(entry["labels"].items())))] = entry["value"]
        for entry in doc.get("histograms", []):
            key = entry["name"] + _label_suffix(
                tuple(sorted(entry["labels"].items())))
            flat[key + "_count"] = entry["count"]
            flat[key + "_sum"] = entry["sum"]
        return flat

    old_flat, new_flat = flatten(old), flatten(new)
    return {key: value - old_flat.get(key, 0.0)
            for key, value in sorted(new_flat.items())}


def format_diff(deltas: dict[str, float], skip_zero: bool = True) -> str:
    """Render a :func:`diff_snapshots` result as an aligned table."""
    rows = [(k, v) for k, v in deltas.items() if v or not skip_zero]
    if not rows:
        return "(no change)"
    width = max(len(k) for k, _ in rows)
    return "\n".join(f"{k:<{width}}  {v:+g}" for k, v in rows)
