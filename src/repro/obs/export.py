"""Snapshot export: JSON documents and Prometheus text exposition.

A *snapshot* is a plain JSON-able dict of everything a registry (and
optionally an event trace) knows; two snapshots diff into per-metric
deltas, which is how ``repro-kv obs diff`` turns "before" and "after"
dumps into a rate report.
"""

from __future__ import annotations

import json

from repro.obs.events import EventTrace
from repro.obs.registry import Counter, Gauge, Histogram, Registry

#: quantiles included in snapshots and flat stats dumps.
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99, 0.999)


def _label_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    """Render labels for flat keys: ``{a=b,c=d}`` (no spaces)."""
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def snapshot(registry: Registry, events: EventTrace | None = None,
             meta: dict | None = None) -> dict:
    """A JSON-able dump of every metric (and, optionally, the events)."""
    counters, gauges, histograms = [], [], []
    for m in registry.collect():
        entry: dict = {"name": m.name, "labels": dict(m.labels)}
        if isinstance(m, Counter):
            entry["value"] = m.value
            counters.append(entry)
        elif isinstance(m, Gauge):
            entry["value"] = m.value
            gauges.append(entry)
        else:
            entry.update(
                count=m.count, sum=m.sum,
                min=m.min if m.count else None,
                max=m.max if m.count else None,
                quantiles=m.quantiles(SNAPSHOT_QUANTILES),
                buckets=[[le, cum] for le, cum in m.cumulative_buckets()
                         if cum or le == float("inf")])
            histograms.append(entry)
    doc = {"meta": meta or {}, "counters": counters, "gauges": gauges,
           "histograms": histograms}
    if events is not None:
        doc["events"] = {"recorded": events.recorded,
                         "dropped": events.dropped,
                         "kinds": events.kinds(),
                         "tail": events.snapshot(last=100)}
    return doc


def to_json(registry: Registry, events: EventTrace | None = None,
            meta: dict | None = None, indent: int = 2) -> str:
    # inf bucket bounds are not valid JSON; render them as the string
    # "+Inf" (the Prometheus spelling) so snapshots round-trip.
    def default(obj):  # pragma: no cover - only hit on exotic payloads
        return repr(obj)

    doc = snapshot(registry, events=events, meta=meta)
    for hist in doc["histograms"]:
        hist["buckets"] = [["+Inf" if le == float("inf") else le, cum]
                           for le, cum in hist["buckets"]]
    return json.dumps(doc, indent=indent, default=default)


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format: backslash first
    (or the other escapes would double up), then quote and newline."""
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text: the format allows any UTF-8 but requires
    ``\\`` and line feeds to be escaped (a raw newline would be parsed
    as the start of the next exposition line)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _prom_labels(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: Registry) -> str:
    """Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for m in registry.collect():
        if m.name not in seen_headers:
            seen_headers.add(m.name)
            if m.help:
                lines.append(f"# HELP {m.name} {_escape_help(m.help)}")
            lines.append(f"# TYPE {m.name} {m.kind}")
        if isinstance(m, (Counter, Gauge)):
            lines.append(f"{m.name}{_prom_labels(m.labels)} {_fmt(m.value)}")
        else:
            for le, cum in m.cumulative_buckets():
                labels = _prom_labels(m.labels, (("le", _fmt(le)),))
                lines.append(f"{m.name}_bucket{labels} {cum}")
            base = _prom_labels(m.labels)
            lines.append(f"{m.name}_sum{base} {_fmt(m.sum)}")
            lines.append(f"{m.name}_count{base} {m.count}")
    return "\n".join(lines) + "\n"


def flat_items(registry: Registry,
               histograms: bool = True) -> list[tuple[str, object]]:
    """Flatten every metric to space-free ``(key, value)`` pairs.

    This is the ``stats detail`` wire format: counters/gauges one pair
    each, histograms expanded to ``_count``/``_sum``/``_mean``/
    ``_min``/``_max`` plus the snapshot quantiles.
    """
    out: list[tuple[str, object]] = []
    for m in registry.collect():
        key = m.name + _label_suffix(m.labels)
        if isinstance(m, (Counter, Gauge)):
            value = m.value
            out.append((key, int(value) if float(value).is_integer()
                        else value))
        elif histograms:
            out.append((key + "_count", m.count))
            out.append((key + "_sum", m.sum))
            if m.count:
                out.append((key + "_mean", m.mean))
                out.append((key + "_min", m.min))
                out.append((key + "_max", m.max))
                for name, value in m.quantiles(SNAPSHOT_QUANTILES).items():
                    out.append((key + "_" + name, value))
    return out


class SnapshotDiff(dict):
    """Per-metric deltas plus the irregular cases a naive ``new - old``
    gets wrong.

    The mapping itself holds the numeric deltas of metrics present on
    *both* sides with a sane difference; three side tables classify the
    rest instead of raising or emitting misleading negatives:

    * ``added`` — metric only in the new snapshot (value shown as-is);
    * ``removed`` — metric only in the old snapshot (its last value);
    * ``resets`` — a monotone series (counter, histogram count/sum)
      went *down*, i.e. the process restarted between snapshots; the
      new value is reported as the restart baseline.
    """

    def __init__(self) -> None:
        super().__init__()
        self.added: dict[str, float] = {}
        self.removed: dict[str, float] = {}
        self.resets: dict[str, float] = {}


def _flatten_kinds(doc: dict) -> dict[str, tuple[float, bool]]:
    """Flat ``key -> (value, monotone)`` view of one snapshot dict."""
    flat: dict[str, tuple[float, bool]] = {}
    for entry in doc.get("counters", []):
        flat[entry["name"] + _label_suffix(
            tuple(sorted(entry["labels"].items())))] = (entry["value"], True)
    for entry in doc.get("gauges", []):
        flat[entry["name"] + _label_suffix(
            tuple(sorted(entry["labels"].items())))] = (entry["value"], False)
    for entry in doc.get("histograms", []):
        key = entry["name"] + _label_suffix(
            tuple(sorted(entry["labels"].items())))
        flat[key + "_count"] = (entry["count"], True)
        flat[key + "_sum"] = (entry["sum"], True)
    return flat


def diff_snapshots(old: dict, new: dict) -> SnapshotDiff:
    """Classify per-metric changes between two snapshot dicts.

    Counters and histogram count/sum diff numerically; gauges report
    their new value minus the old (negative gauge deltas are normal).
    Metrics present on only one side land in ``added``/``removed``,
    and a monotone series that went down is a ``reset`` — never a
    negative delta.
    """
    old_flat, new_flat = _flatten_kinds(old), _flatten_kinds(new)
    diff = SnapshotDiff()
    for key, (value, monotone) in sorted(new_flat.items()):
        if key not in old_flat:
            diff.added[key] = value
            continue
        delta = value - old_flat[key][0]
        if monotone and delta < 0:
            diff.resets[key] = value
        else:
            diff[key] = delta
    for key, (value, _monotone) in sorted(old_flat.items()):
        if key not in new_flat:
            diff.removed[key] = value
    return diff


def format_diff(deltas: dict[str, float], skip_zero: bool = True) -> str:
    """Render a :func:`diff_snapshots` result as an aligned table.

    Accepts any ``{key: delta}`` mapping; when given a
    :class:`SnapshotDiff` the added/removed/reset sections follow the
    delta table.
    """
    rows: list[tuple[str, str]] = [
        (k, f"{v:+g}") for k, v in deltas.items() if v or not skip_zero]
    if isinstance(deltas, SnapshotDiff):
        rows += [(k, f"added ({v:g})") for k, v in deltas.added.items()]
        rows += [(k, f"removed (was {v:g})")
                 for k, v in deltas.removed.items()]
        rows += [(k, f"reset (now {v:g})") for k, v in deltas.resets.items()]
    if not rows:
        return "(no change)"
    width = max(len(k) for k, _ in rows)
    return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)
