"""Metrics registry: counters, gauges, and log-bucketed histograms.

The design goal is *zero dependencies and near-zero cost*: metric
objects are plain ``__slots__`` classes whose hot methods are a couple
of arithmetic ops; instrumented code holds direct references to them
and guards every call with an ``is not None`` check, so a cache with no
registry attached pays one attribute load per operation.

Histograms are log-bucketed (geometric bucket bounds), the standard
HDR-style trade-off: a fixed, small memory footprint with bounded
*relative* quantile error of about ``sqrt(growth)`` per estimate.
"""

from __future__ import annotations

from bisect import bisect_left


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name) \
            or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Log-bucketed histogram with quantile estimation.

    Bucket ``i`` covers ``(bounds[i-1], bounds[i]]``; values above the
    last bound land in an overflow bucket.  Quantiles are estimated as
    the geometric midpoint of the winning bucket, clamped to the
    observed min/max, which bounds relative error by ``sqrt(growth)``.
    """

    __slots__ = ("name", "help", "labels", "growth", "bounds", "counts",
                 "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, name: str, help: str = "", lo: float = 1e-6,
                 growth: float = 1.5, nbuckets: int = 64,
                 labels: tuple[tuple[str, str], ...] = ()) -> None:
        if lo <= 0 or growth <= 1 or nbuckets < 1:
            raise ValueError("need lo > 0, growth > 1, nbuckets >= 1")
        self.name = _check_name(name)
        self.help = help
        self.labels = labels
        self.growth = growth
        self.bounds = [lo * growth ** i for i in range(nbuckets)]
        self.counts = [0] * (nbuckets + 1)  # +1 = overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def record(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.counts[bisect_left(self.bounds, value)] += 1

    def reset(self) -> None:
        """Zero every bucket and aggregate (bounds stay as configured).

        Windowed consumers (the timeline recorder) reuse one histogram
        per window instead of allocating a fresh bucket array each time.
        """
        self.counts = [0] * len(self.counts)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 < q <= 1) of recorded values."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cum = 0
        bounds = self.bounds
        for i, n in enumerate(self.counts):
            cum += n
            if cum >= rank:
                if i >= len(bounds):  # overflow bucket
                    return self.max
                upper = bounds[i]
                lower = bounds[i - 1] if i else upper / self.growth
                estimate = (lower * upper) ** 0.5
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - unreachable

    def quantiles(self, qs: tuple[float, ...] = (0.5, 0.9, 0.99, 0.999)
                  ) -> dict[str, float]:
        """Named quantile estimates, e.g. ``{"p50": ..., "p999": ...}``."""
        if not self.count:
            return {}
        return {("p%g" % (q * 100)).replace(".", ""): self.quantile(q)
                for q in qs}

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, Prometheus ``le`` style."""
        out, cum = [], 0
        for bound, n in zip(self.bounds, self.counts):
            cum += n
            out.append((bound, cum))
        out.append((float("inf"), self.count))
        return out


Metric = Counter | Gauge | Histogram


class Registry:
    """Holds metrics keyed by (name, labels); get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]],
                            Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labels: dict[str, str], **kwargs) -> Metric:
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help, labels=key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", lo: float = 1e-6,
                  growth: float = 1.5, nbuckets: int = 64,
                  **labels: str) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   lo=lo, growth=growth, nbuckets=nbuckets)

    def collect(self) -> list[Metric]:
        """All metrics, sorted by (name, labels) for stable output."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def get(self, name: str, **labels: str) -> Metric | None:
        return self._metrics.get((name, tuple(sorted(labels.items()))))

    def __len__(self) -> int:
        return len(self._metrics)

    # Thin conveniences over repro.obs.export (kept there to avoid
    # loading json/formatting machinery on the instrumentation path).
    def snapshot(self, events=None, meta: dict | None = None) -> dict:
        from repro.obs.export import snapshot
        return snapshot(self, events=events, meta=meta)

    def to_json(self, events=None, meta: dict | None = None) -> str:
        from repro.obs.export import to_json
        return to_json(self, events=events, meta=meta)

    def to_prometheus(self) -> str:
        from repro.obs.export import to_prometheus
        return to_prometheus(self)
