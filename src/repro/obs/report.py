"""Dump directories and the self-contained HTML report.

A *dump directory* is the on-disk form of one observed run:

* ``meta.json`` — run description (policy, seed, scenario, ...);
* ``timeline.jsonl`` — one JSON object per closed timeline window
  (see :mod:`repro.obs.timeline` for the row schema);
* ``spans.json`` — finished span traces, each a list of span dicts
  (see :mod:`repro.obs.spans`);
* ``snapshot.json`` — a registry snapshot (counters/gauges/histograms,
  optionally the event-trace tail).

All four files are optional except that a useful report needs at least
one of timeline/spans/snapshot.  :func:`validate_dump` checks the
schema of whatever is present and returns a list of human-readable
errors (empty = valid); ``repro-kv report`` refuses to render an
invalid dump, which is what the CI artifact job gates on.

The HTML report is fully self-contained — inline CSS, inline SVG
charts, a small inline script for hover read-outs, no external assets
— so it can be archived as a build artifact and opened offline.
"""

from __future__ import annotations

import html
import json
import os

from repro.obs.timeline import NESTED_FIELDS, SCALAR_FIELDS, load_jsonl

# -- dump directory i/o ----------------------------------------------------

META_FILE = "meta.json"
TIMELINE_FILE = "timeline.jsonl"
SPANS_FILE = "spans.json"
SNAPSHOT_FILE = "snapshot.json"


def write_dump(dirpath: str, *, meta: dict | None = None,
               registry=None, events=None, timeline=None,
               tracer=None) -> list[str]:
    """Write one run's observations as a dump directory.

    ``timeline`` may be a :class:`~repro.obs.timeline.TimelineRecorder`
    (its retained rows are written) — if the recorder already streamed
    to a JSONL sink inside ``dirpath``, skip passing it here.  Returns
    the paths written.
    """
    os.makedirs(dirpath, exist_ok=True)
    written: list[str] = []

    def emit(name: str, payload) -> None:
        path = os.path.join(dirpath, name)
        with open(path, "w") as fh:
            fh.write(payload)
        written.append(path)

    emit(META_FILE, json.dumps(meta or {}, indent=2, default=str))
    if timeline is not None:
        rows = timeline.rows if hasattr(timeline, "rows") else list(timeline)
        emit(TIMELINE_FILE, "".join(
            json.dumps(row, sort_keys=True) + "\n" for row in rows))
    if tracer is not None:
        traces = (tracer.trace_dicts() if hasattr(tracer, "trace_dicts")
                  else list(tracer))
        emit(SPANS_FILE, json.dumps(traces, indent=1))
    if registry is not None:
        from repro.obs.export import to_json
        emit(SNAPSHOT_FILE, to_json(registry, events=events, meta=meta))
    return written


def load_dump(dirpath: str) -> dict:
    """Read a dump directory into ``{meta, timeline, traces, snapshot}``
    (absent files load as empty)."""
    if not os.path.isdir(dirpath):
        raise FileNotFoundError(f"dump directory {dirpath!r} does not exist")

    def maybe_json(name: str, default):
        path = os.path.join(dirpath, name)
        if not os.path.exists(path):
            return default
        with open(path) as fh:
            return json.load(fh)

    timeline_path = os.path.join(dirpath, TIMELINE_FILE)
    return {
        "meta": maybe_json(META_FILE, {}),
        "timeline": (load_jsonl(timeline_path)
                     if os.path.exists(timeline_path) else []),
        "traces": maybe_json(SPANS_FILE, []),
        "snapshot": maybe_json(SNAPSHOT_FILE, {}),
    }


# -- schema validation -----------------------------------------------------

# ``tenants`` is optional: dumps written before the multi-tenant
# timeline dimension existed must keep validating.
_ROW_REQUIRED = (set(SCALAR_FIELDS) | set(NESTED_FIELDS)) - {"tenants"}
_SPAN_REQUIRED = {"span_id", "parent_id", "trace_id", "name", "start_tick",
                  "end_tick", "status", "attrs", "events"}


def validate_dump(dump: dict) -> list[str]:
    """Schema-check a loaded dump; returns error strings (empty = ok)."""
    errors: list[str] = []
    if not isinstance(dump.get("meta"), dict):
        errors.append("meta: expected a JSON object")

    rows = dump.get("timeline", [])
    for i, row in enumerate(rows):
        missing = _ROW_REQUIRED - set(row)
        if missing:
            errors.append(f"timeline row {i}: missing {sorted(missing)}")
            continue
        if row["tick_end"] <= row["tick_start"]:
            errors.append(f"timeline row {i}: empty tick range "
                          f"[{row['tick_start']}, {row['tick_end']})")
        if row["hits"] > row["gets"]:
            errors.append(f"timeline row {i}: hits {row['hits']} exceed "
                          f"gets {row['gets']}")
        for field in NESTED_FIELDS:
            if field not in row:
                continue  # optional fields (tenants) may be absent
            if not isinstance(row[field], dict):
                errors.append(f"timeline row {i}: {field} must be an object")
    ticks = [r.get("tick_start", 0) for r in rows]
    if ticks != sorted(ticks):
        errors.append("timeline: rows are not ordered by tick_start")

    for t, spans in enumerate(dump.get("traces", [])):
        if not isinstance(spans, list) or not spans:
            errors.append(f"trace {t}: expected a non-empty span list")
            continue
        ids = set()
        roots = 0
        for s, span in enumerate(spans):
            missing = _SPAN_REQUIRED - set(span)
            if missing:
                errors.append(f"trace {t} span {s}: missing "
                              f"{sorted(missing)}")
                continue
            ids.add(span["span_id"])
            if span["parent_id"] is None:
                roots += 1
            if span["end_tick"] < span["start_tick"]:
                errors.append(f"trace {t} span {s}: ends before it starts")
        if roots != 1:
            errors.append(f"trace {t}: expected exactly 1 root span, "
                          f"found {roots}")
        for s, span in enumerate(spans):
            parent = span.get("parent_id")
            if parent is not None and parent not in ids:
                errors.append(f"trace {t} span {s}: dangling parent_id "
                              f"{parent}")

    snap = dump.get("snapshot", {})
    if snap:
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(snap.get(section, []), list):
                errors.append(f"snapshot: {section} must be a list")
    return errors


# -- HTML rendering --------------------------------------------------------

#: categorical palette (validated reference order; see docs): the first
#: three slots are all-pairs safe, the full order is adjacent-pairs safe.
_SERIES_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                 "#e87ba4", "#008300", "#4a3aa7", "#e34948")
_SERIES_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500",
                "#d55181", "#008300", "#9085e9", "#e66767")
_OTHER = "#8a8984"

_STATUS_COLORS = {"ok": "#1baf7a", "failed": "#e34948", "error": "#e34948",
                  "degraded": "#eda100"}

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 2rem auto; max-width: 1080px; padding: 0 1rem;
  background: #fcfcfb; color: #0b0b0b;
  font: 14px/1.5 system-ui, -apple-system, sans-serif;
}
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.meta, table { border-collapse: collapse; }
td, th { padding: .25rem .6rem; border-bottom: 1px solid #e5e4e0;
         text-align: right; }
th { color: #52514e; font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
.chart { margin: 1rem 0; }
.chart svg { overflow: visible; }
.legend { display: flex; flex-wrap: wrap; gap: .4rem 1rem;
          font-size: .85rem; color: #52514e; margin: .2rem 0 .4rem; }
.legend .swatch { display: inline-block; width: 10px; height: 10px;
                  border-radius: 2px; margin-right: .35rem; }
.axis { font-size: 10px; fill: #52514e; }
.grid { stroke: #e5e4e0; stroke-width: 1; }
.readout { font-size: .8rem; color: #52514e; min-height: 1.2em; }
.waterfall { margin: .6rem 0 1.2rem; }
.wf-row { position: relative; height: 20px; margin: 2px 0;
          background: #f0efec; border-radius: 3px; }
.wf-bar { position: absolute; top: 2px; bottom: 2px; border-radius: 3px;
          min-width: 3px; }
.wf-label { position: absolute; left: .4rem; top: 0; line-height: 20px;
            font-size: .75rem; white-space: nowrap; color: #0b0b0b;
            text-shadow: 0 0 2px #fcfcfb; }
.wf-events { font-size: .75rem; color: #52514e; margin: 0 0 .5rem 0; }
.note { color: #52514e; font-size: .85rem; }
@media (prefers-color-scheme: dark) {
  body { background: #1a1a19; color: #ffffff; }
  th, .legend, .readout, .note, .wf-events { color: #c3c2b7; }
  td, th { border-bottom-color: #383835; }
  .grid { stroke: #383835; }
  .axis { fill: #c3c2b7; }
  .wf-row { background: #383835; }
  .wf-label { color: #ffffff; text-shadow: 0 0 2px #1a1a19; }
}
"""

_HOVER_JS = """
document.querySelectorAll('.chart').forEach(function (chart) {
  var data = JSON.parse(chart.querySelector('script').textContent);
  var svg = chart.querySelector('svg');
  var readout = chart.querySelector('.readout');
  if (!svg || !readout || !data.series.length) return;
  svg.addEventListener('mousemove', function (ev) {
    var rect = svg.getBoundingClientRect();
    var n = data.series[0].values.length;
    if (n < 1) return;
    var frac = (ev.clientX - rect.left - data.pad) /
               (rect.width - 2 * data.pad);
    var i = Math.round(frac * (n - 1));
    i = Math.max(0, Math.min(n - 1, i));
    readout.textContent = data.x + ' ' + data.xs[i] + ' — ' +
      data.series.map(function (s) {
        return s.label + ': ' + Number(s.values[i]).toPrecision(4);
      }).join(', ');
  });
  svg.addEventListener('mouseleave', function () {
    readout.textContent = '';
  });
});
"""


def _fmt_val(v: float) -> str:
    return f"{v:.3g}"


def _line_chart(title: str, xs: list, series: list[tuple[str, list[float]]],
                width: int = 960, height: int = 180,
                x_label: str = "tick") -> str:
    """One SVG line chart: shared x, one y-axis, legend, hover data."""
    series = [(label, values) for label, values in series if values]
    if not series or not xs:
        return ""
    pad = 52
    all_vals = [v for _, values in series for v in values]
    lo, hi = min(all_vals), max(all_vals)
    if hi == lo:
        hi = lo + 1.0
    n = max(len(values) for _, values in series)

    def x_of(i: int) -> float:
        return pad + (width - 2 * pad) * (i / max(n - 1, 1))

    def y_of(v: float) -> float:
        return (height - 24) - (height - 40) * ((v - lo) / (hi - lo))

    polys = []
    for idx, (label, values) in enumerate(series):
        color = (f"var(--s{idx})" if idx < len(_SERIES_LIGHT)
                 else _OTHER)
        points = " ".join(f"{x_of(i):.1f},{y_of(v):.1f}"
                          for i, v in enumerate(values))
        polys.append(f'<polyline fill="none" stroke="{color}" '
                     f'stroke-width="2" points="{points}"/>')
    grid_y = [y_of(lo), y_of((lo + hi) / 2), y_of(hi)]
    grid = "".join(
        f'<line class="grid" x1="{pad}" y1="{y:.1f}" '
        f'x2="{width - pad}" y2="{y:.1f}"/>' for y in grid_y)
    labels = (
        f'<text class="axis" x="{pad - 6}" y="{y_of(lo):.1f}" '
        f'text-anchor="end">{_fmt_val(lo)}</text>'
        f'<text class="axis" x="{pad - 6}" y="{y_of(hi) + 4:.1f}" '
        f'text-anchor="end">{_fmt_val(hi)}</text>'
        f'<text class="axis" x="{pad}" y="{height - 6}">'
        f'{html.escape(str(xs[0]))}</text>'
        f'<text class="axis" x="{width - pad}" y="{height - 6}" '
        f'text-anchor="end">{html.escape(str(xs[-1]))}</text>')
    legend = ""
    if len(series) > 1:
        swatches = "".join(
            f'<span><span class="swatch" style="background:'
            f'{"var(--s%d)" % i if i < len(_SERIES_LIGHT) else _OTHER}'
            f'"></span>{html.escape(label)}</span>'
            for i, (label, _) in enumerate(series))
        legend = f'<div class="legend">{swatches}</div>'
    data = json.dumps({
        "x": x_label, "pad": pad, "xs": list(xs),
        "series": [{"label": label, "values": values}
                   for label, values in series]})
    return (f'<div class="chart"><h3>{html.escape(title)}</h3>{legend}'
            f'<svg viewBox="0 0 {width} {height}" width="100%" '
            f'role="img" aria-label="{html.escape(title)}">'
            f"{grid}{''.join(polys)}{labels}</svg>"
            f'<div class="readout"></div>'
            f'<script type="application/json">{data}</script></div>')


def _series_vars() -> str:
    light = "".join(f"--s{i}: {c}; " for i, c in enumerate(_SERIES_LIGHT))
    dark = "".join(f"--s{i}: {c}; " for i, c in enumerate(_SERIES_DARK))
    return (f":root {{ {light}}}\n"
            f"@media (prefers-color-scheme: dark) {{ :root {{ {dark}}} }}")


def _meta_table(meta: dict) -> str:
    if not meta:
        return ""
    rows = "".join(
        f"<tr><td>{html.escape(str(k))}</td>"
        f"<td>{html.escape(json.dumps(v) if isinstance(v, (dict, list)) else str(v))}</td></tr>"
        for k, v in sorted(meta.items()))
    return f'<table class="meta"><tbody>{rows}</tbody></table>'


def _timeline_section(rows: list[dict]) -> str:
    if not rows:
        return '<p class="note">No timeline in this dump.</p>'
    xs = [r["tick_start"] for r in rows]
    parts = [_line_chart("Hit ratio per window", xs,
                         [("hit_ratio", [r["hit_ratio"] for r in rows])])]
    parts.append(_line_chart(
        "Service time per window (s)", xs,
        [("avg", [r["avg_service_time"] for r in rows]),
         ("p99", [r["service_p99"] for r in rows])]))
    parts.append(_line_chart(
        "Miss penalty mass per window (s)", xs,
        [("penalty_mass", [r["penalty_mass"] for r in rows])]))

    # Per-class slab counts: fixed slots for the 8 largest classes,
    # everything else folded into "Other" (never a 9th hue).
    class_keys: dict[str, int] = {}
    for r in rows:
        for key, count in r["class_slabs"].items():
            class_keys[key] = max(class_keys.get(key, 0), count)
    ranked = sorted(class_keys, key=lambda k: -class_keys[k])
    shown, folded = ranked[:8], ranked[8:]
    slab_series = [(f"class {key}",
                    [r["class_slabs"].get(key, 0) for r in rows])
                   for key in sorted(shown, key=int)]
    if folded:
        slab_series.append(("Other", [
            sum(r["class_slabs"].get(key, 0) for key in folded)
            for r in rows]))
    parts.append(_line_chart("Slab allocation per size class (Fig 3 view)",
                             xs, slab_series, height=220))

    decided = [r for r in rows if r["decision_count"]]
    if decided:
        parts.append(_line_chart(
            "PAMA decision values per window (mean per decision)", xs,
            [("Eq.1 incoming", [
                r["eq1_incoming_sum"] / r["decision_count"]
                if r["decision_count"] else 0.0 for r in rows]),
             ("Eq.2 outgoing", [
                 r["eq2_outgoing_sum"] / r["decision_count"]
                 if r["decision_count"] else 0.0 for r in rows])]))
    parts.append(_line_chart(
        "Migration and eviction flux per window", xs,
        [("migrations", [float(r["migrations"]) for r in rows]),
         ("evictions", [float(r["evictions"]) for r in rows]),
         ("ghost_hits", [float(r["ghost_hits"]) for r in rows])]))
    return "\n".join(p for p in parts if p)


def _tenant_section(rows: list[dict], meta: dict) -> str:
    """Per-tenant timeline charts (multi-tenant runs only).

    Renders one line per tenant for hit ratio, average service time
    and miss-penalty mass per window, plus a totals table.  Rows from
    single-tenant runs carry an empty ``tenants`` cell and the section
    is omitted entirely.
    """
    tenant_ids: set[str] = set()
    for r in rows:
        tenant_ids.update(r.get("tenants", {}))
    if not tenant_ids:
        return ""
    names = meta.get("tenants", [])

    def label(tid: str) -> str:
        idx = int(tid)
        return names[idx] if idx < len(names) else f"tenant {tid}"

    ordered = sorted(tenant_ids, key=int)
    xs = [r["tick_start"] for r in rows]

    def cell(r: dict, tid: str) -> dict:
        return r.get("tenants", {}).get(tid, {})

    parts = ["<h2>Per-tenant timeline</h2>"]
    parts.append(_line_chart(
        "Hit ratio per window by tenant", xs,
        [(label(t), [
            (c.get("hits", 0) / c["gets"]) if c.get("gets") else 0.0
            for r in rows for c in (cell(r, t),)]) for t in ordered]))
    parts.append(_line_chart(
        "Avg service time per window by tenant (s)", xs,
        [(label(t), [
            (c.get("service", 0.0) / c["gets"]) if c.get("gets") else 0.0
            for r in rows for c in (cell(r, t),)]) for t in ordered]))
    parts.append(_line_chart(
        "Miss penalty mass per window by tenant (s)", xs,
        [(label(t), [cell(r, t).get("penalty", 0.0) for r in rows])
         for t in ordered]))

    body = []
    for t in ordered:
        gets = sum(cell(r, t).get("gets", 0) for r in rows)
        hits = sum(cell(r, t).get("hits", 0) for r in rows)
        service = sum(cell(r, t).get("service", 0.0) for r in rows)
        penalty = sum(cell(r, t).get("penalty", 0.0) for r in rows)
        body.append(
            f"<tr><td>{html.escape(label(t))}</td><td>{gets}</td>"
            f"<td>{_fmt_val(hits / gets if gets else 0.0)}</td>"
            f"<td>{_fmt_val(service / gets if gets else 0.0)}</td>"
            f"<td>{_fmt_val(penalty)}</td></tr>")
    parts.append(
        "<table><thead><tr><th>tenant</th><th>gets</th><th>hit ratio</th>"
        "<th>avg service (s)</th><th>penalty mass (s)</th></tr></thead>"
        "<tbody>" + "".join(body) + "</tbody></table>")
    return "\n".join(p for p in parts if p)


def _migration_summary(rows: list[dict]) -> str:
    if not rows:
        return ""
    totals: dict[str, int] = {}
    migrations = sum(r["migrations"] for r in rows)
    evictions = sum(r["evictions"] for r in rows)
    for r in rows:
        for outcome, n in r["decisions"].items():
            totals[outcome] = totals.get(outcome, 0) + n
    body = "".join(f"<tr><td>decision: {html.escape(k)}</td><td>{v}</td></tr>"
                   for k, v in sorted(totals.items()))
    body += (f"<tr><td>slab migrations</td><td>{migrations}</td></tr>"
             f"<tr><td>evictions</td><td>{evictions}</td></tr>")
    return ("<h2>Migration summary</h2><table><tbody>"
            + body + "</tbody></table>")


def _tail_table(snapshot: dict) -> str:
    hists = snapshot.get("histograms", [])
    if not hists:
        return ""
    rows = []
    for h in hists:
        label = h["name"] + ("{" + ",".join(
            f"{k}={v}" for k, v in sorted(h["labels"].items())) + "}"
            if h["labels"] else "")
        q = h.get("quantiles", {})
        rows.append(
            f"<tr><td>{html.escape(label)}</td><td>{h['count']}</td>"
            + "".join(f"<td>{_fmt_val(q.get(p, 0.0))}</td>"
                      for p in ("p50", "p90", "p99", "p999"))
            + f"<td>{_fmt_val(h['max'] if h['max'] is not None else 0.0)}"
            f"</td></tr>")
    return ("<h2>Tail latency</h2><table><thead><tr><th>histogram</th>"
            "<th>count</th><th>p50</th><th>p90</th><th>p99</th>"
            "<th>p999</th><th>max</th></tr></thead><tbody>"
            + "".join(rows) + "</tbody></table>")


def _waterfall_section(traces: list[list[dict]], limit: int = 8) -> str:
    if not traces:
        return '<p class="note">No span traces in this dump.</p>'
    # Most interesting first: deepest trees (failovers/retries) win.
    ranked = sorted(traces, key=len, reverse=True)[:limit]
    out = []
    for spans in ranked:
        root = next(s for s in spans if s["parent_id"] is None)
        t0 = root["start_tick"]
        extent = max(max(s["end_tick"] for s in spans) - t0, 1)
        by_parent: dict = {}
        for s in spans:
            by_parent.setdefault(s["parent_id"], []).append(s)
        bars: list[str] = []

        def emit(span: dict, depth: int) -> None:
            left = (span["start_tick"] - t0) / extent * 100
            width = max((span["end_tick"] - span["start_tick"]) / extent
                        * 100, 0.5)
            color = _STATUS_COLORS.get(span["status"], "var(--s0)")
            attrs = " ".join(f"{k}={v}" for k, v in span["attrs"].items())
            events = " ".join(f"{e['name']}@{e['tick']}"
                              for e in span["events"])
            tip = html.escape(
                f"{span['name']} [{span['start_tick']}..{span['end_tick']}] "
                f"{span['status']} {attrs} {events}".strip())
            bars.append(
                f'<div class="wf-row" style="margin-left:{depth * 18}px" '
                f'title="{tip}"><div class="wf-bar" style="left:{left:.2f}%;'
                f'width:{width:.2f}%;background:{color}"></div>'
                f'<span class="wf-label">{html.escape(span["name"])} '
                f'({html.escape(span["status"])})</span></div>')
            if events:
                bars.append(f'<div class="wf-events" '
                            f'style="margin-left:{depth * 18}px">'
                            f"{html.escape(events)}</div>")
            for child in by_parent.get(span["span_id"], []):
                emit(child, depth + 1)

        emit(root, 0)
        head = " ".join(f"{k}={v}" for k, v in root["attrs"].items())
        out.append(
            f'<div class="waterfall"><strong>trace {root["trace_id"]}</strong>'
            f' <span class="note">root tick {t0}, {len(spans)} spans '
            f"{html.escape(head)}</span>{''.join(bars)}</div>")
    note = (f'<p class="note">Showing {len(ranked)} of {len(traces)} '
            f"retained traces (deepest first).</p>")
    return note + "".join(out)


def render_html(dump: dict, title: str = "repro-kv run report") -> str:
    """Render a loaded dump as one self-contained HTML document."""
    meta = dump.get("meta", {})
    rows = dump.get("timeline", [])
    traces = dump.get("traces", [])
    snapshot = dump.get("snapshot", {})
    body = [
        f"<h1>{html.escape(title)}</h1>",
        _meta_table(meta),
        "<h2>Timeline</h2>",
        _timeline_section(rows),
        _tenant_section(rows, meta),
        _migration_summary(rows),
        _tail_table(snapshot),
        "<h2>Span waterfalls</h2>",
        _waterfall_section(traces),
    ]
    return ("<!doctype html><html><head><meta charset='utf-8'>"
            f"<title>{html.escape(title)}</title>"
            f"<style>{_series_vars()}{_CSS}</style></head><body>"
            + "\n".join(p for p in body if p)
            + f"<script>{_HOVER_JS}</script></body></html>")


def render_report(dump_dir: str, out_path: str,
                  title: str | None = None) -> list[str]:
    """Load, validate and render ``dump_dir``; raises ``ValueError`` on
    schema errors.  Returns the validation error list (always empty on
    success) for symmetry with :func:`validate_dump`."""
    dump = load_dump(dump_dir)
    errors = validate_dump(dump)
    if errors:
        raise ValueError("invalid dump:\n" + "\n".join(
            f"  - {e}" for e in errors))
    doc = render_html(dump, title=title
                      or f"repro-kv report — {os.path.basename(dump_dir)}")
    with open(out_path, "w") as fh:
        fh.write(doc)
    return errors
