"""Windowed time-series telemetry keyed on access ticks.

The paper's central evidence is *time-resolved*: Figs 3/4 plot slab
allocation per (sub)class over the trace and the burst study (Fig 9)
only makes sense as a timeline.  :class:`TimelineRecorder` turns every
replay into that trajectory: per stride of access ticks it closes a
*row* holding hit/miss/ghost-hit counts, penalty mass, service-time
quantiles, migration flux, the Eq.1 incoming / Eq.2 outgoing values
that drove PAMA's migration decisions, and a snapshot of per-class and
per-(class, bin) slab counts.

Cost model mirrors :mod:`repro.obs`: nothing is recorded unless a
recorder is attached, every cold-path hook is one ``is not None``
check, and the simulator selects a timeline-aware replay loop up front
so the disabled hot path is byte-for-byte the uninstrumented one.

Memory is bounded two ways:

* rows can stream to an append-friendly :class:`JsonlSink` /
  :class:`CsvSink` as they close (the dump-directory format
  ``repro-kv report`` renders);
* the in-memory row list can be capped with ``max_rows``: when it
  fills, adjacent rows are merged pairwise and the stride doubles —
  the series keeps full time coverage at half the resolution, like a
  flight recorder.
"""

from __future__ import annotations

import csv
import json
from typing import IO

from repro.obs.registry import Histogram

#: quantiles each row reports for the window's service times.
ROW_QUANTILES = (0.5, 0.99)

#: scalar columns, in CSV header order (complex columns follow).
SCALAR_FIELDS = (
    "window", "tick_start", "tick_end", "gets", "hits", "misses",
    "hit_ratio", "ghost_hits", "penalty_mass", "avg_service_time",
    "service_p50", "service_p99", "evictions", "migrations",
    "decision_count", "eq1_incoming_sum", "eq2_outgoing_sum",
)

#: nested columns (JSON-encoded in CSV cells).  ``tenants`` maps tenant
#: id -> per-window {gets, hits, service, penalty} and stays ``{}``
#: unless the replay loop tags requests with tenants.
NESTED_FIELDS = ("decisions", "class_slabs", "queue_slabs", "tenants")


class JsonlSink:
    """Streams one JSON object per row to a file — append-friendly:
    a crashed run leaves every closed window readable."""

    def __init__(self, path_or_file: str | IO[str]) -> None:
        if isinstance(path_or_file, str):
            self._fh: IO[str] = open(path_or_file, "w")
            self._owns = True
        else:
            self._fh = path_or_file
            self._owns = False
        self.rows_written = 0

    def write(self, row: dict) -> None:
        self._fh.write(json.dumps(row, sort_keys=True) + "\n")
        self.rows_written += 1

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class CsvSink:
    """Streams rows as CSV: scalar columns verbatim, nested columns
    (slab distributions, decision outcomes) JSON-encoded per cell."""

    def __init__(self, path_or_file: str | IO[str]) -> None:
        if isinstance(path_or_file, str):
            self._fh: IO[str] = open(path_or_file, "w", newline="")
            self._owns = True
        else:
            self._fh = path_or_file
            self._owns = False
        self._writer = csv.writer(self._fh)
        self._writer.writerow(SCALAR_FIELDS + NESTED_FIELDS)
        self.rows_written = 0

    def write(self, row: dict) -> None:
        cells = [row.get(f, "") for f in SCALAR_FIELDS]
        cells += [json.dumps(row.get(f, {}), sort_keys=True)
                  for f in NESTED_FIELDS]
        self._writer.writerow(cells)
        self.rows_written += 1

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


def open_sink(path: str) -> JsonlSink | CsvSink:
    """Pick a sink by extension: ``.csv`` -> CSV, anything else JSONL."""
    return CsvSink(path) if path.endswith(".csv") else JsonlSink(path)


class TimelineRecorder:
    """Windowed time-series recorder over access ticks.

    Args:
        stride: access ticks per window (one tick per trace request).
        sink: optional row sink; rows stream out as windows close.
        max_rows: cap on in-memory rows; on overflow adjacent rows are
            merged pairwise and the stride doubles (must be >= 2).
        keep_rows: set False to keep *no* rows in memory (sink-only
            mode for very long runs).

    Per-request accounting (:meth:`record_get` / :meth:`advance`) is
    driven by the replay loop with the global request tick; cold-path
    hooks (:meth:`note_eviction` and friends) are called by the cache
    and the policy and accumulate into whatever window is open, so the
    same recorder works for a single cache or a whole cluster.
    """

    def __init__(self, stride: int = 10_000, sink=None,
                 max_rows: int | None = None,
                 keep_rows: bool = True) -> None:
        if stride <= 0:
            raise ValueError("stride must be positive")
        if max_rows is not None and max_rows < 2:
            raise ValueError("max_rows must be >= 2 (merging needs pairs)")
        self.stride = stride
        self.sink = sink
        self.max_rows = max_rows
        self.keep_rows = keep_rows
        self.rows: list[dict] = []
        self.rows_closed = 0
        #: snapshot hook returning (class_slabs, queue_slabs); the
        #: simulator points this at its own snapshot function.
        self.snapshot_fn = None
        self._window_start = 0
        self._hist = Histogram("timeline_window_service", lo=1e-6,
                               growth=1.25, nbuckets=96)
        self._zero_window()

    def _zero_window(self) -> None:
        self._gets = 0
        self._hits = 0
        self._service = 0.0
        self._penalty = 0.0
        self._ghost_hits = 0
        self._evictions = 0
        self._migrations = 0
        self._decisions: dict[str, int] = {}
        self._eq1_sum = 0.0
        self._eq2_sum = 0.0
        self._decision_count = 0
        #: tenant id -> [gets, hits, service_sum, penalty_sum]
        self._tenants: dict[int, list] = {}
        self._hist.reset()

    # -- per-request accounting (replay loop) ---------------------------
    def record_get(self, tick: int, hit: bool, cost: float,
                   penalty: float = 0.0, tenant: int = -1) -> None:
        """One GET outcome at ``tick``; rolls the window when crossed.

        ``tenant >= 0`` additionally accumulates the outcome into that
        tenant's per-window cell (the multi-tenant replay loop passes
        the request's tenant id; single-tenant loops leave the default
        and pay nothing).
        """
        if tick >= self._window_start + self.stride:
            self._close(tick)
        self._gets += 1
        self._service += cost
        self._hist.record(cost)
        if hit:
            self._hits += 1
            miss_penalty = 0.0
        elif penalty == penalty:  # miss; skip NaN (unknown penalty)
            self._penalty += penalty
            miss_penalty = penalty
        else:
            miss_penalty = 0.0
        if tenant >= 0:
            cell = self._tenants.get(tenant)
            if cell is None:
                cell = self._tenants[tenant] = [0, 0, 0.0, 0.0]
            cell[0] += 1
            cell[1] += hit
            cell[2] += cost
            cell[3] += miss_penalty

    def advance(self, tick: int) -> None:
        """A non-GET request at ``tick`` (SET/DELETE): window roll only."""
        if tick >= self._window_start + self.stride:
            self._close(tick)

    # -- cold-path notes (cache / policy hooks) -------------------------
    def note_eviction(self) -> None:
        self._evictions += 1

    def note_migration(self) -> None:
        self._migrations += 1

    def note_ghost_hit(self) -> None:
        self._ghost_hits += 1

    def note_decision(self, incoming: float, outgoing: float,
                      outcome: str) -> None:
        """One PAMA migration decision with its Eq.1/Eq.2 values."""
        self._decisions[outcome] = self._decisions.get(outcome, 0) + 1
        self._eq1_sum += incoming
        self._eq2_sum += outgoing
        self._decision_count += 1

    # -- window mechanics ----------------------------------------------
    def _close(self, next_tick: int) -> None:
        """Close the open window and align the next one to ``next_tick``."""
        row = self._build_row()
        self.rows_closed += 1
        if self.sink is not None:
            self.sink.write(row)
        if self.keep_rows:
            self.rows.append(row)
            if self.max_rows is not None and len(self.rows) > self.max_rows:
                self._downsample()
        # Align to the stride grid so sparse traces skip empty windows
        # (the stride may just have doubled in _downsample).
        self._window_start = max(self._window_start + self.stride,
                                 (next_tick // self.stride) * self.stride)
        self._zero_window()

    def _build_row(self) -> dict:
        gets = self._gets
        quantiles = ({q: self._hist.quantile(q) for q in ROW_QUANTILES}
                     if gets else dict.fromkeys(ROW_QUANTILES, 0.0))
        class_slabs: dict = {}
        queue_slabs: dict = {}
        if self.snapshot_fn is not None:
            cls, queues = self.snapshot_fn()
            class_slabs = {str(c): n for c, n in sorted(cls.items())}
            queue_slabs = {f"{c}:{b}": n
                           for (c, b), n in sorted(queues.items())}
        return {
            "window": self.rows_closed,
            "tick_start": self._window_start,
            "tick_end": self._window_start + self.stride,
            "gets": gets,
            "hits": self._hits,
            "misses": gets - self._hits,
            "hit_ratio": self._hits / gets if gets else 0.0,
            "ghost_hits": self._ghost_hits,
            "penalty_mass": self._penalty,
            "avg_service_time": self._service / gets if gets else 0.0,
            "service_p50": quantiles[0.5],
            "service_p99": quantiles[0.99],
            "evictions": self._evictions,
            "migrations": self._migrations,
            "decisions": dict(sorted(self._decisions.items())),
            "decision_count": self._decision_count,
            "eq1_incoming_sum": self._eq1_sum,
            "eq2_outgoing_sum": self._eq2_sum,
            "class_slabs": class_slabs,
            "queue_slabs": queue_slabs,
            "tenants": {str(t): {"gets": c[0], "hits": c[1],
                                 "service": c[2], "penalty": c[3]}
                        for t, c in sorted(self._tenants.items())},
        }

    def _downsample(self) -> None:
        """Merge adjacent row pairs and double the stride: same time
        coverage, half the resolution, bounded memory."""
        merged = [merge_rows(self.rows[i], self.rows[i + 1])
                  if i + 1 < len(self.rows) else self.rows[i]
                  for i in range(0, len(self.rows), 2)]
        self.rows = merged
        self.stride *= 2

    def finish(self) -> None:
        """Close a final partial window (if any) and flush the sink."""
        if self._gets or self._decision_count or self._migrations \
                or self._evictions:
            self._close(self._window_start + self.stride)
        if self.sink is not None:
            self.sink.close()

    # -- series accessors (tests / report) ------------------------------
    def series(self, field: str) -> list:
        return [row[field] for row in self.rows]

    def class_slab_series(self, class_idx: int) -> list[int]:
        """Per-window slab count of one size class (a Fig 3 line)."""
        key = str(class_idx)
        return [row["class_slabs"].get(key, 0) for row in self.rows]


def merge_rows(a: dict, b: dict) -> dict:
    """Combine two adjacent rows into one covering both windows.

    Counts and sums add; ratio/means are recomputed from the merged
    sums; the per-window quantiles take the pairwise max (a
    conservative tail estimate — exact merging would need the raw
    buckets); slab snapshots keep the *later* row's (end-of-window
    semantics).
    """
    gets = a["gets"] + b["gets"]
    hits = a["hits"] + b["hits"]
    service = (a["avg_service_time"] * a["gets"]
               + b["avg_service_time"] * b["gets"])
    decisions = dict(a["decisions"])
    for outcome, n in b["decisions"].items():
        decisions[outcome] = decisions.get(outcome, 0) + n
    # ``tenants`` may be absent in rows from pre-tenancy dumps.
    tenants = {t: dict(cell) for t, cell in a.get("tenants", {}).items()}
    for t, cell in b.get("tenants", {}).items():
        merged_cell = tenants.setdefault(
            t, {"gets": 0, "hits": 0, "service": 0.0, "penalty": 0.0})
        for k, v in cell.items():
            merged_cell[k] = merged_cell.get(k, 0) + v
    return {
        "window": a["window"],
        "tick_start": a["tick_start"],
        "tick_end": b["tick_end"],
        "gets": gets,
        "hits": hits,
        "misses": gets - hits,
        "hit_ratio": hits / gets if gets else 0.0,
        "ghost_hits": a["ghost_hits"] + b["ghost_hits"],
        "penalty_mass": a["penalty_mass"] + b["penalty_mass"],
        "avg_service_time": service / gets if gets else 0.0,
        "service_p50": max(a["service_p50"], b["service_p50"]),
        "service_p99": max(a["service_p99"], b["service_p99"]),
        "evictions": a["evictions"] + b["evictions"],
        "migrations": a["migrations"] + b["migrations"],
        "decisions": dict(sorted(decisions.items())),
        "decision_count": a["decision_count"] + b["decision_count"],
        "eq1_incoming_sum": a["eq1_incoming_sum"] + b["eq1_incoming_sum"],
        "eq2_outgoing_sum": a["eq2_outgoing_sum"] + b["eq2_outgoing_sum"],
        "class_slabs": b["class_slabs"],
        "queue_slabs": b["queue_slabs"],
        "tenants": {t: tenants[t] for t in sorted(tenants)},
    }


def load_jsonl(path: str) -> list[dict]:
    """Read a JSONL timeline back into row dicts."""
    rows = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows
