"""repro.obs — lightweight observability: metrics, events, export.

Two pieces:

* :class:`Registry` — counters, gauges, and log-bucketed histograms
  with p50/p90/p99/p999 quantile estimation;
* :class:`EventTrace` — a bounded ring buffer of structured events
  (slab migrations, evictions, ghost hits, window rollovers), each
  stamped with the cache's access tick.

Instrumented components (:class:`~repro.cache.cache.SlabCache`, the
simulator, the server) hold *optional* references to a registry; when
none is attached every instrumentation point is a single ``is not
None`` check, so the simulate hot path is unaffected (see
``benchmarks/bench_obs_overhead.py``).

Enable globally (new caches/simulators auto-attach)::

    from repro import obs
    registry = obs.enable()
    ... run a simulation ...
    print(registry.to_prometheus())
    obs.disable()

or attach explicitly with ``cache.attach_obs(Registry(), EventTrace())``.
"""

from __future__ import annotations

from repro.obs.events import Event, EventTrace
from repro.obs.export import (diff_snapshots, flat_items, format_diff,
                              snapshot, to_json, to_prometheus)
from repro.obs.registry import Counter, Gauge, Histogram, Registry
from repro.obs.report import (load_dump, render_html, render_report,
                              validate_dump, write_dump)
from repro.obs.spans import Span, SpanTracer, format_waterfall
from repro.obs.timeline import (CsvSink, JsonlSink, TimelineRecorder,
                                open_sink)

__all__ = [
    "Counter", "Gauge", "Histogram", "Registry",
    "Event", "EventTrace",
    "snapshot", "to_json", "to_prometheus", "flat_items",
    "diff_snapshots", "format_diff",
    "TimelineRecorder", "JsonlSink", "CsvSink", "open_sink",
    "Span", "SpanTracer", "format_waterfall",
    "write_dump", "load_dump", "validate_dump", "render_html",
    "render_report",
    "enable", "disable", "is_enabled", "get_registry", "get_event_trace",
]

#: module-level switch: when enabled, newly constructed SlabCaches and
#: Simulators attach to this registry/trace automatically.
_registry: Registry | None = None
_events: EventTrace | None = None


def enable(registry: Registry | None = None,
           events: EventTrace | None = None,
           event_capacity: int = 4096) -> Registry:
    """Turn on global observability; returns the active registry."""
    global _registry, _events
    _registry = registry if registry is not None else Registry()
    _events = events if events is not None else EventTrace(event_capacity)
    return _registry


def disable() -> None:
    """Turn global observability off (existing attachments persist)."""
    global _registry, _events
    _registry = None
    _events = None


def is_enabled() -> bool:
    return _registry is not None


def get_registry() -> Registry | None:
    return _registry


def get_event_trace() -> EventTrace | None:
    return _events
