"""Request-scoped span tracing: Dapper-style trace trees over ticks.

A *span* is one timed operation (a request, a node attempt, a backend
fill) with a parent link; a *trace* is the tree of spans one sampled
request produced.  The cluster's resilient routing path emits a child
span per node attempt — retries, backoff, connection drops, timeouts
and breaker rejections land on the span as tick-stamped span events —
so a fault-injection run yields replayable waterfalls: which node was
tried, why it failed, where the request failed over.

Sampling is *deterministic and seeded*: whether tick ``t`` is traced is
a pure splitmix64 function of ``(seed, t)``, the same contract as
:mod:`repro.faults.plan` — identical seeds replay identical trace sets,
which is what makes span-level assertions regression-testable.

Threading model: the start/end stack is single-threaded (the replay
engine), matching the simulator; the protocol server uses
:meth:`SpanTracer.record_single`, which appends one finished root span
atomically and never touches the stack.
"""

from __future__ import annotations

from collections import deque

from repro.bloom.hashing import _MASK64, splitmix64

#: stochastic channel salt for sampling draws (cf. repro.faults.plan).
CHAN_SPAN_SAMPLE = 0x5A5A_0B5E


def sample_draw(seed: int, tick: int) -> float:
    """Uniform [0, 1) draw deciding whether ``tick`` is sampled —
    a pure function of its arguments (no RNG state)."""
    x = splitmix64((seed ^ (CHAN_SPAN_SAMPLE * 0x9E3779B97F4A7C15))
                   & _MASK64)
    x = splitmix64((x ^ tick) & _MASK64)
    return x / 2.0 ** 64


class Span:
    """One traced operation: name, tick range, status, attributes, and
    tick-stamped span events (retry, conn_drop, ...)."""

    __slots__ = ("span_id", "parent_id", "trace_id", "name", "start_tick",
                 "end_tick", "status", "attrs", "events")

    def __init__(self, span_id: int, parent_id: int | None, trace_id: int,
                 name: str, start_tick: int, attrs: dict) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.name = name
        self.start_tick = start_tick
        self.end_tick = start_tick
        self.status = "open"
        self.attrs = attrs
        self.events: list[dict] = []

    def add_event(self, name: str, tick: int, **attrs) -> None:
        self.events.append({"name": name, "tick": tick, **attrs})

    def as_dict(self) -> dict:
        return {"span_id": self.span_id, "parent_id": self.parent_id,
                "trace_id": self.trace_id, "name": self.name,
                "start_tick": self.start_tick, "end_tick": self.end_tick,
                "status": self.status, "attrs": self.attrs,
                "events": self.events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name}#{self.span_id}"
                f" [{self.start_tick},{self.end_tick}] {self.status})")


class SpanTracer:
    """Collects sampled trace trees with bounded memory.

    Args:
        sample: fraction of ticks traced; ``1.0`` traces everything,
            ``0.0`` nothing.  Per-tick decisions are pure functions of
            ``(seed, tick)``.
        seed: sampling seed (same seed -> same sampled tick set).
        capacity: finished traces retained; older whole traces fall off
            the back (``dropped_traces`` counts them).

    Usage, from a replay loop::

        if tracer.sampled(tick):
            root = tracer.start_trace(tick, "get", key=key)
            ...  # nested code calls tracer.start()/end()
            tracer.end(root, tick, status="ok")

    Nested instrumentation (the cluster's routing path) calls
    :meth:`start`, which silently returns ``None`` when no trace is
    active — so instrumented code needs no sampling awareness, only
    ``tracer.end(span, ...)`` tolerance for ``span is None`` (built in).
    """

    def __init__(self, sample: float = 1.0, seed: int = 0,
                 capacity: int = 256) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sample = sample
        self.seed = seed
        self.capacity = capacity
        self.started_traces = 0
        self.finished_traces = 0
        self._traces: deque[list[Span]] = deque(maxlen=capacity)
        self._stack: list[Span] = []
        self._open: list[Span] = []  # every span of the active trace
        self._next_span_id = 1

    # -- sampling -------------------------------------------------------
    def sampled(self, tick: int) -> bool:
        """Pure, seeded per-tick sampling decision."""
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        return sample_draw(self.seed, tick) < self.sample

    @property
    def active(self) -> bool:
        """True while a trace is open (between start_trace and its end)."""
        return bool(self._stack)

    @property
    def dropped_traces(self) -> int:
        return self.finished_traces - len(self._traces)

    # -- span lifecycle -------------------------------------------------
    def start_trace(self, tick: int, name: str, **attrs) -> Span:
        """Open a new root span (finishing any trace left open)."""
        if self._stack:  # a crashed consumer left a trace open
            self._finish_trace()
        self.started_traces += 1
        root = Span(self._next_span_id, None, self.started_traces, name,
                    tick, attrs)
        self._next_span_id += 1
        self._stack = [root]
        self._open = [root]
        return root

    def start(self, name: str, tick: int, **attrs) -> Span | None:
        """Open a child of the current span; None when no trace is
        active (the unsampled fast path for nested instrumentation)."""
        if not self._stack:
            return None
        parent = self._stack[-1]
        span = Span(self._next_span_id, parent.span_id, parent.trace_id,
                    name, tick, attrs)
        self._next_span_id += 1
        self._stack.append(span)
        self._open.append(span)
        return span

    def end(self, span: Span | None, tick: int, status: str = "ok",
            **attrs) -> None:
        """Close ``span`` (no-op for None); closing the root finishes
        the trace.  Unclosed descendants are closed implicitly."""
        if span is None or not self._stack:
            return
        span.end_tick = tick
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            # descendant left open: inherit the closing tick
            top.end_tick = tick
            if top.status == "open":
                top.status = "ok"
        if not self._stack:
            self._finish_trace()

    def event(self, name: str, tick: int, **attrs) -> None:
        """Attach a tick-stamped event to the current span (if any)."""
        if self._stack:
            self._stack[-1].add_event(name, tick, **attrs)

    def _finish_trace(self) -> None:
        self.finished_traces += 1
        self._traces.append(self._open)
        self._stack = []
        self._open = []

    def record_single(self, name: str, start_tick: int, end_tick: int,
                      status: str = "ok", **attrs) -> None:
        """Append a finished one-span trace without touching the stack.

        Thread-safe under the GIL (one deque append), which is what the
        multi-threaded protocol server needs for per-command spans.
        """
        self.started_traces += 1
        span = Span(self._next_span_id, None, self.started_traces, name,
                    start_tick, attrs)
        self._next_span_id += 1
        span.end_tick = end_tick
        span.status = status
        self.finished_traces += 1
        self._traces.append([span])

    # -- access ---------------------------------------------------------
    def traces(self) -> list[list[Span]]:
        """Finished traces, oldest first (each a list of spans,
        root first)."""
        return list(self._traces)

    def trace_dicts(self) -> list[list[dict]]:
        """JSON-able form of every retained trace."""
        return [[s.as_dict() for s in spans] for spans in self._traces]

    def find_traces(self, predicate) -> list[list[Span]]:
        """Traces for which ``predicate(spans) `` is truthy."""
        return [spans for spans in self._traces if predicate(spans)]


def span_children(spans: list[dict] | list[Span]) -> dict:
    """``parent span_id -> [child, ...]`` adjacency for one trace."""
    as_dicts = [s.as_dict() if isinstance(s, Span) else s for s in spans]
    children: dict = {}
    for s in as_dicts:
        children.setdefault(s["parent_id"], []).append(s)
    return children


def format_waterfall(spans: list[dict] | list[Span]) -> str:
    """Render one trace as an indented text waterfall.

    Each line: tick range, bar offset proportional to the root span,
    name, status, and the span's events — the quick-look form of the
    HTML report's waterfall.
    """
    as_dicts = [s.as_dict() if isinstance(s, Span) else s for s in spans]
    if not as_dicts:
        return "(empty trace)"
    children = span_children(as_dicts)
    roots = children.get(None, [])
    lines: list[str] = []

    def emit(span: dict, depth: int) -> None:
        events = " ".join(
            f"[{e['name']}@{e['tick']}]" for e in span["events"])
        attrs = " ".join(f"{k}={v!r}" for k, v in span["attrs"].items())
        lines.append(
            f"{'  ' * depth}{span['name']} "
            f"ticks={span['start_tick']}..{span['end_tick']} "
            f"status={span['status']}"
            + (f" {attrs}" if attrs else "")
            + (f" {events}" if events else ""))
        for child in children.get(span["span_id"], []):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)
