"""Multi-core experiment execution.

A full figure sweep is (policies × cache sizes) independent replays of
the same trace — embarrassingly parallel.  This module fans the runs
out over a process pool; results are identical to the serial runner
(each worker builds its own cache/policy and replays deterministically),
so the parallel path is a drop-in for the sweep functions in
:mod:`repro.sim.experiment`.

Traces are NumPy-columnar and pickle efficiently; on POSIX the fork
start method shares the trace pages copy-on-write so even multi-GB
traces fan out cheaply.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

from repro._util import fmt_bytes
from repro.sim.experiment import ComparisonResult, ExperimentSpec
from repro.sim.simulator import SimulationResult, simulate
from repro.traces.record import Trace


def _run_one(trace: Trace, spec: ExperimentSpec,
             policy: str) -> SimulationResult:
    """Worker body: one policy replay (module-level for picklability)."""
    cache = spec.build_cache(policy)
    return simulate(trace, cache, hit_time=spec.hit_time,
                    window_gets=spec.window_gets,
                    fill_on_miss=spec.fill_on_miss)


def default_workers() -> int:
    """Leave one core for the parent; at least one worker."""
    return max(1, (os.cpu_count() or 2) - 1)


def run_comparison_parallel(trace: Trace, spec: ExperimentSpec,
                            policies: list[str],
                            max_workers: int | None = None
                            ) -> ComparisonResult:
    """Parallel equivalent of :func:`repro.sim.experiment.run_comparison`.

    Oracle policies are not supported here: they need the trace inside
    the policy constructor, which ``spec.policy_kwargs`` can still carry,
    but the duplicated trace per worker makes it wasteful — run those
    serially.
    """
    workers = max_workers or default_workers()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {name: pool.submit(_run_one, trace, spec, name)
                   for name in policies}
        results = {name: fut.result() for name, fut in futures.items()}
    return ComparisonResult(spec, results)


def sweep_parallel(trace: Trace, base_spec: ExperimentSpec,
                   policies: list[str], cache_sizes: list[int],
                   max_workers: int | None = None
                   ) -> dict[int, ComparisonResult]:
    """Parallel equivalent of :func:`sweep_cache_sizes`: all
    (policy, size) pairs run concurrently."""
    workers = max_workers or default_workers()
    specs = {size: replace(base_spec, cache_bytes=size,
                           name=f"{base_spec.name}@{fmt_bytes(size)}")
             for size in cache_sizes}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {(size, name): pool.submit(_run_one, trace, specs[size], name)
                   for size in cache_sizes for name in policies}
        gathered = {key: fut.result() for key, fut in futures.items()}
    return {size: ComparisonResult(
                specs[size],
                {name: gathered[(size, name)] for name in policies})
            for size in cache_sizes}
