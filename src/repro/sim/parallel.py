"""Parallel experiment engine: fan a (spec × policy) grid over cores.

Every evaluation figure is "replay one trace under several (policy,
cache size) combinations" — embarrassingly parallel.  :func:`run_grid`
is the one engine under all of them:

* the task list is the cross product of ``specs`` × ``policies`` in
  declaration order, and the merged result is keyed in that order no
  matter which worker finishes first (deterministic merges);
* ``jobs=1`` replays serially in-process — the exact code path the old
  serial runner used, so results are bit-identical to the seed;
* ``jobs>1`` ships the trace's columnar NumPy arrays to the pool once
  through POSIX shared memory (:class:`repro.traces.record.SharedTrace`)
  instead of pickling them per task, then runs tasks on a
  ``multiprocessing`` pool;
* a :class:`~repro.traces.compile.CompiledTrace` needs no shared-memory
  copy at all: it pickles by path, every worker mmaps the same files
  (one physical copy in the page cache), and each cell replays through
  the simulator's streaming window iterator in bounded memory;
* a task that raises (or a worker that dies) is recorded as a
  :class:`GridFailure` on the merged result — the rest of the sweep
  still completes and is returned.

Oracle policies carry the trace inside ``spec.policy_kwargs``; that
payload is pickled per task and defeats the shared-memory transport,
so run those grids with ``jobs=1``.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import (BrokenProcessPool,
                                        ProcessPoolExecutor)
from dataclasses import dataclass, field, replace
from time import perf_counter

from repro._util import fmt_bytes
from repro.sim.experiment import ComparisonResult, ExperimentSpec
from repro.sim.simulator import SimulationResult, simulate
from repro.traces.record import (SharedTrace, Trace, TraceDescriptor,
                                 attach_shared_trace, disable_shm_tracking)


@dataclass(frozen=True)
class GridTask:
    """One cell of the experiment grid."""

    index: int
    spec: ExperimentSpec
    policy: str

    @property
    def key(self) -> tuple[str, str]:
        return (self.spec.name, self.policy)


@dataclass(frozen=True)
class GridFailure:
    """A task that did not produce a result (the sweep survives it)."""

    spec_name: str
    policy: str
    error: str
    traceback: str = ""

    def __str__(self) -> str:
        return f"({self.spec_name}, {self.policy}): {self.error}"


@dataclass
class GridResult:
    """Deterministically merged output of one :func:`run_grid` call.

    ``results`` and ``failures`` are keyed by ``(spec.name, policy)``
    in task-declaration order, independent of completion order.
    """

    tasks: list[GridTask]
    results: dict[tuple[str, str], SimulationResult]
    failures: dict[tuple[str, str], GridFailure] = field(default_factory=dict)
    jobs: int = 1
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_failures(self) -> None:
        """Escalate recorded failures for callers that need all cells."""
        if self.failures:
            lines = "; ".join(str(f) for f in self.failures.values())
            raise RuntimeError(f"{len(self.failures)} grid task(s) failed: "
                               f"{lines}")

    def comparison(self, spec: ExperimentSpec) -> ComparisonResult:
        """The one-spec view the serial API returned (completed cells)."""
        return ComparisonResult(spec, {
            t.policy: self.results[t.key] for t in self.tasks
            if t.spec.name == spec.name and t.key in self.results})

    def comparisons(self) -> dict[str, ComparisonResult]:
        """Per-spec comparison views, keyed by spec name in grid order."""
        specs: dict[str, ExperimentSpec] = {}
        for t in self.tasks:
            specs.setdefault(t.spec.name, t.spec)
        return {name: self.comparison(spec) for name, spec in specs.items()}


def default_jobs() -> int:
    """Leave one core for the parent; at least one worker."""
    return max(1, (os.cpu_count() or 2) - 1)


#: backward-compatible alias (pre-run_grid name).
default_workers = default_jobs


def _run_one(trace, spec: ExperimentSpec,
             policy: str) -> SimulationResult:
    """One grid cell — the exact replay the serial runner performs.

    ``trace`` is any :func:`repro.sim.simulator.simulate` source (an
    in-memory trace, or a streaming compiled trace).
    """
    cache = spec.build_cache(policy)
    return simulate(trace, cache, hit_time=spec.hit_time,
                    window_gets=spec.window_gets,
                    fill_on_miss=spec.fill_on_miss)


# -- worker-side state -------------------------------------------------------
# One attach per worker process: the initializer rebuilds the trace from
# the shared-memory descriptor (or adopts a directly shipped trace —
# a path-pickled CompiledTrace, or a whole Trace when shared memory is
# unavailable) and tasks reference it by global.
_worker_trace = None


def _worker_init(payload) -> None:
    global _worker_trace
    if isinstance(payload, TraceDescriptor):
        disable_shm_tracking()
        _worker_trace = attach_shared_trace(payload)
    else:
        # A CompiledTrace arrives here freshly re-opened by unpickling
        # (mmap views, no data copied); a plain Trace is the pickled
        # fallback transport for odd hosts without /dev/shm.
        _worker_trace = payload


def _worker_run(spec: ExperimentSpec, policy: str) -> SimulationResult:
    assert _worker_trace is not None, "worker used before initialization"
    return _run_one(_worker_trace, spec, policy)


def _build_tasks(specs: list[ExperimentSpec],
                 policies: list[str]) -> list[GridTask]:
    tasks = [GridTask(i * len(policies) + j, spec, policy)
             for i, spec in enumerate(specs)
             for j, policy in enumerate(policies)]
    seen: set[tuple[str, str]] = set()
    for t in tasks:
        if t.key in seen:
            raise ValueError(f"duplicate grid cell {t.key}; "
                             "spec names must be unique")
        seen.add(t.key)
    return tasks


def run_grid(trace, specs: list[ExperimentSpec],
             policies: list[str], jobs: int | None = 1,
             progress=None) -> GridResult:
    """Replay ``trace`` under every (spec, policy) combination.

    Args:
        trace: the workload to replay (shared across all cells) — a
            :class:`Trace`, or a
            :class:`~repro.traces.compile.CompiledTrace` whose cells
            stream windows from the mmap (no shared-memory copy, no
            whole-trace materialization in any process).
        specs: experiment definitions; ``spec.name`` must be unique.
        policies: policy names, instantiated fresh per cell.
        jobs: worker processes; ``1`` (default) runs serially in-process
            and is bit-identical to the pre-parallel runner, ``None``
            means :func:`default_jobs`.
        progress: optional callback ``progress(task, result, failure)``
            invoked once per finished cell (exactly one of result /
            failure is not None).  Called in completion order.

    Returns:
        a :class:`GridResult`; failed cells are recorded in
        ``.failures`` instead of aborting the remaining grid.
    """
    tasks = _build_tasks(list(specs), list(policies))
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    jobs = min(jobs, max(1, len(tasks)))
    started = perf_counter()

    gathered: dict[tuple[str, str], SimulationResult] = {}
    failures: dict[tuple[str, str], GridFailure] = {}

    def finish(task: GridTask, result: SimulationResult | None,
               failure: GridFailure | None) -> None:
        if result is not None:
            gathered[task.key] = result
        else:
            failures[task.key] = failure
        if progress is not None:
            progress(task, result, failure)

    if jobs == 1:
        for task in tasks:
            try:
                finish(task, _run_one(trace, task.spec, task.policy), None)
            except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                finish(task, None, GridFailure(
                    task.spec.name, task.policy, repr(exc),
                    traceback.format_exc()))
    else:
        _run_grid_pool(trace, tasks, jobs, finish)

    # Deterministic merge: reorder by task declaration, not completion.
    results = {t.key: gathered[t.key] for t in tasks if t.key in gathered}
    failures = {t.key: failures[t.key] for t in tasks if t.key in failures}
    return GridResult(tasks=tasks, results=results, failures=failures,
                      jobs=jobs,
                      elapsed_seconds=perf_counter() - started)


def _run_grid_pool(trace, tasks: list[GridTask], jobs: int,
                   finish) -> None:
    """Fan tasks over a process pool; record per-task failures."""
    shared = None
    from repro.traces.compile import CompiledTrace
    if isinstance(trace, CompiledTrace):
        # Pickles by path; every worker mmaps the same column files.
        payload = trace
    else:
        try:
            shared = SharedTrace(trace)
            payload = shared.descriptor
        except Exception:  # pragma: no cover - no /dev/shm etc.
            payload = trace  # pickled once per worker, still not per task
    try:
        with ProcessPoolExecutor(max_workers=jobs,
                                 initializer=_worker_init,
                                 initargs=(payload,)) as pool:
            futures = {pool.submit(_worker_run, t.spec, t.policy): t
                       for t in tasks}
            _drain_futures(futures, finish)
    finally:
        if shared is not None:
            shared.close()


def _drain_futures(futures, finish) -> None:
    """Record every future in ``futures`` (a future → task mapping).

    Tasks finish in completion batches.  When a worker dies hard
    (``BrokenProcessPool``), every *other* future in the same completed
    batch is still recorded — successes included — before the
    still-pending cells are failed; a batch-mate's crash must not make
    a completed cell vanish from the merged grid.
    """
    pending = set(futures)
    while pending:
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        broken = None
        for fut in done:
            task = futures[fut]
            try:
                finish(task, fut.result(), None)
            except BrokenProcessPool as exc:
                broken = exc
                finish(task, None, GridFailure(
                    task.spec.name, task.policy, repr(exc)))
            except Exception as exc:  # noqa: BLE001
                finish(task, None, GridFailure(
                    task.spec.name, task.policy, repr(exc),
                    traceback.format_exc()))
        if broken is not None:
            # The pool is gone; fail the cells that never ran.
            for fut in pending:
                task = futures[fut]
                finish(task, None, GridFailure(
                    task.spec.name, task.policy, repr(broken)))
            return


# -- sweep-shaped conveniences ----------------------------------------------

def size_specs(base_spec: ExperimentSpec,
               cache_sizes: list[int]) -> list[ExperimentSpec]:
    """One spec per cache size, named ``<base>@<size>`` (Figs 5-8)."""
    return [replace(base_spec, cache_bytes=size,
                    name=f"{base_spec.name}@{fmt_bytes(size)}")
            for size in cache_sizes]


def run_comparison_parallel(trace: Trace, spec: ExperimentSpec,
                            policies: list[str],
                            max_workers: int | None = None
                            ) -> ComparisonResult:
    """Parallel one-spec comparison (thin :func:`run_grid` wrapper)."""
    grid = run_grid(trace, [spec], policies,
                    jobs=max_workers or default_jobs())
    grid.raise_failures()
    return grid.comparison(spec)


def sweep_parallel(trace: Trace, base_spec: ExperimentSpec,
                   policies: list[str], cache_sizes: list[int],
                   max_workers: int | None = None
                   ) -> dict[int, ComparisonResult]:
    """Parallel cache-size sweep: all (size, policy) cells concurrently."""
    specs = size_specs(base_spec, cache_sizes)
    grid = run_grid(trace, specs, policies,
                    jobs=max_workers or default_jobs())
    grid.raise_failures()
    return {size: grid.comparison(spec)
            for size, spec in zip(cache_sizes, specs)}
