"""Vectorized derive pass: per-window precomputation for the replay loop.

The scalar replay loop spends a large share of every GET recomputing
values that are pure functions of the trace row: the key's splitmix64
hash pair (twice per request for Bloom-tracked policies), the size
class of ``key_size + value_size`` (a memo-dict probe), and the penalty
bin (another memo probe).  This module computes all of them **per trace
window** as NumPy column operations, and the simulator threads the
derived columns into :meth:`repro.cache.cache.SlabCache.lookup_hashed`
/ :meth:`~repro.cache.cache.SlabCache.set_classed` so the innermost
loop does table lookups only.

Every array helper here agrees element-wise with its scalar reference
(``hash_key`` / ``class_for_size`` / ``PamaConfig.bin_for`` /
``shard_of``) — the property tests in ``tests/sim/test_derive.py`` pin
that, and the replay differential suite pins the end-to-end results
``==``-exact against the scalar loop.

Rows the vector pass cannot prove valid carry sentinels (class ``-1``
unknown/too-large, ``-2`` invalid sizes; bin ``-1`` NaN or negative
penalty) and re-dispatch to the scalar code so errors raise exactly
where the scalar replay would raise them.
"""

from __future__ import annotations

from itertools import repeat

import numpy as np

from repro.bloom.hashing import (hash_key_array, hash_pair_arrays,
                                 key_shard_array)
from repro.traces.record import Trace

__all__ = ["hash_key_array", "hash_pair_arrays", "key_shard_array",
           "class_index_array", "penalty_bin_array", "derived_rows",
           "derive_unsupported_reason"]


def class_index_array(key_sizes, value_sizes, size_classes):
    """Vectorized ``class_for_size(key_size + value_size)`` per row.

    Returns an int64 array of size-class indices with the lookup path's
    sentinel conventions:

    * ``-1`` — no class is accounted: ``key_size < 0`` ("miss details
      unknown") or the item exceeds the largest class (the scalar path
      catches ``ItemTooLargeError`` and proceeds with class ``-1``);
    * ``-2`` — invalid sizes (``key_size + value_size <= 0`` with a
      known key size): the consumer must call the scalar
      ``class_for_size`` so ``InvalidItemError`` raises as before.
    """
    slots = np.asarray(size_classes.slot_sizes, dtype=np.int64)
    ks = np.asarray(key_sizes).astype(np.int64, copy=False)
    item_size = ks + np.asarray(value_sizes).astype(np.int64, copy=False)
    total = item_size + size_classes.item_overhead
    idx = np.searchsorted(slots, total, side="left").astype(np.int64)
    idx[total > slots[-1]] = -1
    idx[item_size <= 0] = -2
    idx[ks < 0] = -1  # last: unknown-size rows never raise
    return idx


def penalty_bin_array(penalties, edges):
    """Vectorized static-edge penalty binning per row.

    ``edges`` is a policy's :meth:`~repro.policies.base.AllocationPolicy.bin_edges`
    result — ascending upper edges (``bisect_left`` then clamp to the
    last bin, the ``PamaConfig.bin_for`` contract) or an empty tuple
    for single-bin policies.  Rows whose penalty is NaN or negative get
    the sentinel ``-1``: the consumer re-dispatches those to the
    policy's ``bin_for`` (or the scalar ``set``) so invalid penalties
    keep raising exactly where they used to, while NaN misses keep the
    lookup path's "bin 0, no accounting" semantics.
    """
    p = np.asarray(penalties, dtype=np.float64)
    if len(edges):
        e = np.asarray(edges, dtype=np.float64)
        idx = np.searchsorted(e, p, side="left").astype(np.int64)
        np.minimum(idx, len(edges) - 1, out=idx)
    else:
        idx = np.zeros(len(p), dtype=np.int64)
    idx[~(p >= 0.0)] = -1  # NaN and negatives
    return idx


def _windows(source):
    """The bounded-window view of any replay source."""
    if isinstance(source, Trace):
        return (source,)
    if hasattr(source, "iter_windows"):
        return source.iter_windows()
    return iter(source)


def derived_rows(source, service, size_classes, edges, want_hashes):
    """Per-request scalars plus derived columns, one window at a time.

    Yields 10-tuples ``(op, key, key_size, value_size, penalty,
    miss_cost, h1, h2, class_idx, bin_idx)``.  The first six entries
    are exactly the scalar row stream; the last four are the derive
    pass.  ``want_hashes`` mirrors the cache's hash-once gate: policies
    that never probe filters get ``(0, 0)`` pairs (the scalar loop's
    behaviour) and skip the hashing work entirely.
    """
    for w in _windows(source):
        if want_hashes:
            a1, a2 = hash_pair_arrays(w.keys)
            h1, h2 = a1.tolist(), a2.tolist()
        else:
            h1 = h2 = repeat(0)
        cls = class_index_array(w.key_sizes, w.value_sizes,
                                size_classes).tolist()
        bins = penalty_bin_array(w.penalties, edges).tolist()
        yield from zip(w.ops.tolist(), w.keys.tolist(),
                       w.key_sizes.tolist(), w.value_sizes.tolist(),
                       w.penalties.tolist(), service.miss_array(w.penalties),
                       h1, h2, cls, bins)


def derive_unsupported_reason(cache, policy, *, faults=None, timeline=None,
                              hist=None, wants_tenants=False) -> str | None:
    """Why the derive pass cannot run this replay, or ``None`` if it can.

    The derive loop covers the plain replay: a :class:`SlabCache`-style
    cache exposing the precomputed entry points, a policy with static
    penalty binning, and none of the instrumented loop variants (fault
    injection, timelines, per-request histograms, tenant tagging) whose
    per-request side channels the scalar loops own.
    """
    if wants_tenants:
        return "tenant-tagged replay uses the scalar tenant loop"
    if faults is not None:
        return "fault injection uses the scalar fault-aware loop"
    if timeline is not None:
        return "timeline recording uses the scalar timeline loop"
    if hist is not None:
        return "per-request histograms use the scalar instrumented loop"
    if not (hasattr(cache, "lookup_hashed") and hasattr(cache, "set_classed")):
        return f"{type(cache).__name__} has no derived-column fast path"
    edges = getattr(policy, "bin_edges", lambda: None)()
    if edges is None:
        return (f"policy {policy.name!r} bins penalties dynamically "
                f"(bin_edges() is None)")
    return None
