"""Windowed metrics: the per-window series every evaluation figure plots.

The paper reports hit ratio and average service time "in each time
window (1 million GET requests)" plus per-class slab allocations over
time.  :class:`MetricsCollector` closes a window every ``window_gets``
GETs and snapshots whatever the caller registers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class WindowStats:
    """One closed metrics window."""

    index: int
    gets: int
    hits: int
    penalty_sum: float
    service_sum: float
    #: slab count per size class at window close.
    class_slabs: dict[int, int] = field(default_factory=dict)
    #: slab count per (class, bin) queue at window close.
    queue_slabs: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def misses(self) -> int:
        return self.gets - self.hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.gets if self.gets else 0.0

    @property
    def avg_service_time(self) -> float:
        return self.service_sum / self.gets if self.gets else 0.0


class MetricsCollector:
    """Accumulates GET outcomes and closes windows on a GET counter."""

    def __init__(self, window_gets: int = 100_000,
                 snapshot_fn=None) -> None:
        if window_gets <= 0:
            raise ValueError("window_gets must be positive")
        self.window_gets = window_gets
        self.snapshot_fn = snapshot_fn
        self.windows: list[WindowStats] = []
        self._gets = 0
        self._hits = 0
        self._penalty = 0.0
        self._service = 0.0
        # totals across the whole run
        self.total_gets = 0
        self.total_hits = 0
        self.total_penalty = 0.0
        self.total_service = 0.0

    def record_hit(self, service_time: float) -> None:
        self._gets += 1
        self._hits += 1
        self._service += service_time
        self.total_gets += 1
        self.total_hits += 1
        self.total_service += service_time
        if self._gets >= self.window_gets:
            self._close_window()

    def record_miss(self, penalty: float) -> None:
        self._gets += 1
        self._penalty += penalty
        self._service += penalty
        self.total_gets += 1
        self.total_penalty += penalty
        self.total_service += penalty
        if self._gets >= self.window_gets:
            self._close_window()

    def _close_window(self) -> None:
        stats = WindowStats(index=len(self.windows), gets=self._gets,
                            hits=self._hits, penalty_sum=self._penalty,
                            service_sum=self._service)
        if self.snapshot_fn is not None:
            class_slabs, queue_slabs = self.snapshot_fn()
            stats.class_slabs = class_slabs
            stats.queue_slabs = queue_slabs
        self.windows.append(stats)
        self._gets = self._hits = 0
        self._penalty = self._service = 0.0

    def flush(self) -> None:
        """Close a final partial window, if it has any GETs."""
        if self._gets:
            self._close_window()

    @classmethod
    def merge(cls, parts: list["MetricsCollector"]) -> "MetricsCollector":
        """Merge flushed per-shard collectors into one, window-aligned.

        Window ``i`` of the merged collector sums window ``i`` of every
        part that closed one (shards drain at different rates, so the
        tail windows may draw from fewer parts).  Integer counters add;
        float sums combine with :func:`math.fsum`, whose exactly-rounded
        result is independent of shard order — merging ``[a, b]`` and
        ``[b, a]`` is bit-identical, and merging a single part is the
        identity (the ``shards=1`` exactness contract of
        :func:`repro.sim.sharded.run_sharded`).  Slab-snapshot dicts sum
        per key over sorted keys, so per-shard allocations aggregate the
        way :meth:`repro.server.shard.ShardSet.stats_snapshot` sums
        per-shard cache stats.

        Parts must be flushed; a part mid-window would silently lose its
        open counts.  The merged collector is a read-only view (its
        ``snapshot_fn`` is ``None``); ``window_gets`` is the parts' sum,
        approximating the unsharded window the per-shard thresholds were
        derived from.
        """
        if not parts:
            raise ValueError("merge needs at least one collector")
        for part in parts:
            if part._gets:
                raise ValueError("merge requires flushed collectors "
                                 "(found an open window)")
        merged = cls(window_gets=sum(p.window_gets for p in parts))
        merged.total_gets = sum(p.total_gets for p in parts)
        merged.total_hits = sum(p.total_hits for p in parts)
        merged.total_penalty = math.fsum(p.total_penalty for p in parts)
        merged.total_service = math.fsum(p.total_service for p in parts)
        for index in range(max(len(p.windows) for p in parts)):
            rows = [p.windows[index] for p in parts
                    if index < len(p.windows)]
            stats = WindowStats(
                index=index,
                gets=sum(w.gets for w in rows),
                hits=sum(w.hits for w in rows),
                penalty_sum=math.fsum(w.penalty_sum for w in rows),
                service_sum=math.fsum(w.service_sum for w in rows))
            stats.class_slabs = _sum_dicts(w.class_slabs for w in rows)
            stats.queue_slabs = _sum_dicts(w.queue_slabs for w in rows)
            merged.windows.append(stats)
        return merged

    # -- aggregate views ---------------------------------------------------
    @property
    def overall_hit_ratio(self) -> float:
        return self.total_hits / self.total_gets if self.total_gets else 0.0

    @property
    def overall_avg_service_time(self) -> float:
        return self.total_service / self.total_gets if self.total_gets else 0.0

    def hit_ratio_series(self) -> list[float]:
        return [w.hit_ratio for w in self.windows]

    def service_time_series(self) -> list[float]:
        return [w.avg_service_time for w in self.windows]


def _sum_dicts(dicts) -> dict:
    """Key-wise sum over mappings, keys emitted in sorted order."""
    totals: dict = {}
    for d in dicts:
        for key, value in d.items():
            totals[key] = totals.get(key, 0) + value
    return {key: totals[key] for key in sorted(totals)}
