"""Key-sharded single-replay engine: one trace, N parallel shards.

:func:`run_sharded` partitions **one** replay across worker processes
by splitmix64 key shard (:func:`repro.bloom.hashing.key_shard_array`,
the same routing function the async server's :class:`ShardSet` uses):
each worker streams only its shard's rows out of the trace windows into
a private :class:`~repro.cache.cache.SlabCache` holding
``cache_bytes / shards``, and the per-shard metrics merge
deterministically via :meth:`~repro.sim.metrics.MetricsCollector.merge`
(window-aligned, order-independent).

Exactness contract: ``shards=1`` replays in-process through the very
same :class:`~repro.sim.simulator.Simulator` path as
:meth:`Simulator.run` and routes the result through the one-part merge,
so it is ``==``-identical to the unsharded run (the differential tests
pin results, window series, and cache-stat counters).

``shards > 1`` is an *approximation* — the documented one the async
server already makes: hash partitioning replaces one big LRU with N
independent ones, so an item can be evicted from its shard while the
global cache would have kept it, and per-window hit ratios can differ
from the unsharded replay.  What is preserved: every key deterministically
maps to one shard (fixed seed, so fixed-shard-count runs are exactly
reproducible, regardless of worker scheduling), capacity totals match,
and the merged window series sums the same GET outcomes the per-shard
caches produced.  A simulated shard sees exactly the keys the
equivalent server shard would — which is the point: the sharded replay
predicts the sharded server.
"""

from __future__ import annotations

import os
from concurrent.futures.process import ProcessPoolExecutor
from dataclasses import replace
from time import perf_counter

from repro.bloom.hashing import key_shard_array
from repro.policies import make_policy
from repro.sim.experiment import ExperimentSpec
from repro.sim.metrics import MetricsCollector, _sum_dicts
from repro.sim.service import ServiceTimeModel
from repro.sim.simulator import SimulationResult, Simulator
from repro.traces.record import SharedTrace, Trace

__all__ = ["run_sharded", "shard_windows"]


def _iter_windows(source):
    """The bounded-window view of any replay source (same as derive's)."""
    if isinstance(source, Trace):
        return (source,)
    if hasattr(source, "iter_windows"):
        return source.iter_windows()
    return iter(source)


def shard_windows(source, shard: int, nshards: int):
    """Yield ``source``'s windows restricted to one key shard.

    Every row — GETs, SETs, DELETEs alike — routes by
    ``key_shard(key, nshards)``, so a shard's sub-trace is exactly the
    request stream the matching server shard would see.  ``nshards <= 1``
    yields the windows unchanged (no masking cost on the exact path).
    """
    for w in _iter_windows(source):
        if nshards <= 1:
            yield w
            continue
        mask = key_shard_array(w.keys, nshards) == shard
        yield Trace(w.ops[mask], w.keys[mask], w.key_sizes[mask],
                    w.value_sizes[mask], w.penalties[mask],
                    w.timestamps[mask], None, w.tenants[mask])


def _replay_shard(trace, spec: ExperimentSpec, policy: str, shard: int,
                  nshards: int, derive: bool | None):
    """Replay one shard's rows; return picklable pieces for the merge.

    The per-shard window threshold is ``window_gets / nshards`` so that
    merged window ``i`` covers roughly the same stretch of the request
    stream as the unsharded window ``i`` (each shard drains ~1/N of the
    GETs).
    """
    cache = spec.build_cache(policy)
    window_gets = max(1, spec.window_gets // nshards)
    sim = Simulator(cache, ServiceTimeModel(hit_time=spec.hit_time),
                    window_gets=window_gets,
                    fill_on_miss=spec.fill_on_miss)
    result = sim.run(shard_windows(trace, shard, nshards), derive=derive)
    collector = sim.metrics
    collector.snapshot_fn = None  # the cache-bound closure won't pickle
    return (collector, result.cache_stats, result.final_class_slabs,
            result.final_queue_slabs)


def _worker_replay(spec: ExperimentSpec, policy: str, shard: int,
                   nshards: int, derive: bool | None):
    """Pool task: replay one shard against the worker's attached trace."""
    from repro.sim import parallel

    assert parallel._worker_trace is not None, \
        "worker used before initialization"
    return _replay_shard(parallel._worker_trace, spec, policy, shard,
                         nshards, derive)


def _merge_cache_stats(parts: list[dict]) -> dict[str, float]:
    """Cross-shard :class:`CacheStats` totals, ratios recomputed.

    Mirrors :meth:`repro.server.shard.ShardSet.stats_snapshot`: counters
    add, ``hit_ratio`` is re-derived from the summed counters.  Merging
    a single part is the identity.
    """
    import math

    merged = {key: sum(p[key] for p in parts)
              for key in parts[0] if key not in ("hit_ratio",
                                                 "total_miss_penalty")}
    merged["total_miss_penalty"] = math.fsum(p["total_miss_penalty"]
                                             for p in parts)
    merged["hit_ratio"] = (merged["hits"] / merged["gets"]
                           if merged["gets"] else 0.0)
    return merged


def run_sharded(trace, spec: ExperimentSpec, policy: str, *,
                shards: int = 1, jobs: int | None = None,
                derive: bool | None = None) -> SimulationResult:
    """Replay ``trace`` once, partitioned over ``shards`` key shards.

    Args:
        trace: any :meth:`Simulator.run` source — an in-memory
            :class:`Trace` (shipped to workers once via shared memory)
            or a :class:`~repro.traces.compile.CompiledTrace` (pickled
            by path; every worker streams windows from the same mmap).
        spec: the experiment; ``spec.cache_bytes`` is the *total*
            capacity, split evenly across shards exactly like the async
            server's :class:`~repro.server.shard.ShardSet`.
        policy: policy name, instantiated fresh per shard (one policy
            per cache is a SlabCache invariant).
        shards: key-partition count.  ``1`` (default) is the exact
            in-process replay; ``> 1`` is the documented sharded
            approximation.
        jobs: worker processes; ``None`` sizes to
            ``min(shards, cpu_count)``.  A resolved ``1`` replays the
            shards serially in-process (same results — shard replays
            are independent, so scheduling cannot change them).
        derive: forwarded to :meth:`Simulator.run` per shard (``None``
            auto-selects the vectorized derive pass).

    Returns:
        a merged :class:`SimulationResult`.  Service-time quantiles are
        only populated on the ``shards=1`` path (per-request histograms
        belong to the scalar instrumented loop); ``elapsed_seconds`` is
        the wall clock of the whole sharded run.

    Raises:
        ValueError: for tenant-arbitrated policies with ``shards > 1``
            (the sharded loop does not tag tenants), or when the
            per-shard capacity drops below one slab.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    started = perf_counter()

    if shards == 1:
        cache = spec.build_cache(policy)
        sim = Simulator(cache, ServiceTimeModel(hit_time=spec.hit_time),
                        window_gets=spec.window_gets,
                        fill_on_miss=spec.fill_on_miss)
        result = sim.run(trace, derive=derive)
        merged = MetricsCollector.merge([sim.metrics])
        return replace(
            result,
            windows=merged.windows,
            hit_ratio=merged.overall_hit_ratio,
            avg_service_time=merged.overall_avg_service_time,
            total_gets=merged.total_gets,
            elapsed_seconds=perf_counter() - started)

    probe = make_policy(policy, **spec.policy_kwargs.get(policy, {}))
    if getattr(probe, "wants_tenants", False):
        raise ValueError(
            f"policy {policy!r} arbitrates between tenants; the sharded "
            "replay does not tag requests by tenant — run it unsharded")
    per_shard = spec.cache_bytes // shards
    if per_shard < spec.slab_size:
        raise ValueError(
            f"{spec.cache_bytes} bytes over {shards} shards leaves "
            f"{per_shard} per shard — below one {spec.slab_size}-byte slab")
    shard_spec = replace(spec, cache_bytes=per_shard)

    jobs = (max(1, min(shards, os.cpu_count() or 1))
            if jobs is None else max(1, int(jobs)))
    if jobs == 1:
        parts = [_replay_shard(trace, shard_spec, policy, shard, shards,
                               derive)
                 for shard in range(shards)]
    else:
        parts = _run_shard_pool(trace, shard_spec, policy, shards,
                                min(jobs, shards), derive)

    collectors = [p[0] for p in parts]
    merged = MetricsCollector.merge(collectors)
    return SimulationResult(
        policy=policy,
        windows=merged.windows,
        hit_ratio=merged.overall_hit_ratio,
        avg_service_time=merged.overall_avg_service_time,
        total_gets=merged.total_gets,
        cache_stats=_merge_cache_stats([p[1] for p in parts]),
        elapsed_seconds=perf_counter() - started,
        final_class_slabs=_sum_dicts(p[2] for p in parts),
        final_queue_slabs=_sum_dicts(p[3] for p in parts),
    )


def _run_shard_pool(trace, shard_spec: ExperimentSpec, policy: str,
                    shards: int, jobs: int, derive: bool | None):
    """Fan the shard replays over a process pool, in shard order.

    Reuses the grid engine's one-attach-per-worker transport
    (:func:`repro.sim.parallel._worker_init`): a CompiledTrace pickles
    by path, an in-memory trace ships once through POSIX shared memory,
    and the plain-pickle fallback covers hosts without ``/dev/shm``.
    """
    from repro.sim.parallel import _worker_init
    from repro.traces.compile import CompiledTrace

    shared = None
    if isinstance(trace, CompiledTrace):
        payload = trace
    else:
        try:
            shared = SharedTrace(trace)
            payload = shared.descriptor
        except Exception:  # pragma: no cover - no /dev/shm etc.
            payload = trace
    try:
        with ProcessPoolExecutor(max_workers=jobs,
                                 initializer=_worker_init,
                                 initargs=(payload,)) as pool:
            futures = [pool.submit(_worker_replay, shard_spec, policy,
                                   shard, shards, derive)
                       for shard in range(shards)]
            # Collect in shard order: the merge is order-independent,
            # but deterministic part order keeps failure attribution
            # (which shard raised) stable too.
            return [f.result() for f in futures]
    finally:
        if shared is not None:
            shared.close()
