"""Service-time model for GET requests.

The paper's metric: a hit costs (approximately) the in-memory lookup; a
miss costs the item's penalty — retrieving or recomputing the value
from the back end.  We optionally add a size-proportional transfer term
to hits, which matters only for throughput-style studies; the default
matches the paper (constant hit time, penalty-dominated misses).
"""

from __future__ import annotations


class ServiceTimeModel:
    """Maps hits and misses to seconds of user-visible service time."""

    __slots__ = ("hit_time", "bandwidth")

    def __init__(self, hit_time: float = 1e-4,
                 bandwidth: float | None = None) -> None:
        if hit_time < 0:
            raise ValueError("hit_time must be >= 0")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive when given")
        self.hit_time = hit_time
        self.bandwidth = bandwidth

    def hit(self, size: int = 0) -> float:
        """Service time of a GET hit on an item of ``size`` bytes."""
        if self.bandwidth is not None:
            return self.hit_time + size / self.bandwidth
        return self.hit_time

    def miss(self, penalty: float) -> float:
        """Service time of a GET miss with the given penalty."""
        return penalty

    def miss_array(self, penalties) -> list[float]:
        """Vector form of :meth:`miss` over a whole trace column.

        The simulator precomputes every row's miss cost once, before the
        replay loop, instead of calling :meth:`miss` per request.  For
        the default model the cost *is* the penalty, so the column
        converts straight to plain floats (``tolist``) — bit-identical
        to the per-request path.  Subclasses that override :meth:`miss`
        are mapped element-wise and need no further changes.
        """
        values = (penalties.tolist() if hasattr(penalties, "tolist")
                  else list(penalties))
        if type(self).miss is ServiceTimeModel.miss:
            return values
        return [self.miss(p) for p in values]
