"""Trace-driven simulation: replay a trace against a policy-driven cache.

The replay follows the paper's methodology: GETs probe the cache; a
miss costs the item's penalty and is immediately followed by a SET
re-installing the item (fill-on-miss); SET/DELETE trace records are
applied directly.  Hit ratio and average service time are collected per
window of GETs, with per-class and per-queue slab snapshots at each
window close (the Figs 3/4 series).

Replay sources: an in-memory :class:`~repro.traces.record.Trace`
(columns convert to flat lists once — the PR-4 hot path), or any
*streaming* source — a :class:`~repro.traces.compile.CompiledTrace` or
an iterable of bounded :class:`Trace` windows — whose rows feed the
same loops window-by-window, so a 100M-op compiled trace replays with
resident memory bounded by the window, and results identical to the
whole-trace replay.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs as _obs
from repro.cache.cache import SlabCache
from repro.sim.derive import derive_unsupported_reason, derived_rows
from repro.sim.metrics import MetricsCollector, WindowStats
from repro.sim.service import ServiceTimeModel
from repro.traces.record import Trace


def _windowed_rows(source, service):
    """Rows from a streaming source, one bounded window at a time.

    Each window's columns convert to plain lists (the same per-row
    scalars the whole-trace path produces), get consumed, and are freed
    before the next window — peak memory is one window, and per-window
    ``miss_array`` is element-wise so results are bit-identical.
    """
    windows = (source.iter_windows() if hasattr(source, "iter_windows")
               else iter(source))
    for w in windows:
        yield from zip(w.ops.tolist(), w.keys.tolist(),
                       w.key_sizes.tolist(), w.value_sizes.tolist(),
                       w.penalties.tolist(),
                       service.miss_array(w.penalties))


def _trace_rows(trace, service):
    """The replay row stream for any trace source run() accepts."""
    if isinstance(trace, Trace):
        # Whole-trace fast path: one tolist per column, a single zip.
        return zip(trace.ops.tolist(), trace.keys.tolist(),
                   trace.key_sizes.tolist(), trace.value_sizes.tolist(),
                   trace.penalties.tolist(),
                   service.miss_array(trace.penalties))
    return _windowed_rows(trace, service)


def _windowed_rows_tenants(source, service):
    """Tenant-tagged rows from a streaming source (7th column)."""
    windows = (source.iter_windows() if hasattr(source, "iter_windows")
               else iter(source))
    for w in windows:
        yield from zip(w.ops.tolist(), w.keys.tolist(),
                       w.key_sizes.tolist(), w.value_sizes.tolist(),
                       w.penalties.tolist(),
                       service.miss_array(w.penalties),
                       w.tenants.tolist())


def _trace_rows_tenants(trace, service):
    """Row stream with the tenant id as a 7th per-row scalar."""
    if isinstance(trace, Trace):
        return zip(trace.ops.tolist(), trace.keys.tolist(),
                   trace.key_sizes.tolist(), trace.value_sizes.tolist(),
                   trace.penalties.tolist(),
                   service.miss_array(trace.penalties),
                   trace.tenants.tolist())
    return _windowed_rows_tenants(trace, service)


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    policy: str
    windows: list[WindowStats]
    hit_ratio: float
    avg_service_time: float
    total_gets: int
    cache_stats: dict[str, float]
    elapsed_seconds: float
    #: final slab allocation per size class
    final_class_slabs: dict[int, int] = field(default_factory=dict)
    #: final slab allocation per queue (class, bin)
    final_queue_slabs: dict[tuple[int, int], int] = field(default_factory=dict)
    #: service-time tail estimates ("p50"/"p90"/"p99"/"p999", seconds),
    #: populated only when an obs registry was active for the run.
    service_quantiles: dict[str, float] = field(default_factory=dict)
    #: same split by outcome (hit service times / miss penalties).
    hit_quantiles: dict[str, float] = field(default_factory=dict)
    miss_quantiles: dict[str, float] = field(default_factory=dict)
    #: per-tenant outcome summaries, populated only by the tenant-tagged
    #: replay loop (a policy with ``wants_tenants``): tenant id ->
    #: {name, gets, hits, hit_ratio, service_sum, avg_service_time,
    #:  penalty_sum, sla_weight, slabs, quantiles}.
    tenant_metrics: dict[int, dict] = field(default_factory=dict)

    def total_weighted_service_time(self) -> float:
        """Sum over tenants of ``sla_weight * service_sum`` (the
        multi-tenant objective the scenarios compare on)."""
        return sum(m["sla_weight"] * m["service_sum"]
                   for m in self.tenant_metrics.values())

    def hit_ratio_series(self) -> list[float]:
        return [w.hit_ratio for w in self.windows]

    def service_time_series(self) -> list[float]:
        return [w.avg_service_time for w in self.windows]

    def class_slab_series(self, class_idx: int) -> list[int]:
        """Per-window slab count of one size class (a Fig 3 line)."""
        return [w.class_slabs.get(class_idx, 0) for w in self.windows]

    def queue_slab_series(self, class_idx: int, bin_idx: int) -> list[int]:
        """Per-window slab count of one subclass (a Fig 4 line)."""
        return [w.queue_slabs.get((class_idx, bin_idx), 0)
                for w in self.windows]


class Simulator:
    """Replays traces against a cache.

    Args:
        cache: the cache under test (policy already attached).
        service_model: hit/miss cost model.
        window_gets: GETs per metrics window (paper: 1M; scale down with
            the trace).
        fill_on_miss: re-install missed items via SET, per the paper's
            "a GET request miss immediately follows ... a SET request".
    """

    def __init__(self, cache: SlabCache,
                 service_model: ServiceTimeModel | None = None,
                 window_gets: int = 100_000, fill_on_miss: bool = True,
                 obs=None, faults=None, timeline=None,
                 tracing=None) -> None:
        self.cache = cache
        self.service_model = service_model or ServiceTimeModel()
        self.fill_on_miss = fill_on_miss
        self.window_gets = window_gets
        #: optional obs registry for per-request histograms; falls back
        #: to the module-level registry when observability is enabled.
        self.obs = obs
        #: optional :class:`~repro.faults.injector.FaultInjector` —
        #: selects the fault-aware replay loop (backend spikes/errors,
        #: routed-op latency, graceful degradation).  Share the same
        #: injector with the cache when it is a fault-aware cluster.
        self.faults = faults
        #: optional :class:`~repro.obs.timeline.TimelineRecorder` —
        #: selects a timeline-aware replay loop; the disabled hot loops
        #: are untouched (PR-4 throughput contract).
        self.timeline = timeline
        #: optional :class:`~repro.obs.spans.SpanTracer` — sampled
        #: requests in the fault-aware loop open a root "request" span;
        #: a fault-aware cluster sharing the tracer nests under it.
        self.tracing = tracing
        # Rebuilt at the top of every run(); kept as an attribute so a
        # run's collector stays inspectable after it returns.
        self.metrics = MetricsCollector(window_gets, self._snapshot)

    def _snapshot(self):
        return (self.cache.class_slab_distribution(),
                self.cache.slab_distribution())

    def run(self, trace, derive: bool | None = None) -> SimulationResult:
        """Replay a trace source to completion and return the result.

        ``trace`` is a :class:`Trace`, a
        :class:`~repro.traces.compile.CompiledTrace`, or an iterable of
        bounded :class:`Trace` windows; streaming sources replay with
        memory bounded by the window and results identical to the
        whole-trace replay.

        ``derive`` selects the vectorized derive pass
        (:mod:`repro.sim.derive`): ``None`` (default) uses it when the
        replay qualifies *and* the policy hashes keys per request
        (Bloom-tracked policies — the configs where hoisting the hash
        pair out of the loop pays for the pass; for hash-free policies
        the scalar loop computes class/bin only on misses, so deriving
        every row costs more than it saves), ``True`` requires it for
        any supported replay (raises ``ValueError`` with the reason
        when it cannot run), ``False`` forces the scalar loops.
        Results are ``==``-identical either way — the derive pass only
        precomputes what the scalar loop would compute per request.

        Each run gets a fresh :class:`MetricsCollector`: reusing the
        one from a previous run would carry its windows and totals into
        the new result and skew repeat-pass experiments (Fig 7 style).
        """
        cache = self.cache
        metrics = self.metrics = MetricsCollector(self.window_gets,
                                                  self._snapshot)
        service = self.service_model
        timeline = self.timeline
        if timeline is not None:
            attach = getattr(cache, "attach_timeline", None)
            if attach is not None:
                attach(timeline)
            else:
                # Re-bind unconditionally: a recorder reused across
                # simulators must snapshot *this* run's cache, not the
                # first cache it ever met.
                timeline.snapshot_fn = self._snapshot
        fill = self.fill_on_miss
        cache_set = cache.set
        record_hit = metrics.record_hit
        record_miss = metrics.record_miss
        # Per-request service-time histograms, only when observability
        # is on: the disabled path costs one ``is not None`` per GET.
        registry = self.obs if self.obs is not None else _obs.get_registry()
        hist = hist_hit = hist_miss = None
        if registry is not None:
            # Labelled by policy so back-to-back runs against one shared
            # registry (e.g. a serial comparison) keep separate tails.
            policy = cache.policy.name
            hist = registry.histogram(
                "sim_service_time_seconds",
                "per-request GET service time", lo=1e-6, growth=1.25,
                policy=policy)
            hist_hit = registry.histogram(
                "sim_hit_time_seconds",
                "per-request service time of GET hits",
                lo=1e-6, growth=1.25, policy=policy)
            hist_miss = registry.histogram(
                "sim_miss_penalty_seconds",
                "per-request penalty of GET misses", lo=1e-6, growth=1.25,
                policy=policy)

        # Row iteration is columnar: each column converts to a plain
        # Python list once, the per-row miss cost is precomputed from
        # the penalties column (identity for the default model, so
        # bit-identical to calling service.miss per request), and the
        # loops below unpack scalars straight out of one zip — no
        # per-request tuple building, no per-miss method call.
        started = time.perf_counter()

        # Loop bodies selected once: the tenant-tagged replay when the
        # policy arbitrates between tenants, the fault-aware replay
        # when an injector is attached, the timeline-aware replay when
        # only a recorder is, otherwise the obs-disabled replay runs
        # the hot loop with zero per-request instrumentation cost
        # (split again on whether the hit cost is a hoistable constant).
        tenant_metrics: dict[int, dict] = {}
        wants_tenants = bool(getattr(cache.policy, "wants_tenants", False))
        if wants_tenants and self.faults is not None:
            raise ValueError(
                "fault injection and tenant arbitration are not combinable "
                "yet: the fault-aware loop does not tag requests by tenant")
        # The derive pass replaces the scalar row stream with one that
        # carries precomputed hash pairs / size classes / penalty bins
        # (repro.sim.derive); ==-identical results, vectorized setup.
        reason = derive_unsupported_reason(
            cache, cache.policy, faults=self.faults, timeline=timeline,
            hist=hist, wants_tenants=wants_tenants)
        if derive is True and reason is not None:
            raise ValueError(f"derive pass unavailable: {reason}")
        use_derive = (derive is True
                      or (derive is None and reason is None
                          and cache._wants_hashes))
        rows = (derived_rows(trace, service, cache.size_classes,
                             cache.policy.bin_edges(), cache._wants_hashes)
                if use_derive
                else _trace_rows_tenants(trace, service) if wants_tenants
                else _trace_rows(trace, service))
        cache_lookup = cache.lookup
        cache_delete = cache.delete
        if use_derive:
            self._replay_derived(rows, metrics, service)
        elif wants_tenants:
            tenant_metrics = self._replay_tenants(
                rows, metrics, service, hist, hist_hit, hist_miss,
                timeline, registry)
        elif self.faults is not None:
            self._replay_faulty(rows, metrics, service,
                                hist, hist_hit, hist_miss)
        elif timeline is not None:
            self._replay_timeline(rows, metrics, service,
                                  hist, hist_hit, hist_miss, timeline)
        elif hist is None:
            if service.bandwidth is None:
                hit_cost = service.hit_time
                for op, key, key_size, value_size, penalty, miss_cost in rows:
                    if op == 0:  # GET
                        if cache_lookup(key, key_size, value_size,
                                        penalty) is not None:
                            record_hit(hit_cost)
                        else:
                            record_miss(miss_cost)
                            if fill:
                                cache_set(key, key_size, value_size, penalty)
                    elif op == 1:  # SET
                        cache_set(key, key_size, value_size, penalty)
                    else:  # DELETE
                        cache_delete(key)
            else:
                service_hit = service.hit
                for op, key, key_size, value_size, penalty, miss_cost in rows:
                    if op == 0:  # GET
                        item = cache_lookup(key, key_size, value_size, penalty)
                        if item is not None:
                            record_hit(service_hit(item.total_size))
                        else:
                            record_miss(miss_cost)
                            if fill:
                                cache_set(key, key_size, value_size, penalty)
                    elif op == 1:  # SET
                        cache_set(key, key_size, value_size, penalty)
                    else:  # DELETE
                        cache_delete(key)
        else:
            for op, key, key_size, value_size, penalty, miss_cost in rows:
                if op == 0:  # GET
                    item = cache_lookup(key, key_size, value_size, penalty)
                    if item is not None:
                        cost = service.hit(item.total_size)
                        record_hit(cost)
                        hist.record(cost)
                        hist_hit.record(cost)
                    else:
                        record_miss(miss_cost)
                        hist.record(miss_cost)
                        hist_miss.record(miss_cost)
                        if fill:
                            cache_set(key, key_size, value_size, penalty)
                elif op == 1:  # SET
                    cache_set(key, key_size, value_size, penalty)
                else:  # DELETE
                    cache_delete(key)
        elapsed = time.perf_counter() - started
        metrics.flush()
        if timeline is not None:
            timeline.finish()

        return SimulationResult(
            policy=cache.policy.name,
            windows=list(metrics.windows),
            hit_ratio=metrics.overall_hit_ratio,
            avg_service_time=metrics.overall_avg_service_time,
            total_gets=metrics.total_gets,
            cache_stats=cache.stats.snapshot(),
            elapsed_seconds=elapsed,
            final_class_slabs=cache.class_slab_distribution(),
            final_queue_slabs=cache.slab_distribution(),
            service_quantiles=hist.quantiles() if hist is not None else {},
            hit_quantiles=(hist_hit.quantiles()
                           if hist_hit is not None else {}),
            miss_quantiles=(hist_miss.quantiles()
                            if hist_miss is not None else {}),
            tenant_metrics=tenant_metrics,
        )

    def _replay_derived(self, rows, metrics: MetricsCollector,
                        service: ServiceTimeModel) -> None:
        """The derived replay loop over 10-column rows.

        Dispatches every request through the precomputed entry points
        (:meth:`~repro.cache.cache.SlabCache.lookup_hashed` /
        :meth:`~repro.cache.cache.SlabCache.set_classed`); rows carrying
        a derive sentinel (unknown/invalid class, invalid penalty, or a
        negative value size a SET must reject) fall back to the scalar
        :meth:`~repro.cache.cache.SlabCache.set` so validation errors
        raise exactly as the scalar loop raises them.
        """
        cache = self.cache
        fill = self.fill_on_miss
        lookup_hashed = cache.lookup_hashed
        set_classed = cache.set_classed
        cache_set = cache.set
        cache_delete = cache.delete
        record_hit = metrics.record_hit
        record_miss = metrics.record_miss
        if service.bandwidth is None:
            hit_cost = service.hit_time
            for (op, key, key_size, value_size, penalty, miss_cost,
                 h1, h2, class_idx, bin_idx) in rows:
                if op == 0:  # GET
                    if lookup_hashed(key, key_size, value_size, penalty,
                                     h1, h2, class_idx, bin_idx) is not None:
                        record_hit(hit_cost)
                    else:
                        record_miss(miss_cost)
                        if fill:
                            if class_idx >= 0 and bin_idx >= 0 \
                                    and value_size >= 0:
                                set_classed(key, key_size, value_size,
                                            penalty, class_idx, bin_idx)
                            else:
                                cache_set(key, key_size, value_size, penalty)
                elif op == 1:  # SET
                    if class_idx >= 0 and bin_idx >= 0 and value_size >= 0:
                        set_classed(key, key_size, value_size, penalty,
                                    class_idx, bin_idx)
                    else:
                        cache_set(key, key_size, value_size, penalty)
                else:  # DELETE
                    cache_delete(key)
        else:
            service_hit = service.hit
            for (op, key, key_size, value_size, penalty, miss_cost,
                 h1, h2, class_idx, bin_idx) in rows:
                if op == 0:  # GET
                    item = lookup_hashed(key, key_size, value_size, penalty,
                                         h1, h2, class_idx, bin_idx)
                    if item is not None:
                        record_hit(service_hit(item.total_size))
                    else:
                        record_miss(miss_cost)
                        if fill:
                            if class_idx >= 0 and bin_idx >= 0 \
                                    and value_size >= 0:
                                set_classed(key, key_size, value_size,
                                            penalty, class_idx, bin_idx)
                            else:
                                cache_set(key, key_size, value_size, penalty)
                elif op == 1:  # SET
                    if class_idx >= 0 and bin_idx >= 0 and value_size >= 0:
                        set_classed(key, key_size, value_size, penalty,
                                    class_idx, bin_idx)
                    else:
                        cache_set(key, key_size, value_size, penalty)
                else:  # DELETE
                    cache_delete(key)

    def _replay_tenants(self, rows, metrics: MetricsCollector,
                        service: ServiceTimeModel, hist, hist_hit,
                        hist_miss, timeline, registry) -> dict[int, dict]:
        """Tenant-tagged replay: rows carry a 7th tenant-id scalar.

        Sets ``policy.current_tenant`` before every operation (the
        arbiter's bin/miss dispatch keys on it), accumulates per-tenant
        outcome totals, feeds the timeline's per-tenant window cells,
        and — when an obs registry is active — keeps one service-time
        histogram per tenant for tail quantiles.
        """
        cache = self.cache
        policy = cache.policy
        fill = self.fill_on_miss
        cache_lookup = cache.lookup
        cache_set = cache.set
        cache_delete = cache.delete
        record_hit = metrics.record_hit
        record_miss = metrics.record_miss
        service_hit = service.hit
        record_get = timeline.record_get if timeline is not None else None
        advance = timeline.advance if timeline is not None else None
        #: tenant -> [gets, hits, service_sum, penalty_sum]
        cells: dict[int, list] = {}
        tenant_hists: dict[int, object] = {}
        tick = -1
        for op, key, key_size, value_size, penalty, miss_cost, tenant in rows:
            tick += 1
            policy.current_tenant = tenant
            if op == 0:  # GET
                item = cache_lookup(key, key_size, value_size, penalty)
                if item is not None:
                    hit = True
                    cost = service_hit(item.total_size)
                    record_hit(cost)
                    if hist is not None:
                        hist.record(cost)
                        hist_hit.record(cost)
                else:
                    hit = False
                    cost = miss_cost
                    record_miss(cost)
                    if hist is not None:
                        hist.record(cost)
                        hist_miss.record(cost)
                    if fill:
                        cache_set(key, key_size, value_size, penalty)
                cell = cells.get(tenant)
                if cell is None:
                    cell = cells[tenant] = [0, 0, 0.0, 0.0]
                cell[0] += 1
                cell[1] += hit
                cell[2] += cost
                if not hit and penalty == penalty:
                    cell[3] += penalty
                if record_get is not None:
                    record_get(tick, hit, cost,
                               0.0 if hit else penalty, tenant)
                if registry is not None:
                    th = tenant_hists.get(tenant)
                    if th is None:
                        th = tenant_hists[tenant] = registry.histogram(
                            "sim_tenant_service_time_seconds",
                            "per-request GET service time by tenant",
                            lo=1e-6, growth=1.25, policy=policy.name,
                            tenant=str(tenant))
                    th.record(cost)
            elif op == 1:  # SET
                cache_set(key, key_size, value_size, penalty)
                if advance is not None:
                    advance(tick)
            else:  # DELETE
                cache_delete(key)
                if advance is not None:
                    advance(tick)

        configs = getattr(policy, "tenants", ())
        slabs = (policy.tenant_slabs()
                 if hasattr(policy, "tenant_slabs") else [])
        out: dict[int, dict] = {}
        for tenant in sorted(cells):
            gets, hits, service_sum, penalty_sum = cells[tenant]
            cfg = configs[tenant] if tenant < len(configs) else None
            th = tenant_hists.get(tenant)
            out[tenant] = {
                "name": cfg.name if cfg is not None else f"t{tenant}",
                "gets": gets,
                "hits": hits,
                "hit_ratio": hits / gets if gets else 0.0,
                "service_sum": service_sum,
                "avg_service_time": service_sum / gets if gets else 0.0,
                "penalty_sum": penalty_sum,
                "sla_weight": (cfg.sla_weight if cfg is not None else 1.0),
                "slabs": slabs[tenant] if tenant < len(slabs) else 0,
                "quantiles": th.quantiles() if th is not None else {},
            }
        return out

    def _replay_timeline(self, rows, metrics: MetricsCollector,
                         service: ServiceTimeModel, hist, hist_hit,
                         hist_miss, timeline) -> None:
        """Fault-free replay with a timeline recorder attached.

        One extra ``record_get``/``advance`` call per request relative
        to the plain loop; the request index is the access tick the
        windows key on.
        """
        cache = self.cache
        fill = self.fill_on_miss
        cache_lookup = cache.lookup
        cache_set = cache.set
        cache_delete = cache.delete
        record_hit = metrics.record_hit
        record_miss = metrics.record_miss
        record_get = timeline.record_get
        advance = timeline.advance
        tick = -1
        for op, key, key_size, value_size, penalty, miss_cost in rows:
            tick += 1
            if op == 0:  # GET
                item = cache_lookup(key, key_size, value_size, penalty)
                if item is not None:
                    cost = service.hit(item.total_size)
                    record_hit(cost)
                    record_get(tick, True, cost)
                    if hist is not None:
                        hist.record(cost)
                        hist_hit.record(cost)
                else:
                    record_miss(miss_cost)
                    record_get(tick, False, miss_cost, penalty)
                    if hist is not None:
                        hist.record(miss_cost)
                        hist_miss.record(miss_cost)
                    if fill:
                        cache_set(key, key_size, value_size, penalty)
            elif op == 1:  # SET
                cache_set(key, key_size, value_size, penalty)
                advance(tick)
            else:  # DELETE
                cache_delete(key)
                advance(tick)

    def _replay_faulty(self, rows, metrics: MetricsCollector,
                       service: ServiceTimeModel,
                       hist, hist_hit, hist_miss) -> None:
        """The fault-aware replay loop over pre-zipped columnar rows.

        Per request: advance the injector's tick, run the op (a
        fault-aware cluster accumulates routed-op latency on the
        injector), then fold that latency plus any backend fault cost
        into the request's service time.  A GET miss consults the plan's
        backend faults before filling: an error burst either degrades
        gracefully (serve-stale: cheap fallback answer, no fill) or
        charges the error penalty; a latency spike multiplies the miss
        penalty — the condition PAMA's penalty-weighted allocation is
        built for.
        """
        inj = self.faults
        plan = inj.plan
        cfg = inj.resilience
        cache = self.cache
        fill = self.fill_on_miss
        cache_lookup = cache.lookup
        cache_set = cache.set
        record_hit = metrics.record_hit
        record_miss = metrics.record_miss
        timeline = self.timeline
        tracer = self.tracing
        for op, key, key_size, value_size, penalty, miss_cost in rows:
            tick = inj.advance()
            root = None
            if tracer is not None and tracer.sampled(tick):
                root = tracer.start_trace(
                    tick, ("get", "set", "delete")[op], key=str(key))
            if op == 0:  # GET
                item = cache_lookup(key, key_size, value_size, penalty)
                extra = inj.consume_latency()
                if item is not None:
                    cost = service.hit(item.total_size) + extra
                    record_hit(cost)
                    if timeline is not None:
                        timeline.record_get(tick, True, cost)
                    if hist is not None:
                        hist.record(cost)
                        hist_hit.record(cost)
                else:
                    do_fill = fill
                    if plan.backend_error(tick):
                        # The backend refused the recompute: degrade.
                        inj.count("backend_error")
                        inj.event("backend_error", key=key)
                        do_fill = False
                        if cfg.serve_stale:
                            cost = extra + cfg.stale_serve_time
                            inj.count("stale_served")
                        else:
                            cost = extra + cfg.error_penalty
                            inj.count("backend_give_up")
                        inj.note_degraded(cost)
                    else:
                        mult = plan.backend_multiplier(tick)
                        if mult != 1.0:
                            inj.count("backend_spiked")
                        cost = extra + miss_cost * mult
                    record_miss(cost)
                    if timeline is not None:
                        timeline.record_get(tick, False, cost, penalty)
                    if hist is not None:
                        hist.record(cost)
                        hist_miss.record(cost)
                    if do_fill:
                        cache_set(key, key_size, value_size, penalty)
                        inj.consume_latency()  # fill is off the GET path
            elif op == 1:  # SET
                cache_set(key, key_size, value_size, penalty)
                inj.consume_latency()
                if timeline is not None:
                    timeline.advance(tick)
            else:  # DELETE
                cache.delete(key)
                inj.consume_latency()
                if timeline is not None:
                    timeline.advance(tick)
            if root is not None:
                tracer.end(root, tick)


def simulate(trace, cache: SlabCache, *,
             hit_time: float = 1e-4, window_gets: int = 100_000,
             fill_on_miss: bool = True, obs=None, faults=None,
             timeline=None, tracing=None,
             derive: bool | None = None) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`.

    ``trace`` accepts every :meth:`Simulator.run` source, including
    streaming :class:`~repro.traces.compile.CompiledTrace` replays;
    ``derive`` is forwarded to :meth:`Simulator.run`.
    """
    sim = Simulator(cache, ServiceTimeModel(hit_time=hit_time),
                    window_gets=window_gets, fill_on_miss=fill_on_miss,
                    obs=obs, faults=faults, timeline=timeline,
                    tracing=tracing)
    return sim.run(trace, derive=derive)
