"""Trace-driven simulation, metrics, experiments, and reporting."""

from repro.sim.derive import (class_index_array, derived_rows,
                              hash_key_array, hash_pair_arrays,
                              key_shard_array, penalty_bin_array)
from repro.sim.experiment import (ComparisonResult, ExperimentSpec,
                                  run_comparison, sweep_cache_sizes)
from repro.sim.metrics import MetricsCollector, WindowStats
from repro.sim.parallel import (GridFailure, GridResult, GridTask,
                                default_jobs, run_comparison_parallel,
                                run_grid, size_specs, sweep_parallel)
from repro.sim.report import (ascii_chart, comparison_summary, format_table,
                              series_csv)
from repro.sim.service import ServiceTimeModel
from repro.sim.sharded import run_sharded, shard_windows
from repro.sim.simulator import SimulationResult, Simulator, simulate

__all__ = [
    "Simulator", "SimulationResult", "simulate",
    "ServiceTimeModel",
    "MetricsCollector", "WindowStats",
    "ExperimentSpec", "ComparisonResult", "run_comparison",
    "sweep_cache_sizes", "run_comparison_parallel", "sweep_parallel",
    "run_grid", "GridTask", "GridResult", "GridFailure",
    "default_jobs", "size_specs",
    "run_sharded", "shard_windows",
    "class_index_array", "penalty_bin_array", "derived_rows",
    "hash_key_array", "hash_pair_arrays", "key_shard_array",
    "format_table", "series_csv", "ascii_chart", "comparison_summary",
]
