"""Experiment orchestration: policy comparisons and parameter sweeps.

Every evaluation figure is "run the same trace through several
(policy, cache size) combinations and compare a windowed series"; this
module owns that loop so benches and examples stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import fmt_bytes
from repro.cache.cache import SlabCache
from repro.cache.sizeclasses import SizeClassConfig
from repro.policies import make_policy
from repro.sim.simulator import SimulationResult
from repro.traces.record import Trace


@dataclass(frozen=True)
class ExperimentSpec:
    """A reproducible experiment definition.

    ``policy_kwargs`` maps policy name → constructor kwargs, so a spec
    can e.g. scale PSA's miss trigger or PAMA's window to the trace.
    """

    name: str
    cache_bytes: int
    slab_size: int = 64 * 1024
    base_size: int = 64
    growth: float = 2.0
    hit_time: float = 1e-4
    window_gets: int = 100_000
    fill_on_miss: bool = True
    policy_kwargs: dict = field(default_factory=dict)

    def build_cache(self, policy_name: str) -> SlabCache:
        """Construct a fresh cache + policy for one run."""
        classes = SizeClassConfig(slab_size=self.slab_size,
                                  base_size=self.base_size,
                                  growth=self.growth)
        kwargs = dict(self.policy_kwargs.get(policy_name, {}))
        policy = make_policy(policy_name, **kwargs)
        return SlabCache(self.cache_bytes, policy, classes)

    def describe(self) -> str:
        return (f"{self.name}: cache={fmt_bytes(self.cache_bytes)} "
                f"slab={fmt_bytes(self.slab_size)} window={self.window_gets}")


@dataclass
class ComparisonResult:
    """Results of one trace replayed under several policies."""

    spec: ExperimentSpec
    results: dict[str, SimulationResult]

    def ranking_by_service_time(self) -> list[tuple[str, float]]:
        """Policies sorted best (lowest service time) first."""
        return sorted(((n, r.avg_service_time) for n, r in self.results.items()),
                      key=lambda nr: nr[1])

    def ranking_by_hit_ratio(self) -> list[tuple[str, float]]:
        """Policies sorted best (highest hit ratio) first."""
        return sorted(((n, r.hit_ratio) for n, r in self.results.items()),
                      key=lambda nr: -nr[1])


def run_comparison(trace: Trace, spec: ExperimentSpec,
                   policies: list[str], verbose: bool = False,
                   progress=None, jobs: int | None = 1) -> ComparisonResult:
    """Replay ``trace`` once per policy under identical settings.

    A thin wrapper over :func:`repro.sim.parallel.run_grid` with a
    one-spec grid; ``jobs=1`` (the default) is the exact serial replay,
    ``jobs>1`` fans policies out over a worker pool.  Unlike the raw
    grid API, a failed replay raises here — comparisons need every
    policy's cell.
    """
    from repro.sim.parallel import run_grid  # deferred: import cycle

    def on_cell(task, result, failure):
        if result is None:
            return
        if progress is not None:
            progress(task.policy, result)
        if verbose:
            print(f"  {task.policy:>10s}: hit_ratio={result.hit_ratio:.3f} "
                  f"avg_service={result.avg_service_time * 1e3:.2f}ms "
                  f"({result.elapsed_seconds:.1f}s wall)")

    grid = run_grid(trace, [spec], policies, jobs=jobs, progress=on_cell)
    grid.raise_failures()
    return grid.comparison(spec)


def sweep_cache_sizes(trace: Trace, base_spec: ExperimentSpec,
                      policies: list[str], cache_sizes: list[int],
                      verbose: bool = False,
                      jobs: int | None = 1) -> dict[int, ComparisonResult]:
    """Run the comparison at several cache sizes (Figs 5-8 structure).

    The whole (size × policy) grid is one :func:`run_grid` call, so
    ``jobs>1`` parallelizes across both axes at once.
    """
    from repro.sim.parallel import run_grid, size_specs  # import cycle

    specs = size_specs(base_spec, cache_sizes)
    if verbose:
        for spec in specs:
            print(spec.describe())
    grid = run_grid(trace, specs, policies, jobs=jobs)
    grid.raise_failures()
    return {size: grid.comparison(spec)
            for size, spec in zip(cache_sizes, specs)}
