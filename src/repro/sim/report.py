"""Report rendering: tables, CSV series, and ASCII charts.

The environment has no plotting stack, so every figure is emitted as
(a) the raw CSV series the paper's plot would be drawn from and (b) an
ASCII chart for eyeballing trends in a terminal or log.
"""

from __future__ import annotations

import io
from typing import Mapping, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table with right-aligned numeric columns."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def series_csv(series: Mapping[str, Sequence[float]],
               index_name: str = "window") -> str:
    """Render named series as CSV with a shared integer index."""
    if not series:
        return index_name + "\n"
    names = list(series)
    length = max(len(s) for s in series.values())
    buf = io.StringIO()
    buf.write(",".join([index_name] + names) + "\n")
    for i in range(length):
        cells = [str(i)]
        for name in names:
            s = series[name]
            cells.append(f"{s[i]:.6g}" if i < len(s) else "")
        buf.write(",".join(cells) + "\n")
    return buf.getvalue()


def ascii_chart(series: Mapping[str, Sequence[float]], width: int = 72,
                height: int = 16, title: str = "",
                y_label: str = "") -> str:
    """Multi-series ASCII line chart (one letter per series)."""
    if not series:
        return "(no data)"
    marks = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    all_vals = [v for s in series.values() for v in s if v == v]
    if not all_vals:
        return "(no data)"
    lo, hi = min(all_vals), max(all_vals)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    max_len = max(len(s) for s in series.values())

    for si, (name, s) in enumerate(series.items()):
        mark = marks[si % len(marks)]
        for x in range(width):
            # map column to series position
            idx = int(x * (max_len - 1) / max(width - 1, 1)) if max_len > 1 else 0
            if idx >= len(s):
                continue
            v = s[idx]
            if v != v:
                continue
            y = int((v - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - y][x] = mark

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        label = ""
        if r == 0:
            label = f"{hi:.3g}"
        elif r == height - 1:
            label = f"{lo:.3g}"
        lines.append(f"{label:>10} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    legend = "   ".join(f"{marks[i % len(marks)]}={name}"
                        for i, name in enumerate(series))
    lines.append(" " * 12 + legend)
    if y_label:
        lines.append(" " * 12 + f"(y: {y_label})")
    return "\n".join(lines)


def comparison_summary(results: Mapping[str, object]) -> str:
    """Summary table for a dict of policy → SimulationResult.

    When any result carries service-time quantiles (runs made with an
    obs registry attached), a p99 column is appended so comparisons
    rank on tails, not just means.
    """
    with_tails = any(getattr(res, "service_quantiles", None)
                     for res in results.values())
    rows = []
    for name, res in results.items():
        row = [name, f"{res.hit_ratio:.4f}",
               f"{res.avg_service_time * 1e3:.3f}",
               res.cache_stats.get("evictions", 0),
               res.cache_stats.get("migrations", 0)]
        if with_tails:
            quantiles = getattr(res, "service_quantiles", None) or {}
            p99 = quantiles.get("p99")
            row.append(f"{p99 * 1e3:.3f}" if p99 is not None else "-")
        rows.append(row)
    headers = ["policy", "hit_ratio", "avg_service_ms", "evictions",
               "migrations"]
    if with_tails:
        headers.append("p99_ms")
    return format_table(headers, rows)


def tail_summary(results: Mapping[str, object]) -> str:
    """Tail service-time table (ms) for results carrying quantiles.

    Rows come from ``SimulationResult.service_quantiles``, which the
    simulator fills when an obs registry is active; results without
    quantiles are skipped (a note says so).
    """
    quantile_names = ("p50", "p90", "p99", "p999")
    rows, skipped = [], []
    for name, res in results.items():
        quantiles = getattr(res, "service_quantiles", None) or {}
        if not quantiles:
            skipped.append(name)
            continue
        rows.append([name] + [f"{quantiles[q] * 1e3:.3f}"
                              if q in quantiles else "-"
                              for q in quantile_names])
    if not rows:
        return ("(no tail data: run with an obs registry attached, e.g. "
                "repro.obs.enable())")
    table = format_table(["policy"] + [f"{q}_ms" for q in quantile_names],
                         rows)
    if skipped:
        table += "\n(no tail data for: " + ", ".join(skipped) + ")"
    return table
