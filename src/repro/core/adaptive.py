"""Adaptive penalty binning — a PAMA extension.

The paper fixes the five subclass ranges at (0,1ms] ... (1s,5s].  That
works for Facebook-like penalty spreads, but a workload whose penalties
cluster inside one range collapses every item into a single subclass
and PAMA degenerates to pre-PAMA-with-one-bin.  This extension learns
the bin edges from the observed penalty distribution: it samples
penalties (reservoir), and once warm, splits them at quantiles so the
subclasses stay balanced whatever the distribution looks like.

Re-binning applies to *new insertions only* — live items keep the queue
they were stored in (their ``bin_idx`` is recorded on the item), which
is exactly how Memcached handles class-geometry changes: lazily,
through natural churn.
"""

from __future__ import annotations

import random
from bisect import bisect_left

import numpy as np

from repro.core.config import PamaConfig
from repro.core.pama import PamaPolicy


class AdaptivePamaPolicy(PamaPolicy):
    """PAMA with quantile-learned subclass penalty edges.

    Args:
        config: base PAMA config (its fixed edges serve until warm-up
            completes, and define the number of bins).
        warmup_samples: penalties to observe before learning edges.
        reservoir_size: size of the penalty reservoir (uniform sample
            over everything seen so far).
        refresh_interval: re-learn edges every N observed penalties
            after warm-up (0 = learn once and freeze).
        seed: reservoir RNG seed.
    """

    name = "pama-adaptive"

    def __init__(self, config: PamaConfig | None = None,
                 warmup_samples: int = 20_000,
                 reservoir_size: int = 4_096,
                 refresh_interval: int = 0, seed: int = 0) -> None:
        super().__init__(config)
        if warmup_samples <= 0 or reservoir_size <= 0:
            raise ValueError("warmup_samples and reservoir_size must be positive")
        if refresh_interval < 0:
            raise ValueError("refresh_interval must be >= 0")
        self.warmup_samples = warmup_samples
        self.reservoir_size = reservoir_size
        self.refresh_interval = refresh_interval
        self._rng = random.Random(seed)
        self._reservoir: list[float] = []
        self._observed = 0
        #: learned ascending bin upper edges (None until warm)
        self.learned_edges: tuple[float, ...] | None = None
        self.relearn_count = 0

    # -- sampling ---------------------------------------------------------
    def observe_penalty(self, penalty: float) -> None:
        """Feed one penalty observation into the reservoir."""
        if not (penalty >= 0):  # NaN or negative: not a real observation
            return
        self._observed += 1
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(penalty)
        else:
            slot = self._rng.randrange(self._observed)
            if slot < self.reservoir_size:
                self._reservoir[slot] = penalty
        if self.learned_edges is None:
            if self._observed >= self.warmup_samples:
                self._learn()
        elif (self.refresh_interval
              and self._observed % self.refresh_interval == 0):
            self._learn()

    def _learn(self) -> None:
        """Set bin edges at the reservoir's quantiles."""
        if len(self._reservoir) < 2 * self.config.num_bins:
            return  # not enough signal yet
        num_bins = self.config.num_bins
        qs = [(i + 1) / num_bins for i in range(num_bins)]
        edges = np.quantile(np.asarray(self._reservoir), qs)
        # de-duplicate degenerate edges (heavily repeated penalties)
        uniq: list[float] = []
        for e in edges.tolist():
            if not uniq or e > uniq[-1]:
                uniq.append(e)
        self.learned_edges = tuple(uniq)
        self.relearn_count += 1

    # -- PAMA overrides -----------------------------------------------------
    def bin_for(self, penalty: float) -> int:
        if self.learned_edges is None:
            return self.config.bin_for(penalty)
        if penalty != penalty or penalty < 0:
            raise ValueError(f"invalid penalty {penalty}")
        idx = bisect_left(self.learned_edges, penalty)
        return min(idx, len(self.learned_edges) - 1)

    def bin_edges(self) -> tuple[float, ...] | None:
        # Binning re-learns mid-replay; precomputed bins would go stale.
        return None

    def on_insert(self, queue, item) -> None:
        self.observe_penalty(item.penalty)
        super().on_insert(queue, item)

    def on_miss(self, key: object, class_idx: int, penalty: float,
                h1: int = 0, h2: int = 0) -> None:
        self.observe_penalty(penalty)
        super().on_miss(key, class_idx, penalty, h1, h2)
