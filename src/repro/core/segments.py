"""Exact O(1) tracking of the bottom LRU-stack segments.

PAMA divides the bottom of each subclass's LRU stack into segments of
one slab's worth of items: S0 (the candidate slab, at the very bottom)
up to Sm (§III, Fig 2).  On every access PAMA must know which segment —
if any — the touched item sits in, to credit that segment's value.

The paper answers the membership question with Bloom filters
(:mod:`repro.core.bloom_tracker`).  This module provides the *exact*
alternative the simulator defaults to: one boundary pointer per segment
edge, shifted O(1) per list operation, so every item always carries its
current segment index in ``item.seg`` (-1 = above all tracked segments).

Distance convention: the LRU tail has bottom-distance 0; segment k
covers distances [k*seg_len, (k+1)*seg_len).  ``bounds[k]`` points at
the item with distance exactly ``k*seg_len`` (the lowest item of
segment k), or None when the stack is too short to reach it.
``bounds[num_segments]`` is a *virtual* boundary at the upper edge of
the tracked region: the first untracked item, which enters segment
``num_segments - 1`` whenever a removal happens beneath it.
"""

from __future__ import annotations

from repro.cache.item import Item
from repro.cache.lru import LRUList


class SegmentTracker:
    """LRU observer maintaining exact per-item segment indices."""

    __slots__ = ("lru", "seg_len", "num_segments", "bounds", "n")

    def __init__(self, lru: LRUList, seg_len: int, num_segments: int) -> None:
        if seg_len <= 0:
            raise ValueError(f"seg_len must be positive, got {seg_len}")
        if num_segments <= 0:
            raise ValueError(f"num_segments must be positive, got {num_segments}")
        if lru.observer is not None:
            raise ValueError("LRU list already has an observer")
        if len(lru) != 0:
            raise ValueError("SegmentTracker must attach to an empty list")
        self.lru = lru
        self.seg_len = seg_len
        self.num_segments = num_segments
        # bounds[k] for k < num_segments: lowest item of segment k;
        # bounds[num_segments]: first item above the tracked region.
        self.bounds: list[Item | None] = [None] * (num_segments + 1)
        self.n = 0
        lru.observer = self

    # -- queries ---------------------------------------------------------
    def segment_on_access(self, item: Item, h1: int = 0, h2: int = 0) -> int:
        """Segment the item occupies right now (-1 if above the region).

        Must be called *before* the LRU promotion that the access causes.
        The optional hash pair mirrors the Bloom tracker's interface and
        is ignored — exact tracking reads the index off the item.
        """
        return item.seg

    def rollover(self) -> None:
        """Window-boundary hook; the exact tracker has nothing to refresh."""

    # -- LRU observer ------------------------------------------------------
    def on_push_front(self, item: Item) -> None:
        d = self.n  # the new front item has the largest bottom-distance
        limit = self.num_segments * self.seg_len
        if d < limit:
            item.seg = d // self.seg_len
            if d % self.seg_len == 0:
                self.bounds[item.seg] = item
        else:
            item.seg = -1
            if d == limit:
                self.bounds[self.num_segments] = item
        self.n += 1

    def on_remove(self, item: Item) -> None:
        # Called with links intact (before the unlink).
        s = item.seg
        self.n -= 1
        bounds = self.bounds
        if s < 0:
            # Above the tracked region; only the virtual boundary can be
            # affected (when the removed item is exactly the first
            # untracked one).
            if bounds[self.num_segments] is item:
                bounds[self.num_segments] = item.prev
            return
        # Every boundary strictly above the removed item shifts one step
        # toward the front: its old node drops into the segment below.
        # The virtual boundary's node re-enters the tracked region.
        for k in range(s + 1, self.num_segments + 1):
            node = bounds[k]
            if node is None:
                break
            node.seg = k - 1
            bounds[k] = node.prev
        if bounds[s] is item:
            bounds[s] = item.prev
        item.seg = -1

    # -- verification -------------------------------------------------------
    def check_invariants(self) -> None:
        """Compare against a brute-force recomputation (tests only)."""
        assert self.n == len(self.lru), f"tracker n={self.n} vs lru={len(self.lru)}"
        expected_bounds: list[Item | None] = [None] * (self.num_segments + 1)
        d = 0
        node = self.lru.back
        limit = self.num_segments * self.seg_len
        while node is not None:
            want = d // self.seg_len if d < limit else -1
            assert node.seg == want, (
                f"item at distance {d}: seg={node.seg}, expected {want}")
            if d <= limit and d % self.seg_len == 0:
                expected_bounds[d // self.seg_len] = node
            node = node.prev
            d += 1
        assert self.bounds == expected_bounds, "boundary pointers drifted"
