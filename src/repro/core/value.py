"""Slab-value accounting (Eq. 1 and Eq. 2 of the paper).

Each subclass (queue) accumulates, per time window:

* ``out[i]`` — penalty mass of requests that hit live segment Si
  (Eq. 1: ``Vi = sum of Ti over requests landing in Si``), and
* ``inc[i]`` — penalty mass of misses that landed in ghost segment Gi.

The candidate slab's **outgoing value** and the subclass's **incoming
value** are the Eq. 2 weighted sums ``V = Σ Vi / 2^(i+1)``.

The paper defines the window in cache accesses but not what happens at
its boundary; we support the literal ``reset`` and a smoother ``decay``
(multiply by λ), the default, which keeps decisions meaningful right
after the boundary.  See DESIGN.md "Interpretation choices".
"""

from __future__ import annotations


class ValueAccumulator:
    """Per-queue segment value state."""

    __slots__ = ("weights", "out", "inc", "out_hits", "inc_hits")

    def __init__(self, num_segments: int) -> None:
        if num_segments <= 0:
            raise ValueError("num_segments must be positive")
        self.weights = [1.0 / (1 << (i + 1)) for i in range(num_segments)]
        self.out = [0.0] * num_segments
        self.inc = [0.0] * num_segments
        #: raw request counts per segment (pre-PAMA values / diagnostics).
        self.out_hits = [0] * num_segments
        self.inc_hits = [0] * num_segments

    def add_outgoing(self, segment: int, amount: float) -> None:
        """Credit a request on live segment ``segment`` (Eq. 1 term)."""
        self.out[segment] += amount
        self.out_hits[segment] += 1

    def add_incoming(self, segment: int, amount: float) -> None:
        """Credit a miss that fell in ghost segment ``segment``."""
        self.inc[segment] += amount
        self.inc_hits[segment] += 1

    def outgoing_value(self) -> float:
        """Eq. 2: penalty the subclass would suffer losing its bottom slab."""
        return sum(w * v for w, v in zip(self.weights, self.out))

    def incoming_value(self) -> float:
        """Eq. 2 over ghost segments: penalty a new slab would save."""
        return sum(w * v for w, v in zip(self.weights, self.inc))

    def rollover(self, mode: str, decay: float) -> None:
        """Apply the window-boundary rule."""
        if mode == "reset":
            n = len(self.out)
            self.out = [0.0] * n
            self.inc = [0.0] * n
            self.out_hits = [0] * n
            self.inc_hits = [0] * n
        elif mode == "decay":
            self.out = [v * decay for v in self.out]
            self.inc = [v * decay for v in self.inc]
            # Hit counts follow the same fade so pre-PAMA decays alike.
            # They stay floats: truncating to int would collapse a
            # count of 1 to 0 and zero out count-based segment values
            # after a few windows.
            self.out_hits = [v * decay for v in self.out_hits]
            self.inc_hits = [v * decay for v in self.inc_hits]
        else:
            raise ValueError(f"unknown window mode {mode!r}")
