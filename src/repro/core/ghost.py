"""Ghost list: PAMA's extension of the LRU stack below its bottom.

Paper §III (second challenge): "we extend the LRU stack beyond its
current bottom to remember recently replaced items.  ...  this extended
section only records keys and miss penalties of KV items, rather than
the items' value components."

The ghost is divided into segments of ``seg_len`` entries measured from
the ghost *top* (= the position right beneath the live stack bottom):
segment G0 is the **receiving segment** — the items a newly granted slab
would cache — and G1..Gm are the reference segments for Eq. 2's weighted
incoming value.

Entries are ordered by eviction recency: the most recently evicted item
sits at the ghost top.  Capacity is ``num_segments * seg_len``; pushing
past it drops the oldest (bottom) entry.

Segment tracking mirrors :class:`~repro.core.segments.SegmentTracker`
with the direction flipped (distances measured from the top, so a push
shifts *every* boundary instead of none).
"""

from __future__ import annotations

from typing import Iterator


class GhostEntry:
    """A remembered eviction: key + penalty only (no value payload)."""

    __slots__ = ("key", "penalty", "prev", "next", "seg")

    def __init__(self, key: object, penalty: float) -> None:
        self.key = key
        self.penalty = penalty
        self.prev: GhostEntry | None = None  # toward ghost top
        self.next: GhostEntry | None = None  # toward ghost bottom
        self.seg = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GhostEntry({self.key!r}, penalty={self.penalty:.4f}, seg={self.seg})"


class GhostList:
    """Bounded, segment-tracked list of recently evicted keys."""

    __slots__ = ("seg_len", "num_segments", "capacity", "head", "tail",
                 "index", "bounds", "n")

    def __init__(self, seg_len: int, num_segments: int) -> None:
        if seg_len <= 0:
            raise ValueError(f"seg_len must be positive, got {seg_len}")
        if num_segments <= 0:
            raise ValueError(f"num_segments must be positive, got {num_segments}")
        self.seg_len = seg_len
        self.num_segments = num_segments
        self.capacity = seg_len * num_segments
        self.head: GhostEntry | None = None  # top (most recent eviction)
        self.tail: GhostEntry | None = None  # bottom (oldest)
        self.index: dict[object, GhostEntry] = {}
        # bounds[k]: entry at top-distance exactly k*seg_len (the topmost
        # entry of segment k), or None when the ghost is shorter.
        self.bounds: list[GhostEntry | None] = [None] * num_segments
        self.n = 0

    # -- queries ---------------------------------------------------------
    def __contains__(self, key: object) -> bool:
        return key in self.index

    def __len__(self) -> int:
        return self.n

    def lookup(self, key: object) -> GhostEntry | None:
        return self.index.get(key)

    def segment_of(self, key: object) -> int:
        """Ghost segment of ``key`` (-1 if absent)."""
        entry = self.index.get(key)
        return entry.seg if entry is not None else -1

    def __iter__(self) -> Iterator[GhostEntry]:
        """Iterate top → bottom."""
        node = self.head
        while node is not None:
            nxt = node.next
            yield node
            node = nxt

    # -- mutations ----------------------------------------------------------
    def push(self, key: object, penalty: float) -> object | None:
        """Record an eviction at the ghost top.

        Returns the key dropped off the ghost bottom (capacity overflow)
        or None.  A key already present is refreshed (moved to top).
        """
        old = self.index.get(key)
        if old is not None:
            self._remove_entry(old)

        entry = GhostEntry(key, penalty)
        # Every existing entry's top-distance grows by one: each boundary
        # pointer moves one step toward the top.
        old_len = self.n
        bounds = self.bounds
        for k in range(self.num_segments - 1, 0, -1):
            p_k = k * self.seg_len
            node = bounds[k]
            if node is not None:
                newly = node.prev
            elif old_len == p_k:
                newly = self.tail
            else:
                newly = None
            if newly is not None:
                newly.seg = k
            bounds[k] = newly

        entry.next = self.head
        entry.prev = None
        if self.head is not None:
            self.head.prev = entry
        self.head = entry
        if self.tail is None:
            self.tail = entry
        entry.seg = 0
        bounds[0] = entry
        self.n += 1
        self.index[key] = entry

        if self.n > self.capacity:
            dropped = self.tail
            assert dropped is not None
            self._remove_entry(dropped)
            return dropped.key
        return None

    def remove(self, key: object) -> bool:
        """Forget ``key`` (it re-entered the cache). True if present."""
        entry = self.index.get(key)
        if entry is None:
            return False
        self._remove_entry(entry)
        return True

    def _remove_entry(self, entry: GhostEntry) -> None:
        s = entry.seg
        bounds = self.bounds
        # Entries beneath the removed one move up: boundaries strictly
        # below shift one step toward the bottom.
        for k in range(s + 1, self.num_segments):
            node = bounds[k]
            if node is None:
                break
            node.seg = k - 1
            bounds[k] = node.next
        if bounds[s] is entry:
            bounds[s] = entry.next if entry.next is not None else None
            # entry.next (old distance p_s+1) now has distance p_s; its
            # segment is unchanged unless seg_len == 1, which the loop
            # above already fixed.

        prev, nxt = entry.prev, entry.next
        if prev is not None:
            prev.next = nxt
        else:
            self.head = nxt
        if nxt is not None:
            nxt.prev = prev
        else:
            self.tail = prev
        entry.prev = entry.next = None
        self.n -= 1
        del self.index[entry.key]

    def clear(self) -> None:
        self.head = self.tail = None
        self.index.clear()
        self.bounds = [None] * self.num_segments
        self.n = 0

    # -- verification -------------------------------------------------------
    def check_invariants(self) -> None:
        assert self.n == len(self.index) <= self.capacity
        expected_bounds: list[GhostEntry | None] = [None] * self.num_segments
        d = 0
        node = self.head
        prev = None
        while node is not None:
            assert node.prev is prev
            want = d // self.seg_len
            assert want < self.num_segments, "entry beyond ghost capacity"
            assert node.seg == want, (
                f"ghost entry at distance {d}: seg={node.seg}, expected {want}")
            if d % self.seg_len == 0:
                expected_bounds[want] = node
            assert self.index.get(node.key) is node
            prev = node
            node = node.next
            d += 1
        assert d == self.n, f"walked {d} entries, n={self.n}"
        assert self.tail is prev
        assert self.bounds == expected_bounds, "ghost boundary pointers drifted"
