"""pre-PAMA: the penalty-blind ablation of PAMA (paper §IV).

"a hypothetical version [of] PAMA ... that does not consider the miss
penalty in the calculation of a segment's value.  That is, in pre-PAMA
a candidate slab's value is simply the number of requests in the
segment."

With count-based values, penalty subclasses would be meaningless, so
pre-PAMA runs one subclass per size class (a single penalty bin), which
also matches how Fig. 3(c) reports it — per class, not per subclass.
"""

from __future__ import annotations

from repro.core.config import PamaConfig
from repro.core.pama import PamaPolicy


class PrePamaPolicy(PamaPolicy):
    """PAMA minus the penalty term: request-count slab values."""

    name = "pre-pama"
    penalty_aware = False

    def __init__(self, config: PamaConfig | None = None) -> None:
        super().__init__(config)

    def bin_for(self, penalty: float) -> int:
        return 0

    def bin_edges(self) -> tuple[float, ...] | None:
        # Everything lands in bin 0 — the same "no edges" contract the
        # penalty-blind base policies use.
        if type(self).bin_for is PrePamaPolicy.bin_for:
            return ()
        return None
