"""PAMA — the Penalty Aware Memory Allocation policy (paper §III).

Items are routed to subclasses by (size class × penalty bin).  Each
subclass tracks the value of its bottom ("candidate") slab and of a
hypothetical extra slab (over the ghost list).  When a subclass needs a
slot and no free slab exists:

* find the minimum **outgoing value** over all subclasses' candidate
  slabs;
* if the requester's **incoming value** exceeds it, migrate that slab;
* if the cheapest candidate belongs to the requester itself, or the
  incoming value does not justify a migration, evict one item within
  the requester (no cross-subclass move).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.bloom_tracker import BloomSegmentTracker
from repro.core.config import PamaConfig
from repro.core.ghost import GhostList
from repro.core.segments import SegmentTracker
from repro.core.value import ValueAccumulator
from repro.policies.base import AllocationPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.item import Item
    from repro.cache.queue import Queue


class PamaQueueState:
    """Per-subclass machinery: segment tracker, ghost list, values."""

    __slots__ = ("tracker", "ghost", "values", "qid")

    def __init__(self, tracker, ghost: GhostList,
                 values: ValueAccumulator,
                 qid: tuple[int, int] = (-1, -1)) -> None:
        self.tracker = tracker
        self.ghost = ghost
        self.values = values
        self.qid = qid


class PamaPolicy(AllocationPolicy):
    """Penalty-aware slab allocation."""

    name = "pama"

    #: contribution of one request to a segment's value; PAMA uses the
    #: item's miss penalty, pre-PAMA overrides this with a count of 1.
    penalty_aware = True

    def __init__(self, config: PamaConfig | None = None) -> None:
        super().__init__()
        self.config = config or PamaConfig()
        # Bloom tracking probes filters on every hit; ask the cache to
        # compute the request key's hash pair once and thread it down.
        self.wants_key_hashes = self.config.tracker == "bloom"
        # Hoisted off the frozen dataclass: read on every single access.
        self._value_window = self.config.value_window
        #: penalty -> bin memo; traces draw from a handful of distinct
        #: penalties and binning runs on every GET miss and SET.
        self._bin_cache: dict[float, int] = {}
        #: key -> owning queue state, for O(1) ghost lookups on misses
        #: without knowing the missed item's size.
        self.ghost_owner: dict[object, PamaQueueState] = {}
        self._states: dict[tuple[int, int], PamaQueueState] = {}
        self._last_rollover = 0
        # decision statistics (reported by the ablation benches)
        self.migrations_approved = 0
        self.migrations_declined = 0
        self.migrations_forced = 0

    # -- binning -------------------------------------------------------
    def bin_for(self, penalty: float) -> int:
        b = self._bin_cache.get(penalty)
        if b is None:
            # Invalid penalties (NaN, negatives) raise here and are
            # never cached.
            b = self._bin_cache[penalty] = self.config.bin_for(penalty)
        return b

    def bin_edges(self) -> tuple[float, ...] | None:
        # Static config edges — but only while this exact memoized
        # bin_for is the one in effect; a subclass that re-bins
        # (adaptive edges) must fall back to the scalar path.
        if type(self).bin_for is PamaPolicy.bin_for:
            return self.config.penalty_edges
        return None

    # -- per-queue state --------------------------------------------------
    def on_queue_created(self, queue: Queue) -> None:
        cfg = self.config
        seg_len = queue.slots_per_slab
        if cfg.tracker == "bloom":
            tracker = BloomSegmentTracker(
                queue.lru, seg_len, cfg.num_segments,
                fp_rate=cfg.bloom_fp_rate,
                seed=queue.class_idx * 101 + queue.bin_idx)
        else:
            tracker = SegmentTracker(queue.lru, seg_len, cfg.num_segments)
        ghost = GhostList(seg_len, cfg.ghost_depth_segments)
        state = PamaQueueState(tracker, ghost,
                               ValueAccumulator(cfg.num_segments),
                               qid=queue.qid)
        queue.policy_data = state
        self._states[queue.qid] = state

    # -- value contribution ------------------------------------------------
    def _contribution(self, penalty: float) -> float:
        return penalty if self.penalty_aware else 1.0

    def _maybe_rollover(self) -> None:
        cfg = self.config
        if self.cache.accesses - self._last_rollover < self._value_window:
            return
        self._last_rollover = self.cache.accesses
        for state in self._states.values():
            state.values.rollover(cfg.window_mode, cfg.decay)
            state.tracker.rollover()
        events = self.cache.events
        if events is not None:
            events.record("window_rollover", self.cache.accesses,
                          window=cfg.value_window, queues=len(self._states))

    # -- event observation ----------------------------------------------
    def on_hit(self, queue: Queue, item: Item,
               h1: int = 0, h2: int = 0) -> None:
        # Inline the cheap side of _maybe_rollover: one subtraction per
        # hit instead of a method call.
        if self.cache.accesses - self._last_rollover >= self._value_window:
            self._maybe_rollover()
        state: PamaQueueState = queue.policy_data
        seg = state.tracker.segment_on_access(item, h1, h2)
        if seg >= 0:
            state.values.add_outgoing(
                seg, item.penalty if self.penalty_aware else 1.0)

    def on_miss(self, key: object, class_idx: int, penalty: float,
                h1: int = 0, h2: int = 0) -> None:
        self._maybe_rollover()
        state = self.ghost_owner.get(key)
        if state is None:
            return
        # ghost_owner and the per-queue ghosts are kept in lockstep by
        # on_evict/on_insert/on_remove (see check_ghost_sync, which the
        # property tests drive); an owner entry without a ghost entry
        # would silently drop incoming value, so fail loudly instead.
        entry = state.ghost.lookup(key)
        assert entry is not None, \
            f"ghost_owner has {key!r} but its ghost list does not"
        # Use the penalty remembered at eviction time — "PAMA uses actual
        # miss penalties associated with each slab".
        state.values.add_incoming(entry.seg, self._contribution(entry.penalty))
        timeline = self.cache.timeline
        if timeline is not None:
            timeline.note_ghost_hit()
        events = self.cache.events
        if events is not None:
            events.record("ghost_hit", self.cache.accesses, key=key,
                          queue=state.qid, seg=entry.seg,
                          penalty=entry.penalty)

    def on_insert(self, queue: Queue, item: Item) -> None:
        # The key is live again; it must leave the ghost or a future
        # eviction/miss would double count it.
        state = self.ghost_owner.pop(item.key, None)
        if state is not None:
            state.ghost.remove(item.key)

    def on_evict(self, queue: Queue, item: Item) -> None:
        state: PamaQueueState = queue.policy_data
        dropped = state.ghost.push(item.key, item.penalty)
        self.ghost_owner[item.key] = state
        if dropped is not None:
            self.ghost_owner.pop(dropped, None)

    def on_remove(self, queue: Queue, item: Item) -> None:
        # DELETE / replacement: the key leaves without becoming a ghost
        # (it was not evicted for space, so it predicts no saved miss).
        state = self.ghost_owner.pop(item.key, None)
        if state is not None:
            state.ghost.remove(item.key)

    # -- integrity -----------------------------------------------------
    def check_ghost_sync(self) -> None:
        """Audit the ghost_owner ↔ per-queue ghost list bijection.

        Invariant: ``ghost_owner`` maps exactly the union of all queue
        ghosts' keys, each to the state whose ghost holds it.  Driven by
        the Hypothesis property tests over random op sequences.
        """
        ghosted: dict[object, PamaQueueState] = {}
        for qid, state in self._states.items():
            state.ghost.check_invariants()
            for entry in state.ghost:
                assert entry.key not in ghosted, (
                    f"key {entry.key!r} in two ghosts")
                ghosted[entry.key] = state
        assert ghosted.keys() == self.ghost_owner.keys(), (
            f"ghost_owner drifted: {ghosted.keys() ^ self.ghost_owner.keys()}")
        for key, state in self.ghost_owner.items():
            assert ghosted[key] is state, \
                f"ghost_owner points {key!r} at the wrong queue state"

    # -- the allocation decision ----------------------------------------------
    def candidate_values(self) -> dict[tuple[int, int], float]:
        """Outgoing value of each subclass's candidate slab (diagnostics)."""
        return {qid: st.values.outgoing_value()
                for qid, st in self._states.items()}

    def resolve_pressure(self, queue: Queue, must_migrate: bool) -> Queue | None:
        self._maybe_rollover()
        state: PamaQueueState = queue.policy_data
        incoming = state.values.incoming_value()

        donor: Queue | None = None
        min_out = float("inf")
        for q in self.cache.iter_queues():
            if not q.can_donate():
                continue
            out = self._states[q.qid].values.outgoing_value()
            if out < min_out:
                donor, min_out = q, out
        if donor is None:
            return None  # nothing can donate; fallback machinery decides

        if donor is queue:
            # Scenario 2 (§III): the cheapest candidate slab is our own —
            # no cross-subclass migration, replace one item in place.
            self.migrations_declined += 1
            self._record_decision(queue, donor, incoming, min_out, "self")
            return queue
        if incoming <= min_out and not must_migrate:
            # Scenario 1: a migration would not improve utilization.
            self.migrations_declined += 1
            self._record_decision(queue, donor, incoming, min_out, "declined")
            return None
        if incoming <= min_out:
            self.migrations_forced += 1
            self._record_decision(queue, donor, incoming, min_out, "forced")
        else:
            self.migrations_approved += 1
            self._record_decision(queue, donor, incoming, min_out, "approved")
        return donor

    def _record_decision(self, queue: Queue, donor: Queue, incoming: float,
                         min_out: float, outcome: str) -> None:
        """Trace one migration decision with the values that drove it."""
        timeline = self.cache.timeline
        if timeline is not None:
            timeline.note_decision(incoming, min_out, outcome)
        events = self.cache.events
        if events is not None:
            events.record("pama_decision", self.cache.accesses,
                          requester=queue.qid, donor=donor.qid,
                          incoming=incoming, outgoing=min_out,
                          outcome=outcome)
