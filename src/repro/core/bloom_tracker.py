"""Bloom-filter based segment membership — the paper's §III mechanism.

"We propose to use Bloom filters to complete the testing in O(1) time
with small space overhead.  We use one Bloom filter for each reference
segment. ... we set up a Bloom filter, called a removal filter, to
track the items that have been recently removed out of the segments."

Filters are rebuilt from the live stack bottom once per rebuild
interval; between rebuilds, accesses are answered from the filters with
the removal filter masking items that were promoted out.  This is an
approximation (items drifting *into* segments between rebuilds are
invisible until the next rebuild), which is exactly the trade-off the
paper accepts; the exact tracker exists to quantify it (ablation bench).
"""

from __future__ import annotations

from repro.bloom import BloomFilter, RemovalFilter
from repro.cache.item import Item
from repro.cache.lru import LRUList


class BloomSegmentTracker:
    """Drop-in alternative to :class:`~repro.core.segments.SegmentTracker`."""

    __slots__ = ("lru", "seg_len", "num_segments", "filters", "removal",
                 "rebuilds", "queries", "false_region_hits")

    def __init__(self, lru: LRUList, seg_len: int, num_segments: int,
                 fp_rate: float = 0.01, seed: int = 0) -> None:
        if seg_len <= 0 or num_segments <= 0:
            raise ValueError("seg_len and num_segments must be positive")
        if lru.observer is not None:
            raise ValueError("LRU list already has an observer")
        self.lru = lru
        self.seg_len = seg_len
        self.num_segments = num_segments
        self.filters = [BloomFilter(max(seg_len, 8), fp_rate, seed=seed + k)
                        for k in range(num_segments)]
        self.removal = RemovalFilter(max(seg_len * num_segments, 8),
                                     fp_rate, seed=seed + 0x52454D)
        self.rebuilds = 0
        self.queries = 0
        self.false_region_hits = 0
        lru.observer = self

    # -- queries ---------------------------------------------------------
    def segment_on_access(self, item: Item) -> int:
        """Segment attributed to this access, or -1.

        Tests the per-segment filters bottom-up; a positive counts only
        if the removal filter does not mask it.  A matching item is then
        marked removed (its promotion pulls it out of the segment).
        """
        self.queries += 1
        key = item.key
        if self.removal.masks(key):
            return -1
        for k, filt in enumerate(self.filters):
            if key in filt:
                self.removal.mark_removed(key)
                return k
        return -1

    def rollover(self) -> None:
        """Window boundary: rebuild the segment filters from the stack."""
        self.rebuild()

    # -- LRU observer (structural changes handled lazily at rebuild) -------
    def on_push_front(self, item: Item) -> None:
        item.seg = -1  # the bloom tracker does not maintain item.seg

    def on_remove(self, item: Item) -> None:
        pass

    # -- maintenance ----------------------------------------------------------
    def rebuild(self) -> None:
        """Repopulate the per-segment filters by walking the stack bottom.

        Adding a key that collides with the removal filter clears the
        removal filter, per the paper: otherwise the fresh member would
        be wrongly masked.
        """
        for filt in self.filters:
            filt.clear()
        node = self.lru.back
        pos = 0
        limit = self.num_segments * self.seg_len
        while node is not None and pos < limit:
            seg = pos // self.seg_len
            self.removal.on_segment_add(node.key)
            self.filters[seg].add(node.key)
            node = node.prev
            pos += 1
        self.rebuilds += 1
