"""Bloom-filter based segment membership — the paper's §III mechanism.

"We propose to use Bloom filters to complete the testing in O(1) time
with small space overhead.  We use one Bloom filter for each reference
segment. ... we set up a Bloom filter, called a removal filter, to
track the items that have been recently removed out of the segments."

Filters are rebuilt from the live stack bottom once per rebuild
interval; between rebuilds, accesses are answered from the filters with
the removal filter masking items that were promoted out.  This is an
approximation (items drifting *into* segments between rebuilds are
invisible until the next rebuild), which is exactly the trade-off the
paper accepts; the exact tracker exists to quantify it (ablation bench).

Hot-path contract: every filter of a tracker probes with the *same*
request-level base pair ``(h1, h2)`` (see
:func:`~repro.bloom.hashing.hash_pair` with seed 0), computed once per
request by :class:`~repro.cache.cache.SlabCache` and threaded through
``PamaPolicy.on_hit`` → :meth:`segment_on_access`.  Sharing one pair
across filters is sound — each filter owns a separate bit array, so
per-filter hash independence buys nothing — and it is what lets a
request hash its key exactly once no matter how many segments exist.
"""

from __future__ import annotations

from repro.bloom import BloomFilter, RemovalFilter
from repro.bloom.hashing import PAIR_SEED_DELTA, hash_key
from repro.cache.item import Item
from repro.cache.lru import LRUList


class BloomSegmentTracker:
    """Drop-in alternative to :class:`~repro.core.segments.SegmentTracker`."""

    __slots__ = ("lru", "seg_len", "num_segments", "filters", "removal",
                 "rebuilds", "queries", "false_region_hits")

    def __init__(self, lru: LRUList, seg_len: int, num_segments: int,
                 fp_rate: float = 0.01, seed: int = 0) -> None:
        if seg_len <= 0 or num_segments <= 0:
            raise ValueError("seg_len and num_segments must be positive")
        if lru.observer is not None:
            raise ValueError("LRU list already has an observer")
        self.lru = lru
        self.seg_len = seg_len
        self.num_segments = num_segments
        # All filters hash with seed 0: probes use the request-level
        # hash pair the cache computes once, and the key-based filter
        # API must agree with it bit-for-bit.  (``seed`` is accepted for
        # backward compatibility but no longer selects a hash family.)
        self.filters = [BloomFilter(max(seg_len, 8), fp_rate, seed=0)
                        for _ in range(num_segments)]
        self.removal = RemovalFilter(max(seg_len * num_segments, 8),
                                     fp_rate, seed=0)
        self.rebuilds = 0
        self.queries = 0
        self.false_region_hits = 0
        lru.observer = self

    # -- queries ---------------------------------------------------------
    def segment_on_access(self, item: Item, h1: int = 0, h2: int = 0) -> int:
        """Segment attributed to this access, or -1.

        Tests the per-segment filters bottom-up; a positive counts only
        if the removal filter does not mask it.  A matching item is then
        marked removed (its promotion pulls it out of the segment).

        ``(h1, h2)`` is the request's base hash pair; a real ``h2`` is
        always odd, so ``h2 == 0`` means "not supplied" and the pair is
        derived from ``item.key`` here (the slow, standalone path).
        """
        self.queries += 1
        if h2 == 0:
            key = item.key
            h1 = hash_key(key, 0)
            h2 = hash_key(key, PAIR_SEED_DELTA) | 1
        removal = self.removal
        if removal.masks_hashes(h1, h2):
            return -1
        k = 0
        for filt in self.filters:
            if filt.contains_hashes(h1, h2):
                removal.mark_removed_hashes(h1, h2)
                return k
            k += 1
        return -1

    def rollover(self) -> None:
        """Window boundary: rebuild the segment filters from the stack."""
        self.rebuild()

    # -- LRU observer (structural changes handled lazily at rebuild) -------
    def on_push_front(self, item: Item) -> None:
        item.seg = -1  # the bloom tracker does not maintain item.seg

    def on_remove(self, item: Item) -> None:
        pass

    # -- maintenance ----------------------------------------------------------
    def rebuild(self) -> None:
        """Repopulate the per-segment filters by walking the stack bottom.

        Adding a key that collides with the removal filter clears the
        removal filter, per the paper: otherwise the fresh member would
        be wrongly masked.  Each key is hashed once; the same pair feeds
        the removal filter and the segment filter.
        """
        for filt in self.filters:
            filt.clear()
        node = self.lru.back
        seg_len = self.seg_len
        removal_add = self.removal.on_segment_add_hashes
        delta = PAIR_SEED_DELTA
        for filt in self.filters:
            if node is None:
                break
            filt_add = filt.add_hashes
            remaining = seg_len
            while remaining and node is not None:
                key = node.key
                h1 = hash_key(key, 0)
                h2 = hash_key(key, delta) | 1
                removal_add(h1, h2)
                filt_add(h1, h2)
                node = node.prev
                remaining -= 1
        self.rebuilds += 1
