"""PAMA configuration: penalty bins, reference segments, value windows."""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass


#: The paper's five subclass penalty ranges (§IV): (0,1ms], (1ms,10ms],
#: (10ms,100ms], (100ms,1s], (1s,5s].  Values above the last edge fall
#: in the last bin (the trace methodology caps penalties at 5s anyway).
DEFAULT_PENALTY_EDGES = (0.001, 0.01, 0.1, 1.0, 5.0)

#: Default penalty assumed when a trace gives none (paper: "we use a
#: default penalty value (100ms), which is roughly the observed mean").
DEFAULT_PENALTY = 0.1

#: Paper's cap on believable GET-miss -> SET gaps.
PENALTY_CAP = 5.0


@dataclass(frozen=True)
class PamaConfig:
    """Tunables of the PAMA scheme.

    Attributes:
        penalty_edges: ascending upper edges of the subclass penalty
            ranges; ``len(penalty_edges)`` bins are created per class.
        m: number of *additional* reference segments beyond the
            candidate/receiving segment (Eq. 2; paper default m=2, with
            the Fig 10 sensitivity sweep over 0/2/4/8).
        value_window: the time window, in cache accesses, over which
            segment values accumulate (§III: window time is "the number
            of accesses on the entire cache").
        window_mode: what happens to accumulated values at a window
            boundary — ``"decay"`` multiplies them by ``decay`` (default;
            avoids the degenerate all-zero state right after a reset),
            ``"reset"`` zeroes them (the literal reading of the paper).
        decay: multiplier applied in ``"decay"`` mode.
        tracker: ``"exact"`` for O(1) boundary-pointer segment tracking,
            ``"bloom"`` for the paper's Bloom-filter membership tests.
        bloom_fp_rate: false-positive target for ``"bloom"`` tracking.
        bloom_rebuild_interval: accesses between Bloom segment-filter
            rebuilds (defaults to ``value_window`` when None).
        ghost_segments: ghost-list depth in segments — the receiving
            segment plus ``m`` reference segments (set from ``m`` when
            None).
    """

    penalty_edges: tuple[float, ...] = DEFAULT_PENALTY_EDGES
    m: int = 2
    value_window: int = 100_000
    window_mode: str = "decay"
    decay: float = 0.5
    tracker: str = "exact"
    bloom_fp_rate: float = 0.01
    bloom_rebuild_interval: int | None = None
    ghost_segments: int | None = None

    def __post_init__(self) -> None:
        if not self.penalty_edges:
            raise ValueError("penalty_edges must not be empty")
        if list(self.penalty_edges) != sorted(self.penalty_edges):
            raise ValueError("penalty_edges must be ascending")
        if any(e <= 0 for e in self.penalty_edges):
            raise ValueError("penalty edges must be positive")
        if self.m < 0:
            raise ValueError(f"m must be >= 0, got {self.m}")
        if self.value_window <= 0:
            raise ValueError("value_window must be positive")
        if self.window_mode not in ("decay", "reset"):
            raise ValueError(f"unknown window_mode {self.window_mode!r}")
        if not 0.0 <= self.decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")
        if self.tracker not in ("exact", "bloom"):
            raise ValueError(f"unknown tracker {self.tracker!r}")
        if not 0.0 < self.bloom_fp_rate < 1.0:
            raise ValueError("bloom_fp_rate must be in (0, 1)")

    @property
    def num_bins(self) -> int:
        return len(self.penalty_edges)

    @property
    def num_segments(self) -> int:
        """Tracked bottom segments: candidate S0 plus m references."""
        return self.m + 1

    @property
    def ghost_depth_segments(self) -> int:
        """Ghost segments: receiving segment plus m references."""
        return self.ghost_segments if self.ghost_segments is not None else self.m + 1

    @property
    def rebuild_interval(self) -> int:
        return (self.bloom_rebuild_interval
                if self.bloom_rebuild_interval is not None
                else self.value_window)

    def bin_for(self, penalty: float) -> int:
        """Subclass index for a penalty (values beyond the cap → last bin)."""
        if penalty != penalty or penalty < 0:  # NaN or negative
            raise ValueError(f"invalid penalty {penalty}")
        idx = bisect_left(self.penalty_edges, penalty)
        return min(idx, len(self.penalty_edges) - 1)

    def segment_weights(self) -> list[float]:
        """Eq. 2 weights: segment Si contributes with weight 1/2^(i+1)."""
        return [1.0 / (1 << (i + 1)) for i in range(self.num_segments)]
