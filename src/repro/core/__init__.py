"""PAMA core: the paper's primary contribution."""

from repro.core.adaptive import AdaptivePamaPolicy
from repro.core.bloom_tracker import BloomSegmentTracker
from repro.core.config import (DEFAULT_PENALTY, DEFAULT_PENALTY_EDGES,
                               PENALTY_CAP, PamaConfig)
from repro.core.ghost import GhostEntry, GhostList
from repro.core.pama import PamaPolicy, PamaQueueState
from repro.core.prepama import PrePamaPolicy
from repro.core.segments import SegmentTracker
from repro.core.value import ValueAccumulator

__all__ = [
    "PamaConfig",
    "PamaPolicy",
    "PrePamaPolicy",
    "AdaptivePamaPolicy",
    "PamaQueueState",
    "SegmentTracker",
    "BloomSegmentTracker",
    "GhostList",
    "GhostEntry",
    "ValueAccumulator",
    "DEFAULT_PENALTY",
    "DEFAULT_PENALTY_EDGES",
    "PENALTY_CAP",
]
