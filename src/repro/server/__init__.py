"""Memcached-protocol serving: async sharded front end + legacy server.

Two interchangeable front ends speak the same wire protocol over the
slab cache:

* :class:`AsyncCacheServer` (``start_async_server``) — the asyncio
  sharded server: pipelined parsing, write coalescing, hash-partitioned
  :class:`~repro.server.shard.ShardSet`, no hot-path locks.
* :class:`CacheServer` (``start_server``) — the original
  thread-per-connection server with one coarse lock; kept as the
  reference implementation and differential-test oracle.
"""

from repro.server.async_server import (AsyncCacheServer, AsyncServerHandle,
                                       start_async_server)
from repro.server.client import CacheClient
from repro.server.loadgen import (LoadgenConfig, LoadgenResult, run_loadgen,
                                  run_loadgen_sync)
from repro.server.protocol import (ProtocolError, StreamDecoder,
                                   format_request, parse_command)
from repro.server.server import CacheServer, start_server
from repro.server.shard import ShardSet, shard_of

__all__ = ["CacheServer", "start_server", "AsyncCacheServer",
           "AsyncServerHandle", "start_async_server", "ShardSet",
           "shard_of", "CacheClient", "parse_command", "format_request",
           "ProtocolError", "StreamDecoder", "LoadgenConfig",
           "LoadgenResult", "run_loadgen", "run_loadgen_sync"]
