"""Minimal memcached-protocol server and client over the slab cache."""

from repro.server.client import CacheClient
from repro.server.protocol import (ProtocolError, format_request,
                                   parse_command)
from repro.server.server import CacheServer, start_server

__all__ = ["CacheServer", "start_server", "CacheClient", "parse_command",
           "format_request", "ProtocolError"]
