"""Memcached text-protocol subset: parsing and formatting.

Implements the commands the paper's interface description needs (§I:
"insertion (SET), retrieval (GET), and deletion (DEL)") plus the
conventional ``stats``/``version``/``quit``.  One deliberate extension:
the 32-bit ``flags`` field of ``set`` carries the item's miss penalty
in **microseconds**, so penalty-aware policies work over the wire
without protocol changes (flags are opaque to real memcached clients).
"""

from __future__ import annotations

from dataclasses import dataclass

CRLF = b"\r\n"
MAX_KEY_LEN = 250  # memcached's limit


class ProtocolError(ValueError):
    """Malformed client input; rendered as CLIENT_ERROR."""


#: storage command verbs sharing the ``set`` grammar.
STORAGE_VERBS = ("set", "add", "replace", "append", "prepend")


@dataclass(frozen=True)
class SetCommand:
    """Any storage command: ``verb key flags exptime bytes [noreply]``.

    ``verb`` distinguishes memcached's conditional/concatenating
    variants: ``add`` (store only if absent), ``replace`` (only if
    present), ``append``/``prepend`` (concatenate onto an existing
    value).
    """

    key: str
    flags: int
    exptime: int
    nbytes: int
    noreply: bool
    verb: str = "set"

    @property
    def penalty(self) -> float:
        """Penalty in seconds, decoded from the flags field (µs)."""
        return self.flags / 1e6


@dataclass(frozen=True)
class GetCommand:
    keys: tuple[str, ...]


@dataclass(frozen=True)
class DeleteCommand:
    key: str
    noreply: bool


@dataclass(frozen=True)
class IncrDecrCommand:
    key: str
    delta: int
    decrement: bool
    noreply: bool


@dataclass(frozen=True)
class TouchCommand:
    key: str
    exptime: int
    noreply: bool


@dataclass(frozen=True)
class FlushAllCommand:
    noreply: bool


@dataclass(frozen=True)
class StatsCommand:
    pass


@dataclass(frozen=True)
class VersionCommand:
    pass


@dataclass(frozen=True)
class QuitCommand:
    pass


Command = (SetCommand | GetCommand | DeleteCommand | IncrDecrCommand
           | TouchCommand | FlushAllCommand | StatsCommand
           | VersionCommand | QuitCommand)


def _check_key(key: str) -> str:
    if not key or len(key) > MAX_KEY_LEN:
        raise ProtocolError(f"bad key length {len(key)}")
    if any(c.isspace() for c in key):
        raise ProtocolError("key contains whitespace")
    return key


def parse_command(line: bytes) -> Command:
    """Parse one request line (without the trailing CRLF)."""
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError("non-utf8 command line") from exc
    parts = text.split()
    if not parts:
        raise ProtocolError("empty command")
    cmd = parts[0].lower()

    if cmd in STORAGE_VERBS:
        if len(parts) not in (5, 6):
            raise ProtocolError(
                f"{cmd} expects: key flags exptime bytes [noreply]")
        noreply = len(parts) == 6
        if noreply and parts[5] != "noreply":
            raise ProtocolError(f"unexpected token {parts[5]!r}")
        try:
            flags, exptime, nbytes = int(parts[2]), int(parts[3]), int(parts[4])
        except ValueError as exc:
            raise ProtocolError(
                f"{cmd} numeric fields must be integers") from exc
        if nbytes < 0 or flags < 0:
            raise ProtocolError("negative bytes/flags")
        return SetCommand(_check_key(parts[1]), flags, exptime, nbytes,
                          noreply, verb=cmd)

    if cmd in ("incr", "decr"):
        if len(parts) not in (3, 4):
            raise ProtocolError(f"{cmd} expects: key value [noreply]")
        noreply = len(parts) == 4
        if noreply and parts[3] != "noreply":
            raise ProtocolError(f"unexpected token {parts[3]!r}")
        try:
            delta = int(parts[2])
        except ValueError as exc:
            raise ProtocolError(f"{cmd} delta must be an integer") from exc
        if delta < 0:
            raise ProtocolError("delta must be non-negative")
        return IncrDecrCommand(_check_key(parts[1]), delta, cmd == "decr",
                               noreply)

    if cmd == "touch":
        if len(parts) not in (3, 4):
            raise ProtocolError("touch expects: key exptime [noreply]")
        noreply = len(parts) == 4
        if noreply and parts[3] != "noreply":
            raise ProtocolError(f"unexpected token {parts[3]!r}")
        try:
            exptime = int(parts[2])
        except ValueError as exc:
            raise ProtocolError("touch exptime must be an integer") from exc
        return TouchCommand(_check_key(parts[1]), exptime, noreply)

    if cmd == "flush_all":
        if len(parts) not in (1, 2):
            raise ProtocolError("flush_all takes no arguments [noreply]")
        noreply = len(parts) == 2
        if noreply and parts[1] != "noreply":
            raise ProtocolError(f"unexpected token {parts[1]!r}")
        return FlushAllCommand(noreply)

    if cmd in ("get", "gets"):
        if len(parts) < 2:
            raise ProtocolError("get expects at least one key")
        return GetCommand(tuple(_check_key(k) for k in parts[1:]))

    if cmd == "delete":
        if len(parts) not in (2, 3):
            raise ProtocolError("delete expects: key [noreply]")
        noreply = len(parts) == 3
        if noreply and parts[2] != "noreply":
            raise ProtocolError(f"unexpected token {parts[2]!r}")
        return DeleteCommand(_check_key(parts[1]), noreply)

    if cmd == "stats":
        return StatsCommand()
    if cmd == "version":
        return VersionCommand()
    if cmd == "quit":
        return QuitCommand()
    raise ProtocolError(f"unknown command {cmd!r}")


# -- response formatting -----------------------------------------------------

def format_value(key: str, flags: int, data: bytes) -> bytes:
    """One VALUE block of a get response."""
    return (f"VALUE {key} {flags} {len(data)}".encode() + CRLF
            + data + CRLF)


def format_get_tail() -> bytes:
    return b"END" + CRLF


def format_stored() -> bytes:
    return b"STORED" + CRLF


def format_not_stored() -> bytes:
    return b"NOT_STORED" + CRLF


def format_deleted(found: bool) -> bytes:
    return (b"DELETED" if found else b"NOT_FOUND") + CRLF


def format_not_found() -> bytes:
    return b"NOT_FOUND" + CRLF


def format_touched(found: bool) -> bytes:
    return (b"TOUCHED" if found else b"NOT_FOUND") + CRLF


def format_number(value: int) -> bytes:
    return str(value).encode() + CRLF


def format_ok() -> bytes:
    return b"OK" + CRLF


#: memcached treats exptime values above this as absolute unix times.
RELATIVE_EXPTIME_LIMIT = 60 * 60 * 24 * 30


def resolve_exptime(exptime: int, now: float) -> float:
    """Memcached exptime semantics → absolute expiry (0.0 = never).

    0 means never; values up to 30 days are relative to ``now``; larger
    values are absolute unix timestamps; negative means already expired.
    """
    if exptime == 0:
        return 0.0
    if exptime < 0:
        return now - 1.0  # immediately expired
    if exptime <= RELATIVE_EXPTIME_LIMIT:
        return now + exptime
    return float(exptime)


def format_error(message: str) -> bytes:
    return f"CLIENT_ERROR {message}".encode() + CRLF


def format_server_error(message: str) -> bytes:
    return f"SERVER_ERROR {message}".encode() + CRLF


def format_stats(stats: dict[str, object]) -> bytes:
    body = b"".join(f"STAT {k} {v}".encode() + CRLF
                    for k, v in sorted(stats.items()))
    return body + b"END" + CRLF


def format_version(version: str) -> bytes:
    return f"VERSION {version}".encode() + CRLF
