"""Memcached text-protocol subset: parsing and formatting.

Implements the commands the paper's interface description needs (§I:
"insertion (SET), retrieval (GET), and deletion (DEL)") plus the
conventional ``stats``/``version``/``quit``.  One deliberate extension:
the 32-bit ``flags`` field of ``set`` carries the item's miss penalty
in **microseconds**, so penalty-aware policies work over the wire
without protocol changes (flags are opaque to real memcached clients).
"""

from __future__ import annotations

from dataclasses import dataclass

CRLF = b"\r\n"
MAX_KEY_LEN = 250  # memcached's limit


class ProtocolError(ValueError):
    """Malformed client input; rendered as CLIENT_ERROR.

    ``data_bytes`` is set when a *storage* line failed to parse but its
    byte count was readable: the server can then drain the data block
    (``data_bytes`` + CRLF) and keep the connection in sync.  ``fatal``
    marks storage-line errors where the count is unknowable — the only
    safe recovery is closing the connection, since the bytes that
    follow are payload, not commands.
    """

    def __init__(self, message: str, *, data_bytes: int | None = None,
                 fatal: bool = False) -> None:
        super().__init__(message)
        self.data_bytes = data_bytes
        self.fatal = fatal


#: storage command verbs sharing the ``set`` grammar (``cas`` carries
#: one extra field, the cas unique id from a prior ``gets``).
STORAGE_VERBS = ("set", "add", "replace", "append", "prepend", "cas")


@dataclass(frozen=True)
class SetCommand:
    """Any storage command: ``verb key flags exptime bytes [noreply]``.

    ``verb`` distinguishes memcached's conditional/concatenating
    variants: ``add`` (store only if absent), ``replace`` (only if
    present), ``append``/``prepend`` (concatenate onto an existing
    value), ``cas`` (store only if untouched since ``cas_unique`` was
    read via ``gets``).
    """

    key: str
    flags: int
    exptime: int
    nbytes: int
    noreply: bool
    verb: str = "set"
    cas_unique: int | None = None

    @property
    def penalty(self) -> float:
        """Penalty in seconds, decoded from the flags field (µs)."""
        return self.flags / 1e6


@dataclass(frozen=True)
class GetCommand:
    keys: tuple[str, ...]
    #: True for ``gets``: VALUE lines carry the item's cas unique id.
    with_cas: bool = False


@dataclass(frozen=True)
class DeleteCommand:
    key: str
    noreply: bool


@dataclass(frozen=True)
class IncrDecrCommand:
    key: str
    delta: int
    decrement: bool
    noreply: bool


@dataclass(frozen=True)
class TouchCommand:
    key: str
    exptime: int
    noreply: bool


@dataclass(frozen=True)
class FlushAllCommand:
    noreply: bool


@dataclass(frozen=True)
class StatsCommand:
    #: None for plain ``stats``; "detail" dumps every registry metric.
    arg: str | None = None


@dataclass(frozen=True)
class VersionCommand:
    pass


@dataclass(frozen=True)
class QuitCommand:
    pass


Command = (SetCommand | GetCommand | DeleteCommand | IncrDecrCommand
           | TouchCommand | FlushAllCommand | StatsCommand
           | VersionCommand | QuitCommand)


def _check_key(key: str) -> str:
    if not key or len(key) > MAX_KEY_LEN:
        raise ProtocolError(f"bad key length {len(key)}")
    if any(c.isspace() for c in key):
        raise ProtocolError("key contains whitespace")
    return key


def parse_command(line: bytes) -> Command:
    """Parse one request line (without the trailing CRLF)."""
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError("non-utf8 command line") from exc
    parts = text.split()
    if not parts:
        raise ProtocolError("empty command")
    cmd = parts[0].lower()

    if cmd in STORAGE_VERBS:
        # A storage line is followed by a data block; when the line is
        # malformed, attach the byte count (if readable) so the server
        # can drain the block instead of parsing payload as commands.
        recover = (int(parts[4]) if len(parts) > 4 and parts[4].isdigit()
                   else None)

        def bad(message: str) -> ProtocolError:
            return ProtocolError(message, data_bytes=recover,
                                 fatal=recover is None)

        nargs = 6 if cmd == "cas" else 5  # cas carries the unique id
        if len(parts) not in (nargs, nargs + 1):
            raise bad(f"{cmd} expects: key flags exptime bytes"
                      f"{' casunique' if cmd == 'cas' else ''} [noreply]")
        noreply = len(parts) == nargs + 1
        if noreply and parts[nargs] != "noreply":
            raise bad(f"unexpected token {parts[nargs]!r}")
        try:
            flags, exptime, nbytes = int(parts[2]), int(parts[3]), int(parts[4])
        except ValueError as exc:
            raise bad(f"{cmd} numeric fields must be integers") from exc
        if nbytes < 0 or flags < 0:
            raise bad("negative bytes/flags")
        cas_unique = None
        if cmd == "cas":
            if not parts[5].isdigit():
                raise bad("cas unique must be an unsigned integer")
            cas_unique = int(parts[5])
        try:
            key = _check_key(parts[1])
        except ProtocolError as exc:
            raise bad(str(exc)) from exc
        return SetCommand(key, flags, exptime, nbytes, noreply, verb=cmd,
                          cas_unique=cas_unique)

    if cmd in ("incr", "decr"):
        if len(parts) not in (3, 4):
            raise ProtocolError(f"{cmd} expects: key value [noreply]")
        noreply = len(parts) == 4
        if noreply and parts[3] != "noreply":
            raise ProtocolError(f"unexpected token {parts[3]!r}")
        # memcached deltas are unsigned ASCII decimals: "+1", " 1" and
        # "1_0" (all accepted by int()) must be rejected.
        if not parts[2].isdigit():
            raise ProtocolError(
                f"{cmd} delta must be an unsigned decimal integer")
        return IncrDecrCommand(_check_key(parts[1]), int(parts[2]),
                               cmd == "decr", noreply)

    if cmd == "touch":
        if len(parts) not in (3, 4):
            raise ProtocolError("touch expects: key exptime [noreply]")
        noreply = len(parts) == 4
        if noreply and parts[3] != "noreply":
            raise ProtocolError(f"unexpected token {parts[3]!r}")
        try:
            exptime = int(parts[2])
        except ValueError as exc:
            raise ProtocolError("touch exptime must be an integer") from exc
        return TouchCommand(_check_key(parts[1]), exptime, noreply)

    if cmd == "flush_all":
        if len(parts) not in (1, 2):
            raise ProtocolError("flush_all takes no arguments [noreply]")
        noreply = len(parts) == 2
        if noreply and parts[1] != "noreply":
            raise ProtocolError(f"unexpected token {parts[1]!r}")
        return FlushAllCommand(noreply)

    if cmd in ("get", "gets"):
        if len(parts) < 2:
            raise ProtocolError("get expects at least one key")
        return GetCommand(tuple(_check_key(k) for k in parts[1:]),
                          with_cas=cmd == "gets")

    if cmd == "delete":
        if len(parts) not in (2, 3):
            raise ProtocolError("delete expects: key [noreply]")
        noreply = len(parts) == 3
        if noreply and parts[2] != "noreply":
            raise ProtocolError(f"unexpected token {parts[2]!r}")
        return DeleteCommand(_check_key(parts[1]), noreply)

    if cmd == "stats":
        if len(parts) == 1:
            return StatsCommand()
        if len(parts) == 2 and parts[1].lower() == "detail":
            return StatsCommand(arg="detail")
        raise ProtocolError("stats takes no argument or 'detail'")
    if cmd == "version":
        return VersionCommand()
    if cmd == "quit":
        return QuitCommand()
    raise ProtocolError(f"unknown command {cmd!r}")


# -- incremental decoding ----------------------------------------------------

#: decoder event tags (first element of every tuple ``events`` yields).
EV_COMMAND = "cmd"      # ("cmd", Command, data_block_or_None)
EV_ERROR = "error"      # ("error", message) — reply CLIENT_ERROR, keep open
EV_FATAL = "fatal"      # ("fatal", message) — reply CLIENT_ERROR, then close


class StreamDecoder:
    """Incremental decoder for a pipelined memcached text stream.

    Feed raw socket chunks with :meth:`feed`; drain complete items with
    :meth:`events`, which yields zero or more tuples per call:

    * ``(EV_COMMAND, command, data)`` — a parsed command; ``data`` is the
      data block (without CRLF) for storage commands, else ``None``.
    * ``(EV_ERROR, message)`` — a recoverable protocol error (the stream
      is back in sync; reply ``CLIENT_ERROR`` and continue).
    * ``(EV_FATAL, message)`` — an unrecoverable framing error (bad data
      trailer, or a storage line whose byte count is unknowable); reply
      and close.  The decoder refuses further input afterwards.

    Semantics mirror the threaded server's blocking loop exactly — the
    same recovery rules documented in docs/protocol.md (drain the data
    block of a malformed-but-countable storage line, close when the
    count is unknowable or the trailer is not CRLF) — so the async
    server's replies stay byte-identical to the legacy server's.  The
    difference is purely operational: any number of pipelined commands
    arriving in one TCP segment decode in one pass with no per-command
    syscalls.
    """

    #: commands may not exceed this line length (a full-size key plus
    #: every field fits in a fraction of it; anything longer is abuse).
    MAX_LINE = 8192

    def __init__(self) -> None:
        self._buf = bytearray()
        self._pos = 0  # consumed prefix of _buf
        self._pending: SetCommand | None = None  # awaiting its data block
        self._drain = 0  # payload bytes still to discard (resync)
        self._drain_msg: str | None = None
        self.closed = False

    def feed(self, chunk: bytes) -> None:
        """Append one received chunk (no decoding happens here)."""
        if not self.closed:
            self._buf += chunk

    @property
    def buffered(self) -> int:
        """Bytes received but not yet consumed by :meth:`events`."""
        return len(self._buf) - self._pos

    def _compact(self) -> None:
        if self._pos:
            del self._buf[:self._pos]
            self._pos = 0

    def events(self):
        """Yield decoded events until the buffer has no complete item."""
        buf = self._buf
        while not self.closed:
            # 1) resync drain after a malformed-but-countable storage line
            if self._drain:
                avail = len(buf) - self._pos
                take = min(self._drain, avail)
                self._pos += take
                self._drain -= take
                if self._drain:
                    break  # need more bytes
                msg, self._drain_msg = self._drain_msg, None
                yield (EV_ERROR, msg)
                continue
            # 2) a storage command is waiting for its data block + CRLF
            if self._pending is not None:
                need = self._pending.nbytes + 2
                if len(buf) - self._pos < need:
                    break
                cmd, self._pending = self._pending, None
                start = self._pos
                data = bytes(buf[start:start + cmd.nbytes])
                trailer = bytes(buf[start + cmd.nbytes:start + need])
                self._pos += need
                if trailer != CRLF:
                    # framing is lost: there is no way to know where the
                    # next command starts.
                    self.closed = True
                    yield (EV_FATAL, "bad data chunk")
                    break
                yield (EV_COMMAND, cmd, data)
                continue
            # 3) otherwise: decode the next request line
            nl = buf.find(b"\n", self._pos)
            if nl < 0:
                if len(buf) - self._pos > self.MAX_LINE:
                    self.closed = True
                    yield (EV_FATAL, "command line too long")
                break
            line = bytes(buf[self._pos:nl]).rstrip(b"\r\n")
            self._pos = nl + 1
            if not line:
                continue
            try:
                cmd = parse_command(line)
            except ProtocolError as exc:
                if exc.data_bytes is not None:
                    # the client still sends the data block; discard
                    # payload + CRLF before replying, or its bytes would
                    # be decoded as commands (the classic desync bug).
                    self._drain = exc.data_bytes + 2
                    self._drain_msg = str(exc)
                    continue
                if exc.fatal:
                    self.closed = True
                    yield (EV_FATAL, str(exc))
                    break
                yield (EV_ERROR, str(exc))
                continue
            if isinstance(cmd, SetCommand):
                self._pending = cmd
                continue
            yield (EV_COMMAND, cmd, None)
        self._compact()


# -- response formatting -----------------------------------------------------

def format_value(key: str, flags: int, data: bytes,
                 cas: int | None = None) -> bytes:
    """One VALUE block of a get (4-field) or gets (5-field) response."""
    head = f"VALUE {key} {flags} {len(data)}"
    if cas is not None:
        head += f" {cas}"
    return head.encode() + CRLF + data + CRLF


def format_get_tail() -> bytes:
    return b"END" + CRLF


def format_stored() -> bytes:
    return b"STORED" + CRLF


def format_not_stored() -> bytes:
    return b"NOT_STORED" + CRLF


def format_deleted(found: bool) -> bytes:
    return (b"DELETED" if found else b"NOT_FOUND") + CRLF


def format_not_found() -> bytes:
    return b"NOT_FOUND" + CRLF


def format_exists() -> bytes:
    """``cas`` reply: the item changed since its cas id was fetched."""
    return b"EXISTS" + CRLF


def format_touched(found: bool) -> bytes:
    return (b"TOUCHED" if found else b"NOT_FOUND") + CRLF


def format_number(value: int) -> bytes:
    return str(value).encode() + CRLF


def format_ok() -> bytes:
    return b"OK" + CRLF


#: memcached treats exptime values above this as absolute unix times.
RELATIVE_EXPTIME_LIMIT = 60 * 60 * 24 * 30


def resolve_exptime(exptime: int, now: float) -> float:
    """Memcached exptime semantics → absolute expiry (0.0 = never).

    0 means never; values up to 30 days are relative to ``now``; larger
    values are absolute unix timestamps; negative means already expired.
    """
    if exptime == 0:
        return 0.0
    if exptime < 0:
        return now - 1.0  # immediately expired
    if exptime <= RELATIVE_EXPTIME_LIMIT:
        return now + exptime
    return float(exptime)


def format_error(message: str) -> bytes:
    return f"CLIENT_ERROR {message}".encode() + CRLF


def format_server_error(message: str) -> bytes:
    return f"SERVER_ERROR {message}".encode() + CRLF


def format_stats(stats: dict[str, object]) -> bytes:
    body = b"".join(f"STAT {k} {v}".encode() + CRLF
                    for k, v in sorted(stats.items()))
    return body + b"END" + CRLF


def format_version(version: str) -> bytes:
    return f"VERSION {version}".encode() + CRLF


# -- request formatting ------------------------------------------------------

def format_request(cmd: Command) -> bytes:
    """Render a command back to its request line (without CRLF or data).

    The inverse of :func:`parse_command` — ``parse_command(
    format_request(cmd)) == cmd`` for every representable command,
    which the protocol round-trip property test relies on.
    """
    if isinstance(cmd, SetCommand):
        parts = [cmd.verb, cmd.key, str(cmd.flags), str(cmd.exptime),
                 str(cmd.nbytes)]
        if cmd.verb == "cas":
            parts.append(str(cmd.cas_unique))
        if cmd.noreply:
            parts.append("noreply")
        return " ".join(parts).encode()
    if isinstance(cmd, GetCommand):
        verb = "gets" if cmd.with_cas else "get"
        return " ".join([verb, *cmd.keys]).encode()
    if isinstance(cmd, DeleteCommand):
        tail = " noreply" if cmd.noreply else ""
        return f"delete {cmd.key}{tail}".encode()
    if isinstance(cmd, IncrDecrCommand):
        verb = "decr" if cmd.decrement else "incr"
        tail = " noreply" if cmd.noreply else ""
        return f"{verb} {cmd.key} {cmd.delta}{tail}".encode()
    if isinstance(cmd, TouchCommand):
        tail = " noreply" if cmd.noreply else ""
        return f"touch {cmd.key} {cmd.exptime}{tail}".encode()
    if isinstance(cmd, FlushAllCommand):
        return b"flush_all noreply" if cmd.noreply else b"flush_all"
    if isinstance(cmd, StatsCommand):
        return b"stats" if cmd.arg is None else f"stats {cmd.arg}".encode()
    if isinstance(cmd, VersionCommand):
        return b"version"
    if isinstance(cmd, QuitCommand):
        return b"quit"
    raise TypeError(f"unknown command type {type(cmd).__name__}")
