"""A minimal memcached-protocol server over the slab cache.

Demonstrates the substrate is a functioning cache, not just an
accounting model: any memcached text client can set/get/delete against
it, with the allocation policy (PAMA by default) managing slabs.

The server is single-purpose and synchronous-per-connection (threaded);
it is an example vehicle, not a production network stack.
"""

from __future__ import annotations

import socket
import socketserver
import threading

from repro import __version__
from repro.cache.cache import SlabCache
from repro.server import protocol as p


class CacheRequestHandler(socketserver.StreamRequestHandler):
    """Handles one client connection (line protocol + data blocks)."""

    server: "CacheServer"

    def handle(self) -> None:
        while True:
            line = self.rfile.readline()
            if not line:
                return
            line = line.rstrip(b"\r\n")
            if not line:
                continue
            try:
                cmd = p.parse_command(line)
            except p.ProtocolError as exc:
                self.wfile.write(p.format_error(str(exc)))
                continue
            if isinstance(cmd, p.QuitCommand):
                return
            try:
                if not self._dispatch(cmd):
                    return
            except BrokenPipeError:  # pragma: no cover - client went away
                return

    def _dispatch(self, cmd: p.Command) -> bool:
        cache = self.server.cache
        lock = self.server.lock
        if isinstance(cmd, p.SetCommand):
            data = self.rfile.read(cmd.nbytes)
            trailer = self.rfile.read(2)
            if len(data) != cmd.nbytes or trailer != p.CRLF:
                self.wfile.write(p.format_error("bad data chunk"))
                return True
            with lock:
                ok = self._store(cache, cmd, data)
            if not cmd.noreply:
                self.wfile.write(p.format_stored() if ok
                                 else p.format_not_stored())
            return True
        if isinstance(cmd, p.IncrDecrCommand):
            with lock:
                result = self._incr_decr(cache, cmd)
            if not cmd.noreply:
                if result is None:
                    self.wfile.write(p.format_not_found())
                elif isinstance(result, bytes):
                    self.wfile.write(p.format_error(result.decode()))
                else:
                    self.wfile.write(p.format_number(result))
            return True
        if isinstance(cmd, p.TouchCommand):
            with lock:
                found = cache.touch(
                    cmd.key, p.resolve_exptime(cmd.exptime, cache.clock()))
            if not cmd.noreply:
                self.wfile.write(p.format_touched(found))
            return True
        if isinstance(cmd, p.FlushAllCommand):
            with lock:
                cache.flush_all()
            if not cmd.noreply:
                self.wfile.write(p.format_ok())
            return True
        if isinstance(cmd, p.GetCommand):
            out = bytearray()
            with lock:
                for key in cmd.keys:
                    item = cache.get(key)
                    if item is not None and item.value is not None:
                        flags, data = item.value
                        out += p.format_value(key, flags, data)
            out += p.format_get_tail()
            self.wfile.write(bytes(out))
            return True
        if isinstance(cmd, p.DeleteCommand):
            with lock:
                found = cache.delete(cmd.key)
            if not cmd.noreply:
                self.wfile.write(p.format_deleted(found))
            return True
        if isinstance(cmd, p.StatsCommand):
            with lock:
                stats = cache.stats.snapshot()
                stats["policy"] = cache.policy.name
                stats["items"] = len(cache)
                stats["slabs_total"] = cache.pool.total
                stats["slabs_free"] = cache.pool.free
            self.wfile.write(p.format_stats(stats))
            return True
        if isinstance(cmd, p.VersionCommand):
            self.wfile.write(p.format_version(f"repro-pama/{__version__}"))
            return True
        raise AssertionError(f"unhandled command {cmd!r}")  # pragma: no cover

    @staticmethod
    def _store(cache, cmd: p.SetCommand, data: bytes) -> bool:
        """Apply a storage verb (set/add/replace/append/prepend)."""
        expires = p.resolve_exptime(cmd.exptime, cache.clock())
        existing = cache.get(cmd.key)  # honours expiry
        if cmd.verb == "add" and existing is not None:
            return False
        if cmd.verb == "replace" and existing is None:
            return False
        if cmd.verb in ("append", "prepend"):
            if existing is None or existing.value is None:
                return False
            old_flags, old_data = existing.value
            data = (old_data + data if cmd.verb == "append"
                    else data + old_data)
            # concatenation keeps the original flags/penalty/expiry
            return cache.set(cmd.key, len(cmd.key), len(data),
                             existing.penalty, value=(old_flags, data),
                             expires_at=existing.expires_at)
        return cache.set(cmd.key, len(cmd.key), cmd.nbytes, cmd.penalty,
                         value=(cmd.flags, data), expires_at=expires)

    @staticmethod
    def _incr_decr(cache, cmd: p.IncrDecrCommand):
        """Returns the new value, None if absent, or bytes for an error."""
        item = cache.get(cmd.key)
        if item is None or item.value is None:
            return None
        flags, data = item.value
        try:
            current = int(data)
            if current < 0:
                raise ValueError
        except ValueError:
            return b"cannot increment or decrement non-numeric value"
        if cmd.decrement:
            new = max(0, current - cmd.delta)  # memcached clamps at 0
        else:
            new = (current + cmd.delta) % (1 << 64)  # 64-bit wraparound
        payload = str(new).encode()
        cache.set(cmd.key, len(cmd.key), len(payload), item.penalty,
                  value=(flags, payload), expires_at=item.expires_at)
        return new


class CacheServer(socketserver.ThreadingTCPServer):
    """TCP server wrapping one SlabCache (coarse-grained lock)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], cache: SlabCache) -> None:
        super().__init__(address, CacheRequestHandler)
        self.cache = cache
        self.lock = threading.Lock()

    @property
    def port(self) -> int:
        return self.server_address[1]


def start_server(cache: SlabCache, host: str = "127.0.0.1",
                 port: int = 0) -> CacheServer:
    """Start a server on a background thread; returns it (bound port in
    ``server.port``).  Call ``server.shutdown()`` to stop."""
    server = CacheServer((host, port), cache)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server
