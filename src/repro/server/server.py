"""A minimal memcached-protocol server over the slab cache.

Demonstrates the substrate is a functioning cache, not just an
accounting model: any memcached text client can set/get/delete against
it, with the allocation policy (PAMA by default) managing slabs.

The server is single-purpose and synchronous-per-connection (threaded);
it is an example vehicle, not a production network stack.  It is fully
instrumented through :mod:`repro.obs`: per-command latency histograms,
byte counters, and the cache's own registry metrics, all exposed over
the wire via ``stats`` and ``stats detail``.
"""

from __future__ import annotations

import socketserver
import threading
import time

from repro import __version__
from repro.cache.cache import SlabCache
from repro.obs import EventTrace, Registry, flat_items
from repro.server import protocol as p
from repro.server.shard import (INCR_STORE_FAILED_MSG, STORE_FAILED,
                                apply_incr_decr, apply_storage)

#: largest chunk drained at once when resyncing after a bad storage line.
_DRAIN_CHUNK = 64 * 1024


class CacheRequestHandler(socketserver.StreamRequestHandler):
    """Handles one client connection (line protocol + data blocks)."""

    server: "CacheServer"

    def handle(self) -> None:
        self.server.c_connections.inc()
        while True:
            line = self.rfile.readline()
            if not line:
                return
            self.server.c_bytes_read.inc(len(line))
            line = line.rstrip(b"\r\n")
            if not line:
                continue
            try:
                cmd = p.parse_command(line)
            except p.ProtocolError as exc:
                self.server.c_protocol_errors.inc()
                if exc.data_bytes is not None:
                    # Malformed storage line with a readable byte count:
                    # the client still sends the data block, so drain it
                    # (payload + CRLF) or the payload bytes would be
                    # parsed as commands.
                    if not self._drain(exc.data_bytes + 2):
                        return
                    self._reply(p.format_error(str(exc)))
                    continue
                if exc.fatal:
                    # Storage line whose data-block length is unknowable:
                    # the connection cannot be resynced.
                    self._reply(p.format_error(str(exc)))
                    return
                self._reply(p.format_error(str(exc)))
                continue
            if isinstance(cmd, p.QuitCommand):
                return
            started = time.perf_counter()
            try:
                keep_going = self._dispatch(cmd)
            except BrokenPipeError:  # pragma: no cover - client went away
                return
            except Exception as exc:  # noqa: BLE001 - reply, then close
                # An unexpected failure must not silently kill the
                # handler thread mid-conversation: tell the client
                # (SERVER_ERROR, per the memcached protocol) and close.
                self.server.c_server_errors.inc()
                try:
                    self._reply(p.format_server_error(
                        str(exc) or type(exc).__name__))
                except OSError:  # pragma: no cover - write raced close
                    pass
                return
            elapsed = time.perf_counter() - started
            self.server.latency_histogram(_verb_of(cmd)).record(elapsed)
            tracer = self.server.tracer
            if tracer is not None:
                # One tick per completed command; record_single is the
                # thread-safe path (one deque append under the GIL).
                # The tick snapshot must happen under the cache lock:
                # `accesses` is mutated by every operation, and an
                # unlocked read here races the other handler threads.
                with self.server.lock:
                    tick = self.server.cache.accesses
                if tracer.sampled(tick):
                    tracer.record_single(_verb_of(cmd), tick, tick,
                                         duration_s=elapsed)
            if not keep_going:
                return

    def _reply(self, data: bytes) -> None:
        self.server.c_bytes_written.inc(len(data))
        self.wfile.write(data)

    def _drain(self, nbytes: int) -> bool:
        """Consume ``nbytes`` from the stream; False means EOF."""
        remaining = nbytes
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, _DRAIN_CHUNK))
            if not chunk:
                return False
            self.server.c_bytes_read.inc(len(chunk))
            remaining -= len(chunk)
        return True

    def _dispatch(self, cmd: p.Command) -> bool:
        cache = self.server.cache
        lock = self.server.lock
        if isinstance(cmd, p.SetCommand):
            data = self.rfile.read(cmd.nbytes)
            trailer = self.rfile.read(2)
            # Count what was actually read *before* bailing on a short
            # read, or a client hanging up mid-block leaves every byte
            # of its partial data block out of server_bytes_read_total.
            self.server.c_bytes_read.inc(len(data) + len(trailer))
            if len(data) != cmd.nbytes or len(trailer) != 2:
                return False  # short read: the client hung up mid-block
            if trailer != p.CRLF:
                # Framing is lost (we cannot know where the next command
                # starts), so reply and drop the connection.
                self._reply(p.format_error("bad data chunk"))
                return False
            with lock:
                reply = self._store(cache, cmd, data)
            if not cmd.noreply:
                self._reply(reply)
            return True
        if isinstance(cmd, p.IncrDecrCommand):
            with lock:
                result = self._incr_decr(cache, cmd)
            if not cmd.noreply:
                if result is None:
                    self._reply(p.format_not_found())
                elif result is STORE_FAILED:
                    # The computed number was NOT stored; claiming
                    # success would lie to the client.
                    self._reply(p.format_server_error(INCR_STORE_FAILED_MSG))
                elif isinstance(result, bytes):
                    self._reply(p.format_error(result.decode()))
                else:
                    self._reply(p.format_number(result))
            return True
        if isinstance(cmd, p.TouchCommand):
            with lock:
                found = cache.touch(
                    cmd.key, p.resolve_exptime(cmd.exptime, cache.clock()))
            if not cmd.noreply:
                self._reply(p.format_touched(found))
            return True
        if isinstance(cmd, p.FlushAllCommand):
            with lock:
                cache.flush_all()
            if not cmd.noreply:
                self._reply(p.format_ok())
            return True
        if isinstance(cmd, p.GetCommand):
            out = bytearray()
            with lock:
                for key in cmd.keys:
                    item = cache.get(key)
                    if item is not None and item.value is not None:
                        flags, data = item.value
                        out += p.format_value(
                            key, flags, data,
                            cas=item.cas if cmd.with_cas else None)
            out += p.format_get_tail()
            self._reply(bytes(out))
            return True
        if isinstance(cmd, p.DeleteCommand):
            with lock:
                found = cache.delete(cmd.key)
            if not cmd.noreply:
                self._reply(p.format_deleted(found))
            return True
        if isinstance(cmd, p.StatsCommand):
            self._reply(p.format_stats(self.server.gather_stats(cmd.arg)))
            return True
        if isinstance(cmd, p.VersionCommand):
            self._reply(p.format_version(f"repro-pama/{__version__}"))
            return True
        raise AssertionError(f"unhandled command {cmd!r}")  # pragma: no cover

    # Storage and incr/decr semantics are shared with the async sharded
    # server (repro.server.shard) so the two front ends cannot drift.
    _store = staticmethod(apply_storage)
    _incr_decr = staticmethod(apply_incr_decr)


def _verb_of(cmd: p.Command) -> str:
    """The label under which a command's latency is recorded."""
    if isinstance(cmd, p.SetCommand):
        return cmd.verb
    if isinstance(cmd, p.GetCommand):
        return "gets" if cmd.with_cas else "get"
    if isinstance(cmd, p.IncrDecrCommand):
        return "decr" if cmd.decrement else "incr"
    return {p.DeleteCommand: "delete", p.TouchCommand: "touch",
            p.FlushAllCommand: "flush_all", p.StatsCommand: "stats",
            p.VersionCommand: "version"}.get(type(cmd), "other")


class CacheServer(socketserver.ThreadingTCPServer):
    """TCP server wrapping one SlabCache (coarse-grained lock)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], cache: SlabCache,
                 registry: Registry | None = None,
                 events: EventTrace | None = None,
                 tracing=None) -> None:
        super().__init__(address, CacheRequestHandler)
        self.cache = cache
        #: optional SpanTracer; sampled commands are recorded as
        #: single-span traces with their wall-clock duration.
        self.tracer = tracing
        self.lock = threading.Lock()
        # The server always runs instrumented (it is not the simulate
        # hot path); reuse whatever the cache already has attached.
        self.registry = registry or cache.obs or Registry()
        self.events = events or cache.events or EventTrace()
        if cache.obs is None:
            cache.attach_obs(self.registry, self.events)
        counter = self.registry.counter
        self.c_connections = counter(
            "server_connections_total", "client connections accepted")
        self.c_bytes_read = counter(
            "server_bytes_read_total", "bytes read from clients")
        self.c_bytes_written = counter(
            "server_bytes_written_total", "bytes written to clients")
        self.c_protocol_errors = counter(
            "server_protocol_errors_total", "malformed request lines")
        self.c_server_errors = counter(
            "server_errors_total", "unexpected errors answered SERVER_ERROR")
        self._latency: dict[str, object] = {}

    def latency_histogram(self, verb: str):
        """Per-command-verb latency histogram (created on first use)."""
        hist = self._latency.get(verb)
        if hist is None:
            hist = self.registry.histogram(
                "server_cmd_latency_seconds",
                "wall-clock time to serve one command", lo=1e-7,
                growth=1.5, cmd=verb)
            self._latency[verb] = hist
        return hist

    def gather_stats(self, arg: str | None) -> dict[str, object]:
        """The ``stats`` / ``stats detail`` payload."""
        with self.lock:
            self.cache.update_obs_gauges()
            stats: dict[str, object] = self.cache.stats.snapshot()
            stats["policy"] = self.cache.policy.name
            stats["items"] = len(self.cache)
            stats["slabs_total"] = self.cache.pool.total
            stats["slabs_free"] = self.cache.pool.free
            if arg == "detail":
                # every registry metric, histograms expanded to
                # count/sum/mean/min/max + quantiles
                stats.update(flat_items(self.registry))
                stats["events_recorded"] = self.events.recorded
                stats["events_dropped"] = self.events.dropped
            else:
                # registry counters/gauges only (flat quick view)
                stats.update(flat_items(self.registry, histograms=False))
        return stats

    @property
    def port(self) -> int:
        return self.server_address[1]


def start_server(cache: SlabCache, host: str = "127.0.0.1",
                 port: int = 0, tracing=None) -> CacheServer:
    """Start a server on a background thread; returns it (bound port in
    ``server.port``).  Call ``server.shutdown()`` to stop."""
    server = CacheServer((host, port), cache, tracing=tracing)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server
