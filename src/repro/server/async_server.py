"""Asyncio front end: pipelined parsing over hash-partitioned shards.

The legacy :class:`~repro.server.server.CacheServer` is a thread per
connection, a blocking ``readline`` per command, an unbuffered write per
reply, and one coarse lock around every cache operation — at 64
connections the process spends its time context-switching and fighting
the lock, not serving.  This front end replaces all four costs:

* **one event loop** owns every connection — no thread switches, no
  lock: each shard is only ever touched from the loop, so the hot path
  is plain function calls;
* **hash-partitioned shards** (:mod:`repro.server.shard`, splitmix64 on
  the key) bound per-shard state and map 1:1 onto a process-per-shard
  deployment on multi-core hosts;
* **pipelined parsing** (:class:`repro.server.protocol.StreamDecoder`)
  decodes every command that arrived in a TCP segment in one pass;
* **write coalescing** batches all replies of a decoded batch into a
  single ``write``/``drain``.

Reply bytes are identical to the legacy server's — both delegate
storage and incr/decr semantics to :mod:`repro.server.shard`, and the
differential suite replays full protocol scripts against both servers
asserting byte equality.  The legacy server remains available as the
``--legacy`` reference implementation.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro import __version__
from repro.obs import EventTrace, Registry, flat_items
from repro.server import protocol as p
from repro.server.server import _verb_of
from repro.server.shard import (INCR_STORE_FAILED_MSG, STORE_FAILED,
                                ShardSet, apply_incr_decr, apply_storage)

#: bytes requested per socket read; one read often carries hundreds of
#: pipelined commands, all decoded in one pass.
_READ_SIZE = 64 * 1024


class AsyncCacheServer:
    """Asyncio TCP server over a :class:`ShardSet` (no hot-path locks)."""

    def __init__(self, shards: ShardSet, registry: Registry | None = None,
                 events: EventTrace | None = None, tracing=None) -> None:
        self.shards = shards
        self.tracer = tracing
        first = shards.shards[0]
        self.registry = registry or first.obs or Registry()
        self.events = events or first.events or EventTrace()
        shards.attach_obs(self.registry, self.events)
        counter = self.registry.counter
        self.c_connections = counter(
            "server_connections_total", "client connections accepted")
        self.c_bytes_read = counter(
            "server_bytes_read_total", "bytes read from clients")
        self.c_bytes_written = counter(
            "server_bytes_written_total", "bytes written to clients")
        self.c_protocol_errors = counter(
            "server_protocol_errors_total", "malformed request lines")
        self.c_server_errors = counter(
            "server_errors_total", "unexpected errors answered SERVER_ERROR")
        self._latency: dict[tuple[str, str], object] = {}
        self._server: asyncio.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=_READ_SIZE)

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    # -- metrics -------------------------------------------------------
    def latency_histogram(self, verb: str, shard: str):
        """Latency histogram labelled by command verb *and* shard."""
        hist = self._latency.get((verb, shard))
        if hist is None:
            hist = self.registry.histogram(
                "server_cmd_latency_seconds",
                "wall-clock time to serve one command", lo=1e-7,
                growth=1.5, cmd=verb, shard=shard)
            self._latency[(verb, shard)] = hist
        return hist

    def _shard_label(self, cmd: p.Command) -> str:
        """The shard a command routes to; "-" for cross-shard/admin.

        A multi-key ``get`` is labelled by its first key's shard (the
        common single-key case is then exact).
        """
        key = getattr(cmd, "key", None)
        if key is None:
            keys = getattr(cmd, "keys", None)
            if not keys:
                return "-"
            key = keys[0]
        return str(self.shards.shard_index(key))

    def gather_stats(self, arg: str | None) -> dict[str, object]:
        """The ``stats`` / ``stats detail`` payload (cross-shard)."""
        shards = self.shards
        shards.update_obs_gauges()
        stats: dict[str, object] = shards.stats_snapshot()
        stats["policy"] = shards.policy_name
        stats["items"] = shards.items
        stats["slabs_total"] = shards.slabs_total
        stats["slabs_free"] = shards.slabs_free
        stats["shards"] = shards.nshards
        if arg == "detail":
            stats.update(flat_items(self.registry))
            stats["events_recorded"] = self.events.recorded
            stats["events_dropped"] = self.events.dropped
        else:
            stats.update(flat_items(self.registry, histograms=False))
        return stats

    # -- connection handling -------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self.c_connections.inc()
        decoder = p.StreamDecoder()
        tracer = self.tracer
        try:
            while True:
                chunk = await reader.read(_READ_SIZE)
                if not chunk:
                    return
                self.c_bytes_read.inc(len(chunk))
                decoder.feed(chunk)
                out = bytearray()
                keep_going = True
                for event in decoder.events():
                    tag = event[0]
                    if tag == p.EV_COMMAND:
                        cmd = event[1]
                        if isinstance(cmd, p.QuitCommand):
                            keep_going = False
                            break
                        started = time.perf_counter()
                        try:
                            self._execute(cmd, event[2], out)
                        except Exception as exc:  # noqa: BLE001
                            # Same contract as the threaded server: an
                            # unexpected failure answers SERVER_ERROR,
                            # then the connection closes.
                            self.c_server_errors.inc()
                            out += p.format_server_error(
                                str(exc) or type(exc).__name__)
                            keep_going = False
                            break
                        elapsed = time.perf_counter() - started
                        self.latency_histogram(
                            _verb_of(cmd), self._shard_label(cmd)).record(
                                elapsed)
                        if tracer is not None:
                            # Per-shard ticks are only ever mutated from
                            # this loop, so the snapshot is naturally
                            # race-free (unlike the threaded server,
                            # which must lock).
                            tick = sum(c.accesses
                                       for c in self.shards.shards)
                            if tracer.sampled(tick):
                                tracer.record_single(
                                    _verb_of(cmd), tick, tick,
                                    duration_s=elapsed,
                                    shard=self._shard_label(cmd))
                    elif tag == p.EV_ERROR:
                        self.c_protocol_errors.inc()
                        out += p.format_error(event[1])
                    else:  # EV_FATAL: reply, then close
                        self.c_protocol_errors.inc()
                        out += p.format_error(event[1])
                        keep_going = False
                        break
                if out:
                    # write coalescing: one write() per decoded batch,
                    # however many pipelined replies it carries.
                    self.c_bytes_written.inc(len(out))
                    writer.write(bytes(out))
                    await writer.drain()
                if not keep_going:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # client went away mid-conversation
        except OSError:
            return
        except asyncio.CancelledError:
            return  # server stopping; exit cleanly so the task is done
        finally:
            # close() without wait_closed(): the task may already be
            # cancelled, and any await here would re-raise into the
            # loop's exception handler.  The transport finishes closing
            # on the loop.
            writer.close()

    # -- command execution ---------------------------------------------
    def _execute(self, cmd: p.Command, data: bytes | None,
                 out: bytearray) -> None:
        """Apply one command against its shard; append reply bytes."""
        shards = self.shards
        if isinstance(cmd, p.GetCommand):
            for key in cmd.keys:
                item = shards.shard_for(key).get(key)
                if item is not None and item.value is not None:
                    flags, vdata = item.value
                    out += p.format_value(
                        key, flags, vdata,
                        cas=item.cas if cmd.with_cas else None)
            out += p.format_get_tail()
            return
        if isinstance(cmd, p.SetCommand):
            reply = apply_storage(shards.shard_for(cmd.key), cmd, data)
            if not cmd.noreply:
                out += reply
            return
        if isinstance(cmd, p.IncrDecrCommand):
            result = apply_incr_decr(shards.shard_for(cmd.key), cmd)
            if not cmd.noreply:
                if result is None:
                    out += p.format_not_found()
                elif result is STORE_FAILED:
                    out += p.format_server_error(INCR_STORE_FAILED_MSG)
                elif isinstance(result, bytes):
                    out += p.format_error(result.decode())
                else:
                    out += p.format_number(result)
            return
        if isinstance(cmd, p.DeleteCommand):
            found = shards.shard_for(cmd.key).delete(cmd.key)
            if not cmd.noreply:
                out += p.format_deleted(found)
            return
        if isinstance(cmd, p.TouchCommand):
            cache = shards.shard_for(cmd.key)
            found = cache.touch(
                cmd.key, p.resolve_exptime(cmd.exptime, cache.clock()))
            if not cmd.noreply:
                out += p.format_touched(found)
            return
        if isinstance(cmd, p.FlushAllCommand):
            shards.flush_all()
            if not cmd.noreply:
                out += p.format_ok()
            return
        if isinstance(cmd, p.StatsCommand):
            out += p.format_stats(self.gather_stats(cmd.arg))
            return
        if isinstance(cmd, p.VersionCommand):
            out += p.format_version(f"repro-pama/{__version__}")
            return
        raise AssertionError(f"unhandled command {cmd!r}")  # pragma: no cover


# -- background-thread harness (tests, benches, --spawn) ---------------------

class AsyncServerHandle:
    """A running :class:`AsyncCacheServer` on a background event loop.

    The synchronous counterpart of ``start_server`` for the async
    server: tests and benchmarks get a bound ``port`` immediately and
    call :meth:`stop` when done.
    """

    def __init__(self, server: AsyncCacheServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def shards(self) -> ShardSet:
        return self.server.shards

    @property
    def registry(self) -> Registry:
        return self.server.registry

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)

    def __enter__(self) -> "AsyncServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_async_server(shards: ShardSet, host: str = "127.0.0.1",
                       port: int = 0, tracing=None) -> AsyncServerHandle:
    """Start an async sharded server on a background thread.

    Returns once the socket is bound; the bound port is
    ``handle.port``.  Call ``handle.stop()`` to shut down.
    """
    server = AsyncCacheServer(shards, tracing=tracing)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    startup_error: list[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start(host, port))
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            startup_error.append(exc)
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_forever()
            loop.run_until_complete(server.stop())
        finally:
            loop.close()

    thread = threading.Thread(target=run, daemon=True,
                              name="repro-async-server")
    thread.start()
    ready.wait()
    if startup_error:
        raise startup_error[0]
    return AsyncServerHandle(server, loop, thread)
