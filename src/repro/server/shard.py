"""Hash-partitioned cache shards and shared command semantics.

Two things live here:

* :func:`shard_of` / :class:`ShardSet` — the partitioning layer of the
  async server: N independent :class:`~repro.cache.cache.SlabCache`
  instances, keys routed by splitmix64.  Each shard is only ever touched
  from one event loop, so the hot path needs no locks; a shard is also
  exactly the unit you would pin to a process in a multi-core
  deployment.

* :func:`apply_storage` / :func:`apply_incr_decr` — the storage-verb
  and incr/decr semantics shared by the legacy threaded server and the
  async sharded server, so the two front ends cannot drift apart on
  reply bytes (the differential suite holds them byte-identical).
"""

from __future__ import annotations

from repro.bloom.hashing import SHARD_SEED, key_shard
from repro.cache.cache import SlabCache
from repro.cache.sizeclasses import SizeClassConfig
from repro.cache.stats import CacheStats
from repro.server import protocol as p

__all__ = ["SHARD_SEED", "shard_of", "ShardSet", "StoreFailed",
           "STORE_FAILED", "INCR_STORE_FAILED_MSG", "apply_storage",
           "apply_incr_decr"]


def shard_of(key: object, nshards: int) -> int:
    """Deterministic shard index for ``key`` (splitmix64 over the key).

    Key-type-agnostic: text keys hash via FNV-1a folded through
    splitmix64, int keys (the simulator's interned ids) take the
    splitmix64 fast path directly — no ``str()`` round-trip.  This is
    :func:`repro.bloom.hashing.key_shard`, shared with the sharded
    replay engine so a simulated shard and a server shard agree on
    every key; assignments for ``str`` keys are unchanged (pinned by
    the back-compat tests).
    """
    return key_shard(key, nshards)


class ShardSet:
    """N hash-partitioned SlabCaches behind one routing function.

    Capacity is split evenly; every shard gets its own policy instance
    (one policy per cache is a SlabCache invariant) and all shards share
    one metrics registry, so counters aggregate naturally while gauges
    are refreshed as cross-shard totals by :meth:`update_obs_gauges`.
    """

    def __init__(self, capacity_bytes: int, policy_factory,
                 size_classes: SizeClassConfig | None = None,
                 nshards: int = 1, clock=None) -> None:
        if nshards < 1:
            raise ValueError(f"nshards must be >= 1, got {nshards}")
        classes = size_classes or SizeClassConfig()
        per_shard = capacity_bytes // nshards
        if per_shard < classes.slab_size:
            raise ValueError(
                f"{capacity_bytes} bytes over {nshards} shards leaves "
                f"{per_shard} per shard — below one "
                f"{classes.slab_size}-byte slab")
        self.nshards = nshards
        self.shards: list[SlabCache] = [
            SlabCache(per_shard, policy_factory(), classes, clock=clock)
            for _ in range(nshards)]

    def shard_index(self, key: object) -> int:
        return shard_of(key, self.nshards)

    def shard_for(self, key: object) -> SlabCache:
        return self.shards[shard_of(key, self.nshards)]

    def attach_obs(self, registry, events=None) -> None:
        for cache in self.shards:
            if cache.obs is None:
                cache.attach_obs(registry, events)

    # -- aggregation ---------------------------------------------------
    def stats_snapshot(self) -> dict[str, float]:
        """Cross-shard :class:`CacheStats` totals (ratios recomputed)."""
        total = CacheStats()
        for cache in self.shards:
            s = cache.stats
            total.gets += s.gets
            total.hits += s.hits
            total.misses += s.misses
            total.sets += s.sets
            total.deletes += s.deletes
            total.evictions += s.evictions
            total.migrations += s.migrations
            total.expired += s.expired
            total.total_miss_penalty += s.total_miss_penalty
        return total.snapshot()

    @property
    def items(self) -> int:
        return sum(len(cache) for cache in self.shards)

    @property
    def slabs_total(self) -> int:
        return sum(cache.pool.total for cache in self.shards)

    @property
    def slabs_free(self) -> int:
        return sum(cache.pool.free for cache in self.shards)

    @property
    def policy_name(self) -> str:
        return self.shards[0].policy.name

    def update_obs_gauges(self) -> None:
        """Refresh point-in-time gauges as cross-shard totals.

        The per-shard ``SlabCache.update_obs_gauges`` would have each
        shard overwrite the shared gauges with its own numbers; this
        sets the totals instead.
        """
        registry = self.shards[0].obs
        if registry is None:
            return
        gauge = registry.gauge
        gauge("cache_items", "live items").set(self.items)
        gauge("cache_used_bytes", "logical item bytes").set(
            sum(cache.used_bytes for cache in self.shards))
        gauge("cache_slabs_total", "slabs in the pool").set(self.slabs_total)
        gauge("cache_slabs_free", "unowned slabs").set(self.slabs_free)

    def flush_all(self) -> int:
        return sum(cache.flush_all() for cache in self.shards)

    def check_invariants(self) -> None:
        for cache in self.shards:
            cache.check_invariants()


# -- shared command semantics ------------------------------------------------

class StoreFailed:
    """Sentinel: an incr/decr computed its number but the resized
    payload could not be stored — the client must hear SERVER_ERROR,
    not the number (the cache no longer holds it)."""

    __slots__ = ()


STORE_FAILED = StoreFailed()

#: the SERVER_ERROR message for a failed incr/decr store, shared so the
#: two servers reply identically.
INCR_STORE_FAILED_MSG = "object too large for cache"


def apply_storage(cache: SlabCache, cmd: p.SetCommand, data: bytes) -> bytes:
    """Apply a storage verb against ``cache``; returns the reply line."""
    expires = p.resolve_exptime(cmd.exptime, cache.clock())
    existing = cache.get(cmd.key)  # honours expiry
    if cmd.verb == "add" and existing is not None:
        return p.format_not_stored()
    if cmd.verb == "replace" and existing is None:
        return p.format_not_stored()
    if cmd.verb == "cas":
        if existing is None:
            return p.format_not_found()
        if existing.cas != cmd.cas_unique:
            return p.format_exists()
    if cmd.verb in ("append", "prepend"):
        if existing is None or existing.value is None:
            return p.format_not_stored()
        old_flags, old_data = existing.value
        data = (old_data + data if cmd.verb == "append"
                else data + old_data)
        # concatenation keeps the original flags/penalty/expiry
        ok = cache.set(cmd.key, len(cmd.key), len(data),
                       existing.penalty, value=(old_flags, data),
                       expires_at=existing.expires_at)
        return p.format_stored() if ok else p.format_not_stored()
    ok = cache.set(cmd.key, len(cmd.key), cmd.nbytes, cmd.penalty,
                   value=(cmd.flags, data), expires_at=expires)
    return p.format_stored() if ok else p.format_not_stored()


def apply_incr_decr(cache: SlabCache, cmd: p.IncrDecrCommand):
    """Apply incr/decr; returns the new value, ``None`` if the key is
    absent, ``bytes`` for a CLIENT_ERROR message, or :data:`STORE_FAILED`
    when the updated payload could not be stored."""
    item = cache.get(cmd.key)
    if item is None or item.value is None:
        return None
    flags, data = item.value
    # memcached treats values as unsigned ASCII decimals: "+10",
    # " 10 " and "1_0" all pass int() but are not valid numbers.
    if not data.isdigit():
        return b"cannot increment or decrement non-numeric value"
    current = int(data)
    if cmd.decrement:
        new = max(0, current - cmd.delta)  # memcached clamps at 0
    else:
        new = (current + cmd.delta) % (1 << 64)  # 64-bit wraparound
    payload = str(new).encode()
    ok = cache.set(cmd.key, len(cmd.key), len(payload), item.penalty,
                   value=(flags, payload), expires_at=item.expires_at)
    if not ok:
        # The old value was unlinked when the replacement was attempted;
        # answering the new number would claim a store that failed.
        return STORE_FAILED
    return new
