"""memtier-style load generator for the memcached-protocol servers.

Drives a server with ``connections`` concurrent asyncio connections,
each keeping ``pipeline`` requests on the wire, over a deterministic
op stream (every key choice, op choice, and value byte is a pure
splitmix64 function of ``(seed, connection, op index)`` — identical
seeds replay identical request streams).  Reports ops/s and batch
round-trip latency quantiles.

Used three ways:

* ``repro-kv loadgen`` — CLI against any host:port (or ``--spawn`` to
  self-host a server for a one-command smoke test);
* ``benchmarks/record_server.py`` — the tracked ops/s + p99 trajectory
  (``BENCH_server.json``) comparing the async sharded front end to the
  legacy threaded server;
* the loadgen e2e test, which replays a tiny run against the async
  server and checks the accounting adds up.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.bloom.hashing import splitmix64

_GET_LINE = b"get %b\r\n"
_SET_LINE = b"set %b %d 0 %d\r\n"


@dataclass(frozen=True)
class LoadgenConfig:
    """Workload shape; every field has a memtier-ish counterpart."""

    connections: int = 64
    pipeline: int = 8
    ops: int = 50_000
    #: fraction of ops that are GETs (the rest are SETs).
    get_ratio: float = 0.9
    #: size of the key universe (keys are ``k<nnn>``).
    keys: int = 10_000
    #: value payload bytes for SETs (deterministic filler).
    value_size: int = 64
    #: penalty (seconds) encoded into the flags field of SETs.
    penalty: float = 0.001
    #: fraction of ops aimed at the hot 10% of the key universe
    #: (0.0 = uniform; 0.9 ≈ a memtier gaussian-ish skew).
    hot_fraction: float = 0.0
    seed: int = 0
    #: SET the whole key universe once before measuring, so GETs hit.
    preload: bool = True

    def __post_init__(self) -> None:
        if self.connections < 1 or self.pipeline < 1:
            raise ValueError("connections and pipeline must be >= 1")
        if not 0.0 <= self.get_ratio <= 1.0:
            raise ValueError("get_ratio must be in [0, 1]")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.keys < 1 or self.ops < 1:
            raise ValueError("keys and ops must be >= 1")


@dataclass
class LoadgenResult:
    """Aggregated measurements of one loadgen run."""

    ops: int = 0
    gets: int = 0
    sets: int = 0
    hits: int = 0
    errors: int = 0
    elapsed: float = 0.0
    #: per-batch round-trip latencies, seconds (one batch = ``pipeline``
    #: requests written back-to-back, measured write→last reply).
    batch_latencies: list[float] = field(default_factory=list)

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.elapsed if self.elapsed else 0.0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.gets if self.gets else 0.0

    def latency_quantile(self, q: float) -> float:
        """Batch round-trip latency quantile, seconds (0 if unmeasured)."""
        if not self.batch_latencies:
            return 0.0
        ordered = sorted(self.batch_latencies)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def format(self) -> str:
        p50 = self.latency_quantile(0.50) * 1e6
        p99 = self.latency_quantile(0.99) * 1e6
        return (f"{self.ops} ops in {self.elapsed:.3f}s = "
                f"{self.ops_per_sec:,.0f} ops/s | "
                f"gets {self.gets} (hit ratio {self.hit_ratio:.3f}), "
                f"sets {self.sets}, errors {self.errors} | "
                f"batch RTT p50 {p50:,.0f}us p99 {p99:,.0f}us")


def _value_for(key_idx: int, size: int, seed: int) -> bytes:
    """Deterministic filler payload for key ``key_idx``."""
    pattern = b"%016x" % splitmix64(seed ^ (key_idx * 0x9E37 + 1))
    return (pattern * (size // 16 + 1))[:size]


def _key_index(draw: int, cfg: LoadgenConfig) -> int:
    """Map a 64-bit draw to a key index, honouring ``hot_fraction``."""
    if cfg.hot_fraction and (draw >> 32) % 1000 < cfg.hot_fraction * 1000:
        hot = max(1, cfg.keys // 10)
        return (draw & 0xFFFFFFFF) % hot
    return (draw & 0xFFFFFFFF) % cfg.keys


async def _drive_connection(host: str, port: int, conn_id: int,
                            ops: int, cfg: LoadgenConfig,
                            result: LoadgenResult) -> None:
    """One connection's worth of pipelined batches."""
    reader, writer = await asyncio.open_connection(host, port)
    readline = reader.readline
    readexactly = reader.readexactly
    try:
        done = 0
        op_idx = 0
        base = cfg.seed ^ (conn_id * 0x9E3779B9)
        while done < ops:
            batch = min(cfg.pipeline, ops - done)
            expect: list[bool] = []  # per request: is it a GET?
            out = bytearray()
            for _ in range(batch):
                draw = splitmix64(base ^ op_idx)
                op_idx += 1
                key_idx = _key_index(draw, cfg)
                key = b"k%d" % key_idx
                if (draw >> 52) / 4096.0 < cfg.get_ratio:
                    out += _GET_LINE % key
                    expect.append(True)
                else:
                    value = _value_for(key_idx, cfg.value_size, cfg.seed)
                    flags = max(0, int(round(cfg.penalty * 1e6)))
                    out += _SET_LINE % (key, flags, len(value))
                    out += value + b"\r\n"
                    expect.append(False)
            started = time.perf_counter()
            writer.write(bytes(out))
            await writer.drain()
            for is_get in expect:
                if is_get:
                    result.gets += 1
                    line = await readline()
                    while line.startswith(b"VALUE "):
                        nbytes = int(line.split()[3])
                        await readexactly(nbytes + 2)
                        result.hits += 1
                        line = await readline()
                    if line != b"END\r\n":
                        result.errors += 1
                else:
                    result.sets += 1
                    if await readline() != b"STORED\r\n":
                        result.errors += 1
            result.batch_latencies.append(time.perf_counter() - started)
            done += batch
        result.ops += done
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass


async def _preload(host: str, port: int, cfg: LoadgenConfig) -> None:
    """SET every key once (pipelined) so the measured GETs can hit."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        flags = max(0, int(round(cfg.penalty * 1e6)))
        batch = 256
        for start in range(0, cfg.keys, batch):
            out = bytearray()
            n = min(batch, cfg.keys - start)
            for key_idx in range(start, start + n):
                value = _value_for(key_idx, cfg.value_size, cfg.seed)
                out += _SET_LINE % (b"k%d" % key_idx, flags, len(value))
                out += value + b"\r\n"
            writer.write(bytes(out))
            await writer.drain()
            for _ in range(n):
                await reader.readline()  # STORED / NOT_STORED
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass


async def run_loadgen(host: str, port: int,
                      cfg: LoadgenConfig) -> LoadgenResult:
    """Run the full workload; returns aggregated measurements."""
    if cfg.preload:
        await _preload(host, port, cfg)
    result = LoadgenResult()
    share, extra = divmod(cfg.ops, cfg.connections)
    started = time.perf_counter()
    await asyncio.gather(*(
        _drive_connection(host, port, conn_id,
                          share + (1 if conn_id < extra else 0), cfg, result)
        for conn_id in range(cfg.connections) if share or conn_id < extra))
    result.elapsed = time.perf_counter() - started
    return result


def run_loadgen_sync(host: str, port: int,
                     cfg: LoadgenConfig) -> LoadgenResult:
    """Blocking wrapper around :func:`run_loadgen`."""
    return asyncio.run(run_loadgen(host, port, cfg))
