"""Small synchronous client for the memcached text protocol."""

from __future__ import annotations

import socket

from repro.server import protocol as p


class CacheClient:
    """Blocking client speaking the server's protocol subset.

    The ``penalty`` argument of :meth:`set` rides in the protocol's
    flags field as microseconds (see :mod:`repro.server.protocol`).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 11211,
                 timeout: float = 5.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    def close(self) -> None:
        try:
            self._sock.sendall(b"quit\r\n")
        except OSError:
            pass
        self._rfile.close()
        self._sock.close()

    def __enter__(self) -> "CacheClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- operations ---------------------------------------------------------
    def _storage(self, verb: str, key: str, data: bytes, penalty: float,
                 exptime: int) -> bool:
        flags = max(0, int(round(penalty * 1e6)))
        line = f"{verb} {key} {flags} {exptime} {len(data)}\r\n".encode()
        self._sock.sendall(line + data + b"\r\n")
        resp = self._readline()
        if resp == b"STORED":
            return True
        if resp == b"NOT_STORED":
            return False
        raise RuntimeError(f"unexpected {verb} response: {resp!r}")

    def set(self, key: str, data: bytes, penalty: float = 0.1,
            exptime: int = 0) -> bool:
        return self._storage("set", key, data, penalty, exptime)

    def add(self, key: str, data: bytes, penalty: float = 0.1,
            exptime: int = 0) -> bool:
        """Store only if the key is absent."""
        return self._storage("add", key, data, penalty, exptime)

    def replace(self, key: str, data: bytes, penalty: float = 0.1,
                exptime: int = 0) -> bool:
        """Store only if the key is present."""
        return self._storage("replace", key, data, penalty, exptime)

    def append(self, key: str, data: bytes) -> bool:
        """Concatenate after an existing value."""
        return self._storage("append", key, data, 0.0, 0)

    def prepend(self, key: str, data: bytes) -> bool:
        """Concatenate before an existing value."""
        return self._storage("prepend", key, data, 0.0, 0)

    def cas(self, key: str, data: bytes, cas_unique: int,
            penalty: float = 0.1, exptime: int = 0) -> bool | None:
        """Check-and-set: store only if the item's cas id still matches.

        Returns True (stored), False (item changed since ``gets``:
        EXISTS), or None (item is gone: NOT_FOUND).
        """
        flags = max(0, int(round(penalty * 1e6)))
        line = (f"cas {key} {flags} {exptime} {len(data)} "
                f"{cas_unique}\r\n".encode())
        self._sock.sendall(line + data + b"\r\n")
        resp = self._readline()
        if resp == b"STORED":
            return True
        if resp == b"EXISTS":
            return False
        if resp == b"NOT_FOUND":
            return None
        raise RuntimeError(f"unexpected cas response: {resp!r}")

    def incr(self, key: str, delta: int = 1) -> int | None:
        """Increment a numeric value; None if the key is absent."""
        return self._incr_decr("incr", key, delta)

    def decr(self, key: str, delta: int = 1) -> int | None:
        """Decrement a numeric value (clamped at 0); None if absent."""
        return self._incr_decr("decr", key, delta)

    def _incr_decr(self, verb: str, key: str, delta: int) -> int | None:
        self._sock.sendall(f"{verb} {key} {delta}\r\n".encode())
        resp = self._readline()
        if resp == b"NOT_FOUND":
            return None
        if resp.startswith(b"CLIENT_ERROR"):
            raise RuntimeError(resp.decode())
        return int(resp)

    def touch(self, key: str, exptime: int) -> bool:
        """Update a key's expiry without touching its value."""
        self._sock.sendall(f"touch {key} {exptime}\r\n".encode())
        resp = self._readline()
        if resp == b"TOUCHED":
            return True
        if resp == b"NOT_FOUND":
            return False
        raise RuntimeError(f"unexpected touch response: {resp!r}")

    def flush_all(self) -> None:
        """Drop every item on the server."""
        self._sock.sendall(b"flush_all\r\n")
        resp = self._readline()
        if resp != b"OK":
            raise RuntimeError(f"unexpected flush_all response: {resp!r}")

    def get(self, key: str) -> bytes | None:
        self._sock.sendall(f"get {key}\r\n".encode())
        value = None
        while True:
            line = self._readline()
            if line == b"END":
                return value
            if line.startswith(b"VALUE "):
                _tag, _key, _flags, nbytes = line.split()
                value = self._rfile.read(int(nbytes))
                self._rfile.read(2)  # CRLF
            else:
                raise RuntimeError(f"unexpected get response: {line!r}")

    def gets(self, key: str) -> tuple[bytes, int] | None:
        """Retrieve ``(value, cas_unique)`` for use with :meth:`cas`."""
        self._sock.sendall(f"gets {key}\r\n".encode())
        result = None
        while True:
            line = self._readline()
            if line == b"END":
                return result
            if line.startswith(b"VALUE "):
                _tag, _key, _flags, nbytes, cas_unique = line.split()
                value = self._rfile.read(int(nbytes))
                self._rfile.read(2)  # CRLF
                result = (value, int(cas_unique))
            else:
                raise RuntimeError(f"unexpected gets response: {line!r}")

    def delete(self, key: str) -> bool:
        self._sock.sendall(f"delete {key}\r\n".encode())
        resp = self._readline()
        if resp == b"DELETED":
            return True
        if resp == b"NOT_FOUND":
            return False
        raise RuntimeError(f"unexpected delete response: {resp!r}")

    def stats(self, arg: str | None = None) -> dict[str, str]:
        """``stats`` (counters) or ``stats detail`` (full registry)."""
        line = b"stats\r\n" if arg is None else f"stats {arg}\r\n".encode()
        self._sock.sendall(line)
        out: dict[str, str] = {}
        while True:
            line = self._readline()
            if line == b"END":
                return out
            if line.startswith(b"STAT "):
                _tag, key, value = line.decode().split(None, 2)
                out[key] = value
            else:
                raise RuntimeError(f"unexpected stats response: {line!r}")

    def version(self) -> str:
        self._sock.sendall(b"version\r\n")
        line = self._readline()
        if not line.startswith(b"VERSION "):
            raise RuntimeError(f"unexpected version response: {line!r}")
        return line.decode().split(None, 1)[1]

    def _readline(self) -> bytes:
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return line.rstrip(b"\r\n")
