"""Small synchronous client for the memcached text protocol."""

from __future__ import annotations

import socket
import time

from repro.bloom.hashing import splitmix64
from repro.server import protocol as p


class CacheClient:
    """Blocking client speaking the server's protocol subset.

    The ``penalty`` argument of :meth:`set` rides in the protocol's
    flags field as microseconds (see :mod:`repro.server.protocol`).

    Resilience: ``timeout`` bounds every socket op; with ``retries > 0``
    idempotent operations (get/gets/set-family/delete/touch/stats/
    version/flush_all) survive connection failures — the client
    reconnects and retries with exponential backoff and deterministic
    jitter (seeded by ``retry_seed``, so test runs replay identically).
    ``cas``/``incr``/``decr`` are never retried: a retry after a lost
    response could apply a non-idempotent op twice.  ``retries=0`` (the
    default) is the exact pre-resilience behaviour.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 11211,
                 timeout: float = 5.0, retries: int = 0,
                 backoff_base: float = 0.05, backoff_factor: float = 2.0,
                 backoff_jitter: float = 0.5, retry_seed: int = 0,
                 _sleep=time.sleep) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self._addr = (host, port)
        self._timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self.retry_seed = retry_seed
        self.reconnects = 0
        self._retry_seq = 0
        self._sleep = _sleep
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(self._addr,
                                              timeout=self._timeout)
        self._rfile = self._sock.makefile("rb")

    def _reconnect(self) -> None:
        try:
            self._rfile.close()
            self._sock.close()
        except OSError:
            pass
        self.reconnects += 1
        self._connect()

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff with a deterministic jitter draw."""
        self._retry_seq += 1
        u = splitmix64(self.retry_seed ^ (self._retry_seq * 0x9E37)) / 2.0**64
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return base * (1.0 + self.backoff_jitter * u)

    def _retry(self, fn, *args):
        """Run ``fn`` with bounded retries over connection failures."""
        attempt = 0
        while True:
            try:
                return fn(*args)
            except (ConnectionError, socket.timeout, OSError):
                if attempt >= self.retries:
                    raise
                attempt += 1
                self._sleep(self._backoff_delay(attempt))
                try:
                    self._reconnect()
                except OSError:
                    # server still gone; the next loop iteration's send
                    # fails fast and consumes the next attempt
                    pass

    def close(self) -> None:
        try:
            self._sock.sendall(b"quit\r\n")
        except OSError:
            pass
        self._rfile.close()
        self._sock.close()

    def __enter__(self) -> "CacheClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- operations ---------------------------------------------------------
    def _storage(self, verb: str, key: str, data: bytes, penalty: float,
                 exptime: int) -> bool:
        return self._retry(self._storage_once, verb, key, data, penalty,
                           exptime)

    def _storage_once(self, verb: str, key: str, data: bytes, penalty: float,
                      exptime: int) -> bool:
        flags = max(0, int(round(penalty * 1e6)))
        line = f"{verb} {key} {flags} {exptime} {len(data)}\r\n".encode()
        self._sock.sendall(line + data + b"\r\n")
        resp = self._readline()
        if resp == b"STORED":
            return True
        if resp == b"NOT_STORED":
            return False
        raise RuntimeError(f"unexpected {verb} response: {resp!r}")

    def set(self, key: str, data: bytes, penalty: float = 0.1,
            exptime: int = 0) -> bool:
        return self._storage("set", key, data, penalty, exptime)

    def add(self, key: str, data: bytes, penalty: float = 0.1,
            exptime: int = 0) -> bool:
        """Store only if the key is absent."""
        return self._storage("add", key, data, penalty, exptime)

    def replace(self, key: str, data: bytes, penalty: float = 0.1,
                exptime: int = 0) -> bool:
        """Store only if the key is present."""
        return self._storage("replace", key, data, penalty, exptime)

    def append(self, key: str, data: bytes) -> bool:
        """Concatenate after an existing value."""
        return self._storage("append", key, data, 0.0, 0)

    def prepend(self, key: str, data: bytes) -> bool:
        """Concatenate before an existing value."""
        return self._storage("prepend", key, data, 0.0, 0)

    def cas(self, key: str, data: bytes, cas_unique: int,
            penalty: float = 0.1, exptime: int = 0) -> bool | None:
        """Check-and-set: store only if the item's cas id still matches.

        Returns True (stored), False (item changed since ``gets``:
        EXISTS), or None (item is gone: NOT_FOUND).
        """
        flags = max(0, int(round(penalty * 1e6)))
        line = (f"cas {key} {flags} {exptime} {len(data)} "
                f"{cas_unique}\r\n".encode())
        self._sock.sendall(line + data + b"\r\n")
        resp = self._readline()
        if resp == b"STORED":
            return True
        if resp == b"EXISTS":
            return False
        if resp == b"NOT_FOUND":
            return None
        raise RuntimeError(f"unexpected cas response: {resp!r}")

    def incr(self, key: str, delta: int = 1) -> int | None:
        """Increment a numeric value; None if the key is absent."""
        return self._incr_decr("incr", key, delta)

    def decr(self, key: str, delta: int = 1) -> int | None:
        """Decrement a numeric value (clamped at 0); None if absent."""
        return self._incr_decr("decr", key, delta)

    def _incr_decr(self, verb: str, key: str, delta: int) -> int | None:
        self._sock.sendall(f"{verb} {key} {delta}\r\n".encode())
        resp = self._readline()
        if resp == b"NOT_FOUND":
            return None
        if resp.startswith((b"CLIENT_ERROR", b"SERVER_ERROR", b"ERROR")):
            # Without the SERVER_ERROR/ERROR cases, int(resp) below
            # raised a bare ValueError that hid the server's message.
            raise RuntimeError(resp.decode())
        return int(resp)

    def touch(self, key: str, exptime: int) -> bool:
        return self._retry(self._touch_once, key, exptime)

    def _touch_once(self, key: str, exptime: int) -> bool:
        """Update a key's expiry without touching its value."""
        self._sock.sendall(f"touch {key} {exptime}\r\n".encode())
        resp = self._readline()
        if resp == b"TOUCHED":
            return True
        if resp == b"NOT_FOUND":
            return False
        raise RuntimeError(f"unexpected touch response: {resp!r}")

    def flush_all(self) -> None:
        return self._retry(self._flush_all_once)

    def _flush_all_once(self) -> None:
        """Drop every item on the server."""
        self._sock.sendall(b"flush_all\r\n")
        resp = self._readline()
        if resp != b"OK":
            raise RuntimeError(f"unexpected flush_all response: {resp!r}")

    def get(self, key: str) -> bytes | None:
        return self._retry(self._get_once, key)

    def _get_once(self, key: str) -> bytes | None:
        self._sock.sendall(f"get {key}\r\n".encode())
        value = None
        while True:
            line = self._readline()
            if line == b"END":
                return value
            if line.startswith(b"VALUE "):
                _tag, _key, _flags, nbytes = line.split()
                value = self._read_exact(int(nbytes))
                self._read_exact(2)  # CRLF
            else:
                raise RuntimeError(f"unexpected get response: {line!r}")

    def gets(self, key: str) -> tuple[bytes, int] | None:
        return self._retry(self._gets_once, key)

    def _gets_once(self, key: str) -> tuple[bytes, int] | None:
        """Retrieve ``(value, cas_unique)`` for use with :meth:`cas`."""
        self._sock.sendall(f"gets {key}\r\n".encode())
        result = None
        while True:
            line = self._readline()
            if line == b"END":
                return result
            if line.startswith(b"VALUE "):
                _tag, _key, _flags, nbytes, cas_unique = line.split()
                value = self._read_exact(int(nbytes))
                self._read_exact(2)  # CRLF
                result = (value, int(cas_unique))
            else:
                raise RuntimeError(f"unexpected gets response: {line!r}")

    def delete(self, key: str) -> bool:
        return self._retry(self._delete_once, key)

    def _delete_once(self, key: str) -> bool:
        self._sock.sendall(f"delete {key}\r\n".encode())
        resp = self._readline()
        if resp == b"DELETED":
            return True
        if resp == b"NOT_FOUND":
            return False
        raise RuntimeError(f"unexpected delete response: {resp!r}")

    def stats(self, arg: str | None = None) -> dict[str, str]:
        return self._retry(self._stats_once, arg)

    def _stats_once(self, arg: str | None) -> dict[str, str]:
        """``stats`` (counters) or ``stats detail`` (full registry)."""
        line = b"stats\r\n" if arg is None else f"stats {arg}\r\n".encode()
        self._sock.sendall(line)
        out: dict[str, str] = {}
        while True:
            line = self._readline()
            if line == b"END":
                return out
            if line.startswith(b"STAT "):
                _tag, key, value = line.decode().split(None, 2)
                out[key] = value
            else:
                raise RuntimeError(f"unexpected stats response: {line!r}")

    def version(self) -> str:
        return self._retry(self._version_once)

    def _version_once(self) -> str:
        self._sock.sendall(b"version\r\n")
        line = self._readline()
        if not line.startswith(b"VERSION "):
            raise RuntimeError(f"unexpected version response: {line!r}")
        return line.decode().split(None, 1)[1]

    def _readline(self) -> bytes:
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return line.rstrip(b"\r\n")

    def _read_exact(self, nbytes: int) -> bytes:
        """Read exactly ``nbytes`` or raise ``ConnectionError``.

        A bare ``file.read(n)`` returns *up to* ``n`` bytes at EOF: if
        the server dies mid-data-block, the old code handed a silently
        truncated value back to the caller as if it were complete.
        """
        data = self._rfile.read(nbytes)
        if len(data) != nbytes:
            raise ConnectionError(
                f"server closed the connection mid-value "
                f"({len(data)}/{nbytes} bytes)")
        return data
