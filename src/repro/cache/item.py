"""Cache item: an intrusive doubly-linked LRU node carrying KV metadata."""

from __future__ import annotations


class Item:
    """A cached key-value item.

    The item doubles as its own LRU-list node (``prev``/``next``), the
    standard intrusive-list trick that makes hit handling allocation-free
    on the hot path.

    Attributes:
        key: the cache key (int in simulations, str/bytes in the server).
        key_size / value_size: logical sizes in bytes; the slab slot the
            item occupies is derived from their sum plus the per-item
            overhead configured in :class:`~repro.cache.sizeclasses.SizeClassConfig`.
        penalty: the miss penalty of this key in seconds — the time the
            backend needs to recompute the value.  PAMA bins on this.
        class_idx / bin_idx: the queue this item currently lives in.
        last_access: cache access tick of the most recent GET hit or SET
            (the "age" used by the Facebook rebalancer).
        value: optional payload (only the real server stores one; the
            simulator leaves it ``None`` to keep memory flat).
    """

    __slots__ = ("key", "key_size", "value_size", "penalty", "class_idx",
                 "bin_idx", "last_access", "value", "prev", "next", "seg",
                 "expires_at", "cas")

    def __init__(self, key: object, key_size: int, value_size: int,
                 penalty: float, class_idx: int = -1, bin_idx: int = 0,
                 value: object = None, expires_at: float = 0.0) -> None:
        self.key = key
        self.key_size = key_size
        self.value_size = value_size
        self.penalty = penalty
        self.class_idx = class_idx
        self.bin_idx = bin_idx
        self.last_access = 0
        self.value = value
        #: absolute expiry time in seconds (0.0 = never expires).
        self.expires_at = expires_at
        #: CAS unique id, stamped by SlabCache.set on every store (the
        #: memcached ``gets``/``cas`` check-and-set token).
        self.cas = 0
        self.prev: Item | None = None
        self.next: Item | None = None
        # Segment index maintained by a SegmentedLRU observer (-1 = above
        # all tracked bottom segments).
        self.seg = -1

    @property
    def total_size(self) -> int:
        """Logical item footprint excluding allocator overhead."""
        return self.key_size + self.value_size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Item(key={self.key!r}, size={self.total_size}, "
                f"penalty={self.penalty:.4f}, q=({self.class_idx},{self.bin_idx}))")
