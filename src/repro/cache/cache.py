"""SlabCache: the Memcached-like key-value cache substrate.

Provides GET/SET/DELETE over slab-allocated size classes, with all slab
(re)allocation decisions delegated to a pluggable
:class:`~repro.policies.base.AllocationPolicy`.  This is the common
engine under the original-Memcached, PSA, pre-PAMA and PAMA schemes the
paper evaluates.

Memory model: capacity is split into fixed-size slabs; a queue
(size-class × penalty-bin) owns whole slabs and stores one item per
slot.  A migration logically evicts the donor's LRU items until one
slab's worth of slots is free, then moves the slab — byte-identical in
observable behaviour to the paper's "discard bottom items and compact".
"""

from __future__ import annotations

import math
from typing import Iterator

from repro import obs as _obs
from repro._util import fmt_bytes
from repro.bloom.hashing import PAIR_SEED_DELTA, hash_key
from repro.cache.errors import (InvalidItemError, ItemTooLargeError,
                                OutOfMemoryError, PolicyError)
from repro.cache.item import Item
from repro.cache.queue import Queue
from repro.cache.sizeclasses import SizeClassConfig
from repro.cache.slab import SlabPool
from repro.cache.stats import CacheStats
from repro.policies.base import AllocationPolicy, default_donor


class SlabCache:
    """A slab-allocated, policy-driven KV cache.

    Args:
        capacity_bytes: total cache memory (split into slabs).
        policy: the allocation policy instance (attached on construction;
            one policy instance per cache).
        size_classes: class geometry; defaults to Memcached-style 1 MiB
            slabs with doubling classes from 64 B.
    """

    def __init__(self, capacity_bytes: int, policy: AllocationPolicy,
                 size_classes: SizeClassConfig | None = None,
                 clock=None) -> None:
        import time as _time
        self.size_classes = size_classes or SizeClassConfig()
        #: wall-clock source for item expiry (injectable for tests).
        self.clock = clock or _time.time
        self.pool = SlabPool(capacity_bytes, self.size_classes.slab_size)
        self.policy = policy
        self.index: dict[object, Item] = {}
        self.queues: dict[tuple[int, int], Queue] = {}
        self.stats = CacheStats()
        #: monotonically increasing access tick (GETs + SETs + DELETEs);
        #: the paper's notion of time for windows and item ages.
        self.accesses = 0
        #: monotonically increasing CAS id; every successful SET stamps
        #: the item with the next value (memcached's ``cas unique``).
        self.cas_tick = 0
        # Migrations requested by a policy callback *during* an operation
        # are deferred until the operation completes: applying them
        # immediately could evict the very item being served.
        self._pending_migrations: list[tuple[Queue, Queue]] = []
        self._in_operation = False
        #: optional observability attachments (see repro.obs); None means
        #: every instrumentation point is a single attribute check.
        self.obs = None
        self.events = None
        #: optional TimelineRecorder; eviction/migration notes go to it.
        self.timeline = None
        if _obs.is_enabled():
            self.attach_obs(_obs.get_registry(), _obs.get_event_trace())
        policy.attach(self)
        #: hash-once: when the policy probes Bloom filters on the access
        #: path, the cache computes the key's base hash pair per request
        #: and threads it through the policy callbacks.
        self._wants_hashes = bool(getattr(policy, "wants_key_hashes", False))

    def attach_obs(self, registry, events=None) -> None:
        """Attach a metrics registry (and optional event trace).

        Creates the cache's counters up front so hot paths only call
        ``Counter.inc`` through pre-bound references.
        """
        self.obs = registry
        self.events = events
        counter = registry.counter
        self._c_gets = counter("cache_gets_total", "GET lookups")
        self._c_hits = counter("cache_hits_total", "GET hits")
        self._c_misses = counter("cache_misses_total", "GET misses")
        self._c_sets = counter("cache_sets_total", "successful SETs")
        self._c_set_failures = counter(
            "cache_set_failures_total", "SETs that could not be stored")
        self._c_evictions = counter(
            "cache_evictions_total", "items evicted for space")
        self._c_migrations = counter(
            "cache_migrations_total", "slab migrations between queues")
        self._c_expired = counter(
            "cache_expired_total", "items dropped at expiry")

    def attach_timeline(self, timeline) -> None:
        """Attach a :class:`repro.obs.timeline.TimelineRecorder`.

        The cache only pushes cold-path notes (evictions, migrations);
        per-request window accounting stays with the replay loop that
        owns the global tick.

        Always re-points ``snapshot_fn`` at *this* cache: a recorder
        reused across caches must not keep snapshotting the first one
        it met (that stale hook silently froze Fig 3/4 series when a
        TimelineRecorder outlived a simulator).
        """
        self.timeline = timeline
        timeline.snapshot_fn = lambda: (self.class_slab_distribution(),
                                        self.slab_distribution())

    def update_obs_gauges(self) -> None:
        """Refresh point-in-time gauges (called on stats/export, not in
        hot paths)."""
        if self.obs is None:
            return
        gauge = self.obs.gauge
        gauge("cache_items", "live items").set(len(self.index))
        gauge("cache_used_bytes", "logical item bytes").set(self.used_bytes)
        gauge("cache_slabs_total", "slabs in the pool").set(self.pool.total)
        gauge("cache_slabs_free", "unowned slabs").set(self.pool.free)

    # ------------------------------------------------------------------
    # queue management
    # ------------------------------------------------------------------
    def queue_for(self, class_idx: int, bin_idx: int) -> Queue:
        """Get or lazily create the queue for (class, bin)."""
        qid = (class_idx, bin_idx)
        queue = self.queues.get(qid)
        if queue is None:
            queue = Queue(class_idx, bin_idx,
                          self.size_classes.slot_size(class_idx),
                          self.size_classes.slots_per_slab(class_idx))
            self.queues[qid] = queue
            self.policy.on_queue_created(queue)
        return queue

    def iter_queues(self) -> Iterator[Queue]:
        return iter(self.queues.values())

    def slab_distribution(self) -> dict[tuple[int, int], int]:
        """Slab count per queue — the series Figs 3 and 4 plot."""
        return {q.qid: q.slabs for q in self.queues.values() if q.slabs}

    def class_slab_distribution(self) -> dict[int, int]:
        """Slab count per size class (bins folded together)."""
        dist: dict[int, int] = {}
        for q in self.queues.values():
            if q.slabs:
                dist[q.class_idx] = dist.get(q.class_idx, 0) + q.slabs
        return dist

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def get(self, key: object,
            miss_info: tuple[int, int, float] | None = None) -> Item | None:
        """Look up ``key``; returns the Item on a hit, None on a miss.

        ``miss_info`` is ``(key_size, value_size, penalty)`` for the key,
        when the caller (the trace simulator) knows it; it feeds policy
        miss accounting and the service-time statistics.  A real server
        calls ``get(key)`` plain and penalties are accounted on the
        subsequent fill SET instead.

        This is the compatibility wrapper; :meth:`lookup` is the same
        operation with scalar arguments (no tuple to build or unpack on
        the replay hot path).
        """
        if miss_info is None:
            return self.lookup(key, -1, 0, math.nan)
        key_size, value_size, penalty = miss_info
        return self.lookup(key, key_size, value_size, penalty)

    def lookup(self, key: object, key_size: int, value_size: int,
               penalty: float) -> Item | None:
        """GET with scalar miss accounting — the replay engine hot path.

        ``key_size < 0`` means "miss details unknown" (the plain
        ``get(key)`` server path): the miss is counted but no per-queue
        miss accounting happens.  Behaviour is identical to
        :meth:`get`; only the calling convention differs.
        """
        self.accesses += 1
        stats = self.stats
        stats.gets += 1
        if self._wants_hashes:
            # Hash-once: the single place a request's key meets the hash
            # function; every Bloom probe downstream reuses this pair.
            h1 = hash_key(key, 0)
            h2 = hash_key(key, PAIR_SEED_DELTA) | 1
        else:
            h1 = h2 = 0
        self._in_operation = True
        try:
            item = self.index.get(key)
            if item is not None and item.expires_at \
                    and self.clock() >= item.expires_at:
                self._unlink(item)
                stats.expired += 1
                if self.obs is not None:
                    self._c_expired.inc()
                item = None
            if item is not None:
                queue = self.queues[(item.class_idx, item.bin_idx)]
                qstats = queue.stats
                qstats.gets += 1
                qstats.hits += 1
                stats.hits += 1
                if self.obs is not None:
                    self._c_gets.inc()
                    self._c_hits.inc()
                self.policy.on_hit(queue, item, h1, h2)
                queue.lru.move_to_front(item)
                item.last_access = self.accesses
                return item
            # miss
            stats.misses += 1
            if self.obs is not None:
                self._c_gets.inc()
                self._c_misses.inc()
            class_idx = -1
            if key_size >= 0:
                try:
                    class_idx = self.size_classes.class_for_size(
                        key_size + value_size)
                except ItemTooLargeError:
                    class_idx = -1
                if penalty == penalty:  # not NaN
                    stats.total_miss_penalty += penalty
                bin_idx = (self.policy.bin_for(penalty)
                           if penalty == penalty else 0)
                if class_idx >= 0:
                    q = self.queue_for(class_idx, bin_idx)
                    q.stats.gets += 1
                    q.stats.misses += 1
            self.policy.on_miss(key, class_idx, penalty, h1, h2)
            return None
        finally:
            self._in_operation = False
            if self._pending_migrations:
                self._flush_migrations()

    def lookup_hashed(self, key: object, key_size: int, value_size: int,
                      penalty: float, h1: int, h2: int,
                      class_idx: int, bin_idx: int) -> Item | None:
        """:meth:`lookup` with the derived columns precomputed.

        The derive pass (:mod:`repro.sim.derive`) supplies per-request
        values this method would otherwise compute:

        * ``(h1, h2)`` — the key's base hash pair (``0, 0`` when the
          policy does not want hashes, exactly like :meth:`lookup`);
        * ``class_idx`` — the size class for ``key_size + value_size``;
          ``-1`` when the item is too large or ``key_size < 0``, ``-2``
          when the sizes are invalid (non-positive) and the scalar
          path's :class:`InvalidItemError` must be re-raised;
        * ``bin_idx`` — ``policy.bin_for(penalty)``, valid only for
          policies with static :meth:`~repro.policies.base.AllocationPolicy.bin_edges`;
          ``-1`` re-dispatches to ``bin_for`` (NaN/negative penalties,
          so invalid input raises exactly where the scalar path does).

        Behaviour is identical to :meth:`lookup`; only the computation
        is hoisted out of the per-request path.
        """
        self.accesses += 1
        stats = self.stats
        stats.gets += 1
        self._in_operation = True
        try:
            item = self.index.get(key)
            if item is not None and item.expires_at \
                    and self.clock() >= item.expires_at:
                self._unlink(item)
                stats.expired += 1
                if self.obs is not None:
                    self._c_expired.inc()
                item = None
            if item is not None:
                queue = self.queues[(item.class_idx, item.bin_idx)]
                qstats = queue.stats
                qstats.gets += 1
                qstats.hits += 1
                stats.hits += 1
                if self.obs is not None:
                    self._c_gets.inc()
                    self._c_hits.inc()
                self.policy.on_hit(queue, item, h1, h2)
                queue.lru.move_to_front(item)
                item.last_access = self.accesses
                return item
            # miss
            stats.misses += 1
            if self.obs is not None:
                self._c_gets.inc()
                self._c_misses.inc()
            if key_size >= 0:
                if class_idx == -2:
                    # invalid sizes: raise the scalar path's error
                    self.size_classes.class_for_size(key_size + value_size)
                if penalty == penalty:  # not NaN
                    stats.total_miss_penalty += penalty
                    if bin_idx < 0:
                        bin_idx = self.policy.bin_for(penalty)
                else:
                    bin_idx = 0
                if class_idx >= 0:
                    q = self.queue_for(class_idx, bin_idx)
                    q.stats.gets += 1
                    q.stats.misses += 1
            else:
                class_idx = -1
            self.policy.on_miss(key, class_idx, penalty, h1, h2)
            return None
        finally:
            self._in_operation = False
            if self._pending_migrations:
                self._flush_migrations()

    def set(self, key: object, key_size: int, value_size: int,
            penalty: float, value: object = None,
            expires_at: float = 0.0) -> bool:
        """Store an item; returns False if it cannot be stored.

        An existing item under the same key is replaced (its slot is
        released first, so a same-class replacement never evicts).
        ``expires_at`` is an absolute clock time (0.0 = never).
        """
        if key_size < 0 or value_size < 0 or key_size + value_size <= 0:
            raise InvalidItemError(
                f"invalid sizes key={key_size} value={value_size}")
        if not (penalty >= 0):  # catches NaN and negatives
            raise InvalidItemError(f"penalty must be >= 0, got {penalty}")
        self.accesses += 1
        try:
            class_idx = self.size_classes.class_for_size(key_size + value_size)
        except ItemTooLargeError:
            self.stats.rejected_too_large += 1
            return False

        self._in_operation = True
        try:
            old = self.index.get(key)
            if old is not None:
                self._unlink(old)

            bin_idx = self.policy.bin_for(penalty)
            queue = self.queue_for(class_idx, bin_idx)
            item = Item(key, key_size, value_size, penalty, class_idx,
                        bin_idx, value, expires_at)
            try:
                self._ensure_slot(queue)
            except OutOfMemoryError:
                self.stats.set_failures += 1
                if self.obs is not None:
                    self._c_set_failures.inc()
                return False
            queue.lru.push_front(item)
            item.last_access = self.accesses
            self.cas_tick += 1
            item.cas = self.cas_tick
            self.index[key] = item
            queue.stats.sets += 1
            self.stats.sets += 1
            if self.obs is not None:
                self._c_sets.inc()
            self.policy.on_insert(queue, item)
            return True
        finally:
            self._in_operation = False
            if self._pending_migrations:
                self._flush_migrations()

    def set_classed(self, key: object, key_size: int, value_size: int,
                    penalty: float, class_idx: int, bin_idx: int) -> bool:
        """:meth:`set` with the size class and penalty bin precomputed.

        The derive pass only takes this path for rows it proved valid
        (``class_idx >= 0`` and ``bin_idx >= 0``): sizes positive and
        within the largest class, penalty finite and non-negative —
        precisely the checks :meth:`set` performs before computing the
        same two values.  Rows with any sentinel fall back to
        :meth:`set` so invalid input raises (or rejects) exactly as the
        scalar path would.  No ``value``/``expires_at``: trace replay
        stores size-only items.
        """
        self.accesses += 1
        self._in_operation = True
        try:
            old = self.index.get(key)
            if old is not None:
                self._unlink(old)

            queue = self.queue_for(class_idx, bin_idx)
            item = Item(key, key_size, value_size, penalty, class_idx,
                        bin_idx)
            try:
                self._ensure_slot(queue)
            except OutOfMemoryError:
                self.stats.set_failures += 1
                if self.obs is not None:
                    self._c_set_failures.inc()
                return False
            queue.lru.push_front(item)
            item.last_access = self.accesses
            self.cas_tick += 1
            item.cas = self.cas_tick
            self.index[key] = item
            queue.stats.sets += 1
            self.stats.sets += 1
            if self.obs is not None:
                self._c_sets.inc()
            self.policy.on_insert(queue, item)
            return True
        finally:
            self._in_operation = False
            if self._pending_migrations:
                self._flush_migrations()

    def delete(self, key: object) -> bool:
        """Remove ``key``; returns True if it was present."""
        self.accesses += 1
        item = self.index.get(key)
        if item is None:
            return False
        self._unlink(item)
        self.stats.deletes += 1
        return True

    def touch(self, key: object, expires_at: float) -> bool:
        """Update a live item's expiry; returns False if absent/expired."""
        item = self.index.get(key)
        if item is None:
            return False
        if item.expires_at and self.clock() >= item.expires_at:
            self._unlink(item)
            self.stats.expired += 1
            return False
        item.expires_at = expires_at
        return True

    def flush_all(self) -> int:
        """Drop every item (memcached ``flush_all``); slabs keep their
        class assignments, exactly like memcached's lazy invalidation.
        Returns the number of items dropped."""
        keys = list(self.index)
        for key in keys:
            self._unlink(self.index[key])
        self.stats.flushes += 1
        return len(keys)

    def __contains__(self, key: object) -> bool:
        return key in self.index

    def __len__(self) -> int:
        return len(self.index)

    @property
    def used_bytes(self) -> int:
        """Item bytes currently stored (ignoring slot rounding)."""
        return sum(i.total_size for i in self.index.values())

    # ------------------------------------------------------------------
    # space mechanics
    # ------------------------------------------------------------------
    def _ensure_slot(self, queue: Queue) -> None:
        """Make sure ``queue`` has at least one free slot."""
        guard = 0
        while queue.free_slots < 1:
            guard += 1
            if guard > self.pool.total + 4:
                raise PolicyError(
                    f"pressure resolution for {queue.qid} did not converge")
            if self.pool.free > 0 and self.policy.wants_free_slab(queue):
                self.pool.acquire(queue.qid)
                queue.slabs += 1
                queue.stats.slabs_received += 1
                continue
            must_migrate = queue.slabs == 0
            donor = self.policy.resolve_pressure(queue, must_migrate)
            if donor is None and must_migrate:
                if self.policy.allow_fallback_donor:
                    donor = default_donor(self, queue)
                if donor is None:
                    raise OutOfMemoryError(
                        f"no donor for empty queue {queue.qid}")
            if donor is None or donor is queue:
                self._evict_one(queue)
            else:
                self._migrate_slab(donor, queue)

    def _evict_one(self, queue: Queue) -> None:
        """Evict one item from ``queue`` (policy-chosen, default LRU)."""
        victim = self.policy.choose_victim(queue)
        if victim is not None:
            if (victim.class_idx, victim.bin_idx) != queue.qid:
                raise PolicyError(
                    f"policy chose victim {victim.key!r} from queue "
                    f"{(victim.class_idx, victim.bin_idx)}, not {queue.qid}")
            queue.lru.remove(victim)
        else:
            victim = queue.lru.pop_back()
        if victim is None:
            raise OutOfMemoryError(f"queue {queue.qid} has nothing to evict")
        del self.index[victim.key]
        queue.stats.evictions += 1
        self.stats.evictions += 1
        if self.obs is not None:
            self._c_evictions.inc()
        if self.timeline is not None:
            self.timeline.note_eviction()
        if self.events is not None:
            self.events.record("eviction", self.accesses, queue=queue.qid,
                               key=victim.key, penalty=victim.penalty,
                               size=victim.total_size)
        self.policy.on_evict(queue, victim)

    def _migrate_slab(self, donor: Queue, receiver: Queue) -> None:
        """Move one slab from ``donor`` to ``receiver``.

        Evicts the donor's LRU items until one slab's worth of slots is
        free (the paper's discard-and-compact), then transfers ownership.
        """
        if not donor.can_donate():
            raise PolicyError(
                f"policy {self.policy.name!r} chose slabless donor {donor.qid}")
        target_used = (donor.slabs - 1) * donor.slots_per_slab
        evicted = 0
        while donor.used_slots > target_used:
            self._evict_one(donor)
            evicted += 1
        self.pool.transfer(donor.qid, receiver.qid)
        donor.slabs -= 1
        receiver.slabs += 1
        donor.stats.slabs_donated += 1
        receiver.stats.slabs_received += 1
        self.stats.migrations += 1
        if self.obs is not None:
            self._c_migrations.inc()
        if self.timeline is not None:
            self.timeline.note_migration()
        if self.events is not None:
            self.events.record("slab_migration", self.accesses,
                               donor=donor.qid, receiver=receiver.qid,
                               evicted=evicted)

    def migrate(self, donor: Queue, receiver: Queue) -> None:
        """Proactively move one slab from ``donor`` to ``receiver``.

        Public entry point for policies that rebalance on a timer (PSA,
        Facebook's age balancer, the 1.4.11 automover, LAMA) rather than
        only under SET pressure.  A request made from inside a policy
        callback is deferred until the triggering cache operation
        completes (the migration's evictions must not race the item
        being served).
        """
        if donor is receiver:
            raise PolicyError("donor and receiver are the same queue")
        if self._in_operation:
            self._pending_migrations.append((donor, receiver))
        else:
            self._migrate_slab(donor, receiver)

    def _flush_migrations(self) -> None:
        while self._pending_migrations:
            donor, receiver = self._pending_migrations.pop(0)
            # Re-validate: the pressure path may have drained the donor
            # between the request and now.
            if donor.can_donate() and donor is not receiver:
                self._migrate_slab(donor, receiver)

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Full structural audit (tests + property checks)."""
        self.pool.check_invariants()
        total_items = 0
        for q in self.queues.values():
            q.check_invariants()
            assert q.slabs == self.pool.owned_by(q.qid), (
                f"queue {q.qid} slab count disagrees with pool")
            total_items += len(q.lru)
            for item in q.lru:
                assert self.index.get(item.key) is item, (
                    f"queue item {item.key!r} not in index")
        assert total_items == len(self.index), (
            f"{total_items} queued items vs {len(self.index)} indexed")

    def _unlink(self, item: Item) -> None:
        """Remove an item from its queue and the index (not an eviction)."""
        queue = self.queues[(item.class_idx, item.bin_idx)]
        queue.lru.remove(item)
        del self.index[item.key]
        self.policy.on_remove(queue, item)

    def describe(self) -> str:
        """One-line summary used by the CLI and examples."""
        return (f"SlabCache[{self.policy.name}] "
                f"{fmt_bytes(self.pool.total * self.pool.slab_size)} "
                f"({self.pool.total} slabs x "
                f"{fmt_bytes(self.pool.slab_size)}), "
                f"{len(self.index)} items, hit_ratio={self.stats.hit_ratio:.3f}")
