"""A queue: the (size-class, penalty-bin) unit that owns slabs.

Non-penalty-aware policies use one bin per class, so their queues are
exactly Memcached's classes.  PAMA uses five penalty bins per class —
the paper's *subclasses*.  Unifying both under one Queue type lets all
policies share the cache substrate and the eviction machinery.
"""

from __future__ import annotations

from repro.cache.item import Item
from repro.cache.lru import LRUList
from repro.cache.stats import QueueStats


class Queue:
    """Slab-owning LRU queue of equally-sized slots."""

    __slots__ = ("class_idx", "bin_idx", "slot_size", "slots_per_slab",
                 "slabs", "lru", "stats", "policy_data")

    def __init__(self, class_idx: int, bin_idx: int, slot_size: int,
                 slots_per_slab: int) -> None:
        self.class_idx = class_idx
        self.bin_idx = bin_idx
        self.slot_size = slot_size
        self.slots_per_slab = slots_per_slab
        self.slabs = 0
        self.lru = LRUList()
        self.stats = QueueStats()
        #: opaque slot for the active policy (e.g. PAMA's segment
        #: tracker + ghost list live here).
        self.policy_data: object = None

    @property
    def qid(self) -> tuple[int, int]:
        return (self.class_idx, self.bin_idx)

    @property
    def capacity_slots(self) -> int:
        return self.slabs * self.slots_per_slab

    @property
    def used_slots(self) -> int:
        return len(self.lru)

    @property
    def free_slots(self) -> int:
        return self.capacity_slots - len(self.lru)

    @property
    def used_bytes(self) -> int:
        """Actual item bytes (not slot bytes) held by the queue."""
        return sum(i.total_size for i in self.lru)

    def can_donate(self) -> bool:
        """A queue can donate iff it owns at least one slab."""
        return self.slabs >= 1

    def occupancy(self) -> float:
        """Used-slot fraction; 0.0 for a slabless queue."""
        cap = self.capacity_slots
        return len(self.lru) / cap if cap else 0.0

    def check_invariants(self) -> None:
        assert self.slabs >= 0
        assert len(self.lru) <= self.capacity_slots, (
            f"queue {self.qid} holds {len(self.lru)} items in "
            f"{self.capacity_slots} slots")
        self.lru.check_invariants()
        for item in self.lru:
            assert isinstance(item, Item)
            assert (item.class_idx, item.bin_idx) == self.qid

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Queue(q={self.qid}, slabs={self.slabs}, "
                f"used={self.used_slots}/{self.capacity_slots})")
