"""Memcached-like slab-allocated key-value cache substrate."""

from repro.cache.cache import SlabCache
from repro.cache.errors import (CacheError, InvalidItemError,
                                ItemTooLargeError, OutOfMemoryError,
                                PolicyError)
from repro.cache.item import Item
from repro.cache.lru import LRUList
from repro.cache.queue import Queue
from repro.cache.sizeclasses import SizeClassConfig
from repro.cache.slab import SlabPool
from repro.cache.snapshot import load_snapshot, save_snapshot
from repro.cache.stats import CacheStats, QueueStats

__all__ = [
    "SlabCache",
    "SizeClassConfig",
    "SlabPool",
    "Queue",
    "Item",
    "LRUList",
    "CacheStats",
    "QueueStats",
    "save_snapshot",
    "load_snapshot",
    "CacheError",
    "InvalidItemError",
    "ItemTooLargeError",
    "OutOfMemoryError",
    "PolicyError",
]
