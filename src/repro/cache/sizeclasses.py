"""Size-class geometry: how item sizes map to slab classes.

The paper (§IV) follows Memcached's doubling layout: "the first class
stores items of 64 bytes or smaller, the second class stores items of
128 bytes or smaller... every class stores items whose maximum size
doubles the one of its previous class."  The largest class slot equals
one slab (one item per slab).
"""

from __future__ import annotations

import math

from repro._util import MIB, fmt_bytes
from repro.cache.errors import InvalidItemError, ItemTooLargeError


class SizeClassConfig:
    """Immutable description of the class/slab geometry.

    Args:
        slab_size: bytes per slab (Memcached default 1 MiB; scaled-down
            experiments use smaller slabs so small caches still hold
            hundreds of slabs).
        base_size: slot size of class 0.
        growth: slot-size multiplier between consecutive classes (the
            paper uses 2.0; Memcached's default binary is 1.25).
        item_overhead: fixed per-item metadata bytes added to
            key_size + value_size before class selection (0 keeps the
            simulator aligned with trace sizes).
    """

    __slots__ = ("slab_size", "base_size", "growth", "item_overhead",
                 "_slot_sizes", "_slots_per_slab", "_class_cache")

    def __init__(self, slab_size: int = MIB, base_size: int = 64,
                 growth: float = 2.0, item_overhead: int = 0) -> None:
        if slab_size <= 0 or base_size <= 0:
            raise ValueError("slab_size and base_size must be positive")
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1.0, got {growth}")
        if base_size > slab_size:
            raise ValueError("base_size cannot exceed slab_size")
        if item_overhead < 0:
            raise ValueError("item_overhead must be non-negative")
        self.slab_size = slab_size
        self.base_size = base_size
        self.growth = growth
        self.item_overhead = item_overhead

        sizes: list[int] = []
        size = float(base_size)
        while True:
            slot = min(int(math.ceil(size)), slab_size)
            sizes.append(slot)
            if slot >= slab_size:
                break
            size *= growth
        self._slot_sizes = tuple(sizes)
        self._slots_per_slab = tuple(slab_size // s for s in sizes)
        # item_size -> class memo: traces draw from a handful of
        # distinct sizes, so the GET/SET hot path resolves classes with
        # one dict probe instead of a scan (only valid sizes are cached).
        self._class_cache: dict[int, int] = {}

    @property
    def num_classes(self) -> int:
        return len(self._slot_sizes)

    @property
    def slot_sizes(self) -> tuple[int, ...]:
        """Ascending slot sizes, one per class (read-only).

        The derive pass binary-searches this tuple to vectorize
        :meth:`class_for_size` over a whole trace window.
        """
        return self._slot_sizes

    @property
    def max_item_size(self) -> int:
        """Largest storable item (one whole slab)."""
        return self._slot_sizes[-1]

    def slot_size(self, class_idx: int) -> int:
        """Slot size in bytes of ``class_idx``."""
        return self._slot_sizes[class_idx]

    def slots_per_slab(self, class_idx: int) -> int:
        """How many slots one slab yields in ``class_idx``."""
        return self._slots_per_slab[class_idx]

    def class_for_size(self, item_size: int) -> int:
        """Smallest class whose slot fits ``item_size`` (+ overhead).

        Raises :class:`ItemTooLargeError` if no class fits and
        :class:`InvalidItemError` for non-positive sizes.
        """
        cached = self._class_cache.get(item_size)
        if cached is not None:
            return cached
        if item_size <= 0:
            raise InvalidItemError(f"item size must be positive, got {item_size}")
        total = item_size + self.item_overhead
        if total > self.max_item_size:
            raise ItemTooLargeError(total, self.max_item_size)
        # Classes are few (tens); a linear scan beats bisect setup cost
        # and stays obviously correct for non-power-of-two growth.
        for idx, slot in enumerate(self._slot_sizes):
            if total <= slot:
                self._class_cache[item_size] = idx
                return idx
        raise AssertionError("unreachable: size checked against max")

    def describe(self) -> str:
        """Human-readable table of the class layout."""
        lines = [f"{'class':>5} {'slot':>10} {'slots/slab':>10}"]
        for i, slot in enumerate(self._slot_sizes):
            lines.append(f"{i:>5} {fmt_bytes(slot):>10} {self._slots_per_slab[i]:>10}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SizeClassConfig(slab={fmt_bytes(self.slab_size)}, "
                f"base={self.base_size}, growth={self.growth}, "
                f"classes={self.num_classes})")
