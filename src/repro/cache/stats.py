"""Operation counters for the cache and its queues."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class QueueStats:
    """Per-queue (class, penalty-bin) counters."""

    gets: int = 0
    hits: int = 0
    misses: int = 0
    sets: int = 0
    evictions: int = 0
    slabs_received: int = 0
    slabs_donated: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.gets if self.gets else 0.0

    def reset_window(self) -> None:
        """Zero the rate-style counters (policies track deltas themselves)."""
        self.gets = self.hits = self.misses = self.sets = 0


@dataclass
class CacheStats:
    """Global cache counters plus service-time accumulation."""

    gets: int = 0
    hits: int = 0
    misses: int = 0
    sets: int = 0
    set_failures: int = 0
    deletes: int = 0
    evictions: int = 0
    migrations: int = 0
    rejected_too_large: int = 0
    expired: int = 0
    flushes: int = 0
    #: sum of miss penalties over all GET misses with known penalty (s).
    total_miss_penalty: float = 0.0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.gets if self.gets else 0.0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.gets if self.gets else 0.0

    def avg_service_time(self, hit_time: float) -> float:
        """Mean GET service time given a fixed per-hit cost (paper's metric)."""
        if not self.gets:
            return 0.0
        return (self.hits * hit_time + self.total_miss_penalty) / self.gets

    def snapshot(self) -> dict[str, float]:
        return {
            "gets": self.gets, "hits": self.hits, "misses": self.misses,
            "sets": self.sets, "deletes": self.deletes,
            "evictions": self.evictions, "migrations": self.migrations,
            "expired": self.expired, "hit_ratio": self.hit_ratio,
            "total_miss_penalty": self.total_miss_penalty,
        }
