"""Global slab pool: the cache's unit of memory allocation.

The paper allocates memory to classes "in a fixed unit called a slab".
The pool tracks how many slabs exist, how many are free, and which
queue owns each allocated slab.  The simulator never materialises slab
payload bytes — the *accounting* is what drives every policy decision —
but the ownership registry gives the same observable state a real
allocator would (and powers the Fig 3/4 allocation time series).
"""

from __future__ import annotations

from repro._util import fmt_bytes
from repro.cache.errors import OutOfMemoryError


class SlabPool:
    """Fixed budget of slabs, handed out to queues and reclaimed on migration."""

    __slots__ = ("slab_size", "total", "free", "_owned")

    def __init__(self, capacity_bytes: int, slab_size: int) -> None:
        if slab_size <= 0:
            raise ValueError("slab_size must be positive")
        if capacity_bytes < slab_size:
            raise ValueError(
                f"capacity {fmt_bytes(capacity_bytes)} below one slab "
                f"({fmt_bytes(slab_size)})")
        self.slab_size = slab_size
        self.total = capacity_bytes // slab_size
        self.free = self.total
        # queue id -> number of slabs owned.  Queue ids are the
        # (class_idx, bin_idx) tuples used by SlabCache.
        self._owned: dict[tuple[int, int], int] = {}

    def acquire(self, owner: tuple[int, int]) -> None:
        """Hand one free slab to ``owner``."""
        if self.free <= 0:
            raise OutOfMemoryError("no free slabs in pool")
        self.free -= 1
        self._owned[owner] = self._owned.get(owner, 0) + 1

    def transfer(self, donor: tuple[int, int], receiver: tuple[int, int]) -> None:
        """Move one slab from ``donor`` to ``receiver`` (a migration)."""
        owned = self._owned.get(donor, 0)
        if owned <= 0:
            raise OutOfMemoryError(f"queue {donor} owns no slab to donate")
        self._owned[donor] = owned - 1
        self._owned[receiver] = self._owned.get(receiver, 0) + 1

    def release(self, owner: tuple[int, int]) -> None:
        """Return one of ``owner``'s slabs to the free pool."""
        owned = self._owned.get(owner, 0)
        if owned <= 0:
            raise OutOfMemoryError(f"queue {owner} owns no slab to release")
        self._owned[owner] = owned - 1
        self.free += 1

    def owned_by(self, owner: tuple[int, int]) -> int:
        return self._owned.get(owner, 0)

    def ownership(self) -> dict[tuple[int, int], int]:
        """Snapshot of slab ownership (queue id -> slab count)."""
        return {q: n for q, n in self._owned.items() if n > 0}

    def check_invariants(self) -> None:
        allocated = sum(self._owned.values())
        assert allocated >= 0 and self.free >= 0
        assert allocated + self.free == self.total, (
            f"slab leak: {allocated} owned + {self.free} free != {self.total}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SlabPool(total={self.total}, free={self.free}, "
                f"slab={fmt_bytes(self.slab_size)})")
