"""Exceptions raised by the slab-cache substrate."""

from __future__ import annotations


class CacheError(Exception):
    """Base class for all cache errors."""


class ItemTooLargeError(CacheError):
    """The item does not fit in the largest size class (one whole slab)."""

    def __init__(self, size: int, max_size: int) -> None:
        super().__init__(f"item of {size}B exceeds largest class slot of {max_size}B")
        self.size = size
        self.max_size = max_size


class OutOfMemoryError(CacheError):
    """No slab could be found or freed to store an item.

    With a sane policy this only happens when the cache is configured
    with zero slabs, or a policy refuses to name a donor when asked.
    """


class InvalidItemError(CacheError):
    """Malformed item parameters (negative sizes, non-finite penalty...)."""


class PolicyError(CacheError):
    """An allocation policy violated its contract (e.g. named an empty donor)."""
