"""Cache snapshot / restore: warm-start support for experiments.

A large-cache experiment spends much of its runtime warming up.
``save_snapshot`` captures the cache's logical contents (items in LRU
order with their attributes; not payload bytes), and ``load_snapshot``
replays them into a fresh cache so repeated experiments can start from
the same warm state.  Restoring re-runs the normal SET path, so any
policy's internal structures are rebuilt consistently — a snapshot
taken under one policy can warm a cache managed by another.
"""

from __future__ import annotations

import os

import numpy as np

from repro.cache.cache import SlabCache

_FORMAT_VERSION = 1


def save_snapshot(cache: SlabCache, path: str | os.PathLike) -> int:
    """Write the cache's items to ``path`` (.npz); returns item count.

    Items are recorded LRU-first so a restore replays them oldest-first
    and reproduces the recency order.  Only int keys are supported (the
    simulator's key space); payload values are not persisted.
    """
    keys: list[int] = []
    key_sizes: list[int] = []
    value_sizes: list[int] = []
    penalties: list[float] = []
    expiries: list[float] = []
    # global recency order: merge queues by last_access (ascending)
    items = sorted(cache.index.values(), key=lambda it: it.last_access)
    for item in items:
        if not isinstance(item.key, int):
            raise TypeError(
                f"snapshot supports int keys only, got {type(item.key)!r}")
        keys.append(item.key)
        key_sizes.append(item.key_size)
        value_sizes.append(item.value_size)
        penalties.append(item.penalty)
        expiries.append(item.expires_at)
    np.savez_compressed(
        path, version=np.int64(_FORMAT_VERSION),
        keys=np.asarray(keys, dtype=np.int64),
        key_sizes=np.asarray(key_sizes, dtype=np.int32),
        value_sizes=np.asarray(value_sizes, dtype=np.int32),
        penalties=np.asarray(penalties, dtype=np.float64),
        expiries=np.asarray(expiries, dtype=np.float64))
    return len(keys)


def load_snapshot(cache: SlabCache, path: str | os.PathLike) -> int:
    """Replay a snapshot into ``cache`` via its SET path.

    Returns the number of items actually stored (the target cache may
    be smaller than the snapshotted one, in which case the replay's own
    evictions keep the most recently used tail — the right warm state).
    """
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported snapshot version {version}")
        stored = 0
        for key, ksz, vsz, pen, exp in zip(
                data["keys"].tolist(), data["key_sizes"].tolist(),
                data["value_sizes"].tolist(), data["penalties"].tolist(),
                data["expiries"].tolist()):
            if cache.set(key, ksz, vsz, pen, expires_at=exp):
                stored += 1
    return stored
