"""Intrusive doubly-linked LRU list with an optional observer.

The list links :class:`~repro.cache.item.Item` nodes through their own
``prev``/``next`` slots, so push/remove/move are pointer surgery with no
allocation.  Order convention: **front = MRU, back = LRU** (the paper's
"stack top" is the front, "stack bottom" the back).

An observer (PAMA's segment tracker) can subscribe to structural
changes; callbacks fire *after* the list is consistent.
"""

from __future__ import annotations

from typing import Iterator, Protocol

from repro.cache.item import Item


class LRUObserver(Protocol):
    """Callbacks a segment tracker implements to shadow list changes.

    ``on_push_front`` fires after the item is linked at the front;
    ``on_remove`` fires *before* the item is unlinked, so the observer
    can still read ``item.prev``/``item.next``.
    """

    def on_push_front(self, item: Item) -> None: ...

    def on_remove(self, item: Item) -> None: ...


class LRUList:
    """Doubly-linked list of Items; front is MRU, back is LRU."""

    __slots__ = ("head", "tail", "size", "observer")

    def __init__(self) -> None:
        self.head: Item | None = None   # MRU
        self.tail: Item | None = None   # LRU
        self.size = 0
        self.observer: LRUObserver | None = None

    def push_front(self, item: Item) -> None:
        """Insert ``item`` at the MRU end. The item must be unlinked."""
        item.prev = None
        item.next = self.head
        if self.head is not None:
            self.head.prev = item
        self.head = item
        if self.tail is None:
            self.tail = item
        self.size += 1
        if self.observer is not None:
            self.observer.on_push_front(item)

    def remove(self, item: Item) -> None:
        """Unlink ``item`` from the list."""
        if self.observer is not None:
            self.observer.on_remove(item)
        prev, nxt = item.prev, item.next
        if prev is not None:
            prev.next = nxt
        else:
            self.head = nxt
        if nxt is not None:
            nxt.prev = prev
        else:
            self.tail = prev
        item.prev = item.next = None
        self.size -= 1

    def move_to_front(self, item: Item) -> None:
        """Promote ``item`` to MRU (the LRU 'hit' operation)."""
        if self.head is item:
            return
        self.remove(item)
        self.push_front(item)

    def pop_back(self) -> Item | None:
        """Remove and return the LRU item, or None if empty."""
        item = self.tail
        if item is not None:
            self.remove(item)
        return item

    @property
    def back(self) -> Item | None:
        return self.tail

    @property
    def front(self) -> Item | None:
        return self.head

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Item]:
        """Iterate MRU → LRU."""
        node = self.head
        while node is not None:
            # Capture next before yielding so callers may unlink the
            # yielded node.
            nxt = node.next
            yield node
            node = nxt

    def iter_from_back(self) -> Iterator[Item]:
        """Iterate LRU → MRU (the order evictions scan)."""
        node = self.tail
        while node is not None:
            prv = node.prev
            yield node
            node = prv

    def check_invariants(self) -> None:
        """Verify structural integrity; used by tests and debug builds."""
        count = 0
        prev = None
        node = self.head
        while node is not None:
            assert node.prev is prev, "broken prev link"
            prev = node
            node = node.next
            count += 1
            assert count <= self.size, "cycle detected"
        assert count == self.size, f"size mismatch: {count} != {self.size}"
        assert self.tail is prev, "tail does not match last node"
