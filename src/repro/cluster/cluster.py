"""A client-routed cluster of slab caches.

Mirrors the deployment the paper assumes: each node is an independent
cache with its own allocation policy (no cross-node coordination, like
production Memcached); clients route keys with consistent hashing.

:class:`CacheCluster` exposes the same ``get``/``set``/``delete``/
``stats`` surface as a single :class:`~repro.cache.cache.SlabCache`, so
the trace-driven simulator runs unmodified against a whole cluster —
which is how the cluster examples/benches measure the effect of node
counts and node failures on hit ratio and service time.
"""

from __future__ import annotations

from typing import Callable

from repro.cache.cache import SlabCache
from repro.cache.item import Item
from repro.cache.sizeclasses import SizeClassConfig
from repro.cache.stats import CacheStats
from repro.cluster.hashring import ConsistentHashRing
from repro.policies.base import AllocationPolicy


class CacheCluster:
    """Consistent-hash routed collection of independent SlabCaches.

    Args:
        node_names: names of the initial nodes.
        capacity_bytes: memory *per node*.
        policy_factory: builds a fresh policy per node (policies hold
            per-cache state and cannot be shared).
        size_classes: shared class geometry (a fresh equivalent config
            is safe to share: it is immutable).
        replicas: virtual nodes per physical node on the ring.
    """

    def __init__(self, node_names: list[str], capacity_bytes: int,
                 policy_factory: Callable[[], AllocationPolicy],
                 size_classes: SizeClassConfig | None = None,
                 replicas: int = 64) -> None:
        if not node_names:
            raise ValueError("cluster needs at least one node")
        if len(set(node_names)) != len(node_names):
            raise ValueError("duplicate node names")
        self.capacity_bytes = capacity_bytes
        self.policy_factory = policy_factory
        self.size_classes = size_classes or SizeClassConfig()
        self.ring = ConsistentHashRing(replicas=replicas)
        self.nodes: dict[str, SlabCache] = {}
        for name in node_names:
            self._spawn(name)

    # -- topology ---------------------------------------------------------
    def _spawn(self, name: str) -> None:
        self.ring.add_node(name)
        self.nodes[name] = SlabCache(self.capacity_bytes,
                                     self.policy_factory(),
                                     self.size_classes)

    def add_node(self, name: str) -> None:
        """Scale out: new empty node; ~1/n of the key space remaps to it."""
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        self._spawn(name)

    def remove_node(self, name: str) -> None:
        """Node failure/decommission: its cached items are lost and its
        key range remaps onto the survivors (a cold start for them)."""
        if name not in self.nodes:
            raise ValueError(f"node {name!r} does not exist")
        if len(self.nodes) == 1:
            raise ValueError("cannot remove the last node")
        self.ring.remove_node(name)
        del self.nodes[name]

    def node_names(self) -> list[str]:
        return sorted(self.nodes)

    def node_for(self, key: object) -> SlabCache:
        return self.nodes[self.ring.node_for(key)]

    # -- cache surface (simulator-compatible) --------------------------------
    def get(self, key: object,
            miss_info: tuple[int, int, float] | None = None) -> Item | None:
        return self.node_for(key).get(key, miss_info)

    def set(self, key: object, key_size: int, value_size: int,
            penalty: float, value: object = None) -> bool:
        return self.node_for(key).set(key, key_size, value_size, penalty,
                                      value)

    def delete(self, key: object) -> bool:
        return self.node_for(key).delete(key)

    @property
    def stats(self) -> CacheStats:
        """Aggregate of all node counters (computed on access).

        A node removed from the cluster takes its history with it, like
        a crashed server would.
        """
        total = CacheStats()
        for node in self.nodes.values():
            s = node.stats
            total.gets += s.gets
            total.hits += s.hits
            total.misses += s.misses
            total.sets += s.sets
            total.set_failures += s.set_failures
            total.deletes += s.deletes
            total.evictions += s.evictions
            total.migrations += s.migrations
            total.rejected_too_large += s.rejected_too_large
            total.total_miss_penalty += s.total_miss_penalty
        return total

    def __contains__(self, key: object) -> bool:
        return key in self.node_for(key)

    def __len__(self) -> int:
        return sum(len(node) for node in self.nodes.values())

    # -- aggregate introspection (simulator snapshot hooks) -------------------
    def class_slab_distribution(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for node in self.nodes.values():
            for cls, n in node.class_slab_distribution().items():
                out[cls] = out.get(cls, 0) + n
        return out

    def slab_distribution(self) -> dict[tuple[int, int], int]:
        out: dict[tuple[int, int], int] = {}
        for node in self.nodes.values():
            for qid, n in node.slab_distribution().items():
                out[qid] = out.get(qid, 0) + n
        return out

    @property
    def policy(self):
        """Representative policy (all nodes run the same factory)."""
        return next(iter(self.nodes.values())).policy

    def check_invariants(self) -> None:
        assert set(self.ring.nodes) == set(self.nodes)
        for node in self.nodes.values():
            node.check_invariants()

    def describe(self) -> str:
        total_items = len(self)
        return (f"CacheCluster[{self.policy.name}] {len(self.nodes)} nodes x "
                f"{self.capacity_bytes} B, {total_items} items, "
                f"hit_ratio={self.stats.hit_ratio:.3f}")
