"""A client-routed cluster of slab caches.

Mirrors the deployment the paper assumes: each node is an independent
cache with its own allocation policy (no cross-node coordination, like
production Memcached); clients route keys with consistent hashing.

:class:`CacheCluster` exposes the same ``get``/``set``/``delete``/
``stats`` surface as a single :class:`~repro.cache.cache.SlabCache`, so
the trace-driven simulator runs unmodified against a whole cluster —
which is how the cluster examples/benches measure the effect of node
counts and node failures on hit ratio and service time.
"""

from __future__ import annotations

from typing import Callable

from repro.cache.cache import SlabCache
from repro.cache.item import Item
from repro.cache.sizeclasses import SizeClassConfig
from repro.cache.stats import CacheStats
from repro.bloom.hashing import hash_key
from repro.cluster.hashring import ConsistentHashRing
from repro.faults.breaker import CircuitBreaker
from repro.faults.injector import FaultInjector
from repro.policies.base import AllocationPolicy


class CacheCluster:
    """Consistent-hash routed collection of independent SlabCaches.

    Args:
        node_names: names of the initial nodes.
        capacity_bytes: memory *per node*.
        policy_factory: builds a fresh policy per node (policies hold
            per-cache state and cannot be shared).
        size_classes: shared class geometry (a fresh equivalent config
            is safe to share: it is immutable).
        replicas: virtual nodes per physical node on the ring.
        faults: optional :class:`~repro.faults.injector.FaultInjector`.
            When given, every op routes through the resilient path:
            per-op timeouts, bounded retries with backoff, a per-node
            circuit breaker, and ring-successor failover.  When None
            (the default) ops take the exact pre-fault code path.
        tracing: optional :class:`~repro.obs.spans.SpanTracer`.  Sampled
            ops through the resilient path emit a trace tree: a root
            span per op with a ``node_attempt`` child per candidate
            node, carrying retry/drop/timeout/breaker events — the
            replayable waterfall of where a request went and why.
    """

    def __init__(self, node_names: list[str], capacity_bytes: int,
                 policy_factory: Callable[[], AllocationPolicy],
                 size_classes: SizeClassConfig | None = None,
                 replicas: int = 64,
                 faults: FaultInjector | None = None,
                 tracing=None) -> None:
        if not node_names:
            raise ValueError("cluster needs at least one node")
        if len(set(node_names)) != len(node_names):
            raise ValueError("duplicate node names")
        self.capacity_bytes = capacity_bytes
        self.policy_factory = policy_factory
        self.size_classes = size_classes or SizeClassConfig()
        self.ring = ConsistentHashRing(replicas=replicas)
        self.nodes: dict[str, SlabCache] = {}
        self.faults = faults
        self.tracer = tracing
        self.breakers: dict[str, CircuitBreaker] = {}
        self._down_seen: set[str] = set()
        for name in node_names:
            self._spawn(name)

    # -- topology ---------------------------------------------------------
    def _fresh_cache(self) -> SlabCache:
        return SlabCache(self.capacity_bytes, self.policy_factory(),
                         self.size_classes)

    def _spawn(self, name: str) -> None:
        self.ring.add_node(name)
        self.nodes[name] = self._fresh_cache()
        if self.faults is not None:
            self.breakers[name] = self._fresh_breaker(name)

    def _fresh_breaker(self, name: str) -> CircuitBreaker:
        cfg = self.faults.resilience
        inj = self.faults

        def on_transition(old: str, new: str, tick: int,
                          _name: str = name) -> None:
            inj.count(f"breaker_{new.replace('-', '_')}")
            inj.event("breaker_transition", node=_name, old=old, new=new)
            if self.tracer is not None:
                self.tracer.event("breaker_transition", tick, node=_name,
                                  old=old, new=new)

        return CircuitBreaker(failure_threshold=cfg.breaker_threshold,
                              reset_ticks=cfg.breaker_reset_ticks,
                              on_transition=on_transition)

    def add_node(self, name: str) -> None:
        """Scale out: new empty node; ~1/n of the key space remaps to it."""
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        self._spawn(name)

    def remove_node(self, name: str) -> None:
        """Node failure/decommission: its cached items are lost and its
        key range remaps onto the survivors (a cold start for them).

        Removing the last node is refused: it would leave an empty,
        unroutable ring.  Chaos node crashes honour the same invariant
        by never touching the ring — a crashed node stays a member and
        its ops fail over or fail, so the topology always stays
        routable (see docs/resilience.md).
        """
        if name not in self.nodes:
            raise ValueError(f"node {name!r} does not exist")
        if len(self.nodes) == 1:
            raise ValueError(
                "cannot remove the last node: the ring would be empty "
                "and every key unroutable")
        self.ring.remove_node(name)
        del self.nodes[name]
        self.breakers.pop(name, None)
        self._down_seen.discard(name)

    def attach_timeline(self, timeline) -> None:
        """Attach one :class:`~repro.obs.timeline.TimelineRecorder` to
        every node (cluster-wide flux notes, cluster-wide slab
        snapshots).  A node spawned later via :meth:`add_node` is *not*
        auto-attached; re-call after topology changes."""
        timeline.snapshot_fn = lambda: (self.class_slab_distribution(),
                                        self.slab_distribution())
        for node in self.nodes.values():
            node.attach_timeline(timeline)

    def node_names(self) -> list[str]:
        return sorted(self.nodes)

    def node_for(self, key: object) -> SlabCache:
        return self.nodes[self.ring.node_for(key)]

    # -- cache surface (simulator-compatible) --------------------------------
    def get(self, key: object,
            miss_info: tuple[int, int, float] | None = None) -> Item | None:
        if self.faults is None:
            return self.node_for(key).get(key, miss_info)
        return self._routed(key,
                            lambda node: node.get(key, miss_info), None,
                            "get")

    def lookup(self, key: object, key_size: int, value_size: int,
               penalty: float) -> Item | None:
        """Scalar GET fast path, mirroring :meth:`SlabCache.lookup`."""
        if self.faults is None:
            return self.node_for(key).lookup(key, key_size, value_size,
                                             penalty)
        return self._routed(
            key, lambda node: node.lookup(key, key_size, value_size, penalty),
            None, "get")

    def set(self, key: object, key_size: int, value_size: int,
            penalty: float, value: object = None) -> bool:
        if self.faults is None:
            return self.node_for(key).set(key, key_size, value_size, penalty,
                                          value)
        return self._routed(
            key, lambda node: node.set(key, key_size, value_size, penalty,
                                       value), False, "set")

    def delete(self, key: object) -> bool:
        if self.faults is None:
            return self.node_for(key).delete(key)
        return self._routed(key, lambda node: node.delete(key), False,
                            "delete")

    # -- resilient routing ----------------------------------------------------
    def _sync_restart(self, name: str, tick: int) -> None:
        """Track down→up transitions; a rejoining node restarts cold
        (fresh cache *and* fresh policy, like a process restart)."""
        inj = self.faults
        if inj.plan.node_down(name, tick):
            if name not in self._down_seen:
                self._down_seen.add(name)
                inj.event("node_crash", node=name)
        elif name in self._down_seen:
            self._down_seen.discard(name)
            self.nodes[name] = self._fresh_cache()
            inj.count("node_rejoin")
            inj.event("node_rejoin", node=name)

    def _routed(self, key: object, op, default, op_name: str = "op"):
        """One op through the resilient path.

        Walks the ring-successor preference list; per candidate node:
        breaker gate, crash check (costs one ``op_timeout`` to
        discover), then up to ``1 + max_retries`` attempts riding out
        transient faults (dropped connections, slow-node timeouts) with
        exponential backoff and deterministic jitter.  All simulated
        latency lands on the injector's latency channel; when every
        candidate fails the op degrades to ``default`` (a miss / failed
        set) rather than raising.

        When a tracer is attached and samples this tick, the walk is
        recorded as a span tree (root op span, one ``node_attempt``
        child per candidate); a trace already opened by the caller (the
        replay loop) is nested into instead.
        """
        inj = self.faults
        cfg = inj.resilience
        plan = inj.plan
        tick = max(inj.tick, 0)
        latency = 0.0
        candidates = self.ring.successors(key)
        if not cfg.failover:
            candidates = candidates[:1]
        tracer = self.tracer
        root = None
        if tracer is not None:
            if tracer.active:
                root = tracer.start(op_name, tick, key=str(key))
            elif tracer.sampled(tick):
                root = tracer.start_trace(tick, op_name, key=str(key))
        for rank, name in enumerate(candidates):
            if rank:
                inj.count("failovers")
            node_span = None
            if root is not None:
                node_span = tracer.start("node_attempt", tick, node=name,
                                         rank=rank, failover=bool(rank))
            breaker = self.breakers[name]
            if not breaker.allow(tick):
                inj.count("breaker_rejected")
                if node_span is not None:
                    tracer.end(node_span, tick, status="breaker_rejected")
                continue
            self._sync_restart(name, tick)
            if plan.node_down(name, tick):
                latency += cfg.op_timeout
                inj.count("node_down")
                breaker.record_failure(tick)
                if node_span is not None:
                    tracer.end(node_span, tick, status="node_down")
                continue
            # hash_key, not hash(): str hashing is salted per process
            # and would break cross-run fault determinism.
            name_hash = hash_key(name)
            failed = True
            for attempt in range(1 + cfg.max_retries):
                if attempt:
                    inj.count("retries")
                    latency += cfg.backoff(
                        attempt, plan.jitter(tick, name_hash, attempt))
                    if node_span is not None:
                        node_span.add_event("retry", tick, attempt=attempt)
                if plan.conn_dropped(name, tick, attempt):
                    inj.count("conn_drop")
                    breaker.record_failure(tick)
                    if node_span is not None:
                        node_span.add_event("conn_drop", tick,
                                            attempt=attempt)
                    continue
                extra = plan.slow_extra(name, tick)
                if cfg.op_timeout and extra >= cfg.op_timeout:
                    latency += cfg.op_timeout
                    inj.count("op_timeout")
                    breaker.record_failure(tick)
                    if node_span is not None:
                        node_span.add_event("op_timeout", tick,
                                            attempt=attempt, extra=extra)
                    continue
                if extra:
                    latency += extra
                    inj.count("slow_op")
                    if node_span is not None:
                        node_span.add_event("slow_op", tick, extra=extra)
                result = op(self.nodes[name])
                breaker.record_success(tick)
                inj.add_latency(latency)
                failed = False
                if node_span is not None:
                    tracer.end(node_span, tick, status="ok")
                    tracer.end(root, tick, status="ok", latency=latency)
                return result
            if failed and node_span is not None:
                tracer.end(node_span, tick, status="failed")
        inj.add_latency(latency)
        inj.count("op_failed")
        inj.event("op_failed", key=key)
        if root is not None:
            tracer.end(root, tick, status="failed", latency=latency)
        return default

    @property
    def stats(self) -> CacheStats:
        """Aggregate of all node counters (computed on access).

        A node removed from the cluster takes its history with it, like
        a crashed server would.
        """
        total = CacheStats()
        for node in self.nodes.values():
            s = node.stats
            total.gets += s.gets
            total.hits += s.hits
            total.misses += s.misses
            total.sets += s.sets
            total.set_failures += s.set_failures
            total.deletes += s.deletes
            total.evictions += s.evictions
            total.migrations += s.migrations
            total.rejected_too_large += s.rejected_too_large
            total.total_miss_penalty += s.total_miss_penalty
        return total

    def __contains__(self, key: object) -> bool:
        return key in self.node_for(key)

    def __len__(self) -> int:
        return sum(len(node) for node in self.nodes.values())

    # -- aggregate introspection (simulator snapshot hooks) -------------------
    def class_slab_distribution(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for node in self.nodes.values():
            for cls, n in node.class_slab_distribution().items():
                out[cls] = out.get(cls, 0) + n
        return out

    def slab_distribution(self) -> dict[tuple[int, int], int]:
        out: dict[tuple[int, int], int] = {}
        for node in self.nodes.values():
            for qid, n in node.slab_distribution().items():
                out[qid] = out.get(qid, 0) + n
        return out

    @property
    def policy(self):
        """Representative policy (all nodes run the same factory)."""
        return next(iter(self.nodes.values())).policy

    def check_invariants(self) -> None:
        assert set(self.ring.nodes) == set(self.nodes)
        assert len(self.nodes) >= 1, "unroutable: empty cluster"
        if self.faults is not None:
            assert set(self.breakers) == set(self.nodes)
        for node in self.nodes.values():
            node.check_invariants()

    def describe(self) -> str:
        total_items = len(self)
        return (f"CacheCluster[{self.policy.name}] {len(self.nodes)} nodes x "
                f"{self.capacity_bytes} B, {total_items} items, "
                f"hit_ratio={self.stats.hit_ratio:.3f}")
