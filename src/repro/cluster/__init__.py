"""Multi-node cache cluster: consistent hashing over slab caches."""

from repro.cluster.cluster import CacheCluster
from repro.cluster.hashring import ConsistentHashRing

__all__ = ["CacheCluster", "ConsistentHashRing"]
