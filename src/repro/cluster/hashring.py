"""Consistent-hash ring for key → cache-node routing.

The paper's setting (§I) is a KV cache that "amasses a large collection
of memory distributed on a cluster of servers".  Clients shard keys
over the nodes; consistent hashing keeps the remap fraction near
``1/n`` when the topology changes — the property that makes node
addition/removal survivable for the back end.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.bloom.hashing import hash_key


class ConsistentHashRing:
    """Classic ring with virtual nodes (replicas) per physical node."""

    def __init__(self, replicas: int = 64) -> None:
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._ring: list[tuple[int, str]] = []  # (point, node), sorted
        self._nodes: set[str] = set()

    # -- topology ---------------------------------------------------------
    def add_node(self, node: str) -> None:
        """Add a node; raises if it is already present."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for r in range(self.replicas):
            point = hash_key(f"{node}#{r}")
            self._ring.append((point, node))
        self._ring.sort()

    def remove_node(self, node: str) -> None:
        """Remove a node; raises if it is absent."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        self._ring = [(p, n) for p, n in self._ring if n != node]

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- routing ---------------------------------------------------------
    def node_for(self, key: object) -> str:
        """The node owning ``key``; raises on an empty ring."""
        if not self._ring:
            raise LookupError("hash ring is empty")
        point = hash_key(key, seed=0x52494E47)
        idx = bisect_right(self._ring, (point, "￿"))
        if idx == len(self._ring):
            idx = 0
        return self._ring[idx][1]

    def successors(self, key: object) -> list[str]:
        """Every node in ring order starting at ``key``'s owner.

        The failover preference list: ``successors(key)[0]`` is
        ``node_for(key)``, and when a node is unreachable its keys
        fall through to the next distinct node clockwise — the same
        node that would own them if the dead one were removed, so
        failover and permanent removal agree.
        """
        if not self._ring:
            raise LookupError("hash ring is empty")
        point = hash_key(key, seed=0x52494E47)
        idx = bisect_right(self._ring, (point, "￿"))
        ring, n = self._ring, len(self._ring)
        out: list[str] = []
        seen: set[str] = set()
        for i in range(n):
            node = ring[(idx + i) % n][1]
            if node not in seen:
                seen.add(node)
                out.append(node)
                if len(out) == len(self._nodes):
                    break
        return out

    def distribution(self, keys) -> dict[str, int]:
        """Count how many of ``keys`` each node owns (balance check)."""
        out: dict[str, int] = {n: 0 for n in self._nodes}
        for key in keys:
            out[self.node_for(key)] += 1
        return out

    def remap_fraction(self, keys, other: "ConsistentHashRing") -> float:
        """Fraction of ``keys`` that route differently on ``other``."""
        keys = list(keys)
        if not keys:
            return 0.0
        moved = sum(1 for k in keys if self.node_for(k) != other.node_for(k))
        return moved / len(keys)
