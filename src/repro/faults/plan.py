"""Deterministic fault plans: *what* goes wrong, and *when*.

The paper's premise is that miss penalties are heterogeneous and
volatile — backend costs swing ~2x diurnally and spike under load
(§I) — so evaluating a penalty-aware allocator honestly means making
the backend and the cluster misbehave on purpose.  A
:class:`FaultPlan` is a declarative schedule of such misbehaviour over
*access ticks* (the simulator's notion of time: one tick per trace
request):

* :class:`NodeCrash` — a node goes dark at a tick and optionally
  rejoins later with a cold cache (process restart);
* :class:`SlowNode` — every op routed to a node pays extra latency
  inside a tick window (degraded disk / noisy neighbour);
* :class:`BackendSpike` — miss penalties are multiplied inside a
  window (backend brownout / load spike);
* :class:`BackendErrorBurst` — backend fetches fail with a given
  probability inside a window (backend outage);
* :class:`FlakyConnection` — individual cache ops are dropped with a
  given probability (lossy network), per node or cluster-wide.

**Determinism contract.**  Every stochastic decision is a pure
function of ``(plan.seed, tick, channel, parts...)`` via splitmix64
chaining — no hidden RNG state, no call-order dependence.  Replaying
the same trace against the same plan therefore produces the *same*
fault trajectory, byte for byte, which is what makes chaos runs
regression-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bloom.hashing import _MASK64, hash_key, splitmix64

# Independent stochastic channels (arbitrary distinct 64-bit salts).
CHAN_BACKEND_ERROR = 0xB0_0B5
CHAN_CONN_DROP = 0xC0_FFEE
CHAN_JITTER = 0x1177E2


def rand01(seed: int, tick: int, channel: int, *parts: int) -> float:
    """Uniform [0, 1) draw, a pure function of its arguments."""
    x = splitmix64((seed ^ (channel * 0x9E3779B97F4A7C15)) & _MASK64)
    x = splitmix64((x ^ tick) & _MASK64)
    for part in parts:
        x = splitmix64((x ^ part) & _MASK64)
    return x / 2.0 ** 64


def _check_window(start: int, end: int, what: str) -> None:
    if start < 0 or end <= start:
        raise ValueError(f"{what}: need 0 <= start < end, "
                         f"got [{start}, {end})")


def _check_rate(rate: float, what: str) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{what}: rate must be in [0, 1], got {rate}")


@dataclass(frozen=True)
class NodeCrash:
    """``node`` is down for ticks ``[at, rejoin)``; ``rejoin=None``
    keeps it down forever.  A rejoined node restarts cold."""

    node: str
    at: int
    rejoin: int | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"crash tick must be >= 0, got {self.at}")
        if self.rejoin is not None and self.rejoin <= self.at:
            raise ValueError("rejoin must come after the crash")

    def down(self, tick: int) -> bool:
        return self.at <= tick and (self.rejoin is None
                                    or tick < self.rejoin)


@dataclass(frozen=True)
class SlowNode:
    """Ops routed to ``node`` pay ``extra_latency`` seconds during
    ``[start, end)``.  Latency at or above the resilience layer's
    per-op timeout surfaces as a timeout, not slow service."""

    node: str
    start: int
    end: int
    extra_latency: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "SlowNode")
        if self.extra_latency <= 0:
            raise ValueError("extra_latency must be positive")

    def active(self, tick: int) -> bool:
        return self.start <= tick < self.end


@dataclass(frozen=True)
class BackendSpike:
    """Miss penalties are multiplied by ``multiplier`` during
    ``[start, end)``; overlapping spikes compound."""

    start: int
    end: int
    multiplier: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "BackendSpike")
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")

    def active(self, tick: int) -> bool:
        return self.start <= tick < self.end


@dataclass(frozen=True)
class BackendErrorBurst:
    """Backend fetches fail with probability ``error_rate`` during
    ``[start, end)``."""

    start: int
    end: int
    error_rate: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "BackendErrorBurst")
        _check_rate(self.error_rate, "BackendErrorBurst")

    def active(self, tick: int) -> bool:
        return self.start <= tick < self.end


@dataclass(frozen=True)
class FlakyConnection:
    """Cache ops to ``node`` (or any node when ``node is None``) are
    dropped with probability ``drop_rate`` during ``[start, end)``."""

    start: int
    end: int
    drop_rate: float
    node: str | None = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "FlakyConnection")
        _check_rate(self.drop_rate, "FlakyConnection")

    def active(self, tick: int) -> bool:
        return self.start <= tick < self.end


Fault = (NodeCrash | SlowNode | BackendSpike | BackendErrorBurst
         | FlakyConnection)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable schedule of faults over access ticks.

    Query methods are pure: the same ``(plan, tick)`` always answers
    the same way, independent of query order — the determinism
    contract chaos replay relies on (see docs/resilience.md).
    """

    faults: tuple[Fault, ...] = ()
    seed: int = 0
    _by_node_crash: dict = field(init=False, repr=False, compare=False,
                                 hash=False)
    _by_node_slow: dict = field(init=False, repr=False, compare=False,
                                hash=False)

    def __init__(self, faults=(), seed: int = 0) -> None:
        object.__setattr__(self, "faults", tuple(faults))
        object.__setattr__(self, "seed", int(seed))
        crashes: dict[str, list[NodeCrash]] = {}
        slows: dict[str, list[SlowNode]] = {}
        for f in self.faults:
            if isinstance(f, NodeCrash):
                crashes.setdefault(f.node, []).append(f)
            elif isinstance(f, SlowNode):
                slows.setdefault(f.node, []).append(f)
            elif not isinstance(f, (BackendSpike, BackendErrorBurst,
                                    FlakyConnection)):
                raise TypeError(f"not a fault: {f!r}")
        object.__setattr__(self, "_by_node_crash", crashes)
        object.__setattr__(self, "_by_node_slow", slows)

    # -- node faults ------------------------------------------------------
    def node_down(self, node: str, tick: int) -> bool:
        return any(c.down(tick) for c in self._by_node_crash.get(node, ()))

    def slow_extra(self, node: str, tick: int) -> float:
        return sum(s.extra_latency for s in self._by_node_slow.get(node, ())
                   if s.active(tick))

    def conn_dropped(self, node: str, tick: int, attempt: int = 0) -> bool:
        for f in self.faults:
            if (isinstance(f, FlakyConnection) and f.active(tick)
                    and f.node in (None, node)):
                u = rand01(self.seed, tick, CHAN_CONN_DROP,
                           hash_key(node), attempt)
                if u < f.drop_rate:
                    return True
        return False

    # -- backend faults ---------------------------------------------------
    def backend_multiplier(self, tick: int) -> float:
        mult = 1.0
        for f in self.faults:
            if isinstance(f, BackendSpike) and f.active(tick):
                mult *= f.multiplier
        return mult

    def backend_error(self, tick: int) -> bool:
        for f in self.faults:
            if isinstance(f, BackendErrorBurst) and f.active(tick):
                if rand01(self.seed, tick, CHAN_BACKEND_ERROR) < f.error_rate:
                    return True
        return False

    def jitter(self, tick: int, *parts: int) -> float:
        """Deterministic [0, 1) draw for retry-backoff jitter."""
        return rand01(self.seed, tick, CHAN_JITTER, *parts)

    # -- introspection ----------------------------------------------------
    @property
    def empty(self) -> bool:
        return not self.faults

    def nodes_touched(self) -> frozenset[str]:
        """Every node a scheduled fault names."""
        out = set(self._by_node_crash) | set(self._by_node_slow)
        out |= {f.node for f in self.faults
                if isinstance(f, FlakyConnection) and f.node is not None}
        return frozenset(out)

    def describe(self) -> str:
        if not self.faults:
            return f"FaultPlan(seed={self.seed}, no faults)"
        lines = [f"FaultPlan(seed={self.seed}, {len(self.faults)} faults)"]
        lines += [f"  {f!r}" for f in self.faults]
        return "\n".join(lines)
