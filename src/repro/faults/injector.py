"""FaultInjector: the runtime state threaded through the stack.

One injector is shared by the cluster (node faults, retries, breakers),
the simulator (backend faults, service-time accounting) and optionally
a :class:`~repro.backend.database.SimulatedBackend`.  It owns

* the **access-tick clock** — the simulator advances it once per trace
  request; everything else reads it;
* the **latency channel** — the cluster's routed ops accumulate
  simulated seconds (timeouts, backoff, slow nodes) here and the
  simulator folds them into the request's service time;
* **fault/resilience counters** — plain ints, always on, mirrored into
  a :mod:`repro.obs` registry when one is attached (same auto-attach
  convention as :class:`~repro.cache.cache.SlabCache`);
* the **degraded-time gauge** — cumulative seconds served in degraded
  (stale/error) mode.
"""

from __future__ import annotations

from repro import obs as _obs
from repro.faults.plan import FaultPlan
from repro.faults.resilience import ResilienceConfig


class FaultInjector:
    """Shared fault state for one simulation run.

    Args:
        plan: the fault schedule (``FaultPlan()`` injects nothing but
            still exercises the resilient code path).
        resilience: client-side response knobs.
        obs: metrics registry; defaults to the global one when
            observability is enabled (see :func:`repro.obs.enable`).
        events: event trace for fault/breaker events.

    An injector is single-run state (tick clock, counters): build a
    fresh one per simulation, like a cache.
    """

    def __init__(self, plan: FaultPlan | None = None,
                 resilience: ResilienceConfig | None = None,
                 obs=None, events=None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.resilience = resilience or ResilienceConfig()
        self.tick = -1  # first advance() lands on 0
        self.degraded_time = 0.0
        self.counters: dict[str, int] = {}
        self._pending_latency = 0.0
        self.obs = None
        self.events = None
        self._obs_counters: dict[str, object] = {}
        self._g_degraded = None
        if obs is not None or _obs.is_enabled():
            self.attach_obs(obs if obs is not None else _obs.get_registry(),
                            events if events is not None
                            else _obs.get_event_trace())

    # -- observability ----------------------------------------------------
    def attach_obs(self, registry, events=None) -> None:
        """Mirror counters/gauges into ``registry`` (and events into
        ``events``) from now on."""
        self.obs = registry
        self.events = events
        self._obs_counters = {}
        self._g_degraded = registry.gauge(
            "faults_degraded_time_seconds",
            "cumulative service time spent in degraded (stale/error) mode")
        self._g_degraded.set(self.degraded_time)

    # -- clock & latency channel -----------------------------------------
    def advance(self) -> int:
        """Start the next request: bump the tick, clear stale latency."""
        self.tick += 1
        self._pending_latency = 0.0
        return self.tick

    def add_latency(self, seconds: float) -> None:
        self._pending_latency += seconds

    def consume_latency(self) -> float:
        """Drain the latency accumulated since the last call."""
        out, self._pending_latency = self._pending_latency, 0.0
        return out

    # -- accounting -------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount
        if self.obs is not None:
            counter = self._obs_counters.get(name)
            if counter is None:
                counter = self.obs.counter(
                    f"faults_{name}_total", f"fault-layer events: {name}")
                self._obs_counters[name] = counter
            counter.inc(amount)

    def note_degraded(self, seconds: float) -> None:
        self.degraded_time += seconds
        if self._g_degraded is not None:
            self._g_degraded.set(self.degraded_time)

    def event(self, kind: str, **data) -> None:
        if self.events is not None:
            self.events.record(kind, max(self.tick, 0), **data)

    def snapshot(self) -> dict:
        """Counters + degraded time, for reports and tests."""
        out = dict(sorted(self.counters.items()))
        out["degraded_time"] = self.degraded_time
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FaultInjector(tick={self.tick}, "
                f"counters={dict(sorted(self.counters.items()))})")
