"""Named chaos scenarios and the harness that runs them.

A scenario is a recipe that scales a :class:`FaultPlan` to a concrete
run (trace length, node names, seed); :func:`run_scenario` then replays
one trace per policy twice — fault-free baseline vs. faulted — on
identically configured clusters and reports hit-ratio / service-time /
p99 deltas plus the injector's fault and resilience counters.  The CLI
(``repro-kv chaos``), the chaos tests and the resilience bench all
drive this one harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import fmt_seconds
from repro.cache.sizeclasses import SizeClassConfig
from repro.faults.injector import FaultInjector
from repro.faults.plan import (BackendErrorBurst, BackendSpike, FaultPlan,
                               FlakyConnection, NodeCrash, SlowNode)
from repro.faults.resilience import ResilienceConfig
from repro.obs.registry import Registry
from repro.policies import make_policy
from repro.sim.report import format_table
from repro.sim.simulator import SimulationResult, simulate


def _window(ticks: int, lo: float, hi: float) -> tuple[int, int]:
    """Ticks ``[lo, hi)`` as fractions of the run, at least 1 wide."""
    start = int(ticks * lo)
    return start, max(start + 1, int(ticks * hi))


def _backend_brownout(ticks: int, nodes: list[str], seed: int) -> FaultPlan:
    """Backend penalties triple over the middle of the run, with a 10%
    error rate at the peak — the paper's 'volatile miss penalty' case."""
    s1, e1 = _window(ticks, 0.30, 0.70)
    s2, e2 = _window(ticks, 0.45, 0.55)
    return FaultPlan([BackendSpike(s1, e1, 3.0),
                      BackendErrorBurst(s2, e2, 0.10)], seed=seed)


def _node_flap(ticks: int, nodes: list[str], seed: int) -> FaultPlan:
    """The first node crashes and rejoins twice, with flaky connections
    around each outage (a wobbling deployment)."""
    node = nodes[0]
    c1, r1 = _window(ticks, 0.20, 0.30)
    c2, r2 = _window(ticks, 0.55, 0.65)
    f1s, f1e = _window(ticks, 0.15, 0.35)
    f2s, f2e = _window(ticks, 0.50, 0.70)
    return FaultPlan([NodeCrash(node, c1, r1), NodeCrash(node, c2, r2),
                      FlakyConnection(f1s, f1e, 0.05, node=node),
                      FlakyConnection(f2s, f2e, 0.05, node=node)],
                     seed=seed)


def _slow_node(ticks: int, nodes: list[str], seed: int) -> FaultPlan:
    """One node serves with +20 ms per op over the middle half — below
    the default timeout, so latency degrades without failing over."""
    node = nodes[-1]
    start, end = _window(ticks, 0.25, 0.75)
    return FaultPlan([SlowNode(node, start, end, 0.02)], seed=seed)


def _flaky_network(ticks: int, nodes: list[str], seed: int) -> FaultPlan:
    """2% of every op's connections drop for the whole run — retry and
    backoff territory, breakers should stay closed."""
    return FaultPlan([FlakyConnection(0, max(ticks, 1), 0.02)], seed=seed)


def _blackout(ticks: int, nodes: list[str], seed: int) -> FaultPlan:
    """Every node is down for the same 10% of the run: total outage.
    Ops fail gracefully; the ring stays intact throughout."""
    start, end = _window(ticks, 0.40, 0.50)
    return FaultPlan([NodeCrash(n, start, end) for n in nodes], seed=seed)


SCENARIOS = {
    "backend-brownout": _backend_brownout,
    "node-flap": _node_flap,
    "slow-node": _slow_node,
    "flaky-network": _flaky_network,
    "blackout": _blackout,
}


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def make_plan(name: str, ticks: int, nodes: list[str],
              seed: int = 0) -> FaultPlan:
    """Scale scenario ``name`` to a run of ``ticks`` requests."""
    try:
        build = SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"choose from {scenario_names()}") from None
    if ticks <= 0:
        raise ValueError("ticks must be positive")
    if not nodes:
        raise ValueError("scenario needs at least one node")
    return build(ticks, list(nodes), seed)


@dataclass
class PolicyOutcome:
    """Baseline vs. faulted run of one policy."""

    policy: str
    baseline: SimulationResult
    faulted: SimulationResult
    counters: dict = field(default_factory=dict)
    degraded_time: float = 0.0

    @property
    def hit_delta(self) -> float:
        return self.faulted.hit_ratio - self.baseline.hit_ratio

    @property
    def service_delta(self) -> float:
        return (self.faulted.avg_service_time
                - self.baseline.avg_service_time)

    @property
    def p99_baseline(self) -> float:
        return self.baseline.service_quantiles.get("p99", 0.0)

    @property
    def p99_faulted(self) -> float:
        return self.faulted.service_quantiles.get("p99", 0.0)


@dataclass
class ChaosReport:
    """Everything one :func:`run_scenario` produced."""

    scenario: str
    seed: int
    nodes: list[str]
    plan: FaultPlan
    outcomes: dict[str, PolicyOutcome]

    def advantage(self, better: str = "pama",
                  worse: str = "pre-pama") -> tuple[float, float]:
        """(baseline, faulted) service-time advantage of ``better`` over
        ``worse`` in seconds; positive means ``better`` is faster."""
        b, w = self.outcomes[better], self.outcomes[worse]
        return (w.baseline.avg_service_time - b.baseline.avg_service_time,
                w.faulted.avg_service_time - b.faulted.avg_service_time)

    def format(self) -> str:
        lines = [f"chaos scenario {self.scenario!r} "
                 f"(seed={self.seed}, nodes={len(self.nodes)})"]
        rows = []
        for name, o in self.outcomes.items():
            rows.append([
                name,
                f"{o.baseline.hit_ratio:.4f}",
                f"{o.faulted.hit_ratio:.4f}",
                fmt_seconds(o.baseline.avg_service_time),
                fmt_seconds(o.faulted.avg_service_time),
                f"{o.service_delta / max(o.baseline.avg_service_time, 1e-12) * 100:+.1f}%",
                fmt_seconds(o.p99_faulted),
            ])
        lines.append(format_table(
            ["policy", "hit(base)", "hit(fault)", "svc(base)", "svc(fault)",
             "svc delta", "p99(fault)"], rows))
        sample = next(iter(self.outcomes.values()))
        counters = {k: v for k, v in sorted(sample.counters.items())}
        lines.append("fault/resilience counters "
                     f"({sample.policy}): " + ", ".join(
                         f"{k}={v}" for k, v in counters.items()))
        lines.append(f"degraded_time({sample.policy}) = "
                     f"{fmt_seconds(sample.degraded_time)}")
        if "pama" in self.outcomes and "pre-pama" in self.outcomes:
            base_adv, fault_adv = self.advantage()
            lines.append(
                "pama advantage over pre-pama: "
                f"{base_adv * 1e3:+.3f} ms fault-free -> "
                f"{fault_adv * 1e3:+.3f} ms under faults "
                f"({'widened' if fault_adv > base_adv else 'narrowed'})")
        return "\n".join(lines)


def default_policy_kwargs(window_gets: int, node_count: int) -> dict:
    """Scale the adaptive policies to the run, as the figure benches do
    (each node sees ~1/n of the GETs, so per-node windows shrink)."""
    per_node = max(1000, window_gets // max(node_count, 1))
    return {"pama": {"value_window": per_node},
            "pre-pama": {"value_window": per_node},
            "psa": {"m_misses": 500}}


def run_scenario(name: str, trace, *, policies: list[str],
                 node_count: int = 2, capacity_bytes: int,
                 slab_size: int = 64 * 1024, hit_time: float = 1e-4,
                 window_gets: int = 100_000, seed: int = 0,
                 resilience: ResilienceConfig | None = None,
                 policy_kwargs: dict | None = None,
                 obs_registry: Registry | None = None,
                 obs_events=None, timeline=None, tracing=None,
                 instrument: str | None = None) -> ChaosReport:
    """Replay ``trace`` per policy with and without scenario ``name``.

    Both runs use identically configured clusters (``node_count`` nodes
    of ``capacity_bytes`` each); per-run obs registries supply the p99
    estimates.  When ``obs_registry`` is given the *faulted* runs mirror
    their fault counters and events into it (the ``obs dump`` surface).

    ``timeline``/``tracing`` attach a
    :class:`~repro.obs.timeline.TimelineRecorder` and a
    :class:`~repro.obs.spans.SpanTracer` to the *faulted* run of one
    policy — ``instrument`` (default: the first of ``policies``) — so
    the dump a report renders covers a single coherent run.

    Deterministic end to end: same (trace, scenario, seed) → same
    report, run after run.
    """
    # Deferred: repro.cluster imports repro.faults for the breaker.
    from repro.cluster.cluster import CacheCluster

    nodes = [f"node{i}" for i in range(node_count)]
    plan = make_plan(name, len(trace), nodes, seed)
    classes = SizeClassConfig(slab_size=slab_size)
    if policy_kwargs is None:
        policy_kwargs = default_policy_kwargs(window_gets, node_count)
    if instrument is None and policies:
        instrument = policies[0]
    outcomes: dict[str, PolicyOutcome] = {}
    for policy in policies:
        kwargs = dict(policy_kwargs.get(policy, {}))
        instrumented = policy == instrument

        def cluster(faults: FaultInjector | None, policy: str = policy,
                    kwargs: dict = kwargs,
                    tracer=None) -> CacheCluster:
            return CacheCluster(nodes, capacity_bytes,
                                lambda: make_policy(policy, **kwargs),
                                size_classes=classes, faults=faults,
                                tracing=tracer)

        baseline = simulate(trace, cluster(None), hit_time=hit_time,
                            window_gets=window_gets, obs=Registry())
        inj = FaultInjector(plan, resilience=resilience,
                            obs=obs_registry
                            if obs_registry is not None else Registry(),
                            events=obs_events)
        faulted = simulate(
            trace, cluster(inj, tracer=tracing if instrumented else None),
            hit_time=hit_time, window_gets=window_gets, faults=inj,
            obs=inj.obs,
            timeline=timeline if instrumented else None,
            tracing=tracing if instrumented else None)
        outcomes[policy] = PolicyOutcome(
            policy=policy, baseline=baseline, faulted=faulted,
            counters=dict(inj.counters), degraded_time=inj.degraded_time)
    return ChaosReport(scenario=name, seed=seed, nodes=nodes, plan=plan,
                       outcomes=outcomes)
