"""repro.faults — deterministic fault injection and client resilience.

The chaos layer for the cluster path: a seeded :class:`FaultPlan`
schedules node crashes/rejoins, slow nodes, backend latency spikes and
error bursts, and connection flakiness over access ticks; a
:class:`FaultInjector` threads that plan through
:class:`~repro.cluster.cluster.CacheCluster` (timeouts, retries with
deterministic-jitter backoff, per-node circuit breakers, ring-successor
failover), the simulator (backend fault costs, serve-stale degradation)
and :class:`~repro.backend.database.SimulatedBackend`.

Identical seeds replay identical fault trajectories; with no injector
attached every touched component runs its pre-fault code path
unchanged.  See docs/resilience.md.
"""

from __future__ import annotations

from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.faults.injector import FaultInjector
from repro.faults.plan import (BackendErrorBurst, BackendSpike, FaultPlan,
                               FlakyConnection, NodeCrash, SlowNode, rand01)
from repro.faults.resilience import ResilienceConfig
from repro.faults.scenarios import (SCENARIOS, ChaosReport, PolicyOutcome,
                                    make_plan, run_scenario, scenario_names)

__all__ = [
    "FaultPlan", "NodeCrash", "SlowNode", "BackendSpike",
    "BackendErrorBurst", "FlakyConnection", "rand01",
    "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN",
    "ResilienceConfig", "FaultInjector",
    "SCENARIOS", "scenario_names", "make_plan", "run_scenario",
    "ChaosReport", "PolicyOutcome",
]
