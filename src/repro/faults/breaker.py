"""Per-node circuit breaker: stop hammering a node that keeps failing.

Classic three-state machine over access ticks (the simulator's clock):

* **closed** — requests flow; consecutive failures are counted.
* **open** — entered after ``failure_threshold`` consecutive failures;
  every request is rejected up front (the caller fails over) until
  ``reset_ticks`` ticks have passed.
* **half-open** — entered on the first ``allow`` after the cool-down; a
  single probe request is let through.  Success closes the breaker,
  failure re-opens it and restarts the cool-down.

The breaker is driven entirely by the caller's clock (``tick``
arguments), so chaos replays are deterministic: the same fault
trajectory produces the same transition sequence.
"""

from __future__ import annotations

from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: transition callback: (old_state, new_state, tick)
TransitionHook = Callable[[str, str, int], None]


class CircuitBreaker:
    """One node's breaker; see the module docstring for the states."""

    __slots__ = ("failure_threshold", "reset_ticks", "state", "failures",
                 "opened_at", "transitions", "on_transition")

    def __init__(self, failure_threshold: int = 5, reset_ticks: int = 200,
                 on_transition: TransitionHook | None = None) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_ticks < 1:
            raise ValueError("reset_ticks must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_ticks = reset_ticks
        self.state = CLOSED
        self.failures = 0          # consecutive failures while closed
        self.opened_at = -1
        self.transitions = 0
        self.on_transition = on_transition

    def _goto(self, state: str, tick: int) -> None:
        if state == self.state:
            return
        old, self.state = self.state, state
        self.transitions += 1
        if self.on_transition is not None:
            self.on_transition(old, state, tick)

    # -- caller API -------------------------------------------------------
    def allow(self, tick: int) -> bool:
        """May a request be sent to this node at ``tick``?"""
        if self.state == OPEN:
            if tick - self.opened_at >= self.reset_ticks:
                self._goto(HALF_OPEN, tick)
                return True
            return False
        return True

    def record_success(self, tick: int) -> None:
        self.failures = 0
        if self.state != CLOSED:
            self._goto(CLOSED, tick)

    def record_failure(self, tick: int) -> None:
        if self.state == HALF_OPEN:
            # the probe failed: straight back to open, fresh cool-down
            self.opened_at = tick
            self._goto(OPEN, tick)
            return
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.failure_threshold:
            self.opened_at = tick
            self._goto(OPEN, tick)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CircuitBreaker({self.state}, failures={self.failures}, "
                f"transitions={self.transitions})")
