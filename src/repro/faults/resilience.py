"""Client-side resilience knobs for fault-aware routing.

One frozen config shared by the cluster's routed ops and the
simulator's backend path.  All times are *simulated* seconds — they
feed the service-time metric, they never sleep.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResilienceConfig:
    """How the client side responds when faults bite.

    Attributes:
        op_timeout: per-attempt budget; a down node costs this much to
            discover, and a slow-node delay at or above it is a timeout.
        max_retries: extra attempts per node after the first (transient
            faults only: dropped connections, timeouts).
        backoff_base: delay before the first retry.
        backoff_factor: multiplier per further retry (exponential).
        backoff_jitter: max extra delay as a fraction of the backoff,
            drawn deterministically from the plan's seeded RNG.
        failover: on a hard failure (node down, breaker open, retries
            exhausted) walk the hash ring to the next distinct node.
        breaker_threshold: consecutive failures that open a node's
            circuit breaker.
        breaker_reset_ticks: ticks an open breaker waits before letting
            a half-open probe through.
        serve_stale: degrade gracefully when the *backend* errors on a
            miss — serve a stale/fallback answer at ``stale_serve_time``
            instead of surfacing the failure.
        stale_serve_time: service time of a degraded (stale) answer.
        error_penalty: service time charged when a request ultimately
            fails (backend error with ``serve_stale`` off).
    """

    op_timeout: float = 0.05
    max_retries: int = 2
    backoff_base: float = 0.002
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    failover: bool = True
    breaker_threshold: int = 5
    breaker_reset_ticks: int = 250
    serve_stale: bool = True
    stale_serve_time: float = 1e-3
    error_penalty: float = 0.5

    def __post_init__(self) -> None:
        if self.op_timeout < 0 or self.backoff_base < 0:
            raise ValueError("timeouts/backoffs must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if self.breaker_threshold < 1 or self.breaker_reset_ticks < 1:
            raise ValueError("breaker knobs must be >= 1")
        if self.stale_serve_time < 0 or self.error_penalty < 0:
            raise ValueError("degradation costs must be >= 0")

    def backoff(self, attempt: int, jitter_u: float) -> float:
        """Simulated delay before retry ``attempt`` (1-based), with the
        caller supplying a deterministic uniform [0, 1) draw."""
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return base * (1.0 + self.backoff_jitter * jitter_u)
