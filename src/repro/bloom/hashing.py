"""Hash functions backing the Bloom filters.

Bloom filters need several independent hash values per key.  We derive
all of them from two base 64-bit hashes via the standard double-hashing
construction (Kirsch & Mitzenmacher): ``h_i = h1 + i * h2``.

Keys in the simulator are integers (interned key ids) but the cache and
server accept ``bytes``/``str`` keys too, so both paths are provided.

The hot path computes the base pair once per request
(:func:`hash_pair`) and threads it through every filter probe; the
key-based helpers remain as the reference construction the fast paths
must agree with bit-for-bit.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1

#: seed offset separating the two base hashes of the double-hashing
#: pair; shared by :func:`hash_pair` and :func:`double_hashes`.
PAIR_SEED_DELTA = 0x5BD1E995

#: seed separating key partitioning (server shards, sharded replay)
#: from every other hash family in the repo (bloom probes, fault
#: draws, backoff jitter).
SHARD_SEED = 0x51A8D

# splitmix64 constants (Steele, Lea, Flood — "Fast splittable PRNGs").
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MUL1 = 0xBF58476D1CE4E5B9
_SM_MUL2 = 0x94D049BB133111EB

# FNV-1a 64-bit constants.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def splitmix64(x: int) -> int:
    """One round of the splitmix64 mixer; a strong 64-bit integer hash."""
    x = (x + _SM_GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _SM_MUL1) & _MASK64
    x = ((x ^ (x >> 27)) * _SM_MUL2) & _MASK64
    return x ^ (x >> 31)


def fnv1a64(data: bytes) -> int:
    """FNV-1a 64-bit hash of a byte string."""
    h = _FNV_OFFSET
    for b in data:
        h = ((h ^ b) * _FNV_PRIME) & _MASK64
    return h


def hash_key(key: object, seed: int = 0) -> int:
    """Hash an int / bytes / str key to a 64-bit value.

    Integers take the fast splitmix64 path; text and byte keys go through
    FNV-1a first.  ``seed`` perturbs the result so independent filters
    see independent hash families.
    """
    if isinstance(key, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("bool is not a valid cache key")
    if isinstance(key, int):
        # splitmix64, inlined: this is the replay engine's innermost
        # function (twice per GET) and the nested call costs ~40% of it.
        x = ((key ^ (seed * _SM_GAMMA)) + _SM_GAMMA) & _MASK64
        x = ((x ^ (x >> 30)) * _SM_MUL1) & _MASK64
        x = ((x ^ (x >> 27)) * _SM_MUL2) & _MASK64
        return x ^ (x >> 31)
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, (bytes, bytearray)):
        return splitmix64(fnv1a64(bytes(key)) ^ (seed * _SM_GAMMA) & _MASK64)
    raise TypeError(f"unhashable key type for bloom filter: {type(key)!r}")


def hash_key_array(keys, seed: int = 0):
    """Vectorized :func:`hash_key` over an integer key column.

    Returns a ``uint64`` NumPy array that matches ``hash_key(k, seed)``
    element-wise for every int64/uint64 key: a signed column is viewed
    as its two's-complement uint64 bits, which is exactly the value the
    scalar path's ``& MASK64`` arithmetic reduces a negative Python int
    to.  This is the derive pass's bulk hasher (one vector op chain per
    trace window instead of two Python calls per request).
    """
    import numpy as np

    keys = np.asarray(keys)
    if keys.dtype == np.int64:
        x = keys.view(np.uint64)
    elif keys.dtype == np.uint64:
        x = keys
    else:
        x = keys.astype(np.int64).view(np.uint64)
    u = np.uint64
    x = (x ^ u((seed * _SM_GAMMA) & _MASK64)) + u(_SM_GAMMA)
    x = (x ^ (x >> u(30))) * u(_SM_MUL1)
    x = (x ^ (x >> u(27))) * u(_SM_MUL2)
    return x ^ (x >> u(31))


def hash_pair_arrays(keys):
    """Vectorized :func:`hash_pair`: ``(h1, h2)`` uint64 columns.

    ``h2`` is forced odd exactly like the scalar pair, so the arrays can
    feed every ``*_hashes`` fast path (an ``h2`` of 0 still means "pair
    absent" — a real ``h2`` is never even).
    """
    import numpy as np

    return (hash_key_array(keys, 0),
            hash_key_array(keys, PAIR_SEED_DELTA) | np.uint64(1))


def key_shard(key: object, nshards: int) -> int:
    """Deterministic partition index for any cache key (int/str/bytes).

    The one key-partitioning function in the repo: the async server
    routes connections' keys with it and the sharded replay engine
    splits a trace with it, so a simulated shard sees exactly the keys
    the equivalent server shard would.  Uses :func:`hash_key` under the
    dedicated :data:`SHARD_SEED` so routing stays uncorrelated with
    filter probes and stable across processes and runs.
    """
    if nshards <= 1:
        return 0
    return hash_key(key, SHARD_SEED) % nshards


def key_shard_array(keys, nshards: int):
    """Vectorized :func:`key_shard` over an integer key column.

    Returns an int64 NumPy array agreeing element-wise with the scalar
    routing (the derive pass uses it to mask one shard's rows out of a
    trace window).
    """
    import numpy as np

    keys = np.asarray(keys)
    if nshards <= 1:
        return np.zeros(len(keys), dtype=np.int64)
    return (hash_key_array(keys, SHARD_SEED)
            % np.uint64(nshards)).astype(np.int64)


def hash_pair(key: object, seed: int = 0) -> tuple[int, int]:
    """Base double-hashing pair ``(h1, h2)`` for ``key``; ``h2`` is odd.

    Probe ``i`` of a ``nbits``-wide filter is
    ``((h1 + i*h2) & 2**64-1) % nbits`` — which reduces to
    ``(h1 + i*h2) & (nbits - 1)`` when ``nbits`` is a power of two.
    Computing the pair once per request and reusing it across every
    filter is what makes the replay hot path hash each key exactly once.
    """
    return (hash_key(key, seed),
            hash_key(key, seed + PAIR_SEED_DELTA) | 1)


def double_hashes(key: object, k: int, nbits: int, seed: int = 0) -> list[int]:
    """Return ``k`` bit positions in ``[0, nbits)`` for ``key``.

    Uses two base hashes combined as ``h1 + i*h2`` (with ``h2`` forced
    odd so the probe sequence covers the table when nbits is a power of
    two).  This is the reference construction; the filters' ``*_hashes``
    fast paths must produce exactly these positions.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if nbits <= 0:
        raise ValueError(f"nbits must be positive, got {nbits}")
    h1 = hash_key(key, seed)
    h2 = hash_key(key, seed + PAIR_SEED_DELTA) | 1
    if nbits & (nbits - 1) == 0:
        # optimal_params rounds nbits to a power of two expressly so the
        # reduction is a cheap mask; ((x & MASK64) & (nbits-1)) == x & (nbits-1)
        # because nbits-1 selects a subset of the low 64 bits.
        mask = nbits - 1
        return [(h1 + i * h2) & mask for i in range(k)]
    return [((h1 + i * h2) & _MASK64) % nbits for i in range(k)]
