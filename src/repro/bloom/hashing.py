"""Hash functions backing the Bloom filters.

Bloom filters need several independent hash values per key.  We derive
all of them from two base 64-bit hashes via the standard double-hashing
construction (Kirsch & Mitzenmacher): ``h_i = h1 + i * h2``.

Keys in the simulator are integers (interned key ids) but the cache and
server accept ``bytes``/``str`` keys too, so both paths are provided.

The hot path computes the base pair once per request
(:func:`hash_pair`) and threads it through every filter probe; the
key-based helpers remain as the reference construction the fast paths
must agree with bit-for-bit.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1

#: seed offset separating the two base hashes of the double-hashing
#: pair; shared by :func:`hash_pair` and :func:`double_hashes`.
PAIR_SEED_DELTA = 0x5BD1E995

# splitmix64 constants (Steele, Lea, Flood — "Fast splittable PRNGs").
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MUL1 = 0xBF58476D1CE4E5B9
_SM_MUL2 = 0x94D049BB133111EB

# FNV-1a 64-bit constants.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def splitmix64(x: int) -> int:
    """One round of the splitmix64 mixer; a strong 64-bit integer hash."""
    x = (x + _SM_GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _SM_MUL1) & _MASK64
    x = ((x ^ (x >> 27)) * _SM_MUL2) & _MASK64
    return x ^ (x >> 31)


def fnv1a64(data: bytes) -> int:
    """FNV-1a 64-bit hash of a byte string."""
    h = _FNV_OFFSET
    for b in data:
        h = ((h ^ b) * _FNV_PRIME) & _MASK64
    return h


def hash_key(key: object, seed: int = 0) -> int:
    """Hash an int / bytes / str key to a 64-bit value.

    Integers take the fast splitmix64 path; text and byte keys go through
    FNV-1a first.  ``seed`` perturbs the result so independent filters
    see independent hash families.
    """
    if isinstance(key, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("bool is not a valid cache key")
    if isinstance(key, int):
        # splitmix64, inlined: this is the replay engine's innermost
        # function (twice per GET) and the nested call costs ~40% of it.
        x = ((key ^ (seed * _SM_GAMMA)) + _SM_GAMMA) & _MASK64
        x = ((x ^ (x >> 30)) * _SM_MUL1) & _MASK64
        x = ((x ^ (x >> 27)) * _SM_MUL2) & _MASK64
        return x ^ (x >> 31)
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, (bytes, bytearray)):
        return splitmix64(fnv1a64(bytes(key)) ^ (seed * _SM_GAMMA) & _MASK64)
    raise TypeError(f"unhashable key type for bloom filter: {type(key)!r}")


def hash_pair(key: object, seed: int = 0) -> tuple[int, int]:
    """Base double-hashing pair ``(h1, h2)`` for ``key``; ``h2`` is odd.

    Probe ``i`` of a ``nbits``-wide filter is
    ``((h1 + i*h2) & 2**64-1) % nbits`` — which reduces to
    ``(h1 + i*h2) & (nbits - 1)`` when ``nbits`` is a power of two.
    Computing the pair once per request and reusing it across every
    filter is what makes the replay hot path hash each key exactly once.
    """
    return (hash_key(key, seed),
            hash_key(key, seed + PAIR_SEED_DELTA) | 1)


def double_hashes(key: object, k: int, nbits: int, seed: int = 0) -> list[int]:
    """Return ``k`` bit positions in ``[0, nbits)`` for ``key``.

    Uses two base hashes combined as ``h1 + i*h2`` (with ``h2`` forced
    odd so the probe sequence covers the table when nbits is a power of
    two).  This is the reference construction; the filters' ``*_hashes``
    fast paths must produce exactly these positions.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if nbits <= 0:
        raise ValueError(f"nbits must be positive, got {nbits}")
    h1 = hash_key(key, seed)
    h2 = hash_key(key, seed + PAIR_SEED_DELTA) | 1
    if nbits & (nbits - 1) == 0:
        # optimal_params rounds nbits to a power of two expressly so the
        # reduction is a cheap mask; ((x & MASK64) & (nbits-1)) == x & (nbits-1)
        # because nbits-1 selects a subset of the low 64 bits.
        mask = nbits - 1
        return [(h1 + i * h2) & mask for i in range(k)]
    return [((h1 + i * h2) & _MASK64) % nbits for i in range(k)]
