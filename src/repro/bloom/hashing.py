"""Hash functions backing the Bloom filters.

Bloom filters need several independent hash values per key.  We derive
all of them from two base 64-bit hashes via the standard double-hashing
construction (Kirsch & Mitzenmacher): ``h_i = h1 + i * h2``.

Keys in the simulator are integers (interned key ids) but the cache and
server accept ``bytes``/``str`` keys too, so both paths are provided.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1

# splitmix64 constants (Steele, Lea, Flood — "Fast splittable PRNGs").
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MUL1 = 0xBF58476D1CE4E5B9
_SM_MUL2 = 0x94D049BB133111EB

# FNV-1a 64-bit constants.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def splitmix64(x: int) -> int:
    """One round of the splitmix64 mixer; a strong 64-bit integer hash."""
    x = (x + _SM_GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _SM_MUL1) & _MASK64
    x = ((x ^ (x >> 27)) * _SM_MUL2) & _MASK64
    return x ^ (x >> 31)


def fnv1a64(data: bytes) -> int:
    """FNV-1a 64-bit hash of a byte string."""
    h = _FNV_OFFSET
    for b in data:
        h = ((h ^ b) * _FNV_PRIME) & _MASK64
    return h


def hash_key(key: object, seed: int = 0) -> int:
    """Hash an int / bytes / str key to a 64-bit value.

    Integers take the fast splitmix64 path; text and byte keys go through
    FNV-1a first.  ``seed`` perturbs the result so independent filters
    see independent hash families.
    """
    if isinstance(key, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("bool is not a valid cache key")
    if isinstance(key, int):
        return splitmix64((key ^ (seed * _SM_GAMMA)) & _MASK64)
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, (bytes, bytearray)):
        return splitmix64(fnv1a64(bytes(key)) ^ (seed * _SM_GAMMA) & _MASK64)
    raise TypeError(f"unhashable key type for bloom filter: {type(key)!r}")


def double_hashes(key: object, k: int, nbits: int, seed: int = 0) -> list[int]:
    """Return ``k`` bit positions in ``[0, nbits)`` for ``key``.

    Uses two base hashes combined as ``h1 + i*h2`` (with ``h2`` forced
    odd so the probe sequence covers the table when nbits is a power of
    two).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if nbits <= 0:
        raise ValueError(f"nbits must be positive, got {nbits}")
    h1 = hash_key(key, seed)
    h2 = hash_key(key, seed + 0x5BD1E995) | 1
    return [((h1 + i * h2) & _MASK64) % nbits for i in range(k)]
