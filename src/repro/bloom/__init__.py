"""Bloom-filter substrate for PAMA's segment membership tests."""

from repro.bloom.bloom import BloomFilter, optimal_params
from repro.bloom.counting import CountingBloomFilter
from repro.bloom.hashing import (double_hashes, fnv1a64, hash_key,
                                 hash_pair, splitmix64)
from repro.bloom.removal import RemovalFilter

__all__ = [
    "BloomFilter",
    "CountingBloomFilter",
    "RemovalFilter",
    "optimal_params",
    "double_hashes",
    "hash_pair",
    "fnv1a64",
    "hash_key",
    "splitmix64",
]
