"""A classic Bloom filter.

PAMA uses one Bloom filter per reference segment to answer "did this
request land in segment Sk?" in O(1) without scanning the LRU stack
(paper §III, third challenge).
"""

from __future__ import annotations

import math

from repro.bloom.hashing import double_hashes
from repro._util import next_pow2


def optimal_params(capacity: int, fp_rate: float) -> tuple[int, int]:
    """Return ``(nbits, nhashes)`` sized for ``capacity`` keys at ``fp_rate``.

    Standard formulas: ``m = -n ln p / (ln 2)^2``, ``k = (m/n) ln 2``.
    ``nbits`` is rounded up to a power of two so the modulo in the hash
    probe is cheap and unbiased.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    if not 0.0 < fp_rate < 1.0:
        raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
    nbits = max(8, int(math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))))
    nbits = next_pow2(nbits)
    nhashes = max(1, round((nbits / capacity) * math.log(2)))
    return nbits, nhashes


class BloomFilter:
    """Fixed-size Bloom filter over int / str / bytes keys.

    Supports ``add``, membership via ``in``, and ``clear``.  Deletion is
    impossible by construction; PAMA layers a :class:`RemovalFilter` on
    top to mask members that have logically left a segment.
    """

    __slots__ = ("nbits", "nhashes", "seed", "_bits", "count")

    def __init__(self, capacity: int = 1024, fp_rate: float = 0.01,
                 *, nbits: int | None = None, nhashes: int | None = None,
                 seed: int = 0) -> None:
        if nbits is None or nhashes is None:
            auto_bits, auto_hashes = optimal_params(capacity, fp_rate)
            nbits = nbits if nbits is not None else auto_bits
            nhashes = nhashes if nhashes is not None else auto_hashes
        if nbits <= 0 or nhashes <= 0:
            raise ValueError("nbits and nhashes must be positive")
        self.nbits = nbits
        self.nhashes = nhashes
        self.seed = seed
        self._bits = bytearray((nbits + 7) // 8)
        #: number of ``add`` calls since the last clear (an upper bound on
        #: the number of distinct members).
        self.count = 0

    def add(self, key: object) -> None:
        """Insert ``key`` into the filter."""
        bits = self._bits
        for pos in double_hashes(key, self.nhashes, self.nbits, self.seed):
            bits[pos >> 3] |= 1 << (pos & 7)
        self.count += 1

    def __contains__(self, key: object) -> bool:
        bits = self._bits
        for pos in double_hashes(key, self.nhashes, self.nbits, self.seed):
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def clear(self) -> None:
        """Reset to the empty filter."""
        self._bits = bytearray(len(self._bits))
        self.count = 0

    def saturation(self) -> float:
        """Fraction of bits set — a health metric for sizing decisions."""
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self.nbits

    def estimated_fp_rate(self) -> float:
        """Estimated current false-positive probability from saturation."""
        return self.saturation() ** self.nhashes

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"BloomFilter(nbits={self.nbits}, nhashes={self.nhashes}, "
                f"count={self.count})")
