"""A classic Bloom filter.

PAMA uses one Bloom filter per reference segment to answer "did this
request land in segment Sk?" in O(1) without scanning the LRU stack
(paper §III, third challenge).

The bit array is a ``bytearray`` probed byte-at-a-time: a probe costs
two shifts and an index on machine-word ints, and — unlike the earlier
single-big-int bitset — never copies the whole array (shifting an
``nbits``-wide int allocates an ``nbits``-wide temporary *per probe*,
which dominated the replay profile).  The hot paths (``add_hashes`` /
``contains_hashes``) take a precomputed
:func:`~repro.bloom.hashing.hash_pair` so a request's key is hashed
once, not once per filter.
"""

from __future__ import annotations

import math

from repro.bloom.hashing import _MASK64, hash_pair
from repro._util import next_pow2


def optimal_params(capacity: int, fp_rate: float) -> tuple[int, int]:
    """Return ``(nbits, nhashes)`` sized for ``capacity`` keys at ``fp_rate``.

    Standard formulas: ``m = -n ln p / (ln 2)^2``, ``k = (m/n) ln 2``.
    ``nbits`` is rounded up to a power of two so the modulo in the hash
    probe is a cheap bitmask.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    if not 0.0 < fp_rate < 1.0:
        raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
    nbits = max(8, int(math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))))
    nbits = next_pow2(nbits)
    nhashes = max(1, round((nbits / capacity) * math.log(2)))
    return nbits, nhashes


class BloomFilter:
    """Fixed-size Bloom filter over int / str / bytes keys.

    Supports ``add``, membership via ``in``, and ``clear``.  Deletion is
    impossible by construction; PAMA layers a :class:`RemovalFilter` on
    top to mask members that have logically left a segment.

    ``add``/``__contains__`` hash the key themselves (using the filter's
    ``seed``); ``add_hashes``/``contains_hashes`` accept a base pair the
    caller already computed — ``hash_pair(key, self.seed)`` gives
    bit-identical behaviour to the key-based API.
    """

    __slots__ = ("nbits", "nhashes", "seed", "_ba", "_mask", "count")

    def __init__(self, capacity: int = 1024, fp_rate: float = 0.01,
                 *, nbits: int | None = None, nhashes: int | None = None,
                 seed: int = 0) -> None:
        if nbits is None or nhashes is None:
            auto_bits, auto_hashes = optimal_params(capacity, fp_rate)
            nbits = nbits if nbits is not None else auto_bits
            nhashes = nhashes if nhashes is not None else auto_hashes
        if nbits <= 0 or nhashes <= 0:
            raise ValueError("nbits and nhashes must be positive")
        self.nbits = nbits
        self.nhashes = nhashes
        self.seed = seed
        #: probe mask when nbits is a power of two, else 0 (modulo path).
        self._mask = nbits - 1 if nbits & (nbits - 1) == 0 else 0
        #: the bitset: bit ``p`` of the little-endian byte array is set
        #: ⇔ some member probed position ``p``.
        self._ba = bytearray((nbits + 7) >> 3)
        #: number of ``add`` calls since the last clear (an upper bound on
        #: the number of distinct members).
        self.count = 0

    @property
    def _bits(self) -> int:
        """The bitset as one int (inspection/tests; not a hot path)."""
        return int.from_bytes(self._ba, "little")

    def add(self, key: object) -> None:
        """Insert ``key`` into the filter."""
        h1, h2 = hash_pair(key, self.seed)
        self.add_hashes(h1, h2)

    def add_hashes(self, h1: int, h2: int) -> None:
        """Insert by precomputed base pair (the hash-once fast path)."""
        ba = self._ba
        mask = self._mask
        if mask:
            for i in range(self.nhashes):
                p = (h1 + i * h2) & mask
                ba[p >> 3] |= 1 << (p & 7)
        else:
            nbits = self.nbits
            for i in range(self.nhashes):
                p = ((h1 + i * h2) & _MASK64) % nbits
                ba[p >> 3] |= 1 << (p & 7)
        self.count += 1

    def __contains__(self, key: object) -> bool:
        h1, h2 = hash_pair(key, self.seed)
        return self.contains_hashes(h1, h2)

    def contains_hashes(self, h1: int, h2: int) -> bool:
        """Membership by precomputed base pair; early-exits on the first
        clear bit instead of materialising all probe positions."""
        ba = self._ba
        mask = self._mask
        if mask:
            for i in range(self.nhashes):
                p = (h1 + i * h2) & mask
                if not ba[p >> 3] >> (p & 7) & 1:
                    return False
        else:
            nbits = self.nbits
            for i in range(self.nhashes):
                p = ((h1 + i * h2) & _MASK64) % nbits
                if not ba[p >> 3] >> (p & 7) & 1:
                    return False
        return True

    def clear(self) -> None:
        """Reset to the empty filter."""
        self._ba = bytearray(len(self._ba))
        self.count = 0

    def saturation(self) -> float:
        """Fraction of bits set — a health metric for sizing decisions."""
        return self._bits.bit_count() / self.nbits

    def estimated_fp_rate(self) -> float:
        """Estimated current false-positive probability from saturation."""
        return self.saturation() ** self.nhashes

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"BloomFilter(nbits={self.nbits}, nhashes={self.nhashes}, "
                f"count={self.count})")
