"""Removal filter: PAMA's workaround for Bloom filters lacking deletion.

Paper §III (third challenge): a removal filter tracks keys recently
*removed* from the reference segments (an LRU hit pulls the item to the
stack top, out of any bottom segment).  A segment filter's positive is
trusted only if the removal filter does *not* also contain the key.
When a key being **added** to a segment collides with the removal
filter, the removal filter is cleared — otherwise it would wrongly mask
the fresh member.
"""

from __future__ import annotations

from repro.bloom.bloom import BloomFilter
from repro.bloom.hashing import hash_pair


class RemovalFilter:
    """Bloom filter with the paper's clear-on-readd semantics.

    Mirrors :class:`BloomFilter`'s two-level API: key-based methods hash
    with the filter's seed; ``*_hashes`` variants take a precomputed
    :func:`~repro.bloom.hashing.hash_pair` so the tracker hot path
    hashes each request key once for all filters.
    """

    __slots__ = ("_filter", "clears", "removals")

    def __init__(self, capacity: int = 4096, fp_rate: float = 0.01,
                 seed: int = 0x52454D) -> None:
        self._filter = BloomFilter(capacity, fp_rate, seed=seed)
        #: number of times the filter was cleared due to a re-added key.
        self.clears = 0
        #: number of removals recorded since construction.
        self.removals = 0

    def mark_removed(self, key: object) -> None:
        """Record that ``key`` left the segments (e.g. was hit → MRU)."""
        h1, h2 = hash_pair(key, self._filter.seed)
        self.mark_removed_hashes(h1, h2)

    def mark_removed_hashes(self, h1: int, h2: int) -> None:
        """``mark_removed`` by precomputed base pair."""
        self._filter.add_hashes(h1, h2)
        self.removals += 1

    def on_segment_add(self, key: object) -> None:
        """A key entered a segment; clear the filter if it would be masked."""
        h1, h2 = hash_pair(key, self._filter.seed)
        self.on_segment_add_hashes(h1, h2)

    def on_segment_add_hashes(self, h1: int, h2: int) -> None:
        """``on_segment_add`` by precomputed base pair."""
        if self._filter.contains_hashes(h1, h2):
            self._filter.clear()
            self.clears += 1

    def masks(self, key: object) -> bool:
        """True if a segment-filter positive for ``key`` must be ignored."""
        return key in self._filter

    def masks_hashes(self, h1: int, h2: int) -> bool:
        """``masks`` by precomputed base pair."""
        return self._filter.contains_hashes(h1, h2)

    def clear(self) -> None:
        self._filter.clear()

    def __len__(self) -> int:
        return len(self._filter)
