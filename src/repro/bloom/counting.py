"""Counting Bloom filter (extension).

Not used by the faithful PAMA implementation — the paper explicitly
chose plain filters plus a removal filter for space reasons — but
provided as the natural alternative, and used by the Bloom-tracker
ablation to quantify the trade-off.
"""

from __future__ import annotations

from repro.bloom.hashing import _MASK64, hash_pair
from repro.bloom.bloom import optimal_params


class CountingBloomFilter:
    """Bloom filter with 8-bit counters, supporting ``remove``.

    Counters saturate at 255 rather than overflowing; a saturated
    counter is never decremented, which preserves the no-false-negative
    guarantee at the cost of a slightly elevated false-positive rate
    under heavy reuse.
    """

    __slots__ = ("nbits", "nhashes", "seed", "_counts", "_mask", "count")

    _SATURATED = 255

    def __init__(self, capacity: int = 1024, fp_rate: float = 0.01,
                 *, seed: int = 0) -> None:
        nbits, nhashes = optimal_params(capacity, fp_rate)
        self.nbits = nbits
        self.nhashes = nhashes
        self.seed = seed
        #: probe mask when nbits is a power of two, else 0 (modulo path).
        self._mask = nbits - 1 if nbits & (nbits - 1) == 0 else 0
        self._counts = bytearray(nbits)
        self.count = 0

    def _position(self, h1: int, h2: int, i: int) -> int:
        mask = self._mask
        if mask:
            return (h1 + i * h2) & mask
        return ((h1 + i * h2) & _MASK64) % self.nbits

    def add(self, key: object) -> None:
        h1, h2 = hash_pair(key, self.seed)
        self.add_hashes(h1, h2)

    def add_hashes(self, h1: int, h2: int) -> None:
        """Insert by precomputed base pair (the hash-once fast path)."""
        counts = self._counts
        saturated = self._SATURATED
        for i in range(self.nhashes):
            pos = self._position(h1, h2, i)
            if counts[pos] < saturated:
                counts[pos] += 1
        self.count += 1

    def remove(self, key: object) -> bool:
        """Remove one occurrence of ``key``.

        Returns False (and does nothing) if the key is definitely absent.
        Removing a key that was never added corrupts a plain counting
        filter; the membership pre-check makes that a no-op instead.
        """
        h1, h2 = hash_pair(key, self.seed)
        return self.remove_hashes(h1, h2)

    def remove_hashes(self, h1: int, h2: int) -> bool:
        """``remove`` by precomputed base pair."""
        if not self.contains_hashes(h1, h2):
            return False
        counts = self._counts
        saturated = self._SATURATED
        for i in range(self.nhashes):
            pos = self._position(h1, h2, i)
            if 0 < counts[pos] < saturated:
                counts[pos] -= 1
        self.count = max(0, self.count - 1)
        return True

    def __contains__(self, key: object) -> bool:
        h1, h2 = hash_pair(key, self.seed)
        return self.contains_hashes(h1, h2)

    def contains_hashes(self, h1: int, h2: int) -> bool:
        """Membership by precomputed base pair, with early exit."""
        counts = self._counts
        for i in range(self.nhashes):
            if not counts[self._position(h1, h2, i)]:
                return False
        return True

    def clear(self) -> None:
        self._counts = bytearray(self.nbits)
        self.count = 0

    def __len__(self) -> int:
        return self.count
