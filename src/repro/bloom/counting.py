"""Counting Bloom filter (extension).

Not used by the faithful PAMA implementation — the paper explicitly
chose plain filters plus a removal filter for space reasons — but
provided as the natural alternative, and used by the Bloom-tracker
ablation to quantify the trade-off.
"""

from __future__ import annotations

from repro.bloom.hashing import double_hashes
from repro.bloom.bloom import optimal_params


class CountingBloomFilter:
    """Bloom filter with 8-bit counters, supporting ``remove``.

    Counters saturate at 255 rather than overflowing; a saturated
    counter is never decremented, which preserves the no-false-negative
    guarantee at the cost of a slightly elevated false-positive rate
    under heavy reuse.
    """

    __slots__ = ("nbits", "nhashes", "seed", "_counts", "count")

    _SATURATED = 255

    def __init__(self, capacity: int = 1024, fp_rate: float = 0.01,
                 *, seed: int = 0) -> None:
        nbits, nhashes = optimal_params(capacity, fp_rate)
        self.nbits = nbits
        self.nhashes = nhashes
        self.seed = seed
        self._counts = bytearray(nbits)
        self.count = 0

    def add(self, key: object) -> None:
        counts = self._counts
        for pos in double_hashes(key, self.nhashes, self.nbits, self.seed):
            if counts[pos] < self._SATURATED:
                counts[pos] += 1
        self.count += 1

    def remove(self, key: object) -> bool:
        """Remove one occurrence of ``key``.

        Returns False (and does nothing) if the key is definitely absent.
        Removing a key that was never added corrupts a plain counting
        filter; the membership pre-check makes that a no-op instead.
        """
        if key not in self:
            return False
        counts = self._counts
        for pos in double_hashes(key, self.nhashes, self.nbits, self.seed):
            if 0 < counts[pos] < self._SATURATED:
                counts[pos] -= 1
        self.count = max(0, self.count - 1)
        return True

    def __contains__(self, key: object) -> bool:
        counts = self._counts
        return all(counts[pos] > 0 for pos in
                   double_hashes(key, self.nhashes, self.nbits, self.seed))

    def clear(self) -> None:
        self._counts = bytearray(self.nbits)
        self.count = 0

    def __len__(self) -> int:
        return self.count
