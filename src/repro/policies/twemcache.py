"""Twemcache's random slab reassignment (Twitter).

Paper §II: "when a class has a miss but does not have free space,
Twemcache chooses a random class and reassigns one of its slabs to the
class with the miss", spreading misses uniformly over classes.
"""

from __future__ import annotations

import random

from repro.policies.base import AllocationPolicy
from repro.cache.queue import Queue


class TwemcachePolicy(AllocationPolicy):
    """Random-donor reassignment on every pressure event."""

    name = "twemcache"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = random.Random(seed)

    def resolve_pressure(self, queue: Queue, must_migrate: bool) -> Queue | None:
        donors = [q for q in self.cache.iter_queues() if q.can_donate()]
        if not donors:
            return None
        choice = self._rng.choice(donors)
        # Choosing itself degenerates to evicting a slab's worth from the
        # requesting class, which is Twemcache's actual behaviour too.
        return choice
