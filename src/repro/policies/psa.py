"""PSA — Periodic Slab Allocation (Carra & Michiardi, ICC 2014).

Paper §II: "For every M misses ... PSA relocates a slab from the class
with the lowest density, or number of requests per slab, to the one
with the largest number of misses recorded in a time window."

PSA is the reallocating baseline the paper evaluates against: it
normalises requests by space (so it sees item size) but ignores both
fine-grained locality (density counts *any* access, not just near-bottom
ones) and miss penalty.
"""

from __future__ import annotations

from repro.policies.base import AllocationPolicy
from repro.cache.queue import Queue


class PSAPolicy(AllocationPolicy):
    """Periodic slab allocation, triggered every ``m_misses`` misses."""

    name = "psa"

    def __init__(self, m_misses: int = 1000) -> None:
        super().__init__()
        if m_misses <= 0:
            raise ValueError(f"m_misses must be positive, got {m_misses}")
        self.m_misses = m_misses
        self._miss_count = 0
        # per-queue window counters: qid -> [requests, misses]
        self._window: dict[tuple[int, int], list[int]] = {}

    # -- accounting ------------------------------------------------------
    def _bump(self, qid: tuple[int, int], requests: int, misses: int) -> None:
        counters = self._window.get(qid)
        if counters is None:
            counters = [0, 0]
            self._window[qid] = counters
        counters[0] += requests
        counters[1] += misses

    def on_hit(self, queue: Queue, item,
               h1: int = 0, h2: int = 0) -> None:
        self._bump(queue.qid, 1, 0)

    def on_insert(self, queue: Queue, item) -> None:
        self._bump(queue.qid, 1, 0)

    def on_miss(self, key: object, class_idx: int, penalty: float,
                h1: int = 0, h2: int = 0) -> None:
        if class_idx >= 0:
            self._bump((class_idx, 0), 1, 1)
        self._miss_count += 1
        if self._miss_count % self.m_misses == 0:
            self._rebalance()

    # -- the periodic move -------------------------------------------------
    def _rebalance(self) -> None:
        cache = self.cache
        receiver_qid = None
        most_misses = 0
        for qid, (_req, misses) in self._window.items():
            if misses > most_misses:
                receiver_qid, most_misses = qid, misses
        if receiver_qid is None:
            self._window.clear()
            return
        receiver = cache.queue_for(*receiver_qid)

        donor: Queue | None = None
        lowest_density = float("inf")
        for q in cache.iter_queues():
            if q is receiver or not q.can_donate():
                continue
            requests = self._window.get(q.qid, (0, 0))[0]
            density = requests / q.slabs
            if density < lowest_density:
                donor, lowest_density = q, density
        if donor is not None:
            cache.migrate(donor, receiver)
        self._window.clear()

    def resolve_pressure(self, queue: Queue, must_migrate: bool) -> Queue | None:
        # In-class LRU eviction; rebalancing happens on the miss timer.
        return None
