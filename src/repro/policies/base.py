"""Allocation-policy interface.

A policy decides two things the substrate cannot:

1. **Binning** — which penalty bin (subclass) an item belongs to.
   Non-penalty-aware policies use a single bin, making queues identical
   to Memcached classes; PAMA returns one of its five penalty ranges.
2. **Pressure resolution** — when a queue needs a slot, the free pool is
   empty, and the paper's question arises: *where should a unit of
   memory come from?*  The policy names a donor queue (slab migration)
   or declines (evict within the requesting queue).

Policies observe every hit / miss / insert / evict so they can maintain
whatever bookkeeping their decision needs (PSA's densities, Facebook's
LRU ages, PAMA's segment values).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.cache.errors import PolicyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.cache import SlabCache
    from repro.cache.item import Item
    from repro.cache.queue import Queue


class AllocationPolicy(ABC):
    """Base class for slab (re)allocation policies."""

    #: short name used in reports and CLI (override in subclasses).
    name = "base"

    #: when a slabless queue needs space and the policy declines to name
    #: a donor, the cache normally picks one via :func:`default_donor`.
    #: Policies that model Memcached's "SERVER_ERROR out of memory"
    #: semantics set this to False and the SET fails instead.
    allow_fallback_donor = True

    #: True when the policy's bookkeeping probes Bloom filters on the
    #: access path (PAMA with the Bloom tracker).  The cache then
    #: computes the request key's base hash pair *once* per operation
    #: (:func:`~repro.bloom.hashing.hash_pair` with seed 0) and passes
    #: it to ``on_hit``/``on_miss``; policies that don't probe filters
    #: skip the hashing entirely.
    wants_key_hashes = False

    def __init__(self) -> None:
        self.cache: SlabCache | None = None

    # -- lifecycle -----------------------------------------------------
    def attach(self, cache: SlabCache) -> None:
        """Bind the policy to a cache. Called once by SlabCache.__init__."""
        if self.cache is not None:
            raise PolicyError(f"policy {self.name!r} is already attached")
        self.cache = cache

    def on_queue_created(self, queue: Queue) -> None:
        """A queue was lazily created; install per-queue state if needed."""

    # -- binning -------------------------------------------------------
    def bin_for(self, penalty: float) -> int:
        """Penalty bin for an item; default policies are penalty-blind."""
        return 0

    def bin_edges(self) -> tuple[float, ...] | None:
        """Static penalty-bin edges, or ``None`` when binning is dynamic.

        The derive pass precomputes every request's penalty bin from
        these edges (``bin_for`` must equal "bisect_left over the edges,
        clamped to the last bin"; an empty tuple means a single bin 0).
        Policies whose binning depends on mutable state — learned edges,
        the current tenant — must return ``None``, which keeps the
        replay on the scalar loop where ``bin_for`` is consulted per
        request.  The base implementation answers for any subclass that
        kept the penalty-blind default and refuses (``None``) for any
        that overrode ``bin_for`` without also overriding this hook.
        """
        if type(self).bin_for is AllocationPolicy.bin_for:
            return ()
        return None

    # -- event observation ----------------------------------------------
    def on_hit(self, queue: Queue, item: Item,
               h1: int = 0, h2: int = 0) -> None:
        """A GET hit ``item``; fired *before* the LRU promotion.

        ``(h1, h2)`` is the request key's base hash pair, supplied only
        when :attr:`wants_key_hashes` is set (0, 0 otherwise — a real
        ``h2`` is always odd, so ``h2 == 0`` is an unambiguous "absent").
        """

    def on_miss(self, key: object, class_idx: int, penalty: float,
                h1: int = 0, h2: int = 0) -> None:
        """A GET missed. ``class_idx``/``penalty`` are -1/nan when unknown.

        ``(h1, h2)`` follows the same contract as :meth:`on_hit`.
        """

    def on_insert(self, queue: Queue, item: Item) -> None:
        """``item`` was stored (fired after it joined the queue MRU)."""

    def on_evict(self, queue: Queue, item: Item) -> None:
        """``item`` was evicted from ``queue`` under space pressure."""

    def on_remove(self, queue: Queue, item: Item) -> None:
        """``item`` left ``queue`` for a non-pressure reason (DELETE, or a
        SET replacing the key, possibly into a different queue)."""

    # -- eviction decisions -----------------------------------------------
    def choose_victim(self, queue: Queue) -> Item | None:
        """Pick the item to evict from ``queue`` under pressure.

        Default None = strict LRU (the queue's stack bottom), which is
        what Memcached and every scheme in the paper use.  Item-level
        policies (GreedyDual-Size, the Belady oracle) override this.
        The returned item must currently live in ``queue``.
        """
        return None

    # -- allocation decisions --------------------------------------------
    def wants_free_slab(self, queue: Queue) -> bool:
        """May ``queue`` take a slab from the free pool?  Default: yes.

        All evaluated schemes grant free slabs on demand during warm-up;
        the hook exists so capped/partitioned policies can be expressed.
        """
        return True

    @abstractmethod
    def resolve_pressure(self, queue: Queue, must_migrate: bool) -> Queue | None:
        """Decide where ``queue``'s needed slot comes from.

        Returns a donor queue (slab migration donor → requester), the
        requesting queue itself, or None — the latter two both mean
        "evict one item inside the requesting queue".

        ``must_migrate`` is True when the requesting queue holds no slab
        (nothing to evict locally), in which case returning None makes
        the cache fall back to :func:`default_donor`.
        """


def default_donor(cache: SlabCache, requester: Queue) -> Queue | None:
    """Fallback donor: the queue with the most free slots, then most slabs.

    Used when a queue with zero slabs needs space but the policy did not
    name a donor.  Returns None only if no other queue owns a slab (the
    cache then raises OutOfMemoryError and the SET fails).
    """
    best: Queue | None = None
    best_key = (-1, -1)
    for q in cache.queues.values():
        if q is requester or not q.can_donate():
            continue
        key = (q.free_slots, q.slabs)
        if key > best_key:
            best, best_key = q, key
    return best
