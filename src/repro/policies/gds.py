"""GreedyDual-Size: classic cost-aware *item-level* replacement.

Extension baseline (Cao & Irani, USENIX Symposium on Internet
Technologies 1997).  The cost-aware caching literature the paper builds
on answers penalty variance at the *item* level: every item carries a
priority ``H = L + penalty / size`` (L is the inflation value, raised to
the evicted item's H on each eviction) and the lowest-H item goes first.

Placing GDS next to PAMA isolates the paper's actual contribution: is
*slab-level* penalty-aware allocation needed, or would cost-aware
eviction inside classes suffice?  GDS here keeps Memcached's slab
structure (one queue per class) but replaces in-class LRU eviction with
GDS order, and resolves slab pressure by taking from the queue holding
the globally cheapest item.
"""

from __future__ import annotations

import heapq
import itertools

from repro.cache.item import Item
from repro.cache.queue import Queue
from repro.policies.base import AllocationPolicy


class _GdsQueueState:
    """Lazy-deletion priority heap + inflation value for one queue."""

    __slots__ = ("heap", "inflation", "current")

    def __init__(self) -> None:
        # heap of (H, tiebreak, item); stale entries skipped lazily
        self.heap: list[tuple[float, int, Item]] = []
        self.inflation = 0.0
        # item -> its live H (an entry is current iff it matches)
        self.current: dict[int, float] = {}


class GreedyDualSizePolicy(AllocationPolicy):
    """GDS eviction inside Memcached-style classes.

    ``reallocate=False`` (default, the literature's GDS) keeps
    Memcached's frozen slab allocation and only changes the in-class
    eviction order.  ``reallocate=True`` additionally resolves slab
    pressure by taking from the queue holding the globally cheapest
    item — a cost-aware *allocation* hybrid that turns out to be a much
    stronger baseline (see the oracle ablation bench).
    """

    name = "gds"

    def __init__(self, reallocate: bool = False) -> None:
        super().__init__()
        self.reallocate = reallocate
        if reallocate:
            self.name = "gds-alloc"
        self._tiebreak = itertools.count()

    # -- state ------------------------------------------------------------
    def on_queue_created(self, queue: Queue) -> None:
        queue.policy_data = _GdsQueueState()

    def _priority(self, state: _GdsQueueState, item: Item) -> float:
        # one item per slot: the slot is the space cost, so penalty per
        # slot byte is the natural H increment
        return state.inflation + item.penalty / max(item.total_size, 1)

    def _push(self, queue: Queue, item: Item) -> None:
        state: _GdsQueueState = queue.policy_data
        h = self._priority(state, item)
        state.current[id(item)] = h
        heapq.heappush(state.heap, (h, next(self._tiebreak), item))

    # -- events ---------------------------------------------------------
    def on_insert(self, queue: Queue, item: Item) -> None:
        self._push(queue, item)

    def on_hit(self, queue: Queue, item: Item,
               h1: int = 0, h2: int = 0) -> None:
        # a hit refreshes H with the current inflation value
        self._push(queue, item)

    def on_evict(self, queue: Queue, item: Item) -> None:
        queue.policy_data.current.pop(id(item), None)

    def on_remove(self, queue: Queue, item: Item) -> None:
        queue.policy_data.current.pop(id(item), None)

    # -- decisions --------------------------------------------------------
    def _peek(self, queue: Queue) -> tuple[float, Item] | None:
        """Lowest live (H, item) of a queue, discarding stale entries."""
        state: _GdsQueueState = queue.policy_data
        heap = state.heap
        while heap:
            h, _tb, item = heap[0]
            if state.current.get(id(item)) == h:
                return h, item
            heapq.heappop(heap)
        return None

    def choose_victim(self, queue: Queue) -> Item | None:
        top = self._peek(queue)
        if top is None:
            return None  # fall back to LRU (shouldn't happen)
        h, item = top
        state: _GdsQueueState = queue.policy_data
        heapq.heappop(state.heap)
        state.current.pop(id(item), None)
        # GreedyDual aging: future insertions start at the evicted H
        state.inflation = h
        return item

    def resolve_pressure(self, queue: Queue, must_migrate: bool) -> Queue | None:
        if not self.reallocate and not must_migrate:
            return None  # classic GDS: replace within the class
        # hybrid: take space from the queue holding the cheapest item
        donor: Queue | None = None
        lowest = float("inf")
        for q in self.cache.iter_queues():
            if not q.can_donate():
                continue
            top = self._peek(q)
            if top is not None and top[0] < lowest:
                donor, lowest = q, top[0]
        return donor
