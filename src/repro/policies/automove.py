"""Memcached 1.4.11's conservative slab automover.

Paper §II: "In every time window of ten minutes, the number of misses
in each class are recorded. If a class continuously receives the
largest number of misses for three times, and there exists a class that
does not see any misses in the three time windows, a slab is migrated
from the class without misses to the class with the most misses."

Window length is expressed in cache accesses (the simulator's clock).
"""

from __future__ import annotations

from repro.policies.base import AllocationPolicy
from repro.cache.queue import Queue


class AutoMovePolicy(AllocationPolicy):
    """The 1.4.11 automover: 3 consecutive windows of evidence per move."""

    name = "automove"

    def __init__(self, window_accesses: int = 100_000,
                 required_streak: int = 3) -> None:
        super().__init__()
        if window_accesses <= 0:
            raise ValueError("window_accesses must be positive")
        if required_streak < 1:
            raise ValueError("required_streak must be >= 1")
        self.window_accesses = window_accesses
        self.required_streak = required_streak
        self._window_start = 0
        self._misses: dict[tuple[int, int], int] = {}
        # trailing per-window miss maps, newest last (length <= streak)
        self._history: list[dict[tuple[int, int], int]] = []

    def on_miss(self, key: object, class_idx: int, penalty: float,
                h1: int = 0, h2: int = 0) -> None:
        if class_idx >= 0:
            qid = (class_idx, 0)
            self._misses[qid] = self._misses.get(qid, 0) + 1
        self._maybe_close_window()

    def on_hit(self, queue: Queue, item,
               h1: int = 0, h2: int = 0) -> None:
        self._maybe_close_window()

    def _maybe_close_window(self) -> None:
        cache = self.cache
        if cache.accesses - self._window_start < self.window_accesses:
            return
        self._window_start = cache.accesses
        self._history.append(self._misses)
        self._misses = {}
        if len(self._history) > self.required_streak:
            self._history.pop(0)
        if len(self._history) == self.required_streak:
            self._consider_move()

    def _consider_move(self) -> None:
        cache = self.cache
        # The same class must top the miss count in every recorded window.
        leaders = set()
        for window in self._history:
            if not window:
                return
            top = max(window.items(), key=lambda kv: kv[1])[0]
            leaders.add(top)
        if len(leaders) != 1:
            return
        receiver_qid = leaders.pop()
        receiver = cache.queue_for(*receiver_qid)
        # Donor: a queue with zero misses across all recorded windows.
        for q in cache.iter_queues():
            if q is receiver or not q.can_donate():
                continue
            if all(w.get(q.qid, 0) == 0 for w in self._history):
                cache.migrate(q, receiver)
                self._history.clear()
                return

    def resolve_pressure(self, queue: Queue, must_migrate: bool) -> Queue | None:
        return None
