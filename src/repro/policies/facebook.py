"""Facebook's slab rebalancer (Nishtala et al., NSDI 2013).

Paper §II: the scheme "attempts to balance the age of LRU items in
different classes to approximate a single global LRU": if a class's LRU
item is 20% *younger* than the average of the other classes' LRU-item
ages, one slab moves from the class with the oldest LRU item to the
class with the youngest.

Age here is measured in cache accesses since the item's last access,
the trace-driven analogue of wall-clock age.
"""

from __future__ import annotations

from repro.policies.base import AllocationPolicy
from repro.cache.queue import Queue


class FacebookPolicy(AllocationPolicy):
    """Age-of-LRU-item balancer, evaluated every ``check_interval`` accesses."""

    name = "facebook"

    def __init__(self, check_interval: int = 10_000,
                 youth_threshold: float = 0.8) -> None:
        super().__init__()
        if check_interval <= 0:
            raise ValueError("check_interval must be positive")
        if not 0.0 < youth_threshold < 1.0:
            raise ValueError("youth_threshold must be in (0, 1)")
        self.check_interval = check_interval
        self.youth_threshold = youth_threshold
        self._last_check = 0

    def _maybe_rebalance(self) -> None:
        cache = self.cache
        if cache.accesses - self._last_check < self.check_interval:
            return
        self._last_check = cache.accesses

        ages: list[tuple[Queue, float]] = []
        for q in cache.iter_queues():
            tail = q.lru.back
            if tail is not None:
                ages.append((q, float(cache.accesses - tail.last_access)))
        if len(ages) < 2:
            return
        total = sum(a for _, a in ages)
        youngest, youngest_age = min(ages, key=lambda qa: qa[1])
        oldest, oldest_age = max(ages, key=lambda qa: qa[1])
        others_avg = (total - youngest_age) / (len(ages) - 1)
        if (youngest_age < self.youth_threshold * others_avg
                and oldest is not youngest and oldest.can_donate()):
            cache.migrate(oldest, youngest)

    def on_hit(self, queue: Queue, item,
               h1: int = 0, h2: int = 0) -> None:
        self._maybe_rebalance()

    def on_miss(self, key: object, class_idx: int, penalty: float,
                h1: int = 0, h2: int = 0) -> None:
        self._maybe_rebalance()

    def resolve_pressure(self, queue: Queue, must_migrate: bool) -> Queue | None:
        return None
