"""LAMA-lite: miss-ratio-curve driven allocation (after Hu et al. [9]).

The paper's §II discusses LAMA as the closest related scheme: per-class
miss ratio curves feed a dynamic program that picks the allocation
minimizing either total misses or average request service time (using
*average* per-class miss penalty — the very averaging PAMA criticises).

This implementation samples per-class reuse distances
(:mod:`repro.policies.mrc`), rebuilds allocations every epoch with a
min-plus DP over slab counts, and migrates slabs toward the target.
It is an extension baseline — useful to show where average-penalty
optimisation falls short of PAMA's per-item penalties.
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import AllocationPolicy
from repro.policies.mrc import DistanceHistogram, ReuseDistanceProfiler
from repro.cache.queue import Queue


class _ClassProfile:
    """Per-size-class profiling state."""

    __slots__ = ("profiler", "histogram", "requests", "penalty_sum",
                 "penalty_count")

    def __init__(self, sample_shift: int) -> None:
        self.profiler = ReuseDistanceProfiler(sample_shift)
        self.histogram = DistanceHistogram()
        self.requests = 0
        self.penalty_sum = 0.0
        self.penalty_count = 0

    @property
    def avg_penalty(self) -> float:
        if self.penalty_count == 0:
            return 0.1  # the paper's default penalty
        return self.penalty_sum / self.penalty_count


class LamaPolicy(AllocationPolicy):
    """MRC + dynamic-programming slab allocation.

    Args:
        epoch_accesses: accesses between reallocation rounds.
        objective: ``"service"`` weights misses by the class's average
            penalty (LAMA-AST); ``"misses"`` minimizes miss count
            (LAMA-MR).
        sample_shift: reuse-distance sampling rate is 1/2^shift.
        max_moves: slab migrations applied per epoch (gradual adaptation).
        max_dp_units: DP table width; slabs are grouped into chunks when
            the cache has more slabs than this.
    """

    name = "lama"

    def __init__(self, epoch_accesses: int = 200_000,
                 objective: str = "service", sample_shift: int = 4,
                 max_moves: int = 16, max_dp_units: int = 256) -> None:
        super().__init__()
        if objective not in ("service", "misses"):
            raise ValueError(f"unknown objective {objective!r}")
        if epoch_accesses <= 0 or max_moves <= 0 or max_dp_units <= 1:
            raise ValueError("epoch_accesses, max_moves, max_dp_units must be positive")
        self.epoch_accesses = epoch_accesses
        self.objective = objective
        self.sample_shift = sample_shift
        self.max_moves = max_moves
        self.max_dp_units = max_dp_units
        self._profiles: dict[int, _ClassProfile] = {}
        self._epoch_start = 0
        self.reallocations = 0

    # -- profiling ----------------------------------------------------------
    def _profile(self, class_idx: int) -> _ClassProfile:
        prof = self._profiles.get(class_idx)
        if prof is None:
            prof = _ClassProfile(self.sample_shift)
            self._profiles[class_idx] = prof
        return prof

    def _record(self, class_idx: int, key: object, penalty: float) -> None:
        prof = self._profile(class_idx)
        prof.requests += 1
        if penalty == penalty and penalty >= 0:
            prof.penalty_sum += penalty
            prof.penalty_count += 1
        if prof.profiler.sampled(key):
            prof.histogram.add(prof.profiler.record(key))

    def on_hit(self, queue: Queue, item,
               h1: int = 0, h2: int = 0) -> None:
        self._record(queue.class_idx, item.key, item.penalty)
        self._maybe_reallocate()

    def on_miss(self, key: object, class_idx: int, penalty: float,
                h1: int = 0, h2: int = 0) -> None:
        if class_idx >= 0:
            self._record(class_idx, key, penalty)
        self._maybe_reallocate()

    def resolve_pressure(self, queue: Queue, must_migrate: bool) -> Queue | None:
        return None

    # -- reallocation ----------------------------------------------------------
    def _maybe_reallocate(self) -> None:
        cache = self.cache
        if cache.accesses - self._epoch_start < self.epoch_accesses:
            return
        self._epoch_start = cache.accesses
        self._reallocate()
        for prof in self._profiles.values():
            prof.histogram.decay(0.5)
            prof.requests //= 2

    def _class_cost_curve(self, class_idx: int, max_units: int,
                          slabs_per_unit: int) -> np.ndarray:
        """Predicted epoch cost for each allocation 0..max_units."""
        prof = self._profiles.get(class_idx)
        classes = self.cache.size_classes
        slots_per_slab = classes.slots_per_slab(class_idx)
        costs = np.empty(max_units + 1)
        if prof is None or prof.requests == 0:
            costs.fill(0.0)
            return costs
        weight = prof.avg_penalty if self.objective == "service" else 1.0
        hist_total = prof.histogram.total
        for units in range(max_units + 1):
            items = units * slabs_per_unit * slots_per_slab
            if hist_total:
                # hits_within counts sampled accesses; rescale the hit
                # fraction to the class's full request count.
                hit_fraction = prof.histogram.hits_within(items) / hist_total
            else:
                hit_fraction = 0.0
            costs[units] = prof.requests * (1.0 - hit_fraction) * weight
        return costs

    def _reallocate(self) -> None:
        cache = self.cache
        class_ids = sorted({q.class_idx for q in cache.iter_queues()})
        if len(class_ids) < 2:
            return
        total_slabs = cache.pool.total
        slabs_per_unit = max(1, -(-total_slabs // self.max_dp_units))
        total_units = total_slabs // slabs_per_unit
        if total_units < len(class_ids):
            return

        # min-plus DP over allocation units
        inf = float("inf")
        f = np.full(total_units + 1, inf)
        f[: total_units + 1] = self._class_cost_curve(
            class_ids[0], total_units, slabs_per_unit)
        choices = []
        for cid in class_ids[1:]:
            cost = self._class_cost_curve(cid, total_units, slabs_per_unit)
            g = np.full(total_units + 1, inf)
            choice = np.zeros(total_units + 1, dtype=np.int64)
            for n in range(total_units + 1):
                # g[n] = min_k f[n-k] + cost[k]
                cand = f[n::-1] + cost[: n + 1]
                k = int(np.argmin(cand))
                g[n] = cand[k]
                choice[n] = k
            f = g
            choices.append(choice)

        # backtrack target units per class
        targets: dict[int, int] = {}
        remaining = total_units
        for cid, choice in zip(reversed(class_ids[1:]), reversed(choices)):
            k = int(choice[remaining])
            targets[cid] = k
            remaining -= k
        targets[class_ids[0]] = remaining

        self._apply_targets(targets, slabs_per_unit)
        self.reallocations += 1

    def _apply_targets(self, targets: dict[int, int],
                       slabs_per_unit: int) -> None:
        cache = self.cache
        deficits: list[tuple[int, Queue]] = []
        surpluses: list[tuple[int, Queue]] = []
        for cid, units in targets.items():
            queue = cache.queue_for(cid, 0)
            want = units * slabs_per_unit
            diff = want - queue.slabs
            if diff > 0:
                deficits.append((diff, queue))
            elif diff < 0:
                surpluses.append((-diff, queue))
        deficits.sort(key=lambda dq: -dq[0])
        surpluses.sort(key=lambda dq: -dq[0])

        moves = 0
        di = si = 0
        while (moves < self.max_moves and di < len(deficits)
               and si < len(surpluses)):
            dneed, dq = deficits[di]
            sgive, sq = surpluses[si]
            if dneed == 0:
                di += 1
                continue
            if sgive == 0 or not sq.can_donate():
                si += 1
                continue
            cache.migrate(sq, dq)
            moves += 1
            deficits[di] = (dneed - 1, dq)
            surpluses[si] = (sgive - 1, sq)
