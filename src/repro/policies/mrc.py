"""Reuse-distance profiling and miss-ratio curves (MRC substrate).

Supports the LAMA-lite policy (:mod:`repro.policies.lama`): Hu et al.
[9 in the paper] drive slab allocation from per-class miss-ratio
curves.  This module provides the classic Mattson stack-distance
machinery, made affordable with spatial key sampling and a Fenwick tree
over access timestamps (O(log n) per sampled access).
"""

from __future__ import annotations

from repro.bloom.hashing import splitmix64


class FenwickTree:
    """Binary indexed tree over ``size`` slots of 0/1 occupancy."""

    __slots__ = ("size", "_tree")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self._tree = [0] * (size + 1)

    def add(self, idx: int, delta: int) -> None:
        """Add ``delta`` at position ``idx`` (0-based)."""
        if not 0 <= idx < self.size:
            raise IndexError(f"index {idx} out of range [0, {self.size})")
        i = idx + 1
        while i <= self.size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, idx: int) -> int:
        """Sum of positions [0, idx] (idx may be -1 → 0)."""
        total = 0
        i = min(idx, self.size - 1) + 1
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of positions [lo, hi]."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)


class ReuseDistanceProfiler:
    """Sampled LRU stack-distance estimator.

    Keys are spatially sampled (rate ``1/2^sample_shift``); a sampled
    access's stack distance is the number of *distinct sampled keys*
    touched since its previous access, scaled back up by the sampling
    rate.  Cold (first-seen) accesses report ``None``.
    """

    __slots__ = ("sample_shift", "sample_mask", "capacity", "_time",
                 "_last_pos", "_tree", "sampled_accesses", "rebuilds")

    def __init__(self, sample_shift: int = 5, capacity: int = 1 << 18) -> None:
        if sample_shift < 0:
            raise ValueError("sample_shift must be >= 0")
        if capacity <= 1:
            raise ValueError("capacity must exceed 1")
        self.sample_shift = sample_shift
        self.sample_mask = (1 << sample_shift) - 1
        self.capacity = capacity
        self._time = 0
        self._last_pos: dict[object, int] = {}
        self._tree = FenwickTree(capacity)
        self.sampled_accesses = 0
        self.rebuilds = 0

    @property
    def scale(self) -> int:
        """Multiplier from sampled distance to estimated true distance."""
        return 1 << self.sample_shift

    def sampled(self, key: object) -> bool:
        if self.sample_mask == 0:
            return True
        if isinstance(key, int):
            return splitmix64(key) & self.sample_mask == 0
        return splitmix64(hash(key)) & self.sample_mask == 0

    def record(self, key: object) -> int | None:
        """Record an access; return estimated stack distance in items.

        Returns None for unsampled keys and for cold (first) accesses.
        """
        if not self.sampled(key):
            return None
        self.sampled_accesses += 1
        if self._time >= self.capacity:
            self._compact()
        pos = self._last_pos.get(key)
        distance: int | None = None
        if pos is not None:
            # distinct sampled keys touched strictly after pos
            distinct = self._tree.range_sum(pos + 1, self._time - 1)
            distance = distinct * self.scale
            self._tree.add(pos, -1)
        self._last_pos[key] = self._time
        self._tree.add(self._time, 1)
        self._time += 1
        return distance

    def forget(self, key: object) -> None:
        """Drop a key from the profile (e.g. it was deleted)."""
        pos = self._last_pos.pop(key, None)
        if pos is not None:
            self._tree.add(pos, -1)

    def _compact(self) -> None:
        """Renumber live keys contiguously when timestamps run out.

        Grows the tree when live keys fill most of it, so compaction
        always leaves headroom for new timestamps.
        """
        live = sorted(self._last_pos.items(), key=lambda kv: kv[1])
        while len(live) * 2 > self.capacity:
            self.capacity *= 2
        self._tree = FenwickTree(self.capacity)
        self._last_pos = {}
        for new_pos, (key, _old) in enumerate(live):
            self._last_pos[key] = new_pos
            self._tree.add(new_pos, 1)
        self._time = len(live)
        self.rebuilds += 1


class DistanceHistogram:
    """Log2-bucketed histogram of stack distances (in items)."""

    __slots__ = ("buckets", "cold", "total")

    NUM_BUCKETS = 48

    def __init__(self) -> None:
        self.buckets = [0] * self.NUM_BUCKETS
        self.cold = 0
        self.total = 0

    def add(self, distance: int | None) -> None:
        self.total += 1
        if distance is None:
            self.cold += 1
            return
        bucket = min(max(distance, 1).bit_length() - 1, self.NUM_BUCKETS - 1)
        self.buckets[bucket] += 1

    def hits_within(self, max_items: int) -> float:
        """Estimated accesses with stack distance < ``max_items``.

        Buckets straddling the threshold contribute proportionally
        (distances are roughly uniform within a log bucket).
        """
        if max_items <= 0:
            return 0.0
        hits = 0.0
        for b, count in enumerate(self.buckets):
            if count == 0:
                continue
            lo, hi = 1 << b, (1 << (b + 1)) - 1
            if hi < max_items:
                hits += count
            elif lo < max_items:
                hits += count * (max_items - lo) / (hi - lo + 1)
        return hits

    def decay(self, factor: float) -> None:
        """Age the histogram so old epochs fade out."""
        self.buckets = [int(c * factor) for c in self.buckets]
        self.cold = int(self.cold * factor)
        self.total = int(self.total * factor)
