"""Clairvoyant (Belady) replacement: the offline upper bound.

Extension baseline.  Given the full trace up front, Belady's MIN evicts
the item whose next use lies farthest in the future — the optimal
policy for miss *count*.  The ``cost_aware`` variant divides the reuse
distance by the item's penalty, approximating the offline optimum for
miss *penalty* (exact cost-aware MIN is NP-hard; this is the standard
greedy surrogate).

Time advances one tick per GET the cache serves, matched against the
trace's GET sequence, so the simulator's fill-on-miss SETs do not skew
the schedule.  The oracle therefore requires that the cache serves
exactly the trace's GETs in order — which is what the simulator does.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque

import numpy as np

from repro.cache.item import Item
from repro.cache.queue import Queue
from repro.policies.base import AllocationPolicy
from repro.traces.record import Op, Trace

#: next-use value for keys never requested again.
NEVER = float("inf")


class _OracleQueueState:
    """Max-heap of eviction priorities with lazy invalidation.

    Entries are ``(-priority, tiebreak, item, next_use_snapshot)``; an
    entry is live iff the item is still cached in this queue and its
    next-use tick has not changed since the entry was pushed.
    """

    __slots__ = ("heap",)

    def __init__(self) -> None:
        self.heap: list[tuple[float, int, Item, float]] = []


class OraclePolicy(AllocationPolicy):
    """Belady's MIN (``cost_aware=False``) or its penalty-weighted greedy
    variant (``cost_aware=True``), given the trace ahead of time."""

    name = "oracle"

    def __init__(self, trace: Trace, cost_aware: bool = False) -> None:
        super().__init__()
        self.cost_aware = cost_aware
        if cost_aware:
            self.name = "oracle-cost"
        self._tiebreak = itertools.count()
        # GET schedule: for each key, the queue of its GET tick numbers
        self._schedule: dict[int, deque[int]] = {}
        gets = trace.keys[np.asarray(trace.ops) == Op.GET]
        for tick, key in enumerate(gets.tolist()):
            self._schedule.setdefault(key, deque()).append(tick)
        self._tick = 0
        #: key -> current next-use tick (NEVER when exhausted)
        self._next_use: dict[object, float] = {}

    # -- schedule bookkeeping ---------------------------------------------
    def _advance(self, key: object) -> None:
        """Consume the current GET of ``key`` and look up its next one."""
        sched = self._schedule.get(key)
        if sched:
            # drop every scheduled position at or before the current tick
            # (robust to the same key appearing in SET rows too)
            while sched and sched[0] <= self._tick:
                sched.popleft()
        self._next_use[key] = sched[0] if sched else NEVER
        self._tick += 1

    def _priority(self, item: Item, nxt: float) -> float:
        """Higher = better eviction victim (computed at push time).

        Belady orders by absolute next-use tick, which is invariant as
        time passes.  The cost-aware variant divides the reuse gap by
        the penalty; that ordering can drift as the clock advances, but
        entries refresh on every touch, which keeps the greedy surrogate
        close (documented approximation).
        """
        if nxt == NEVER:
            return NEVER
        if self.cost_aware:
            return max(nxt - self._tick, 1.0) / max(item.penalty, 1e-6)
        return nxt

    def _lookup_next(self, key: object) -> float:
        """Next GET tick of ``key`` (consults the schedule for keys that
        were SET before their first GET)."""
        nxt = self._next_use.get(key)
        if nxt is not None:
            return nxt
        sched = self._schedule.get(key)
        while sched and sched[0] < self._tick:
            sched.popleft()
        nxt = float(sched[0]) if sched else NEVER
        self._next_use[key] = nxt
        return nxt

    def _push(self, queue: Queue, item: Item) -> None:
        state: _OracleQueueState = queue.policy_data
        nxt = self._lookup_next(item.key)
        heapq.heappush(state.heap, (-self._priority(item, nxt),
                                    next(self._tiebreak), item, nxt))

    # -- events ---------------------------------------------------------
    def on_queue_created(self, queue: Queue) -> None:
        queue.policy_data = _OracleQueueState()

    def on_hit(self, queue: Queue, item: Item,
               h1: int = 0, h2: int = 0) -> None:
        self._advance(item.key)
        self._push(queue, item)

    def on_miss(self, key: object, class_idx: int, penalty: float,
                h1: int = 0, h2: int = 0) -> None:
        self._advance(key)

    def on_insert(self, queue: Queue, item: Item) -> None:
        self._push(queue, item)

    # -- decisions --------------------------------------------------------
    def _peek(self, queue: Queue) -> tuple[float, Item] | None:
        """Best victim (priority, item), skipping stale heap entries."""
        state: _OracleQueueState = queue.policy_data
        heap = state.heap
        index = self.cache.index
        while heap:
            neg_priority, _tb, item, nxt = heap[0]
            live = (index.get(item.key) is item
                    and (item.class_idx, item.bin_idx) == queue.qid
                    and self._next_use.get(item.key, NEVER) == nxt)
            if live:
                return -neg_priority, item
            heapq.heappop(heap)
        return None

    def choose_victim(self, queue: Queue) -> Item | None:
        top = self._peek(queue)
        if top is None:
            return None
        _score, item = top
        heapq.heappop(queue.policy_data.heap)
        return item

    def resolve_pressure(self, queue: Queue, must_migrate: bool) -> Queue | None:
        """Evict in place: this oracle optimises *replacement*, not
        allocation.

        A slab migration always evicts a whole slab's worth of the
        donor's items for one requester slot, and "which queue can best
        afford that" is exactly the allocation problem the paper's
        policies compete on — an eviction oracle has no sound greedy
        answer to it (ETC's one-timers put a dead item in nearly every
        queue, which makes any dead-item heuristic thrash).  So the
        clairvoyant baselines run Belady / cost-Belady *within*
        Memcached's grab-free-slabs-then-freeze allocation, bounding
        what better replacement alone could achieve.  When forced (the
        requesting queue owns nothing), the donor with the least
        regrettable victim is chosen.
        """
        if not must_migrate:
            return None
        donor: Queue | None = None
        best = -1.0
        for q in self.cache.iter_queues():
            if q is queue or not q.can_donate():
                continue
            top = self._peek(q)
            score = top[0] if top is not None else NEVER
            if score > best:
                donor, best = q, score
        return donor
