"""Slab allocation policies: the paper's baselines plus extensions."""

from repro.policies.automove import AutoMovePolicy
from repro.policies.base import AllocationPolicy, default_donor
from repro.policies.facebook import FacebookPolicy
from repro.policies.gds import GreedyDualSizePolicy
from repro.policies.lama import LamaPolicy
from repro.policies.memcached import StaticMemcachedPolicy
from repro.policies.mrc import (DistanceHistogram, FenwickTree,
                                ReuseDistanceProfiler)
from repro.policies.oracle import OraclePolicy
from repro.policies.psa import PSAPolicy
from repro.policies.twemcache import TwemcachePolicy


def make_policy(name: str, **kwargs) -> AllocationPolicy:
    """Instantiate a policy by its CLI/report name.

    Recognised names: ``memcached``, ``psa``, ``facebook``, ``twemcache``,
    ``automove``, ``lama``, ``pama``, ``pre-pama``.
    """
    # PAMA lives in repro.core; import here to avoid a package cycle.
    from repro.core.pama import PamaPolicy
    from repro.core.prepama import PrePamaPolicy
    from repro.core.config import PamaConfig

    registry = {
        "memcached": StaticMemcachedPolicy,
        "psa": PSAPolicy,
        "facebook": FacebookPolicy,
        "twemcache": TwemcachePolicy,
        "automove": AutoMovePolicy,
        "lama": LamaPolicy,
        "gds": GreedyDualSizePolicy,
    }
    if name == "gds-alloc":
        kwargs.setdefault("reallocate", True)
        return GreedyDualSizePolicy(**kwargs)
    if name in registry:
        return registry[name](**kwargs)
    if name in ("pama", "pre-pama", "prepama", "pama-adaptive"):
        from repro.core.adaptive import AdaptivePamaPolicy

        config = kwargs.pop("config", None)
        adaptive_kwargs = {}
        if name == "pama-adaptive":
            for field in ("warmup_samples", "reservoir_size",
                          "refresh_interval", "seed"):
                if field in kwargs:
                    adaptive_kwargs[field] = kwargs.pop(field)
        if config is None and kwargs:
            config = PamaConfig(**kwargs)
        if name == "pama":
            return PamaPolicy(config=config)
        if name == "pama-adaptive":
            return AdaptivePamaPolicy(config=config, **adaptive_kwargs)
        return PrePamaPolicy(config=config)
    if name in ("oracle", "oracle-cost"):
        # clairvoyant baselines need the trace up front
        if "trace" not in kwargs:
            raise ValueError(f"policy {name!r} requires a trace= kwarg")
        return OraclePolicy(kwargs["trace"],
                            cost_aware=(name == "oracle-cost"))
    raise ValueError(f"unknown policy {name!r}")


POLICY_NAMES = ("memcached", "psa", "facebook", "twemcache", "automove",
                "lama", "gds", "gds-alloc", "pama", "pre-pama",
                "pama-adaptive")

#: clairvoyant baselines (constructed with make_policy(name, trace=...))
ORACLE_NAMES = ("oracle", "oracle-cost")

__all__ = [
    "AllocationPolicy",
    "default_donor",
    "StaticMemcachedPolicy",
    "PSAPolicy",
    "FacebookPolicy",
    "TwemcachePolicy",
    "AutoMovePolicy",
    "LamaPolicy",
    "GreedyDualSizePolicy",
    "OraclePolicy",
    "ReuseDistanceProfiler",
    "DistanceHistogram",
    "FenwickTree",
    "make_policy",
    "POLICY_NAMES",
    "ORACLE_NAMES",
]
