"""Original Memcached: no slab reallocation.

Paper §II: "In the earlier versions of Memcached ... After the initial
memory space is exhausted, the allocations to the classes will not
change."  Classes take free slabs while any exist; afterwards every
class evicts strictly within itself, and a class that never got a slab
cannot store items at all (Memcached's SERVER_ERROR out-of-memory).
"""

from __future__ import annotations

from repro.policies.base import AllocationPolicy
from repro.cache.queue import Queue


class StaticMemcachedPolicy(AllocationPolicy):
    """The no-reallocation baseline ("Original Memcached" in the figures)."""

    name = "memcached"
    allow_fallback_donor = False

    def resolve_pressure(self, queue: Queue, must_migrate: bool) -> Queue | None:
        # Never migrate: evict within the class, or fail if it owns
        # nothing (the cache turns the None + must_migrate case into a
        # failed SET because allow_fallback_donor is False).
        return None
