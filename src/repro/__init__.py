"""repro — PAMA: Penalty Aware Memory Allocation for key-value caches.

Reproduction of Ou et al., ICPP 2015.  The package provides:

* :mod:`repro.cache` — a Memcached-like slab-allocated KV cache;
* :mod:`repro.core` — the PAMA policy (and pre-PAMA ablation);
* :mod:`repro.policies` — baseline allocation policies (original
  Memcached, PSA, Facebook rebalancer, Twemcache, 1.4.11 automover,
  LAMA-lite);
* :mod:`repro.traces` — synthetic Facebook-like workloads + trace I/O;
* :mod:`repro.sim` — trace-driven simulation and experiment harness;
* :mod:`repro.server` — a minimal memcached-protocol server/client;
* :mod:`repro.backend` — a simulated back-end store.

Quickstart::

    from repro import SlabCache, SizeClassConfig, PamaPolicy, simulate
    from repro.traces import ETC, generate

    trace = generate(ETC, 200_000, seed=1)
    cache = SlabCache(64 << 20, PamaPolicy(),
                      SizeClassConfig(slab_size=64 << 10))
    result = simulate(trace, cache)
    print(result.hit_ratio, result.avg_service_time)
"""

from repro.cache import SlabCache, SizeClassConfig
from repro.core import PamaConfig, PamaPolicy, PrePamaPolicy
from repro.policies import (AllocationPolicy, AutoMovePolicy, FacebookPolicy,
                            LamaPolicy, POLICY_NAMES, PSAPolicy,
                            StaticMemcachedPolicy, TwemcachePolicy,
                            make_policy)
from repro.sim import (ExperimentSpec, ServiceTimeModel, SimulationResult,
                       Simulator, run_comparison, simulate,
                       sweep_cache_sizes)
from repro.traces import (Op, Request, Trace, WorkloadProfile, generate,
                          get_profile)

__version__ = "1.0.0"

__all__ = [
    "SlabCache", "SizeClassConfig",
    "PamaPolicy", "PrePamaPolicy", "PamaConfig",
    "AllocationPolicy", "StaticMemcachedPolicy", "PSAPolicy",
    "FacebookPolicy", "TwemcachePolicy", "AutoMovePolicy", "LamaPolicy",
    "make_policy", "POLICY_NAMES",
    "Simulator", "SimulationResult", "simulate", "ServiceTimeModel",
    "ExperimentSpec", "run_comparison", "sweep_cache_sizes",
    "Trace", "Request", "Op", "WorkloadProfile", "generate", "get_profile",
    "__version__",
]
