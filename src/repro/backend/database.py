"""Simulated back-end store: where miss penalties come from.

In production, a KV-cache miss triggers an expensive recomputation
(database query, render job...).  The trace carries each key's penalty;
this module supplies the *process* view of that cost for the server
example and for experiments that want load-dependent penalties: a
deterministic per-key base cost scaled by a diurnal load factor (the
paper notes load varies ~2x over a diurnal cycle).
"""

from __future__ import annotations

import math

from repro.traces.penalty import PenaltyModel


class BackendError(RuntimeError):
    """The backend refused or failed a fetch (injected outage)."""


class SimulatedBackend:
    """Recompute-on-miss backend with diurnal load modulation.

    Args:
        penalty_model: per-key base cost model (shared with the trace
            generator so simulation and backend agree).
        diurnal_amplitude: peak-to-mean load swing; 0.5 gives the
            paper's ~2x trough-to-peak variation.
        diurnal_period: seconds per load cycle.
        faults: optional :class:`~repro.faults.injector.FaultInjector`;
            its plan's backend faults then apply to every fetch —
            latency spikes multiply the cost, error bursts raise
            :class:`BackendError`.  With None, fetch behaviour is
            exactly the pre-fault code path.
    """

    def __init__(self, penalty_model: PenaltyModel | None = None,
                 diurnal_amplitude: float = 0.5,
                 diurnal_period: float = 86_400.0,
                 faults=None) -> None:
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        self.penalty_model = penalty_model or PenaltyModel()
        self.diurnal_amplitude = diurnal_amplitude
        self.diurnal_period = diurnal_period
        self.faults = faults
        self.fetches = 0
        self.errors = 0
        self.total_cost = 0.0

    def load_factor(self, now: float) -> float:
        """Relative backend load at time ``now`` (mean 1.0)."""
        phase = 2.0 * math.pi * (now / self.diurnal_period)
        return 1.0 + self.diurnal_amplitude * math.sin(phase)

    def fetch(self, key: int, size: int, now: float = 0.0,
              tick: int | None = None) -> float:
        """Recompute the value for ``key``; returns the time it cost.

        The caller treats the return value as the miss penalty for this
        fetch.  ``tick`` pins the fault clock; it defaults to the
        injector's current tick when faults are attached.
        """
        base = self.penalty_model.penalty_for(key, size)
        cost = base * self.load_factor(now)
        if self.faults is not None:
            t = self.faults.tick if tick is None else tick
            t = max(t, 0)
            if self.faults.plan.backend_error(t):
                self.errors += 1
                self.faults.count("backend_error")
                self.faults.event("backend_error", key=key)
                raise BackendError(f"injected backend error at tick {t}")
            cost *= self.faults.plan.backend_multiplier(t)
        self.fetches += 1
        self.total_cost += cost
        return cost
