"""Simulated back-end store (the source of miss penalties)."""

from repro.backend.database import BackendError, SimulatedBackend

__all__ = ["SimulatedBackend", "BackendError"]
