"""Trace substrate: synthetic Facebook-like workloads, penalties, I/O."""

from repro.traces.burst import inject_burst
from repro.traces.io import (from_requests, iter_csv, load_csv, load_npz,
                             save_csv, save_npz)
from repro.traces.penalty import PenaltyModel, infer_penalties
from repro.traces.record import (Op, Request, SharedTrace, Trace,
                                 TraceDescriptor, attach_shared_trace,
                                 disable_shm_tracking)
from repro.traces.stats import TraceStats, analyze, penalty_by_size_decade
from repro.traces.synthetic import SyntheticTraceGenerator, generate, zipf_cdf
from repro.traces.twitter import load_twitter
from repro.traces.workloads import (APP, ETC, PROFILES, SYS, USR, VAR,
                                    SizeMixture, WorkloadProfile, get_profile)

__all__ = [
    "Op", "Request", "Trace",
    "SharedTrace", "TraceDescriptor", "attach_shared_trace",
    "disable_shm_tracking",
    "WorkloadProfile", "SizeMixture", "get_profile", "PROFILES",
    "ETC", "APP", "USR", "SYS", "VAR",
    "SyntheticTraceGenerator", "generate", "zipf_cdf",
    "PenaltyModel", "infer_penalties",
    "inject_burst",
    "analyze", "TraceStats", "penalty_by_size_decade",
    "save_npz", "load_npz", "save_csv", "load_csv", "iter_csv",
    "from_requests", "load_twitter",
]
