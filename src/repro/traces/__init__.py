"""Trace substrate: synthetic Facebook-like workloads, penalties, I/O."""

from repro.traces.burst import inject_burst
from repro.traces.compile import (FORMAT_V1, FORMAT_V2, CompiledTrace,
                                  CompiledTraceWriter, compile_csv,
                                  compile_synthetic, compile_trace,
                                  is_compiled_trace)
from repro.traces.io import (TraceMetaWarning, from_requests,
                             iter_request_chunks, iter_csv, load_csv,
                             load_npz, save_csv, save_npz)
from repro.traces.penalty import PenaltyModel, infer_penalties
from repro.traces.record import (TENANT_COLUMN, TRACE_COLUMNS,
                                 TRACE_COLUMNS_V2, Op, Request, SharedTrace,
                                 Trace, TraceDescriptor, attach_shared_trace,
                                 disable_shm_tracking)
from repro.traces.stats import TraceStats, analyze, penalty_by_size_decade
from repro.traces.synthetic import SyntheticTraceGenerator, generate, zipf_cdf
from repro.traces.twitter import load_twitter
from repro.traces.workloads import (APP, DEDUP, ETC, PROFILES, RTDATA, SYS,
                                    TWITTER_CACHE, TWITTER_CACHE15, UDB, USR,
                                    VAR, ZIPPYDB, SizeMixture,
                                    WorkloadProfile, get_profile)

__all__ = [
    "Op", "Request", "Trace",
    "SharedTrace", "TraceDescriptor", "attach_shared_trace",
    "disable_shm_tracking",
    "WorkloadProfile", "SizeMixture", "get_profile", "PROFILES",
    "ETC", "APP", "USR", "SYS", "VAR",
    "TWITTER_CACHE", "TWITTER_CACHE15", "ZIPPYDB", "UDB", "RTDATA", "DEDUP",
    "SyntheticTraceGenerator", "generate", "zipf_cdf",
    "PenaltyModel", "infer_penalties",
    "inject_burst",
    "analyze", "TraceStats", "penalty_by_size_decade",
    "save_npz", "load_npz", "save_csv", "load_csv", "iter_csv",
    "from_requests", "iter_request_chunks", "TraceMetaWarning",
    "load_twitter",
    "CompiledTrace", "CompiledTraceWriter", "compile_trace",
    "compile_csv", "compile_synthetic", "is_compiled_trace",
    "FORMAT_V1", "FORMAT_V2",
    "TENANT_COLUMN", "TRACE_COLUMNS", "TRACE_COLUMNS_V2",
]
