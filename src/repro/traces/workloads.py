"""Workload profiles modeled on the Facebook Memcached trace study.

The paper evaluates on traces from Atikoglu et al., "Workload Analysis
of a Large-scale Key-value Store" (SIGMETRICS 2012) — five production
pools: ETC, APP, USR, SYS, VAR.  The raw traces are proprietary, so
each profile below encodes the published marginal characteristics the
allocation schemes actually react to: operation mix, key/value size
distributions, popularity skew, cold-miss share, and key churn.  See
DESIGN.md "Data we do not have → substitutions".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SizeMixture:
    """Mixture of log-uniform size bands: ``(weight, lo_bytes, hi_bytes)``.

    A sampled size is log-uniform within its band, which reproduces the
    multi-decade spread of the Facebook value sizes without pretending
    to know their exact shape.
    """

    bands: tuple[tuple[float, int, int], ...]

    def __post_init__(self) -> None:
        if not self.bands:
            raise ValueError("size mixture needs at least one band")
        total = sum(w for w, _, _ in self.bands)
        if not 0.999 <= total <= 1.001:
            raise ValueError(f"band weights must sum to 1, got {total}")
        for w, lo, hi in self.bands:
            if w < 0 or lo <= 0 or hi < lo:
                raise ValueError(f"invalid band {(w, lo, hi)}")


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything the synthetic generator needs for one workload.

    Attributes:
        name: profile identifier (``etc``, ``app``...).
        num_keys: size of the warm key universe (ranks 0..num_keys-1).
        zipf_alpha: popularity skew of the warm keys.
        get_fraction / set_fraction / delete_fraction: operation mix
            (must sum to 1).
        cold_fraction: share of GETs addressed to never-seen-before keys
            (compulsory misses; ~40% of APP's misses are cold).
        key_sizes: mixture for key sizes.
        value_sizes: mixture for value sizes.
        penalty_correlation: slope of mean log-penalty vs log-size
            (Fig 1 shows a weak positive trend with huge scatter).
        penalty_sigma: lognormal scatter of penalties (decades of spread).
        penalty_unknown_fraction: keys whose penalty is unknown and takes
            the paper's 100 ms default.
        churn_interval: requests between popularity rotations (0 = none).
        churn_fraction: fraction of the hot set retired per rotation.
        drift_per_request: continuous key-popularity drift — the rank →
            key-id mapping advances by this many ids per request, so the
            hot set glides instead of (or on top of) the stepwise churn
            rotation.  0 disables it.
        diurnal_period: seconds per load cycle (0 = flat load).  The
            request *rate* follows ``1 + diurnal_amplitude *
            sin(2*pi*t/period)``, compressing and stretching timestamp
            gaps through the day while the request mix is unchanged.
        diurnal_amplitude: peak-to-mean load swing, in [0, 1).
    """

    name: str
    num_keys: int
    zipf_alpha: float = 1.0
    get_fraction: float = 0.9
    set_fraction: float = 0.1
    delete_fraction: float = 0.0
    cold_fraction: float = 0.03
    key_sizes: SizeMixture = field(
        default_factory=lambda: SizeMixture(((1.0, 16, 40),)))
    value_sizes: SizeMixture = field(
        default_factory=lambda: SizeMixture(((1.0, 32, 1024),)))
    penalty_correlation: float = 0.25
    penalty_sigma: float = 1.0
    penalty_unknown_fraction: float = 0.1
    churn_interval: int = 0
    churn_fraction: float = 0.1
    drift_per_request: float = 0.0
    diurnal_period: float = 0.0
    diurnal_amplitude: float = 0.0

    def __post_init__(self) -> None:
        if self.num_keys <= 0:
            raise ValueError("num_keys must be positive")
        mix = self.get_fraction + self.set_fraction + self.delete_fraction
        if not 0.999 <= mix <= 1.001:
            raise ValueError(f"operation mix must sum to 1, got {mix}")
        if not 0.0 <= self.cold_fraction < 1.0:
            raise ValueError("cold_fraction must be in [0, 1)")
        if self.zipf_alpha <= 0:
            raise ValueError("zipf_alpha must be positive")
        if not 0.0 <= self.penalty_unknown_fraction <= 1.0:
            raise ValueError("penalty_unknown_fraction must be in [0, 1]")
        if self.churn_interval < 0 or not 0.0 <= self.churn_fraction <= 1.0:
            raise ValueError("invalid churn parameters")
        if self.drift_per_request < 0:
            raise ValueError("drift_per_request must be >= 0")
        if self.diurnal_period < 0:
            raise ValueError("diurnal_period must be >= 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")

    def scaled(self, factor: float) -> "WorkloadProfile":
        """Shrink/grow the key universe (for scaled-down experiments)."""
        from dataclasses import replace
        return replace(self, num_keys=max(1, int(self.num_keys * factor)))


# ---------------------------------------------------------------------------
# The five Facebook pools (published characteristics; see module docstring)
# ---------------------------------------------------------------------------

#: ETC — "the most representative of large-scale general-purpose KV
#: stores": diverse small values, mild cold traffic, strong skew.
ETC = WorkloadProfile(
    name="etc",
    num_keys=300_000,
    zipf_alpha=1.01,
    get_fraction=0.92, set_fraction=0.08, delete_fraction=0.0,
    cold_fraction=0.03,
    key_sizes=SizeMixture(((0.8, 16, 30), (0.2, 16, 60))),
    # Atikoglu et al.: tiny values are very common in ETC (a spike at a
    # few bytes, ~90% of values under 500 B) with a long large tail —
    # this is what makes the paper's class 0 receive >70% of requests.
    value_sizes=SizeMixture((
        (0.50, 2, 36),          # the tiny-value spike
        (0.24, 30, 300),
        (0.17, 300, 2_000),
        (0.07, 2_000, 12_000),
        (0.02, 10_000, 120_000),
    )),
    penalty_correlation=0.25,
    penalty_sigma=1.8,
    penalty_unknown_fraction=0.10,
    churn_interval=400_000,
    churn_fraction=0.05,
)

#: APP — application-object pool: larger values, a big one-timer
#: population (≈40% of misses are cold), moderate skew.
APP = WorkloadProfile(
    name="app",
    num_keys=200_000,
    zipf_alpha=0.85,
    get_fraction=0.88, set_fraction=0.12, delete_fraction=0.0,
    cold_fraction=0.12,
    key_sizes=SizeMixture(((1.0, 20, 60),)),
    value_sizes=SizeMixture((
        (0.30, 150, 600),
        (0.40, 600, 6_000),
        (0.25, 3_000, 40_000),
        (0.05, 20_000, 250_000),
    )),
    penalty_correlation=0.35,
    penalty_sigma=2.0,
    penalty_unknown_fraction=0.08,
    churn_interval=500_000,
    churn_fraction=0.08,
)

#: USR — two key sizes (16 B / 21 B), essentially one value size (2 B),
#: overwhelmingly GETs.
USR = WorkloadProfile(
    name="usr",
    num_keys=800_000,
    zipf_alpha=0.95,
    get_fraction=0.99, set_fraction=0.01, delete_fraction=0.0,
    cold_fraction=0.01,
    key_sizes=SizeMixture(((0.5, 16, 16), (0.5, 21, 21))),
    value_sizes=SizeMixture(((1.0, 2, 2),)),
    penalty_correlation=0.0,
    penalty_sigma=0.8,
    penalty_unknown_fraction=0.15,
)

#: SYS — server metadata: tiny key universe (near-100% hit ratio at 1GB),
#: mid-size values.
SYS = WorkloadProfile(
    name="sys",
    num_keys=8_000,
    zipf_alpha=1.1,
    get_fraction=0.95, set_fraction=0.05, delete_fraction=0.0,
    cold_fraction=0.002,
    key_sizes=SizeMixture(((1.0, 20, 45),)),
    value_sizes=SizeMixture(((0.7, 200, 5_000), (0.3, 2_000, 60_000))),
    penalty_correlation=0.2,
    penalty_sigma=0.9,
    penalty_unknown_fraction=0.1,
)

#: VAR — update-dominated side data (SET/REPLACE heavy, small values).
VAR = WorkloadProfile(
    name="var",
    num_keys=150_000,
    zipf_alpha=0.9,
    get_fraction=0.25, set_fraction=0.73, delete_fraction=0.02,
    cold_fraction=0.05,
    key_sizes=SizeMixture(((1.0, 20, 40),)),
    value_sizes=SizeMixture(((0.9, 16, 200), (0.1, 100, 2_000))),
    penalty_correlation=0.1,
    penalty_sigma=0.9,
    penalty_unknown_fraction=0.2,
)

# ---------------------------------------------------------------------------
# The Table V zoo ("Learning Slab Classes to Alleviate Memory Holes in
# Memcached", arXiv 2009.04403): six additional production-shaped
# workload families.  As with the Facebook pools, the raw traces are
# proprietary; each profile encodes the published marginal
# characteristics — op mix, size spread, skew, churn — plus the diurnal
# load curves and popularity drift that only matter at 10^7+ request
# scale (the compiled-trace replays).
# ---------------------------------------------------------------------------

#: Twitter production cache (the read-dominated cluster shape from the
#: OSDI'20 trace study): tiny values, extreme skew, strong diurnality.
TWITTER_CACHE = WorkloadProfile(
    name="twitter-cache",
    num_keys=1_000_000,
    zipf_alpha=1.2,
    get_fraction=0.97, set_fraction=0.03, delete_fraction=0.0,
    cold_fraction=0.02,
    key_sizes=SizeMixture(((0.6, 20, 45), (0.4, 40, 90))),
    value_sizes=SizeMixture((
        (0.55, 20, 80),
        (0.30, 80, 400),
        (0.13, 400, 4_000),
        (0.02, 4_000, 50_000),
    )),
    penalty_correlation=0.2,
    penalty_sigma=1.5,
    penalty_unknown_fraction=0.1,
    churn_interval=2_000_000,
    churn_fraction=0.03,
    drift_per_request=0.002,
    diurnal_period=86_400.0,
    diurnal_amplitude=0.5,
)

#: Twitter "cluster 15" shape: write-heavy side store with mid-size
#: values and a fast-moving hot set.
TWITTER_CACHE15 = WorkloadProfile(
    name="twitter-cache15",
    num_keys=400_000,
    zipf_alpha=0.9,
    get_fraction=0.55, set_fraction=0.44, delete_fraction=0.01,
    cold_fraction=0.08,
    key_sizes=SizeMixture(((1.0, 25, 70),)),
    value_sizes=SizeMixture((
        (0.35, 60, 300),
        (0.45, 300, 3_000),
        (0.20, 3_000, 30_000),
    )),
    penalty_correlation=0.3,
    penalty_sigma=1.6,
    penalty_unknown_fraction=0.12,
    churn_interval=800_000,
    churn_fraction=0.10,
    drift_per_request=0.01,
    diurnal_period=86_400.0,
    diurnal_amplitude=0.35,
)

#: ZippyDB — RocksDB-backed distributed KV: GET-heavy, few-hundred-byte
#: objects, moderate skew, high recompute cost on miss.
ZIPPYDB = WorkloadProfile(
    name="zippydb",
    num_keys=600_000,
    zipf_alpha=0.95,
    get_fraction=0.78, set_fraction=0.19, delete_fraction=0.03,
    cold_fraction=0.04,
    key_sizes=SizeMixture(((1.0, 30, 80),)),
    value_sizes=SizeMixture((
        (0.50, 100, 500),
        (0.35, 500, 5_000),
        (0.15, 2_000, 40_000),
    )),
    penalty_correlation=0.4,
    penalty_sigma=1.8,
    penalty_unknown_fraction=0.08,
    churn_interval=1_500_000,
    churn_fraction=0.05,
    diurnal_period=86_400.0,
    diurnal_amplitude=0.25,
)

#: UDB — the MySQL-fronting cache tier: mixed sizes spanning four
#: decades (schema rows to serialized blobs), expensive misses.
UDB = WorkloadProfile(
    name="udb",
    num_keys=500_000,
    zipf_alpha=1.05,
    get_fraction=0.90, set_fraction=0.10, delete_fraction=0.0,
    cold_fraction=0.05,
    key_sizes=SizeMixture(((0.7, 16, 48), (0.3, 48, 120))),
    value_sizes=SizeMixture((
        (0.30, 30, 300),
        (0.30, 300, 3_000),
        (0.25, 3_000, 30_000),
        (0.15, 30_000, 300_000),
    )),
    penalty_correlation=0.45,
    penalty_sigma=2.0,
    penalty_unknown_fraction=0.06,
    churn_interval=1_000_000,
    churn_fraction=0.04,
    diurnal_period=86_400.0,
    diurnal_amplitude=0.4,
)

#: RTDATA — real-time ingest: update-dominated, small fresh values, hot
#: set glides continuously (yesterday's keys go cold fast).
RTDATA = WorkloadProfile(
    name="rtdata",
    num_keys=250_000,
    zipf_alpha=0.8,
    get_fraction=0.40, set_fraction=0.58, delete_fraction=0.02,
    cold_fraction=0.10,
    key_sizes=SizeMixture(((1.0, 24, 60),)),
    value_sizes=SizeMixture(((0.8, 40, 400), (0.2, 400, 4_000))),
    penalty_correlation=0.1,
    penalty_sigma=1.2,
    penalty_unknown_fraction=0.2,
    churn_interval=300_000,
    churn_fraction=0.15,
    drift_per_request=0.05,
    diurnal_period=43_200.0,
    diurnal_amplitude=0.3,
)

#: Dedup — fingerprint lookups: fixed-size keys and records, weak skew
#: (content-addressed accesses are nearly uniform), scan-like drift.
DEDUP = WorkloadProfile(
    name="dedup",
    num_keys=2_000_000,
    zipf_alpha=0.6,
    get_fraction=0.85, set_fraction=0.15, delete_fraction=0.0,
    cold_fraction=0.15,
    key_sizes=SizeMixture(((1.0, 20, 20),)),
    value_sizes=SizeMixture(((1.0, 44, 64),)),
    penalty_correlation=0.0,
    penalty_sigma=0.7,
    penalty_unknown_fraction=0.05,
    drift_per_request=0.02,
)

PROFILES: dict[str, WorkloadProfile] = {
    p.name: p for p in (ETC, APP, USR, SYS, VAR,
                        TWITTER_CACHE, TWITTER_CACHE15, ZIPPYDB, UDB,
                        RTDATA, DEDUP)
}


def get_profile(name: str) -> WorkloadProfile:
    """Look up a built-in profile by name (case-insensitive)."""
    try:
        return PROFILES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {sorted(PROFILES)}"
        ) from None
