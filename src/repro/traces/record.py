"""Trace containers: single requests and columnar request streams.

Besides the in-process :class:`Trace`, this module owns the trace's
shared-memory transport (:class:`SharedTrace`): the parallel experiment
engine packs the columnar arrays into one ``multiprocessing``
shared-memory block so worker processes attach zero-copy instead of
re-pickling the trace per task.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator

import numpy as np

#: column attributes of a Trace, in shared-memory layout order.
TRACE_COLUMNS = ("ops", "keys", "key_sizes", "value_sizes", "penalties",
                 "timestamps")

#: optional multi-tenant column (uint16 tenant ids); kept out of
#: TRACE_COLUMNS so single-tenant code paths (and the compiled-trace v1
#: format) stay untouched, and threaded explicitly where it matters.
TENANT_COLUMN = "tenants"

#: every column a multi-tenant trace carries (shared-memory layout order).
TRACE_COLUMNS_V2 = TRACE_COLUMNS + (TENANT_COLUMN,)


class Op(IntEnum):
    """Request types (the paper's GET / SET / DEL primitives)."""

    GET = 0
    SET = 1
    DELETE = 2


@dataclass(frozen=True)
class Request:
    """One trace record.

    ``penalty`` is the key's miss penalty in seconds (what a GET miss on
    it costs); ``timestamp`` is seconds since trace start (0.0 when the
    trace carries no timing).
    """

    op: Op
    key: int
    key_size: int
    value_size: int
    penalty: float
    timestamp: float = 0.0


class Trace:
    """Columnar request stream (NumPy-backed, memory-flat).

    Columns: ``ops`` (uint8), ``keys`` (int64), ``key_sizes`` (int32),
    ``value_sizes`` (int32), ``penalties`` (float64), ``timestamps``
    (float64), ``tenants`` (uint16, all-zero for single-tenant traces).
    ``meta`` carries provenance (workload name, seed, ...).
    """

    __slots__ = ("ops", "keys", "key_sizes", "value_sizes", "penalties",
                 "timestamps", "tenants", "meta")

    def __init__(self, ops: np.ndarray, keys: np.ndarray,
                 key_sizes: np.ndarray, value_sizes: np.ndarray,
                 penalties: np.ndarray, timestamps: np.ndarray | None = None,
                 meta: dict | None = None,
                 tenants: np.ndarray | None = None) -> None:
        n = len(ops)
        arrays = dict(ops=ops, keys=keys, key_sizes=key_sizes,
                      value_sizes=value_sizes, penalties=penalties)
        for name, arr in arrays.items():
            if len(arr) != n:
                raise ValueError(
                    f"column {name!r} has {len(arr)} rows, expected {n}")
        self.ops = np.asarray(ops, dtype=np.uint8)
        self.keys = np.asarray(keys, dtype=np.int64)
        self.key_sizes = np.asarray(key_sizes, dtype=np.int32)
        self.value_sizes = np.asarray(value_sizes, dtype=np.int32)
        self.penalties = np.asarray(penalties, dtype=np.float64)
        if timestamps is None:
            timestamps = np.zeros(n, dtype=np.float64)
        elif len(timestamps) != n:
            raise ValueError("timestamps length mismatch")
        self.timestamps = np.asarray(timestamps, dtype=np.float64)
        if tenants is None:
            # Zero-copy all-zero view: single-tenant traces pay no
            # per-row memory for the column they never look at.
            tenants = np.broadcast_to(np.zeros(1, dtype=np.uint16), (n,))
        elif len(tenants) != n:
            raise ValueError(
                f"column 'tenants' has {len(tenants)} rows, expected {n}")
        self.tenants = np.asarray(tenants, dtype=np.uint16)
        self.meta = dict(meta or {})

    def __len__(self) -> int:
        return len(self.ops)

    def __getitem__(self, i: int) -> Request:
        return Request(Op(int(self.ops[i])), int(self.keys[i]),
                       int(self.key_sizes[i]), int(self.value_sizes[i]),
                       float(self.penalties[i]), float(self.timestamps[i]))

    def iter_rows(self) -> Iterator[tuple[int, int, int, int, float]]:
        """Fast row iterator yielding ``(op, key, key_size, value_size,
        penalty)`` as plain Python scalars (the simulator hot path)."""
        return zip(self.ops.tolist(), self.keys.tolist(),
                   self.key_sizes.tolist(), self.value_sizes.tolist(),
                   self.penalties.tolist())

    # -- composition ------------------------------------------------------
    def slice(self, start: int, stop: int | None = None) -> "Trace":
        sl = np.s_[start:stop]
        return Trace(self.ops[sl], self.keys[sl], self.key_sizes[sl],
                     self.value_sizes[sl], self.penalties[sl],
                     self.timestamps[sl], dict(self.meta),
                     self.tenants[sl])

    def concat(self, other: "Trace") -> "Trace":
        if len(other) and len(self):
            shift = self.timestamps[-1]
        else:
            shift = 0.0
        meta = dict(self.meta)
        meta["concatenated"] = True
        return Trace(
            np.concatenate([self.ops, other.ops]),
            np.concatenate([self.keys, other.keys]),
            np.concatenate([self.key_sizes, other.key_sizes]),
            np.concatenate([self.value_sizes, other.value_sizes]),
            np.concatenate([self.penalties, other.penalties]),
            np.concatenate([self.timestamps, other.timestamps + shift]),
            meta,
            np.concatenate([self.tenants, other.tenants]))

    def repeat(self, times: int) -> "Trace":
        """Replay the trace ``times`` times back-to-back.

        The paper repeats the APP trace "to highlight the performance
        difference among the schemes" once cold misses are out.
        """
        if times < 1:
            raise ValueError("times must be >= 1")
        out = self
        for _ in range(times - 1):
            out = out.concat(self)
        out.meta["repeats"] = times
        return out

    @property
    def num_gets(self) -> int:
        return int(np.count_nonzero(self.ops == Op.GET))

    @property
    def num_tenants(self) -> int:
        """Distinct tenant count implied by the tenant ids (>= 1).

        Tenant ids are dense by convention (``mix_tenants`` assigns
        0..T-1), so the count is ``max + 1``; an untagged trace is one
        tenant.
        """
        if not len(self):
            return 1
        return int(self.tenants.max()) + 1

    @property
    def unique_keys(self) -> int:
        return int(np.unique(self.keys).size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Trace(n={len(self)}, gets={self.num_gets}, "
                f"meta={self.meta})")


# ---------------------------------------------------------------------------
# shared-memory transport
# ---------------------------------------------------------------------------

def _align8(n: int) -> int:
    return (n + 7) & ~7


@dataclass(frozen=True)
class TraceDescriptor:
    """Picklable handle to a trace packed in a shared-memory block.

    Small enough to ship in worker-initializer args: block name, row
    count, per-column ``(attr, dtype-str, offset)`` layout, and meta.
    """

    shm_name: str
    n: int
    columns: tuple[tuple[str, str, int], ...]
    meta: dict


class SharedTrace:
    """Owner side of a trace shared across processes.

    Packs every column of a :class:`Trace` into one POSIX shared-memory
    block so a worker pool receives the (possibly multi-GB) trace once,
    not once per task.  The creating process must keep this object alive
    while workers run and call :meth:`close` (or use it as a context
    manager) afterwards to release the block.
    """

    def __init__(self, trace: Trace) -> None:
        from multiprocessing import shared_memory

        arrays = [np.ascontiguousarray(getattr(trace, c))
                  for c in TRACE_COLUMNS_V2]
        offsets = []
        size = 0
        for arr in arrays:
            size = _align8(size)
            offsets.append(size)
            size += arr.nbytes
        self._shm = shared_memory.SharedMemory(create=True,
                                               size=max(size, 8))
        for arr, off in zip(arrays, offsets):
            dst = np.ndarray(arr.shape, dtype=arr.dtype,
                             buffer=self._shm.buf, offset=off)
            dst[:] = arr
        self.descriptor = TraceDescriptor(
            shm_name=self._shm.name, n=len(trace),
            columns=tuple((c, arr.dtype.str, off)
                          for c, arr, off in zip(TRACE_COLUMNS_V2, arrays,
                                                 offsets)),
            meta=dict(trace.meta))

    def close(self) -> None:
        """Release the block (idempotent)."""
        if self._shm is not None:
            self._shm.close()
            self._shm.unlink()
            self._shm = None

    def __enter__(self) -> "SharedTrace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def disable_shm_tracking() -> None:
    """Stop this process's resource tracker from touching shared memory.

    Call once in a worker process before :func:`attach_shared_trace`.
    CPython < 3.13 registers *attached* (not just created) blocks with
    the process-local resource tracker, so a spawn-started worker's
    tracker unlinks the owner's block when the worker exits, and a
    fork-started worker unbalances the tracker it shares with the
    owner.  The owning process keeps full responsibility for unlinking
    (``SharedTrace.close``).
    """
    from multiprocessing import resource_tracker

    def _ignore_shm(call):
        def wrapped(name, rtype):
            if rtype != "shared_memory":
                call(name, rtype)
        wrapped._shm_untracked = True  # idempotence marker
        return wrapped

    if not getattr(resource_tracker.register, "_shm_untracked", False):
        resource_tracker.register = _ignore_shm(resource_tracker.register)
        resource_tracker.unregister = _ignore_shm(resource_tracker.unregister)


def attach_shared_trace(descriptor: TraceDescriptor) -> Trace:
    """Worker side: rebuild a :class:`Trace` viewing the shared block.

    The returned trace's arrays are zero-copy views into the block; the
    attached ``SharedMemory`` object is pinned on ``trace.meta`` (under
    ``"_shm"``) so the buffer outlives this call.  Worker processes
    should call :func:`disable_shm_tracking` first — on CPython < 3.13
    attaching registers the block with the attacher's resource tracker
    (bpo-39959), which would tear the owner's block down when the
    worker exits.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=descriptor.shm_name)
    cols = {attr: np.ndarray(descriptor.n, dtype=np.dtype(dt),
                             buffer=shm.buf, offset=off)
            for attr, dt, off in descriptor.columns}
    meta = dict(descriptor.meta)
    meta["_shm"] = shm  # keep the mapping alive as long as the trace
    return Trace(cols["ops"], cols["keys"], cols["key_sizes"],
                 cols["value_sizes"], cols["penalties"],
                 cols["timestamps"], meta, cols.get("tenants"))
