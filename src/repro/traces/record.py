"""Trace containers: single requests and columnar request streams."""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator

import numpy as np


class Op(IntEnum):
    """Request types (the paper's GET / SET / DEL primitives)."""

    GET = 0
    SET = 1
    DELETE = 2


@dataclass(frozen=True)
class Request:
    """One trace record.

    ``penalty`` is the key's miss penalty in seconds (what a GET miss on
    it costs); ``timestamp`` is seconds since trace start (0.0 when the
    trace carries no timing).
    """

    op: Op
    key: int
    key_size: int
    value_size: int
    penalty: float
    timestamp: float = 0.0


class Trace:
    """Columnar request stream (NumPy-backed, memory-flat).

    Columns: ``ops`` (uint8), ``keys`` (int64), ``key_sizes`` (int32),
    ``value_sizes`` (int32), ``penalties`` (float64), ``timestamps``
    (float64).  ``meta`` carries provenance (workload name, seed, ...).
    """

    __slots__ = ("ops", "keys", "key_sizes", "value_sizes", "penalties",
                 "timestamps", "meta")

    def __init__(self, ops: np.ndarray, keys: np.ndarray,
                 key_sizes: np.ndarray, value_sizes: np.ndarray,
                 penalties: np.ndarray, timestamps: np.ndarray | None = None,
                 meta: dict | None = None) -> None:
        n = len(ops)
        arrays = dict(ops=ops, keys=keys, key_sizes=key_sizes,
                      value_sizes=value_sizes, penalties=penalties)
        for name, arr in arrays.items():
            if len(arr) != n:
                raise ValueError(
                    f"column {name!r} has {len(arr)} rows, expected {n}")
        self.ops = np.asarray(ops, dtype=np.uint8)
        self.keys = np.asarray(keys, dtype=np.int64)
        self.key_sizes = np.asarray(key_sizes, dtype=np.int32)
        self.value_sizes = np.asarray(value_sizes, dtype=np.int32)
        self.penalties = np.asarray(penalties, dtype=np.float64)
        if timestamps is None:
            timestamps = np.zeros(n, dtype=np.float64)
        elif len(timestamps) != n:
            raise ValueError("timestamps length mismatch")
        self.timestamps = np.asarray(timestamps, dtype=np.float64)
        self.meta = dict(meta or {})

    def __len__(self) -> int:
        return len(self.ops)

    def __getitem__(self, i: int) -> Request:
        return Request(Op(int(self.ops[i])), int(self.keys[i]),
                       int(self.key_sizes[i]), int(self.value_sizes[i]),
                       float(self.penalties[i]), float(self.timestamps[i]))

    def iter_rows(self) -> Iterator[tuple[int, int, int, int, float]]:
        """Fast row iterator yielding ``(op, key, key_size, value_size,
        penalty)`` as plain Python scalars (the simulator hot path)."""
        return zip(self.ops.tolist(), self.keys.tolist(),
                   self.key_sizes.tolist(), self.value_sizes.tolist(),
                   self.penalties.tolist())

    # -- composition ------------------------------------------------------
    def slice(self, start: int, stop: int | None = None) -> "Trace":
        sl = np.s_[start:stop]
        return Trace(self.ops[sl], self.keys[sl], self.key_sizes[sl],
                     self.value_sizes[sl], self.penalties[sl],
                     self.timestamps[sl], dict(self.meta))

    def concat(self, other: "Trace") -> "Trace":
        if len(other) and len(self):
            shift = self.timestamps[-1]
        else:
            shift = 0.0
        meta = dict(self.meta)
        meta["concatenated"] = True
        return Trace(
            np.concatenate([self.ops, other.ops]),
            np.concatenate([self.keys, other.keys]),
            np.concatenate([self.key_sizes, other.key_sizes]),
            np.concatenate([self.value_sizes, other.value_sizes]),
            np.concatenate([self.penalties, other.penalties]),
            np.concatenate([self.timestamps, other.timestamps + shift]),
            meta)

    def repeat(self, times: int) -> "Trace":
        """Replay the trace ``times`` times back-to-back.

        The paper repeats the APP trace "to highlight the performance
        difference among the schemes" once cold misses are out.
        """
        if times < 1:
            raise ValueError("times must be >= 1")
        out = self
        for _ in range(times - 1):
            out = out.concat(self)
        out.meta["repeats"] = times
        return out

    @property
    def num_gets(self) -> int:
        return int(np.count_nonzero(self.ops == Op.GET))

    @property
    def unique_keys(self) -> int:
        return int(np.unique(self.keys).size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Trace(n={len(self)}, gets={self.num_gets}, "
                f"meta={self.meta})")
