"""Columnar trace compiler: packed binary traces for 100M-op replays.

The in-process :class:`~repro.traces.record.Trace` holds every column in
RAM, which caps replays at what fits in memory *twice* (once for the
arrays, once for the ``.tolist()`` hot-loop lists).  A *compiled* trace
is a directory of one ``.npy`` file per column — written incrementally
by :class:`CompiledTraceWriter` so the whole trace never has to exist in
memory — that loads back as **mmap-backed views** (``np.load(...,
mmap_mode="r")``).  There is no decompress-into-RAM step: the kernel
pages columns in on demand and, with ``release=True`` (the default),
the streaming window iterator advises consumed pages back out
(``madvise(MADV_DONTNEED)``), so a replay's resident set is bounded by
the window size, not the trace size.

Layout of a compiled trace directory (``FORMAT`` in ``meta.json``)::

    trace.ctrc/
        ops.npy          uint8    GET/SET/DELETE
        keys.npy         int64    key hash / id
        key_sizes.npy    int32
        value_sizes.npy  int32
        penalties.npy    float64  miss penalty, seconds
        timestamps.npy   float64  seconds since trace start
        meta.json        {"format": ..., "n": ..., "meta": {...}}

Every ``.npy`` is a standard NumPy format-1.0 file (readable by plain
``np.load``); the writer reserves a fixed-size header so the row count
can be patched in on close without rewriting the data.

Typical use::

    with CompiledTraceWriter("etc.ctrc", meta={"workload": "etc"}) as w:
        for chunk in chunks:          # Trace objects of any length
            w.append(chunk)
    compiled = CompiledTrace("etc.ctrc")
    result = simulate(compiled, cache)   # streams windows, bounded RSS
"""

from __future__ import annotations

import json
import os
import struct
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro.traces.record import TRACE_COLUMNS, TRACE_COLUMNS_V2, Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.traces.workloads import WorkloadProfile

#: v1 format tag: the original six columns, no tenant tagging.
FORMAT_V1 = "repro-kv/compiled-trace/v1"

#: v2 format tag: v1 plus a ``tenants.npy`` column (``<u2`` tenant ids).
FORMAT_V2 = "repro-kv/compiled-trace/v2"

#: what the writer emits today (kept as ``FORMAT`` for callers that
#: predate v2); the reader accepts both tags.
FORMAT = FORMAT_V2

#: every format tag the reader accepts, mapped to its column set.
_FORMAT_COLUMNS = {FORMAT_V1: TRACE_COLUMNS, FORMAT_V2: TRACE_COLUMNS_V2}

#: column name -> little-endian dtype, fixed for the format.
COLUMN_DTYPES: dict[str, np.dtype] = {
    "ops": np.dtype("<u1"),
    "keys": np.dtype("<i8"),
    "key_sizes": np.dtype("<i4"),
    "value_sizes": np.dtype("<i4"),
    "penalties": np.dtype("<f8"),
    "timestamps": np.dtype("<f8"),
    "tenants": np.dtype("<u2"),
}

#: rows per streamed window; sized so the hot loop's per-window
#: ``.tolist()`` scratch stays tens of MB while the per-window Python
#: overhead (one zip setup, one madvise) is amortised over ~10^5 rows.
DEFAULT_WINDOW = 1 << 18

#: rows appended per chunk when compiling from row streams (CSV).
DEFAULT_CHUNK = 1 << 16

#: fixed byte size reserved for each ``.npy`` header so the final row
#: count can be patched in place.  A format-1.0 header this size fits
#: any shape below ~10^90 rows.
_HEADER_SIZE = 128
_MAGIC = b"\x93NUMPY\x01\x00"


def _header_bytes(dtype: np.dtype, n: int) -> bytes:
    """A fixed-size NumPy format-1.0 header for a 1-D array of ``n``."""
    body = ("{'descr': %r, 'fortran_order': False, 'shape': (%d,), }"
            % (np.lib.format.dtype_to_descr(dtype), n)).encode("latin1")
    pad = _HEADER_SIZE - len(_MAGIC) - 2 - len(body) - 1
    if pad < 0:  # pragma: no cover - would need a >10^60-row trace
        raise ValueError("npy header overflow")
    return (_MAGIC + struct.pack("<H", _HEADER_SIZE - len(_MAGIC) - 2)
            + body + b" " * pad + b"\n")


def _column_path(path: str | os.PathLike, name: str) -> str:
    return os.path.join(os.fspath(path), f"{name}.npy")


def _meta_path(path: str | os.PathLike) -> str:
    return os.path.join(os.fspath(path), "meta.json")


class CompiledTraceWriter:
    """Streaming writer for the compiled columnar format.

    Appends :class:`Trace` chunks (or per-column array dicts) to one
    ``.npy`` file per column without ever holding more than one chunk in
    memory; :meth:`close` patches the final row count into each header
    and writes ``meta.json``.  Usable as a context manager.
    """

    def __init__(self, path: str | os.PathLike,
                 meta: dict | None = None,
                 format: str = FORMAT) -> None:
        if format not in _FORMAT_COLUMNS:
            raise ValueError(f"unknown compiled-trace format {format!r}")
        self.path = os.fspath(path)
        os.makedirs(self.path, exist_ok=True)
        self.meta = dict(meta or {})
        self.format = format
        self.columns = _FORMAT_COLUMNS[format]
        self.n = 0
        self._files = {}
        try:
            for name in self.columns:
                fh = open(_column_path(self.path, name), "wb")
                fh.write(_header_bytes(COLUMN_DTYPES[name], 0))
                self._files[name] = fh
        except OSError:
            self._abort()
            raise

    def _abort(self) -> None:
        for fh in self._files.values():
            fh.close()
        self._files = {}

    def append(self, chunk: Trace | dict) -> None:
        """Append one chunk; columns are cast to the format dtypes."""
        if not self._files:
            raise ValueError("writer is closed")
        get = (chunk.get if isinstance(chunk, dict)
               else lambda name: getattr(chunk, name, None))
        arrays = {}
        n = None
        for name in self.columns:
            arr = get(name)
            if arr is None:
                if name == "tenants":
                    # Dict chunks may omit the tenant column; the format
                    # still carries it (all-zero = single tenant).
                    arr = np.zeros(n if n is not None else 0,
                                   dtype=COLUMN_DTYPES[name])
                else:
                    raise ValueError(f"chunk is missing column {name!r}")
            arr = np.ascontiguousarray(arr, dtype=COLUMN_DTYPES[name])
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D")
            if n is None:
                n = len(arr)
            elif len(arr) != n:
                raise ValueError(f"column {name!r} has {len(arr)} rows, "
                                 f"expected {n}")
            arrays[name] = arr
        for name, arr in arrays.items():
            self._files[name].write(arr.tobytes())
        self.n += n or 0

    def close(self) -> None:
        """Finalize headers and ``meta.json`` (idempotent)."""
        if not self._files:
            return
        for name, fh in self._files.items():
            fh.seek(0)
            fh.write(_header_bytes(COLUMN_DTYPES[name], self.n))
            fh.close()
        self._files = {}
        doc = {"format": self.format, "n": self.n,
               "columns": {name: str(COLUMN_DTYPES[name])
                           for name in self.columns},
               "meta": _jsonable_meta(self.meta)}
        with open(_meta_path(self.path), "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def __enter__(self) -> "CompiledTraceWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.close()
        else:
            self._abort()


def _jsonable_meta(meta: dict) -> dict:
    """Meta restricted to JSON-serializable values (see io.save_npz)."""
    from repro.traces.io import meta_to_jsonable
    return meta_to_jsonable(meta)


class CompiledTrace:
    """Reader side: mmap-backed columnar views over a compiled trace.

    The column attributes (``ops``, ``keys``, ...) are ``np.memmap``
    views — indexing and slicing them never loads the whole file.
    :meth:`iter_windows` yields bounded :class:`Trace` windows for the
    simulator's streaming replay; with ``release=True`` consumed pages
    are advised back to the kernel so resident memory stays bounded by
    the window, not the trace.

    Picklable by path: worker processes re-open their own mapping (the
    OS page cache shares the physical pages), which is what lets
    :func:`repro.sim.parallel.run_grid` skip the shared-memory copy for
    compiled traces.
    """

    def __init__(self, path: str | os.PathLike,
                 window: int = DEFAULT_WINDOW,
                 release: bool = True) -> None:
        self.path = os.fspath(path)
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = int(window)
        self.release = release
        meta_file = _meta_path(self.path)
        if not os.path.exists(meta_file):
            raise FileNotFoundError(
                f"{self.path!r} is not a compiled trace (no meta.json)")
        with open(meta_file) as fh:
            doc = json.load(fh)
        fmt = doc.get("format")
        if fmt not in _FORMAT_COLUMNS:
            raise ValueError(
                f"{self.path!r}: unexpected format {fmt!r}; expected one "
                f"of {sorted(_FORMAT_COLUMNS)}")
        self.format = fmt
        self.meta = dict(doc.get("meta", {}))
        self.n = int(doc["n"])
        #: column files actually on disk (v1 has no tenants.npy).
        self.disk_columns = _FORMAT_COLUMNS[fmt]
        # Every on-disk column — the tenant column included — must agree
        # with meta.json's row count and the format dtype; a truncated or
        # retyped file is data corruption, not a soft fallback.
        for name in self.disk_columns:
            arr = np.load(_column_path(self.path, name), mmap_mode="r")
            if arr.shape != (self.n,):
                raise ValueError(
                    f"{self.path!r}: column {name!r} has shape {arr.shape}, "
                    f"expected ({self.n},)")
            if arr.dtype != COLUMN_DTYPES[name]:
                raise ValueError(
                    f"{self.path!r}: column {name!r} has dtype {arr.dtype}, "
                    f"expected {COLUMN_DTYPES[name]}")
            setattr(self, name, arr)
        if "tenants" not in self.disk_columns:
            # v1 compatibility: an implicit all-zero tenant column
            # (zero-copy broadcast; slices and .tolist() work the same).
            self.tenants = np.broadcast_to(
                np.zeros(1, dtype=COLUMN_DTYPES["tenants"]), (self.n,))

    def __len__(self) -> int:
        return self.n

    @property
    def nbytes(self) -> int:
        """Total bytes of column data on disk (excluding headers/meta)."""
        return sum(getattr(self, name).nbytes for name in self.disk_columns)

    def slice(self, start: int, stop: int | None = None) -> Trace:
        """An in-memory :class:`Trace` copy of rows ``[start, stop)``."""
        sl = np.s_[start:stop]
        return Trace(*(np.array(getattr(self, name)[sl])
                       for name in TRACE_COLUMNS), meta=dict(self.meta),
                     tenants=np.array(self.tenants[sl]))

    def to_trace(self) -> Trace:
        """Materialize the whole trace in RAM (small traces only)."""
        return self.slice(0, None)

    def _release_range(self, start: int, stop: int) -> None:
        """Advise consumed rows out of the resident set (best effort)."""
        import mmap as _mmap
        advise = getattr(_mmap, "MADV_DONTNEED", None)
        if advise is None:  # pragma: no cover - non-Linux hosts
            return
        page = _mmap.PAGESIZE
        for name in self.disk_columns:
            arr = getattr(self, name)
            mm = getattr(arr, "_mmap", None)
            if mm is None:  # pragma: no cover - future numpy internals
                continue
            item = arr.dtype.itemsize
            # Whole pages fully inside the consumed byte range, shifted
            # by the mmap's own offset of the data start.
            data_off = arr.offset if hasattr(arr, "offset") else 0
            lo = data_off + start * item
            hi = data_off + stop * item
            lo_page = -(-lo // page) * page  # round up
            hi_page = (hi // page) * page    # round down
            if hi_page > lo_page:
                try:
                    mm.madvise(advise, lo_page, hi_page - lo_page)
                except (OSError, ValueError):  # pragma: no cover
                    return

    def iter_windows(self, window: int | None = None) -> Iterator[Trace]:
        """Stream the trace as bounded zero-copy :class:`Trace` windows.

        Each yielded window's columns are views into the mmap; consuming
        code (the simulator's ``.tolist()`` loops) converts them to
        scalars and moves on, after which the pages are released when
        ``self.release`` is set.
        """
        window = self.window if window is None else int(window)
        if window <= 0:
            raise ValueError("window must be positive")
        meta = dict(self.meta)
        for start in range(0, self.n, window):
            stop = min(start + window, self.n)
            yield Trace(*(getattr(self, name)[start:stop]
                          for name in TRACE_COLUMNS), meta=meta,
                        tenants=self.tenants[start:stop])
            if self.release:
                self._release_range(start, stop)

    def __iter__(self) -> Iterator[Trace]:
        return self.iter_windows()

    def __reduce__(self):
        # Pickle by path: a worker process re-opens its own mapping;
        # the OS page cache shares the physical pages, so shipping a
        # compiled trace to a pool costs a path string, not a copy.
        return (CompiledTrace, (self.path, self.window, self.release))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CompiledTrace(path={self.path!r}, n={self.n}, "
                f"window={self.window})")


# ---------------------------------------------------------------------------
# compilation front ends
# ---------------------------------------------------------------------------

def compile_trace(source: Trace | Iterable[Trace], out: str | os.PathLike,
                  meta: dict | None = None) -> CompiledTrace:
    """Compile an in-memory trace (or an iterable of chunks) to ``out``.

    ``meta`` overrides the source's meta; chunk iterables contribute the
    first chunk's meta by default.
    """
    if isinstance(source, Trace):
        chunks: Iterable[Trace] = (source,)
        meta = dict(source.meta) if meta is None else meta
    else:
        chunks = source
    writer = None
    try:
        for chunk in chunks:
            if writer is None:
                chunk_meta = meta if meta is not None else dict(chunk.meta)
                writer = CompiledTraceWriter(out, meta=chunk_meta)
            writer.append(chunk)
        if writer is None:  # empty iterable: still a valid (empty) trace
            writer = CompiledTraceWriter(out, meta=meta)
        writer.close()
    except Exception:
        if writer is not None:
            writer._abort()
        raise
    return CompiledTrace(out)


def compile_csv(csv_path: str | os.PathLike, out: str | os.PathLike,
                meta: dict | None = None,
                chunk: int = DEFAULT_CHUNK) -> CompiledTrace:
    """Stream a CSV trace into the compiled format in bounded memory."""
    from repro.traces.io import iter_request_chunks

    return compile_trace(iter_request_chunks(csv_path, chunk),
                         out, meta=dict(meta or {},
                                        source=os.fspath(csv_path)))


def compile_synthetic(profile: "WorkloadProfile", n: int,
                      out: str | os.PathLike, seed: int = 0,
                      chunk: int = 1 << 20,
                      **generator_kwargs) -> CompiledTrace:
    """Generate ``n`` synthetic requests straight to disk, chunk-wise.

    Chunks come from one :class:`SyntheticTraceGenerator` advanced by
    ``start_position``, so the stream is deterministic in (profile,
    seed) for a fixed chunk size; memory is bounded by the chunk.
    """
    from repro.traces.synthetic import SyntheticTraceGenerator

    if n <= 0:
        raise ValueError("n must be positive")
    gen = SyntheticTraceGenerator(profile, seed=seed, **generator_kwargs)
    meta = {"workload": profile.name, "seed": seed, "n": n, "chunk": chunk}

    def chunks() -> Iterator[Trace]:
        pos = 0
        while pos < n:
            size = min(chunk, n - pos)
            yield gen.generate(size, start_position=pos)
            pos += size

    return compile_trace(chunks(), out, meta=meta)


def is_compiled_trace(path: str | os.PathLike) -> bool:
    """True when ``path`` looks like a compiled trace directory."""
    return os.path.isdir(path) and os.path.exists(_meta_path(path))


def describe(compiled: CompiledTrace) -> dict:
    """Summary statistics computed window-by-window (bounded memory)."""
    ops_count = np.zeros(3, dtype=np.int64)
    penalty_sum = 0.0
    penalty_max = 0.0
    value_bytes = 0
    tenant_ids: set[int] = set()
    for w in compiled.iter_windows():
        ops_count += np.bincount(w.ops, minlength=3)[:3]
        penalty_sum += float(w.penalties.sum())
        if len(w):
            penalty_max = max(penalty_max, float(w.penalties.max()))
        value_bytes += int(w.value_sizes.sum(dtype=np.int64))
        tenant_ids.update(np.unique(w.tenants).tolist())
    n = len(compiled)
    return {
        "path": compiled.path,
        "format": compiled.format,
        "rows": n,
        "bytes": compiled.nbytes,
        "gets": int(ops_count[0]),
        "sets": int(ops_count[1]),
        "deletes": int(ops_count[2]),
        "tenants": len(tenant_ids) if n else 0,
        "mean_penalty": (penalty_sum / n) if n else 0.0,
        "max_penalty": penalty_max,
        "total_value_bytes": value_bytes,
        "meta": dict(compiled.meta),
    }
