"""Miss-penalty modeling and trace-based penalty inference.

Two roles:

1. :class:`PenaltyModel` assigns every key a deterministic miss penalty
   with the Fig 1 shape — spanning roughly 1 ms to 5 s at *every* item
   size, with a weak positive size trend and heavy lognormal scatter,
   plus a population of unknown-penalty keys pinned to the paper's
   100 ms default.

2. :func:`infer_penalties` implements the paper's estimator for traces
   that carry timestamps but no penalties: "we estimate it with the
   time gap between the miss of a GET request and the SET of the same
   key immediately following", discarding gaps above 5 s and defaulting
   unknown keys to 100 ms.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DEFAULT_PENALTY, PENALTY_CAP
from repro.traces.record import Op, Trace

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_MUL2 = np.uint64(0x94D049BB133111EB)


def splitmix64_array(x: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized splitmix64 over an int array → uint64 hashes."""
    with np.errstate(over="ignore"):
        v = (x.astype(np.uint64) ^ (np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
                                    * _GAMMA)) + _GAMMA
        v = (v ^ (v >> np.uint64(30))) * _MUL1
        v = (v ^ (v >> np.uint64(27))) * _MUL2
        return v ^ (v >> np.uint64(31))


def uniform01(x: np.ndarray, seed: int = 0) -> np.ndarray:
    """Deterministic per-key uniform(0,1) doubles from key ids."""
    return (splitmix64_array(x, seed) >> np.uint64(11)).astype(np.float64) / float(1 << 53)


class PenaltyModel:
    """Deterministic key → penalty mapping with the Fig 1 distribution.

    ``penalty = clip(exp(mu + sigma * z), min_penalty, cap)`` where
    ``mu = log(base) + correlation * log(size / ref_size)`` and ``z`` is
    a standard normal derived from the key hash — so a key always gets
    the same penalty, penalties scatter over decades at fixed size, and
    larger items trend more expensive.
    """

    def __init__(self, base_penalty: float = 0.05, correlation: float = 0.25,
                 sigma: float = 1.0, unknown_fraction: float = 0.1,
                 min_penalty: float = 0.0005, cap: float = PENALTY_CAP,
                 default_penalty: float = DEFAULT_PENALTY,
                 ref_size: float = 500.0, seed: int = 0) -> None:
        if base_penalty <= 0 or sigma < 0 or min_penalty <= 0:
            raise ValueError("base_penalty, sigma, min_penalty must be positive")
        if cap <= min_penalty:
            raise ValueError("cap must exceed min_penalty")
        if not 0.0 <= unknown_fraction <= 1.0:
            raise ValueError("unknown_fraction must be in [0, 1]")
        self.base_penalty = base_penalty
        self.correlation = correlation
        self.sigma = sigma
        self.unknown_fraction = unknown_fraction
        self.min_penalty = min_penalty
        self.cap = cap
        self.default_penalty = default_penalty
        self.ref_size = ref_size
        self.seed = seed

    def penalties_for(self, keys: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        """Vectorized penalties for (key, size) pairs."""
        keys = np.asarray(keys, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.float64)
        u_norm = uniform01(keys, self.seed + 1)
        u_unknown = uniform01(keys, self.seed + 2)
        # inverse-normal via scipy-free approximation: use erfinv from
        # numpy-compatible polynomial?  numpy lacks erfinv; use the
        # Box-Muller-style transform on two deterministic uniforms.
        u2 = uniform01(keys, self.seed + 3)
        z = np.sqrt(-2.0 * np.log(np.clip(u_norm, 1e-12, 1.0))) \
            * np.cos(2.0 * np.pi * u2)
        mu = (np.log(self.base_penalty)
              + self.correlation * np.log(np.maximum(sizes, 1.0) / self.ref_size))
        penalty = np.exp(mu + self.sigma * z)
        penalty = np.clip(penalty, self.min_penalty, self.cap)
        penalty[u_unknown < self.unknown_fraction] = self.default_penalty
        return penalty

    def penalty_for(self, key: int, size: int) -> float:
        """Scalar convenience wrapper."""
        return float(self.penalties_for(np.array([key]), np.array([size]))[0])


def infer_penalties(trace: Trace, cap: float = PENALTY_CAP,
                    default: float = DEFAULT_PENALTY) -> np.ndarray:
    """Estimate per-request penalties from GET-miss → SET time gaps.

    Replays the trace against an infinite (never-evicting) key set to
    find true misses; a miss's penalty is the gap to the next SET of the
    same key, if that gap is positive and below ``cap``.  All other
    requests inherit the key's latest known penalty, or ``default``.

    Returns an array aligned with the trace.  This mirrors the paper's
    §IV methodology for annotating the Facebook traces.
    """
    n = len(trace)
    out = np.full(n, default, dtype=np.float64)
    known: dict[int, float] = {}
    pending: dict[int, tuple[int, float]] = {}  # key -> (miss idx, miss time)
    seen: set[int] = set()

    ops = trace.ops.tolist()
    keys = trace.keys.tolist()
    times = trace.timestamps.tolist()

    for i in range(n):
        key = keys[i]
        if ops[i] == Op.SET:
            if key in pending:
                miss_idx, miss_time = pending.pop(key)
                gap = times[i] - miss_time
                if 0.0 < gap <= cap:
                    known[key] = gap
                    out[miss_idx] = gap
                else:
                    out[miss_idx] = known.get(key, default)
            seen.add(key)
        elif ops[i] == Op.GET:
            if key in seen:
                out[i] = known.get(key, default)
            else:
                pending[key] = (i, times[i])
                seen.add(key)
                out[i] = default  # provisional; overwritten on matching SET
        else:  # DELETE
            seen.discard(key)

    # Second pass: any request still at the default inherits its key's
    # measured penalty if one was learned anywhere in the trace (keys
    # measured late in the trace back-fill their earlier accesses).
    for i in range(n):
        if out[i] == default:
            measured = known.get(keys[i])
            if measured is not None:
                out[i] = measured
    return out
