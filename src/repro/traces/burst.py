"""Cold-item burst injection (paper §IV-C).

"at the time of about 0.35 million GET requests we use the SET command
to quickly inject cold KV items whose total size is about 10% of the
cache size ... we limit the cold requests' sizes in a relatively small
range covering only three classes."
"""

from __future__ import annotations

import numpy as np

from repro.traces.record import Op, Trace


#: id range for injected burst keys — disjoint from warm and cold-GET keys.
BURST_KEY_BASE = 1 << 44


def inject_burst(trace: Trace, at_get: int, total_bytes: int,
                 size_lo: int, size_hi: int, key_size: int = 24,
                 penalty: float = 0.05, seed: int = 0,
                 with_gets: bool = True) -> Trace:
    """Insert a burst of cold items once the trace has served ``at_get`` GETs.

    The paper's scenario is "a bursty stream of requests *accessing and
    adding* new KV items": each burst item arrives as a GET (a miss —
    the key has never been seen) followed by the SET that installs it.
    ``with_gets=False`` injects the SETs alone (a pure bulk load).

    Args:
        trace: the base workload.
        at_get: GET count at which the burst begins (the paper's 0.35M).
        total_bytes: aggregate size of injected items (~10% of the cache).
        size_lo / size_hi: item value-size range; pick it to span about
            three size classes, per the paper.
        key_size: key bytes for burst items.
        penalty: miss penalty of burst items (cold bulk loads are cheap
            to recompute, so the default is modest).
        seed: RNG seed for the burst's size draws.
        with_gets: precede each SET with a (missing) GET of the same key.

    Returns a new trace with the burst spliced in; burst requests carry
    ``meta["burst_span"] = (start_index, end_index)``.
    """
    if at_get < 0 or total_bytes <= 0:
        raise ValueError("at_get must be >= 0 and total_bytes positive")
    if not 0 < size_lo <= size_hi:
        raise ValueError("need 0 < size_lo <= size_hi")

    # locate the splice point: the index right after the at_get-th GET
    get_positions = np.flatnonzero(trace.ops == Op.GET)
    if at_get >= len(get_positions):
        raise ValueError(
            f"trace has only {len(get_positions)} GETs, burst at {at_get}")
    splice = int(get_positions[at_get]) + 1

    rng = np.random.default_rng(seed)
    sizes: list[int] = []
    acc = 0
    while acc < total_bytes:
        size = int(rng.integers(size_lo, size_hi + 1))
        sizes.append(size)
        acc += size + key_size
    n_burst = len(sizes)

    burst_keys = BURST_KEY_BASE + np.arange(n_burst, dtype=np.int64)
    ts = trace.timestamps[splice - 1] if splice > 0 else 0.0
    if with_gets:
        # interleave GET (miss) / SET per item
        ops = np.tile(np.array([Op.GET, Op.SET], dtype=np.uint8), n_burst)
        keys = np.repeat(burst_keys, 2)
        sizes_arr = np.repeat(np.asarray(sizes, dtype=np.int32), 2)
        n_rows = 2 * n_burst
    else:
        ops = np.full(n_burst, Op.SET, dtype=np.uint8)
        keys = burst_keys
        sizes_arr = np.asarray(sizes, dtype=np.int32)
        n_rows = n_burst
    burst = Trace(
        ops,
        keys,
        np.full(n_rows, key_size, dtype=np.int32),
        sizes_arr,
        np.full(n_rows, penalty, dtype=np.float64),
        np.full(n_rows, ts, dtype=np.float64),
        meta={"burst": True},
    )

    head = trace.slice(0, splice)
    tail = trace.slice(splice)
    out = head.concat(burst).concat(tail)
    out.meta = dict(trace.meta)
    out.meta["burst_span"] = (splice, splice + n_rows)
    out.meta["burst_bytes"] = acc
    return out
