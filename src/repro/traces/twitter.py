"""Reader for the open-source Twitter production cache-trace format.

Twitter released anonymised production cache traces alongside
Twemcache (Yang et al., OSDI 2020).  Each line is

    timestamp,anonymized_key,key_size,value_size,client_id,operation,ttl

with ``timestamp`` in seconds, sizes in bytes, and ``operation`` one of
get/gets/set/add/replace/cas/append/prepend/delete/incr/decr.

This module maps that format onto :class:`repro.traces.record.Trace` so
the simulator and all policies run on the public production traces
unchanged.  Penalties are not part of the format; they are synthesised
with a :class:`~repro.traces.penalty.PenaltyModel` (deterministic per
key) or, when ``infer=True``, estimated with the paper's GET-miss→SET
gap rule over the timestamps.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

import numpy as np

from repro.bloom.hashing import fnv1a64
from repro.traces.penalty import PenaltyModel, infer_penalties
from repro.traces.record import Op, Trace

#: Twitter operation string -> our Op (unsupported ops are skipped).
_OP_MAP = {
    "get": Op.GET, "gets": Op.GET,
    "set": Op.SET, "add": Op.SET, "replace": Op.SET, "cas": Op.SET,
    "append": Op.SET, "prepend": Op.SET,
    "delete": Op.DELETE,
    # incr/decr touch an existing value: model as GETs (reads that miss
    # if the key is absent), the standard simplification
    "incr": Op.GET, "decr": Op.GET,
}


class TwitterTraceError(ValueError):
    """Malformed line in a Twitter-format trace."""


def _key_to_int(key: str) -> int:
    """Anonymised keys are opaque strings; hash to a stable 63-bit id."""
    return fnv1a64(key.encode("utf-8")) & 0x7FFFFFFFFFFFFFFF


def iter_twitter_lines(lines: Iterable[str], strict: bool = True
                       ) -> Iterator[tuple[float, int, int, int, int, int]]:
    """Parse lines into (timestamp, key, key_size, value_size, op, ttl).

    ``strict=False`` skips malformed lines instead of raising.
    """
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) != 7:
            if strict:
                raise TwitterTraceError(
                    f"line {lineno}: expected 7 fields, got {len(parts)}")
            continue
        ts, key, ksz, vsz, _client, op, ttl = parts
        mapped = _OP_MAP.get(op.lower())
        if mapped is None:
            if strict:
                raise TwitterTraceError(f"line {lineno}: unknown op {op!r}")
            continue
        try:
            yield (float(ts), _key_to_int(key), max(int(ksz), 1),
                   max(int(vsz), 0), int(mapped), int(ttl))
        except ValueError as exc:
            if strict:
                raise TwitterTraceError(
                    f"line {lineno}: malformed numeric field") from exc
            continue


def load_twitter(path: str | os.PathLike, limit: int | None = None,
                 penalty_model: PenaltyModel | None = None,
                 infer: bool = False, strict: bool = True) -> Trace:
    """Load a Twitter-format trace file into a :class:`Trace`.

    Args:
        path: the CSV file (uncompressed).
        limit: stop after this many parsed requests.
        penalty_model: synthesises per-key penalties (default model if
            None and ``infer`` is False).
        infer: derive penalties from GET-miss→SET gaps instead (the
            paper's estimator; needs SETs in the trace to learn from).
        strict: raise on malformed lines vs skip them.
    """
    rows_ts: list[float] = []
    rows_key: list[int] = []
    rows_ksz: list[int] = []
    rows_vsz: list[int] = []
    rows_op: list[int] = []
    with open(path) as fh:
        for ts, key, ksz, vsz, op, _ttl in iter_twitter_lines(fh, strict):
            rows_ts.append(ts)
            rows_key.append(key)
            rows_ksz.append(ksz)
            rows_vsz.append(vsz)
            rows_op.append(op)
            if limit is not None and len(rows_ts) >= limit:
                break
    if not rows_ts:
        raise TwitterTraceError(f"no parsable requests in {path}")

    keys = np.asarray(rows_key, dtype=np.int64)
    key_sizes = np.asarray(rows_ksz, dtype=np.int32)
    value_sizes = np.asarray(rows_vsz, dtype=np.int32)
    trace = Trace(
        np.asarray(rows_op, dtype=np.uint8), keys, key_sizes, value_sizes,
        np.zeros(len(keys)), np.asarray(rows_ts, dtype=np.float64),
        meta={"workload": "twitter", "source": str(path)})

    if infer:
        trace.penalties[:] = infer_penalties(trace)
    else:
        model = penalty_model or PenaltyModel()
        trace.penalties[:] = model.penalties_for(
            keys, key_sizes.astype(np.int64) + value_sizes)
    return trace
