"""Synthetic Facebook-like trace generation.

Fully vectorized: popularity ranks come from an explicit Zipf inverse
CDF, per-key attributes (sizes, penalties) are deterministic hashes of
the key id (stable across accesses without per-key tables), churn
rotates the hot set over time, and a configurable share of GETs goes to
one-timer keys (compulsory misses).
"""

from __future__ import annotations

import numpy as np

from repro.traces.penalty import PenaltyModel, uniform01
from repro.traces.record import Op, Trace
from repro.traces.workloads import SizeMixture, WorkloadProfile


def zipf_cdf(num_keys: int, alpha: float) -> np.ndarray:
    """Cumulative popularity of ranks 0..num_keys-1 under Zipf(alpha)."""
    if num_keys <= 0:
        raise ValueError("num_keys must be positive")
    weights = 1.0 / np.power(np.arange(1, num_keys + 1, dtype=np.float64), alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def sample_sizes(mixture: SizeMixture, keys: np.ndarray,
                 seed: int) -> np.ndarray:
    """Deterministic per-key sizes from a log-uniform band mixture."""
    keys = np.asarray(keys, dtype=np.int64)
    u_band = uniform01(keys, seed)
    u_size = uniform01(keys, seed + 1)
    sizes = np.empty(len(keys), dtype=np.int64)
    cum = 0.0
    remaining = np.ones(len(keys), dtype=bool)
    for weight, lo, hi in mixture.bands:
        cum += weight
        in_band = remaining & (u_band < cum)
        if in_band.any():
            log_lo, log_hi = np.log(lo), np.log(hi + 1)
            sizes[in_band] = np.exp(
                log_lo + u_size[in_band] * (log_hi - log_lo)).astype(np.int64)
        remaining &= ~in_band
    if remaining.any():  # float round-off on the last band edge
        _w, lo, hi = mixture.bands[-1]
        sizes[remaining] = lo
    return np.clip(sizes, 1, None)


class SyntheticTraceGenerator:
    """Generates :class:`Trace` streams for a :class:`WorkloadProfile`.

    Key-id layout: warm keys occupy ids ``[0, num_keys)`` shifted by the
    churn epoch; cold one-timer keys draw from a disjoint high range so
    they never collide with warm keys.

    Args:
        profile: the workload description.
        seed: RNG seed — identical (profile, seed, n) → identical trace.
        penalty_model: override the profile-derived penalty model.
        mean_interarrival: seconds between requests (drives timestamps).
    """

    #: cold keys start here; far above any realistic warm universe.
    COLD_KEY_BASE = 1 << 40

    def __init__(self, profile: WorkloadProfile, seed: int = 0,
                 penalty_model: PenaltyModel | None = None,
                 mean_interarrival: float = 1e-4) -> None:
        self.profile = profile
        self.seed = seed
        self.penalty_model = penalty_model or PenaltyModel(
            correlation=profile.penalty_correlation,
            sigma=profile.penalty_sigma,
            unknown_fraction=profile.penalty_unknown_fraction,
            seed=seed,
        )
        self.mean_interarrival = mean_interarrival
        self._cdf = zipf_cdf(profile.num_keys, profile.zipf_alpha)
        self._cold_counter = self.COLD_KEY_BASE + (seed << 32)

    # -- internals ----------------------------------------------------------
    def _warm_keys(self, ranks: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Map popularity ranks to key ids, applying churn rotation.

        Each churn epoch retires ``churn_fraction`` of the universe: key
        ids advance by ``epoch * churn_fraction * num_keys``, so
        yesterday's hot keys become unreferenced and fresh ids heat up.
        Per-key attributes are hashes of the id, so the new hot keys
        draw fresh sizes and penalties.
        """
        p = self.profile
        shift = None
        if p.churn_interval > 0:
            epochs = positions // p.churn_interval
            shift = epochs * max(1, int(p.churn_fraction * p.num_keys))
        if p.drift_per_request > 0.0:
            # Continuous glide: the mapping advances fractionally per
            # request, so the hot set drifts instead of (or on top of)
            # the stepwise churn rotation.
            glide = (positions.astype(np.float64)
                     * p.drift_per_request).astype(np.int64)
            shift = glide if shift is None else shift + glide
        if shift is None:
            return ranks.astype(np.int64)
        return (ranks + shift).astype(np.int64)

    def generate(self, n: int, start_position: int = 0) -> Trace:
        """Produce ``n`` requests (deterministic in seed and position)."""
        if n <= 0:
            raise ValueError("n must be positive")
        p = self.profile
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, start_position]))

        positions = np.arange(start_position, start_position + n, dtype=np.int64)

        # operation mix
        u_op = rng.random(n)
        ops = np.full(n, Op.GET, dtype=np.uint8)
        ops[u_op >= p.get_fraction] = Op.SET
        ops[u_op >= p.get_fraction + p.set_fraction] = Op.DELETE

        # popularity ranks via inverse CDF
        ranks = np.searchsorted(self._cdf, rng.random(n), side="left")
        keys = self._warm_keys(ranks, positions)

        # cold one-timers: a slice of GETs goes to fresh keys
        cold = (ops == Op.GET) & (rng.random(n) < p.cold_fraction)
        n_cold = int(np.count_nonzero(cold))
        if n_cold:
            cold_ids = self._cold_counter + np.arange(n_cold, dtype=np.int64)
            self._cold_counter += n_cold
            keys = keys.copy()
            keys[cold] = cold_ids

        key_sizes = sample_sizes(p.key_sizes, keys, self.seed + 11)
        value_sizes = sample_sizes(p.value_sizes, keys, self.seed + 23)
        penalties = self.penalty_model.penalties_for(keys, key_sizes + value_sizes)

        gaps = rng.exponential(self.mean_interarrival, n)
        if p.diurnal_period > 0 and p.diurnal_amplitude > 0:
            # Load curve: request *rate* follows 1 + A*sin(2*pi*t/T),
            # so gaps compress at the peak and stretch in the trough.
            # Phase comes from the flat-load clock (position * mean
            # gap), keeping chunked generation position-anchored.
            t = positions * self.mean_interarrival
            rate = 1.0 + p.diurnal_amplitude * np.sin(
                2.0 * np.pi * t / p.diurnal_period)
            gaps = gaps / rate
        timestamps = np.cumsum(gaps) \
            + start_position * self.mean_interarrival

        return Trace(ops, keys, key_sizes.astype(np.int32),
                     value_sizes.astype(np.int32), penalties, timestamps,
                     meta={"workload": p.name, "seed": self.seed,
                           "start": start_position, "n": n})


def generate(profile: WorkloadProfile, n: int, seed: int = 0,
             **kwargs) -> Trace:
    """One-shot convenience: build a generator and produce ``n`` requests."""
    return SyntheticTraceGenerator(profile, seed=seed, **kwargs).generate(n)
