"""Trace persistence: binary (NPZ) and CSV formats.

Binary is the working format (compact, fast, lossless).  CSV exists for
interchange with external trace tooling and for eyeballing; it streams
in bounded memory in both directions.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Iterable, Iterator

import numpy as np

from repro.traces.record import Op, Request, Trace

CSV_HEADER = ["op", "key", "key_size", "value_size", "penalty", "timestamp"]
_OP_NAMES = {Op.GET: "GET", Op.SET: "SET", Op.DELETE: "DELETE"}
_OP_VALUES = {name: op for op, name in _OP_NAMES.items()}


# -- binary ------------------------------------------------------------------

def save_npz(trace: Trace, path: str | os.PathLike) -> None:
    """Write a trace as a compressed ``.npz`` archive."""
    meta_items = sorted((str(k), repr(v)) for k, v in trace.meta.items())
    np.savez_compressed(
        path, ops=trace.ops, keys=trace.keys, key_sizes=trace.key_sizes,
        value_sizes=trace.value_sizes, penalties=trace.penalties,
        timestamps=trace.timestamps,
        meta=np.array(meta_items, dtype=object) if meta_items
        else np.empty((0, 2), dtype=object))


def load_npz(path: str | os.PathLike) -> Trace:
    """Read a trace written by :func:`save_npz`."""
    import ast

    with np.load(path, allow_pickle=True) as data:
        meta = {}
        for key, value in data["meta"]:
            try:
                meta[key] = ast.literal_eval(value)
            except (ValueError, SyntaxError):
                meta[key] = value
        return Trace(data["ops"], data["keys"], data["key_sizes"],
                     data["value_sizes"], data["penalties"],
                     data["timestamps"], meta)


# -- CSV --------------------------------------------------------------------

def save_csv(trace: Trace, path: str | os.PathLike) -> None:
    """Write a trace as CSV with a header row."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(CSV_HEADER)
        for i in range(len(trace)):
            req = trace[i]
            writer.writerow([_OP_NAMES[req.op], req.key, req.key_size,
                             req.value_size, f"{req.penalty:.6g}",
                             f"{req.timestamp:.6f}"])


def iter_csv(path: str | os.PathLike) -> Iterator[Request]:
    """Stream requests from a CSV trace in bounded memory."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != CSV_HEADER:
            raise ValueError(
                f"unexpected CSV header {header!r}; expected {CSV_HEADER}")
        for lineno, row in enumerate(reader, start=2):
            if len(row) != len(CSV_HEADER):
                raise ValueError(f"line {lineno}: expected "
                                 f"{len(CSV_HEADER)} fields, got {len(row)}")
            try:
                yield Request(_OP_VALUES[row[0]], int(row[1]), int(row[2]),
                              int(row[3]), float(row[4]), float(row[5]))
            except (KeyError, ValueError) as exc:
                raise ValueError(f"line {lineno}: malformed row {row!r}") from exc


def load_csv(path: str | os.PathLike) -> Trace:
    """Read a full CSV trace into a columnar :class:`Trace`."""
    return from_requests(iter_csv(path))


def from_requests(requests: Iterable[Request],
                  meta: dict | None = None) -> Trace:
    """Build a columnar trace from an iterable of Request objects."""
    rows = list(requests)
    n = len(rows)
    ops = np.fromiter((r.op for r in rows), dtype=np.uint8, count=n)
    keys = np.fromiter((r.key for r in rows), dtype=np.int64, count=n)
    ksz = np.fromiter((r.key_size for r in rows), dtype=np.int32, count=n)
    vsz = np.fromiter((r.value_size for r in rows), dtype=np.int32, count=n)
    pen = np.fromiter((r.penalty for r in rows), dtype=np.float64, count=n)
    ts = np.fromiter((r.timestamp for r in rows), dtype=np.float64, count=n)
    return Trace(ops, keys, ksz, vsz, pen, ts, meta)
