"""Trace persistence: binary (NPZ) and CSV formats.

Binary is the working format (compact, fast, lossless).  CSV exists for
interchange with external trace tooling and for eyeballing; it streams
in bounded memory in both directions.  For traces too large to hold in
RAM at all, see :mod:`repro.traces.compile` (the mmap-able columnar
format).

Trace ``meta`` is serialized as JSON inside the archive: values must be
JSON-representable (numpy scalars are unwrapped, tuples come back as
lists); anything else is stored as ``str(value)`` with a
``TraceMetaWarning``.  Archives written before the JSON scheme (object
-dtype ``meta`` pairs) are still readable.
"""

from __future__ import annotations

import csv
import json
import os
import warnings
from typing import Iterable, Iterator

import numpy as np

from repro.traces.record import Op, Request, Trace

CSV_HEADER = ["op", "key", "key_size", "value_size", "penalty", "timestamp"]
_OP_NAMES = {Op.GET: "GET", Op.SET: "SET", Op.DELETE: "DELETE"}
_OP_VALUES = {name: op for op, name in _OP_NAMES.items()}

#: rows buffered per chunk when building columns from request streams.
CHUNK_ROWS = 1 << 16


class TraceMetaWarning(UserWarning):
    """A trace meta value could not be stored faithfully."""


# -- meta (de)serialization --------------------------------------------------

def _jsonable_value(key: str, value):
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.ndarray):
        value = value.tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonable_value(key, v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable_value(key, v) for k, v in value.items()}
    warnings.warn(
        f"trace meta[{key!r}] = {value!r} is not JSON-serializable; "
        f"storing str(value)", TraceMetaWarning, stacklevel=4)
    return str(value)


def meta_to_jsonable(meta: dict) -> dict:
    """Restrict a trace meta dict to JSON-representable values.

    Private keys (leading underscore, e.g. the shared-memory pin
    ``"_shm"``) are dropped; numpy scalars are unwrapped; values with no
    JSON form are stored as ``str(value)`` under a
    :class:`TraceMetaWarning`.
    """
    out = {}
    for key, value in meta.items():
        key = str(key)
        if key.startswith("_"):
            continue
        out[key] = _jsonable_value(key, value)
    return out


def _legacy_meta(path: str | os.PathLike) -> dict:
    """Meta from a pre-JSON archive (object-dtype ``(key, repr)`` pairs).

    Only this fallback opens the archive with ``allow_pickle``; new
    archives never need it.
    """
    import ast

    meta = {}
    with np.load(path, allow_pickle=True) as data:
        for key, value in data["meta"]:
            try:
                meta[key] = ast.literal_eval(value)
            except (ValueError, SyntaxError):
                meta[key] = value
    return meta


# -- binary ------------------------------------------------------------------

def save_npz(trace: Trace, path: str | os.PathLike) -> None:
    """Write a trace as a compressed ``.npz`` archive."""
    meta_json = json.dumps(meta_to_jsonable(trace.meta), sort_keys=True)
    columns = dict(
        ops=trace.ops, keys=trace.keys, key_sizes=trace.key_sizes,
        value_sizes=trace.value_sizes, penalties=trace.penalties,
        timestamps=trace.timestamps)
    if trace.tenants.any():
        # Only multi-tenant traces pay for the column; single-tenant
        # archives stay byte-identical to the pre-tenancy format.
        columns["tenants"] = np.ascontiguousarray(trace.tenants)
    np.savez_compressed(path, meta_json=np.asarray(meta_json), **columns)


def load_npz(path: str | os.PathLike) -> Trace:
    """Read a trace written by :func:`save_npz` (any meta scheme)."""
    legacy = False
    with np.load(path) as data:
        if "meta_json" in data.files:
            meta = json.loads(str(data["meta_json"][()]))
        else:
            legacy = "meta" in data.files
            meta = {}
        tenants = data["tenants"] if "tenants" in data.files else None
        trace = Trace(data["ops"], data["keys"], data["key_sizes"],
                      data["value_sizes"], data["penalties"],
                      data["timestamps"], meta, tenants)
    if legacy:
        trace.meta.update(_legacy_meta(path))
    return trace


# -- CSV --------------------------------------------------------------------

def save_csv(trace: Trace, path: str | os.PathLike) -> None:
    """Write a trace as CSV with a header row."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(CSV_HEADER)
        for i in range(len(trace)):
            req = trace[i]
            writer.writerow([_OP_NAMES[req.op], req.key, req.key_size,
                             req.value_size, f"{req.penalty:.6g}",
                             f"{req.timestamp:.6f}"])


def iter_csv(path: str | os.PathLike) -> Iterator[Request]:
    """Stream requests from a CSV trace in bounded memory."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != CSV_HEADER:
            raise ValueError(
                f"unexpected CSV header {header!r}; expected {CSV_HEADER}")
        for lineno, row in enumerate(reader, start=2):
            if len(row) != len(CSV_HEADER):
                raise ValueError(f"line {lineno}: expected "
                                 f"{len(CSV_HEADER)} fields, got {len(row)}")
            try:
                yield Request(_OP_VALUES[row[0]], int(row[1]), int(row[2]),
                              int(row[3]), float(row[4]), float(row[5]))
            except (KeyError, ValueError) as exc:
                raise ValueError(f"line {lineno}: malformed row {row!r}") from exc


def load_csv(path: str | os.PathLike) -> Trace:
    """Read a full CSV trace into a columnar :class:`Trace`.

    Streams through :func:`from_requests`' chunked builder: per-request
    Python objects never accumulate beyond one chunk.
    """
    return from_requests(iter_csv(path))


_COLUMN_BUILD = (("ops", np.uint8), ("keys", np.int64),
                 ("key_sizes", np.int32), ("value_sizes", np.int32),
                 ("penalties", np.float64), ("timestamps", np.float64))


def from_requests(requests: Iterable[Request], meta: dict | None = None,
                  chunk_rows: int = CHUNK_ROWS) -> Trace:
    """Build a columnar trace from an iterable of Request objects.

    Consumes the iterable in ``chunk_rows``-sized chunks: scalars are
    buffered into plain lists, flushed to NumPy arrays per chunk, and
    concatenated once at the end — peak per-request Python object count
    is one chunk, not the whole trace, so streaming a multi-GB CSV
    through here holds columns (not objects) in memory.
    """
    if chunk_rows <= 0:
        raise ValueError("chunk_rows must be positive")
    parts: list[list[np.ndarray]] = [[] for _ in _COLUMN_BUILD]
    bufs: list[list] = [[] for _ in _COLUMN_BUILD]

    def flush() -> None:
        if not bufs[0]:
            return
        for i, (_name, dtype) in enumerate(_COLUMN_BUILD):
            parts[i].append(np.array(bufs[i], dtype=dtype))
            bufs[i].clear()

    for r in requests:
        bufs[0].append(int(r.op))
        bufs[1].append(r.key)
        bufs[2].append(r.key_size)
        bufs[3].append(r.value_size)
        bufs[4].append(r.penalty)
        bufs[5].append(r.timestamp)
        if len(bufs[0]) >= chunk_rows:
            flush()
    flush()
    columns = [np.concatenate(p) if p else np.empty(0, dtype=dtype)
               for p, (_name, dtype) in zip(parts, _COLUMN_BUILD)]
    return Trace(*columns, meta=meta)


def iter_request_chunks(path: str | os.PathLike,
                        chunk_rows: int = CHUNK_ROWS) -> Iterator[Trace]:
    """Stream a CSV trace as columnar :class:`Trace` chunks.

    The compiler's CSV front end: each chunk is an independent bounded
    trace, so ``CSV -> compiled`` never materializes the full trace.
    """
    if chunk_rows <= 0:
        raise ValueError("chunk_rows must be positive")
    buf: list[Request] = []
    for req in iter_csv(path):
        buf.append(req)
        if len(buf) >= chunk_rows:
            yield from_requests(buf, chunk_rows=chunk_rows)
            buf = []
    if buf:
        yield from_requests(buf, chunk_rows=chunk_rows)
