"""Trace analysis: the numbers behind Fig 1 and the workload tables.

Summarises operation mix, size and penalty distributions, popularity
skew, and — the Fig 1 artifact — penalty statistics per item-size
decade, showing that penalty varies over decades at every size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traces.record import Op, Trace


@dataclass
class SizeBucketPenalty:
    """Penalty statistics for one item-size bucket (Fig 1 row)."""

    size_lo: int
    size_hi: int
    count: int
    penalty_min: float
    penalty_p50: float
    penalty_p90: float
    penalty_max: float


@dataclass
class TraceStats:
    """Computed summary of a trace."""

    n_requests: int
    n_gets: int
    n_sets: int
    n_deletes: int
    unique_keys: int
    one_timer_fraction: float
    item_size_p50: float
    item_size_p99: float
    item_size_max: int
    penalty_p50: float
    penalty_p99: float
    penalty_max: float
    top1pct_access_share: float
    penalty_by_size: list[SizeBucketPenalty] = field(default_factory=list)

    def format(self) -> str:
        """Readable multi-line report."""
        lines = [
            f"requests        {self.n_requests}",
            f"  GET/SET/DEL   {self.n_gets}/{self.n_sets}/{self.n_deletes}",
            f"unique keys     {self.unique_keys}",
            f"one-timers      {self.one_timer_fraction:.1%}",
            f"item size       p50={self.item_size_p50:.0f}B "
            f"p99={self.item_size_p99:.0f}B max={self.item_size_max}B",
            f"penalty         p50={self.penalty_p50 * 1e3:.1f}ms "
            f"p99={self.penalty_p99:.2f}s max={self.penalty_max:.2f}s",
            f"top 1% keys serve {self.top1pct_access_share:.1%} of accesses",
            "",
            f"{'size bucket':>20} {'count':>9} {'min':>9} {'p50':>9} "
            f"{'p90':>9} {'max':>9}   (penalty, s)",
        ]
        for b in self.penalty_by_size:
            lines.append(
                f"{b.size_lo:>8}-{b.size_hi:<11} {b.count:>9} "
                f"{b.penalty_min:>9.4f} {b.penalty_p50:>9.4f} "
                f"{b.penalty_p90:>9.4f} {b.penalty_max:>9.4f}")
        return "\n".join(lines)


def penalty_by_size_decade(trace: Trace) -> list[SizeBucketPenalty]:
    """Fig 1 data: penalty spread per decade of item size."""
    sizes = (trace.key_sizes + trace.value_sizes).astype(np.float64)
    penalties = trace.penalties
    buckets: list[SizeBucketPenalty] = []
    lo = 1
    max_size = int(sizes.max()) if len(sizes) else 0
    while lo <= max_size:
        hi = lo * 10 - 1
        mask = (sizes >= lo) & (sizes <= hi)
        count = int(np.count_nonzero(mask))
        if count:
            pens = penalties[mask]
            buckets.append(SizeBucketPenalty(
                lo, hi, count, float(pens.min()),
                float(np.percentile(pens, 50)),
                float(np.percentile(pens, 90)), float(pens.max())))
        lo *= 10
    return buckets


def analyze(trace: Trace) -> TraceStats:
    """Compute the full summary of a trace."""
    if len(trace) == 0:
        raise ValueError("cannot analyze an empty trace")
    ops = trace.ops
    sizes = (trace.key_sizes.astype(np.int64)
             + trace.value_sizes.astype(np.int64))
    keys, counts = np.unique(trace.keys, return_counts=True)

    # share of accesses going to the most popular 1% of keys
    sorted_counts = np.sort(counts)[::-1]
    top_n = max(1, len(keys) // 100)
    top_share = float(sorted_counts[:top_n].sum() / counts.sum())

    return TraceStats(
        n_requests=len(trace),
        n_gets=int(np.count_nonzero(ops == Op.GET)),
        n_sets=int(np.count_nonzero(ops == Op.SET)),
        n_deletes=int(np.count_nonzero(ops == Op.DELETE)),
        unique_keys=len(keys),
        one_timer_fraction=float(np.count_nonzero(counts == 1) / len(keys)),
        item_size_p50=float(np.percentile(sizes, 50)),
        item_size_p99=float(np.percentile(sizes, 99)),
        item_size_max=int(sizes.max()),
        penalty_p50=float(np.percentile(trace.penalties, 50)),
        penalty_p99=float(np.percentile(trace.penalties, 99)),
        penalty_max=float(trace.penalties.max()),
        top1pct_access_share=top_share,
        penalty_by_size=penalty_by_size_decade(trace),
    )
