"""Command-line interface: ``repro-kv``.

Subcommands:

* ``generate`` — synthesize a workload trace to .npz/.csv
* ``trace``    — compiled-trace tooling: ``trace compile`` packs a
  workload or .npz/.csv trace into the mmap-able columnar format
  (``docs/traces.md``) chunk-by-chunk in bounded memory; ``trace
  info`` summarizes a compiled directory
* ``analyze``  — print trace statistics (the Fig 1 table)
* ``simulate`` — replay a trace/workload under one policy
  (``--tenants`` interleaves several workload profiles into one
  tenant-tagged trace and replays it under the tenant arbiter)
* ``tenancy``  — multi-tenant scenario runner: penalty-aware arbiter
  vs static partitioning (``noisy-neighbor`` etc.; see ``--list``)
* ``compare``  — replay under several policies and rank them
* ``cluster``  — replay against multi-node clusters
* ``obs``      — observability snapshots (dump/diff)
* ``chaos``    — run a named fault scenario (optionally with a
  ``--dump-dir`` timeline + span dump)
* ``report``   — render a dump directory as self-contained HTML
* ``profile``  — cProfile a replay
* ``serve``    — run the memcached-protocol server (async sharded by
  default; ``--legacy`` for the threaded reference implementation)
* ``loadgen``  — memtier-style load generator (``--spawn`` self-hosts
  a server for one-command smoke runs)
"""

from __future__ import annotations

import argparse
import sys

from repro._util import fmt_bytes, fmt_seconds, parse_size
from repro.policies import POLICY_NAMES
from repro.sim.experiment import ExperimentSpec, run_comparison
from repro.sim.parallel import run_grid, size_specs
from repro.sim.report import ascii_chart, comparison_summary
from repro.traces import analyze as analyze_trace
from repro.traces import (generate as generate_trace, get_profile, load_csv,
                          load_npz, save_csv, save_npz)


def _load_trace(path: str):
    from repro.traces import CompiledTrace, is_compiled_trace

    if is_compiled_trace(path):
        return CompiledTrace(path)
    if path.endswith(".csv"):
        return load_csv(path)
    return load_npz(path)


def _trace_from_args(args) -> "object":
    if args.trace:
        return _load_trace(args.trace)
    profile = get_profile(args.workload)
    if args.scale != 1.0:
        profile = profile.scaled(args.scale)
    return generate_trace(profile, args.requests, seed=args.seed)


def _add_trace_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--trace", help="trace file (.npz/.csv) or compiled "
                                     "trace directory; otherwise synthesize")
    sub.add_argument("--workload", default="etc",
                     help="workload profile (etc/app/usr/sys/var, or the "
                          "Table V zoo: twitter-cache, twitter-cache15, "
                          "zippydb, udb, rtdata, dedup)")
    sub.add_argument("--requests", type=int, default=500_000,
                     help="requests to synthesize")
    sub.add_argument("--scale", type=float, default=0.2,
                     help="key-universe scale factor for synthesis")
    sub.add_argument("--seed", type=int, default=0)


def _add_cache_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--cache-size", default="64MiB",
                     help="total cache memory (e.g. 64MiB, 1GiB); "
                          "`simulate` accepts a comma-separated list")
    sub.add_argument("--slab-size", default="64KiB", help="slab size")
    sub.add_argument("--window", type=int, default=50_000,
                     help="GETs per metrics window")
    sub.add_argument("--hit-time", type=float, default=1e-4,
                     help="service time of a hit, seconds")


def _add_jobs_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--jobs", type=int, default=1,
                     help="worker processes for independent replays "
                          "(0 = one per spare core; 1 = serial)")


def cmd_generate(args) -> int:
    profile = get_profile(args.workload)
    if args.scale != 1.0:
        profile = profile.scaled(args.scale)
    trace = generate_trace(profile, args.requests, seed=args.seed)
    if args.out.endswith(".csv"):
        save_csv(trace, args.out)
    else:
        save_npz(trace, args.out)
    print(f"wrote {len(trace)} requests ({trace.unique_keys} unique keys) "
          f"to {args.out}")
    return 0


def cmd_trace_compile(args) -> int:
    from time import perf_counter

    from repro.traces import compile_csv, compile_synthetic, compile_trace

    started = perf_counter()
    if args.trace:
        if args.trace.endswith(".csv"):
            # CSV chunks buffer Request objects; keep them small even
            # when the (array-sized) --chunk is large.
            compiled = compile_csv(args.trace, args.out,
                                   chunk=min(args.chunk, 1 << 16))
        else:
            compiled = compile_trace(load_npz(args.trace), args.out)
    else:
        profile = get_profile(args.workload)
        if args.scale != 1.0:
            profile = profile.scaled(args.scale)
        compiled = compile_synthetic(profile, args.requests, args.out,
                                     seed=args.seed, chunk=args.chunk)
    elapsed = perf_counter() - started
    rate = len(compiled) / elapsed if elapsed else 0.0
    print(f"compiled {len(compiled):,} requests "
          f"({fmt_bytes(compiled.nbytes)} columnar) to {args.out} "
          f"in {elapsed:.1f}s ({rate:,.0f} ops/s)")
    return 0


def cmd_trace_info(args) -> int:
    from repro.traces import CompiledTrace
    from repro.traces.compile import describe

    info = describe(CompiledTrace(args.path))
    print(f"compiled trace    {info['path']}")
    print(f"format            {info['format']}")
    print(f"rows              {info['rows']:,}")
    print(f"tenants           {info['tenants']}")
    print(f"columnar bytes    {fmt_bytes(info['bytes'])}")
    print(f"gets/sets/deletes {info['gets']:,} / {info['sets']:,} / "
          f"{info['deletes']:,}")
    print(f"mean penalty      {fmt_seconds(info['mean_penalty'])}")
    print(f"max penalty       {fmt_seconds(info['max_penalty'])}")
    print(f"total value bytes {fmt_bytes(info['total_value_bytes'])}")
    for key in sorted(info["meta"]):
        print(f"meta.{key:<13} {info['meta'][key]}")
    return 0


def cmd_analyze(args) -> int:
    from repro.traces import is_compiled_trace

    if is_compiled_trace(args.trace):
        # Whole-trace statistics would materialize the columns; the
        # windowed summary stays bounded no matter the trace size.
        return cmd_trace_info(argparse.Namespace(path=args.trace))
    trace = _load_trace(args.trace)
    print(analyze_trace(trace).format())
    return 0


def _simulate_tenants(args) -> int:
    """``simulate --tenants``: mix profiles, replay under the arbiter."""
    from repro.cache import SlabCache, SizeClassConfig
    from repro.sim.simulator import simulate
    from repro.tenancy import (TenantArbiter, TenantSpec, mix_tenants,
                               tenant_configs)

    if args.trace:
        raise SystemExit("--tenants synthesizes its own tenant-tagged "
                         "trace and cannot be combined with --trace")
    names = [n.strip() for n in args.tenants.split(",") if n.strip()]
    if len(names) < 1:
        raise SystemExit("--tenants needs at least one workload profile")
    specs = []
    for i, name in enumerate(names):
        label = f"{name}#{i}" if names.count(name) > 1 else name
        specs.append(TenantSpec(
            name=label, profile=get_profile(name).scaled(args.scale),
            reserve_fraction=args.reserve))
    trace = mix_tenants(specs, args.requests, seed=args.seed)
    cache_bytes = parse_size(args.cache_size.split(",")[0])
    slab_bytes = parse_size(args.slab_size)
    arbiter = TenantArbiter(tenant_configs(specs, cache_bytes // slab_bytes))
    cache = SlabCache(cache_bytes, arbiter,
                      SizeClassConfig(slab_size=slab_bytes))
    result = simulate(trace, cache, hit_time=args.hit_time,
                      window_gets=args.window)
    print(f"policy           {arbiter.name} "
          f"({len(specs)} tenants: {', '.join(s.name for s in specs)})")
    print(f"cache            {fmt_bytes(cache_bytes)} "
          f"({cache_bytes // slab_bytes} slabs)")
    print(f"GETs             {result.total_gets}")
    print(f"hit ratio        {result.hit_ratio:.4f}")
    print(f"avg service time {fmt_seconds(result.avg_service_time)}")
    print(f"weighted service {result.total_weighted_service_time():.3f}s")
    counts = arbiter.steal_counts()
    print(f"steals           approved={counts.get('approved', 0)} "
          f"forced={counts.get('forced', 0)} "
          f"declined={counts.get('declined', 0)}")
    for t, m in sorted(result.tenant_metrics.items()):
        print(f"  tenant {m['name']:>8}: gets={m['gets']} "
              f"hit_ratio={m['hit_ratio']:.4f} "
              f"avg_service={fmt_seconds(m['avg_service_time'])} "
              f"slabs={m['slabs']}")
    return 0


def cmd_simulate(args) -> int:
    if args.tenants:
        return _simulate_tenants(args)
    trace = _trace_from_args(args)
    sizes = [parse_size(s) for s in
             (part.strip() for part in args.cache_size.split(","))
             if s]
    if not sizes:
        raise SystemExit("--cache-size needs at least one size")
    base = ExperimentSpec(name="cli", cache_bytes=sizes[0],
                          slab_size=parse_size(args.slab_size),
                          hit_time=args.hit_time, window_gets=args.window)
    specs = size_specs(base, sizes) if len(sizes) > 1 else [base]
    shards = getattr(args, "replay_shards", 1)
    if shards > 1:
        # The key-sharded engine partitions ONE replay across workers
        # (repro.sim.sharded); --jobs sizes its pool instead of the grid.
        from repro.sim.sharded import run_sharded

        results = {spec.name: run_sharded(trace, spec, args.policy,
                                          shards=shards,
                                          jobs=args.jobs or None)
                   for spec in specs}
    else:
        grid = run_grid(trace, specs, [args.policy], jobs=args.jobs or None)
        grid.raise_failures()
        results = {spec.name: grid.results[(spec.name, args.policy)]
                   for spec in specs}
    for i, spec in enumerate(specs):
        result = results[spec.name]
        if i:
            print()
        print(f"policy           {result.policy}")
        if shards > 1:
            print(f"shards           {shards} "
                  f"({fmt_bytes(spec.cache_bytes // shards)} each)")
        print(f"cache            {fmt_bytes(spec.cache_bytes)} "
              f"({spec.cache_bytes // spec.slab_size} slabs)")
        print(f"GETs             {result.total_gets}")
        print(f"hit ratio        {result.hit_ratio:.4f}")
        print(f"avg service time {fmt_seconds(result.avg_service_time)}")
        print(f"evictions        {result.cache_stats['evictions']:.0f}")
        print(f"migrations       {result.cache_stats['migrations']:.0f}")
        if args.chart and result.windows:
            print()
            print(ascii_chart({"hit_ratio": result.hit_ratio_series()},
                              title="hit ratio per window"))
    return 0


def cmd_compare(args) -> int:
    trace = _trace_from_args(args)
    policies = args.policies.split(",")
    for name in policies:
        if name not in POLICY_NAMES:
            print(f"unknown policy {name!r}; choose from {POLICY_NAMES}",
                  file=sys.stderr)
            return 2
    spec = ExperimentSpec(name="cli", cache_bytes=parse_size(args.cache_size),
                          slab_size=parse_size(args.slab_size),
                          hit_time=args.hit_time, window_gets=args.window)
    cmp = run_comparison(trace, spec, policies, verbose=args.verbose,
                         jobs=args.jobs or None)
    print(comparison_summary(cmp.results))
    if args.chart:
        print()
        print(ascii_chart(
            {n: r.service_time_series() for n, r in cmp.results.items()},
            title="avg service time per window (s)"))
    return 0


def cmd_cluster(args) -> int:
    from repro.cache import SizeClassConfig
    from repro.cluster import CacheCluster
    from repro.policies import make_policy
    from repro.sim.report import format_table
    from repro.sim.simulator import simulate

    trace = _trace_from_args(args)
    total = parse_size(args.cache_size)
    classes = SizeClassConfig(slab_size=parse_size(args.slab_size))
    node_counts = [int(n) for n in args.nodes.split(",")]
    rows = []
    for n in node_counts:
        if n <= 0 or total // n < classes.slab_size:
            print(f"skipping {n} nodes: per-node share below one slab",
                  file=sys.stderr)
            continue
        cluster = CacheCluster(
            [f"node{i}" for i in range(n)], capacity_bytes=total // n,
            policy_factory=lambda: make_policy(args.policy),
            size_classes=classes)
        result = simulate(trace, cluster, hit_time=args.hit_time,
                          window_gets=args.window)
        rows.append([n, fmt_bytes(total // n), result.hit_ratio,
                     fmt_seconds(result.avg_service_time)])
    print(f"policy={args.policy}, total memory={fmt_bytes(total)}")
    print(format_table(["nodes", "per_node", "hit_ratio", "avg_service"],
                       rows))
    return 0


def cmd_obs(args) -> int:
    from repro import obs

    if args.obs_command == "diff":
        import json
        with open(args.old) as fh:
            old = json.load(fh)
        with open(args.new) as fh:
            new = json.load(fh)
        print(obs.format_diff(obs.diff_snapshots(old, new)))
        return 0

    # obs dump: replay a trace with observability on, then export the
    # registry (and event-trace tail) as JSON and/or Prometheus text.
    from repro.sim.report import tail_summary
    from repro.sim.service import ServiceTimeModel
    from repro.sim.simulator import Simulator

    if args.format == "both" and not args.out:
        raise SystemExit("--format both requires --out (used as a prefix)")
    registry = obs.enable(event_capacity=args.events)
    try:
        trace = _trace_from_args(args)
        spec = ExperimentSpec(name="obs-dump",
                              cache_bytes=parse_size(args.cache_size),
                              slab_size=parse_size(args.slab_size),
                              hit_time=args.hit_time,
                              window_gets=args.window)
        cache = spec.build_cache(args.policy)
        timeline = (obs.TimelineRecorder(stride=args.window)
                    if args.dump_dir else None)
        sim = Simulator(cache, ServiceTimeModel(hit_time=args.hit_time),
                        window_gets=args.window, timeline=timeline)
        result = sim.run(trace)
        cache.update_obs_gauges()
        meta = {"policy": args.policy, "requests": len(trace),
                "cache_bytes": spec.cache_bytes,
                "hit_ratio": result.hit_ratio,
                "avg_service_time": result.avg_service_time}
        events = obs.get_event_trace()
        if args.dump_dir:
            written = obs.write_dump(args.dump_dir, meta=meta,
                                     registry=registry, events=events,
                                     timeline=timeline)
            print(f"wrote dump directory {args.dump_dir} "
                  f"({len(written)} files)", file=sys.stderr)

        outputs: list[tuple[str, str]] = []  # (suffix, content)
        if args.format in ("json", "both"):
            outputs.append((".json", obs.to_json(registry, events=events,
                                                 meta=meta)))
        if args.format in ("prom", "both"):
            outputs.append((".prom", obs.to_prometheus(registry)))
        if args.out:
            for suffix, content in outputs:
                path = args.out if len(outputs) == 1 else args.out + suffix
                with open(path, "w") as fh:
                    fh.write(content)
                print(f"wrote {path}", file=sys.stderr)
            print(tail_summary({args.policy: result}), file=sys.stderr)
        else:
            for _suffix, content in outputs:
                print(content)
    finally:
        obs.disable()
    return 0


def cmd_chaos(args) -> int:
    from repro import obs
    from repro.faults import ResilienceConfig, run_scenario, scenario_names

    if args.list:
        for name in scenario_names():
            print(name)
        return 0
    if not args.scenario:
        print("chaos: a scenario name is required (or --list)",
              file=sys.stderr)
        return 2
    if args.scenario not in scenario_names():
        print(f"unknown scenario {args.scenario!r}; "
              f"choose from {scenario_names()}", file=sys.stderr)
        return 2
    policies = args.policies.split(",")
    for name in policies:
        if name not in POLICY_NAMES:
            print(f"unknown policy {name!r}; choose from {POLICY_NAMES}",
                  file=sys.stderr)
            return 2
    trace = _trace_from_args(args)
    resilience = ResilienceConfig(serve_stale=not args.no_stale)
    want_obs = bool(args.obs_out or args.dump_dir)
    registry = obs.Registry() if want_obs else None
    events = obs.EventTrace() if want_obs else None
    timeline = (obs.TimelineRecorder(stride=args.window)
                if args.dump_dir else None)
    tracer = None
    if args.dump_dir:
        # Default sampling spreads the retained traces across the whole
        # run (capacity/len uniform draws) instead of tracing every tick
        # and keeping only the final `capacity` — the fault windows in
        # the middle of a scenario are the traces worth keeping.
        sample = args.trace_sample
        if sample is None:
            sample = min(1.0, args.trace_capacity / max(len(trace), 1))
        tracer = obs.SpanTracer(sample=sample, seed=args.fault_seed,
                                capacity=args.trace_capacity)
    report = run_scenario(
        args.scenario, trace, policies=policies, node_count=args.nodes,
        capacity_bytes=parse_size(args.cache_size) // max(args.nodes, 1),
        slab_size=parse_size(args.slab_size), hit_time=args.hit_time,
        window_gets=args.window, seed=args.fault_seed,
        resilience=resilience, obs_registry=registry, obs_events=events,
        timeline=timeline, tracing=tracer)
    print(report.format())
    meta = {"scenario": args.scenario, "fault_seed": args.fault_seed,
            "policies": policies, "nodes": args.nodes,
            "requests": len(trace)}
    if args.obs_out:
        with open(args.obs_out, "w") as fh:
            fh.write(obs.to_json(registry, events=events, meta=meta))
        print(f"wrote obs snapshot to {args.obs_out}", file=sys.stderr)
    if args.dump_dir:
        written = obs.write_dump(args.dump_dir, meta=meta,
                                 registry=registry, events=events,
                                 timeline=timeline, tracer=tracer)
        print(f"wrote dump directory {args.dump_dir} "
              f"({len(written)} files)", file=sys.stderr)
    return 0


def cmd_tenancy(args) -> int:
    from repro.tenancy import SCENARIOS, run_scenario

    if args.list:
        for name, (_builder, desc) in sorted(SCENARIOS.items()):
            print(f"{name:<20} {desc}")
        return 0
    if not args.scenario:
        print("tenancy: a scenario name is required (or --list)",
              file=sys.stderr)
        return 2
    if args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r}; "
              f"choose from {sorted(SCENARIOS)}", file=sys.stderr)
        return 2
    result = run_scenario(
        args.scenario, requests=args.requests, seed=args.seed,
        cache_bytes=parse_size(args.cache_size),
        slab_bytes=parse_size(args.slab_size), window_gets=args.window,
        scale=args.scale, steal_margin=args.steal_margin,
        dump_dir=args.dump_dir)
    print(result.report())
    if args.dump_dir:
        print(f"wrote dump directory {args.dump_dir}", file=sys.stderr)
    if args.check and result.improvement <= 0:
        print("tenancy: arbiter did not beat static partitioning "
              f"(improvement {result.improvement * 100:.2f}%)",
              file=sys.stderr)
        return 1
    return 0


def cmd_report(args) -> int:
    from repro.obs.report import render_report

    try:
        render_report(args.dump_dir, args.out, title=args.title)
    except (FileNotFoundError, ValueError) as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    from repro.cache import SlabCache, SizeClassConfig
    from repro.policies import make_policy
    from repro.server.server import CacheServer

    classes = SizeClassConfig(slab_size=parse_size(args.slab_size))
    if args.legacy:
        cache = SlabCache(parse_size(args.cache_size),
                          make_policy(args.policy), classes)
        server = CacheServer((args.host, args.port), cache)
        print(f"serving [legacy threaded] {cache.describe()} on "
              f"{args.host}:{server.port} (ctrl-c to stop)", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return 0

    import asyncio

    from repro.server.async_server import AsyncCacheServer
    from repro.server.shard import ShardSet

    shards = ShardSet(parse_size(args.cache_size),
                      lambda: make_policy(args.policy), classes,
                      nshards=args.shards)

    async def serve() -> None:
        server = AsyncCacheServer(shards)
        await server.start(args.host, args.port)
        print(f"serving [async x{args.shards} shards] "
              f"{shards.shards[0].describe()} per shard on "
              f"{args.host}:{server.port} (ctrl-c to stop)", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_loadgen(args) -> int:
    from repro.server.loadgen import LoadgenConfig, run_loadgen_sync

    cfg = LoadgenConfig(connections=args.connections,
                        pipeline=args.pipeline, ops=args.ops,
                        get_ratio=args.get_ratio, keys=args.keys,
                        value_size=args.value_size,
                        hot_fraction=args.hot_fraction, seed=args.seed,
                        preload=not args.no_preload)
    handle = None
    host, port = args.host, args.port
    if args.spawn:
        # Self-hosted smoke mode: start a server in-process on an
        # ephemeral port, drive it, tear it down — one command, no
        # external server to manage (this is the CI smoke step).
        from repro.cache import SizeClassConfig
        from repro.policies import make_policy
        from repro.server.async_server import start_async_server
        from repro.server.server import start_server
        from repro.server.shard import ShardSet

        classes = SizeClassConfig(slab_size=parse_size(args.slab_size))
        if args.spawn == "legacy":
            from repro.cache import SlabCache
            cache = SlabCache(parse_size(args.cache_size),
                              make_policy(args.policy), classes)
            handle = start_server(cache)
            handle.stop = lambda: (handle.shutdown(), handle.server_close())
        else:
            shards = ShardSet(parse_size(args.cache_size),
                              lambda: make_policy(args.policy), classes,
                              nshards=args.shards)
            handle = start_async_server(shards)
        host, port = "127.0.0.1", handle.port
        print(f"spawned {args.spawn} server on port {port}",
              file=sys.stderr)
    elif port is None:
        print("loadgen: --port is required (or use --spawn)",
              file=sys.stderr)
        return 2
    try:
        result = run_loadgen_sync(host, port, cfg)
    finally:
        if handle is not None:
            handle.stop()
    print(result.format())
    if args.min_ops_per_sec and result.ops_per_sec < args.min_ops_per_sec:
        print(f"loadgen: {result.ops_per_sec:,.0f} ops/s is below the "
              f"--min-ops-per-sec floor {args.min_ops_per_sec:,.0f}",
              file=sys.stderr)
        return 1
    if result.errors:
        print(f"loadgen: {result.errors} protocol errors", file=sys.stderr)
        return 1
    return 0


def cmd_profile(args) -> int:
    """Replay a synthetic trace under cProfile; print the hot spots.

    This is the methodology behind the hash-once hot-path work (see
    docs/performance.md): generate a deterministic trace, replay it
    in-process, and rank functions by cumulative time so a future change
    to the GET/SET path can be profiled with one command.
    """
    import cProfile
    import pstats

    from repro.cache import SlabCache, SizeClassConfig
    from repro.policies import make_policy
    from repro.sim.service import ServiceTimeModel
    from repro.sim.simulator import Simulator

    trace = _trace_from_args(args)
    kwargs = {}
    if args.policy in ("pama", "pre-pama"):
        kwargs["tracker"] = args.tracker
    shards = getattr(args, "replay_shards", 1)
    profiler = cProfile.Profile()
    if shards > 1:
        # Profile the sharded engine serially in-process (jobs=1):
        # subprocess workers would run outside the profiler.
        from repro.sim.experiment import ExperimentSpec
        from repro.sim.sharded import run_sharded

        spec = ExperimentSpec(name="profile",
                              cache_bytes=parse_size(args.cache_size),
                              slab_size=parse_size(args.slab_size),
                              hit_time=args.hit_time,
                              window_gets=args.window,
                              policy_kwargs={args.policy: kwargs})
        profiler.enable()
        result = run_sharded(trace, spec, args.policy, shards=shards,
                             jobs=1)
        profiler.disable()
    else:
        cache = SlabCache(parse_size(args.cache_size),
                          make_policy(args.policy, **kwargs),
                          SizeClassConfig(
                              slab_size=parse_size(args.slab_size)))
        sim = Simulator(cache, ServiceTimeModel(hit_time=args.hit_time),
                        window_gets=args.window)
        profiler.enable()
        result = sim.run(trace)
        profiler.disable()
    rate = len(trace) / result.elapsed_seconds if result.elapsed_seconds else 0
    tracker = f", {args.tracker} tracker" if kwargs else ""
    sharded = f", {shards} shards" if shards > 1 else ""
    print(f"replayed {len(trace)} requests under {args.policy}{tracker}"
          f"{sharded}: hit ratio {result.hit_ratio:.4f}, "
          f"{rate:,.0f} ops/s (with profiler overhead)")
    print()
    pstats.Stats(profiler).sort_stats(args.sort).print_stats(args.top)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-kv",
        description="PAMA key-value cache reproduction toolkit")
    subs = parser.add_subparsers(dest="command", required=True)

    g = subs.add_parser("generate", help="synthesize a workload trace")
    g.add_argument("--workload", default="etc")
    g.add_argument("--requests", type=int, default=500_000)
    g.add_argument("--scale", type=float, default=0.2)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--out", required=True, help="output .npz or .csv path")
    g.set_defaults(func=cmd_generate)

    t = subs.add_parser("trace", help="compiled-trace tooling")
    tsubs = t.add_subparsers(dest="trace_command", required=True)
    tc = tsubs.add_parser(
        "compile",
        help="pack a trace into the mmap-able columnar format "
             "(streams chunk-by-chunk; never holds the whole trace)")
    tc.add_argument("--trace",
                    help="source .npz/.csv trace; otherwise synthesize")
    tc.add_argument("--workload", default="etc",
                    help="workload profile to synthesize (incl. the "
                         "Table V zoo)")
    tc.add_argument("--requests", type=int, default=1_000_000)
    tc.add_argument("--scale", type=float, default=1.0,
                    help="key-universe scale factor for synthesis")
    tc.add_argument("--seed", type=int, default=0)
    tc.add_argument("--chunk", type=int, default=1 << 20,
                    help="rows generated/written per chunk")
    tc.add_argument("--out", required=True,
                    help="output directory (e.g. etc.ctrc)")
    tc.set_defaults(func=cmd_trace_compile)
    ti = tsubs.add_parser("info", help="summarize a compiled trace")
    ti.add_argument("path", help="compiled trace directory")
    ti.set_defaults(func=cmd_trace_info)

    a = subs.add_parser("analyze", help="summarize a trace file")
    a.add_argument("trace")
    a.set_defaults(func=cmd_analyze)

    s = subs.add_parser("simulate", help="replay under one policy")
    _add_trace_args(s)
    _add_cache_args(s)
    _add_jobs_arg(s)
    s.add_argument("--policy", default="pama", choices=POLICY_NAMES)
    s.add_argument("--replay-shards", type=int, default=1,
                   help="partition the single replay over N key shards "
                        "(repro.sim.sharded; capacity splits evenly, "
                        ">1 is the server's sharding approximation)")
    s.add_argument("--chart", action="store_true", help="ASCII chart output")
    s.add_argument("--tenants",
                   help="comma-separated workload profiles (e.g. etc,app) "
                        "to interleave into one tenant-tagged trace and "
                        "replay under the tenant arbiter; ignores --policy")
    s.add_argument("--reserve", type=float, default=0.0,
                   help="(--tenants only) guaranteed slab reserve per "
                        "tenant as a fraction of total slabs")
    s.set_defaults(func=cmd_simulate)

    c = subs.add_parser("compare", help="replay under several policies")
    _add_trace_args(c)
    _add_cache_args(c)
    _add_jobs_arg(c)
    c.add_argument("--policies", default="memcached,psa,pre-pama,pama")
    c.add_argument("--chart", action="store_true")
    c.add_argument("--verbose", action="store_true")
    c.set_defaults(func=cmd_compare)

    k = subs.add_parser("cluster", help="replay against multi-node clusters")
    _add_trace_args(k)
    _add_cache_args(k)
    k.add_argument("--policy", default="pama", choices=POLICY_NAMES)
    k.add_argument("--nodes", default="1,2,4",
                   help="comma-separated node counts to compare")
    k.set_defaults(func=cmd_cluster)

    o = subs.add_parser("obs", help="observability snapshots (dump/diff)")
    osubs = o.add_subparsers(dest="obs_command", required=True)
    od = osubs.add_parser(
        "dump", help="replay a trace with obs on; dump the registry")
    _add_trace_args(od)
    _add_cache_args(od)
    od.add_argument("--policy", default="pama", choices=POLICY_NAMES)
    od.add_argument("--format", default="json",
                    choices=["json", "prom", "both"],
                    help="snapshot format ('both' needs --out as a prefix)")
    od.add_argument("--events", type=int, default=4096,
                    help="event ring-buffer capacity")
    od.add_argument("--out", help="output path (prefix with --format both); "
                                  "default prints to stdout")
    od.add_argument("--dump-dir",
                    help="also record a windowed timeline and write a "
                         "report-renderable dump directory here")
    od.set_defaults(func=cmd_obs)
    of = osubs.add_parser("diff", help="delta between two JSON snapshots")
    of.add_argument("old")
    of.add_argument("new")
    of.set_defaults(func=cmd_obs)

    x = subs.add_parser(
        "chaos",
        help="run a named fault scenario and report resilience deltas")
    x.add_argument("scenario", nargs="?",
                   help="scenario name (see --list), e.g. backend-brownout")
    x.add_argument("--list", action="store_true",
                   help="list available scenarios and exit")
    _add_trace_args(x)
    _add_cache_args(x)
    x.add_argument("--policies", default="pre-pama,pama",
                   help="comma-separated policies to compare under faults")
    x.add_argument("--nodes", type=int, default=2,
                   help="cluster node count (--cache-size is the total)")
    x.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the fault plan's RNG (identical seeds "
                        "replay identical fault trajectories)")
    x.add_argument("--no-stale", action="store_true",
                   help="disable serve-stale degradation on backend errors")
    x.add_argument("--obs-out",
                   help="also write the faulted runs' obs registry "
                        "(fault/retry/breaker counters) as JSON")
    x.add_argument("--dump-dir",
                   help="record a timeline + span traces for the first "
                        "policy's faulted run; write a dump directory "
                        "`repro-kv report` can render")
    x.add_argument("--trace-sample", type=float, default=None,
                   help="fraction of ticks span-traced (deterministic in "
                        "--fault-seed); default spreads --trace-capacity "
                        "traces across the run")
    x.add_argument("--trace-capacity", type=int, default=1024,
                   help="finished span traces retained (oldest drop off)")
    x.set_defaults(func=cmd_chaos)

    tn = subs.add_parser(
        "tenancy",
        help="multi-tenant scenarios: penalty-aware arbiter vs static "
             "partitioning")
    tn.add_argument("scenario", nargs="?",
                    help="scenario name (see --list), e.g. noisy-neighbor")
    tn.add_argument("--list", action="store_true",
                    help="list available scenarios and exit")
    tn.add_argument("--requests", type=int, default=60_000)
    tn.add_argument("--seed", type=int, default=7)
    tn.add_argument("--scale", type=float, default=0.05,
                    help="key-universe scale factor per tenant profile")
    tn.add_argument("--cache-size", default="8MiB")
    tn.add_argument("--slab-size", default="64KiB")
    tn.add_argument("--window", type=int, default=10_000,
                    help="GETs per metrics window")
    tn.add_argument("--steal-margin", type=float, default=1.0,
                    help="cross-tenant steal threshold multiplier "
                         "(>1 = more conservative stealing)")
    tn.add_argument("--dump-dir",
                    help="write the arbiter run's per-tenant timeline as "
                         "a dump directory `repro-kv report` can render")
    tn.add_argument("--check", action="store_true",
                    help="exit 1 unless the arbiter beats static "
                         "partitioning on total weighted service time")
    tn.set_defaults(func=cmd_tenancy)

    r = subs.add_parser(
        "report",
        help="render a dump directory as a self-contained HTML report")
    r.add_argument("dump_dir", help="directory written by --dump-dir")
    r.add_argument("--out", default="report.html", help="output HTML path")
    r.add_argument("--title", help="report title")
    r.set_defaults(func=cmd_report)

    pr = subs.add_parser(
        "profile",
        help="replay a synthetic trace under cProfile; print hot spots")
    _add_trace_args(pr)
    _add_cache_args(pr)
    pr.add_argument("--policy", default="pama", choices=POLICY_NAMES)
    pr.add_argument("--tracker", default="bloom",
                    choices=["exact", "bloom"],
                    help="PAMA segment tracker (pama/pre-pama only)")
    pr.add_argument("--replay-shards", type=int, default=1,
                    help="profile the key-sharded replay engine with N "
                         "shards (run serially in-process so the "
                         "profiler sees the workers)")
    pr.add_argument("--top", type=int, default=20,
                    help="how many functions to print")
    pr.add_argument("--sort", default="cumulative",
                    choices=["cumulative", "tottime", "calls"])
    pr.set_defaults(func=cmd_profile)

    v = subs.add_parser("serve", help="run the memcached-protocol server")
    v.add_argument("--host", default="127.0.0.1")
    v.add_argument("--port", type=int, default=11311)
    v.add_argument("--cache-size", default="64MiB")
    v.add_argument("--slab-size", default="1MiB")
    v.add_argument("--policy", default="pama", choices=POLICY_NAMES)
    v.add_argument("--shards", type=int, default=4,
                   help="hash-partitioned shards of the async server")
    v.add_argument("--legacy", action="store_true",
                   help="run the threaded reference server instead of "
                        "the async sharded front end")
    v.set_defaults(func=cmd_serve)

    lg = subs.add_parser(
        "loadgen",
        help="memtier-style load generator for the protocol servers")
    lg.add_argument("--host", default="127.0.0.1")
    lg.add_argument("--port", type=int, default=None,
                    help="target port (omit with --spawn)")
    lg.add_argument("--spawn", choices=["async", "legacy"],
                    help="self-host a server in-process on an ephemeral "
                         "port for the duration of the run")
    lg.add_argument("--connections", type=int, default=64)
    lg.add_argument("--pipeline", type=int, default=8,
                    help="requests kept on the wire per connection")
    lg.add_argument("--ops", type=int, default=50_000)
    lg.add_argument("--get-ratio", type=float, default=0.9,
                    help="fraction of ops that are GETs")
    lg.add_argument("--keys", type=int, default=10_000,
                    help="key-universe size")
    lg.add_argument("--value-size", type=int, default=64)
    lg.add_argument("--hot-fraction", type=float, default=0.0,
                    help="fraction of ops aimed at the hot 10%% of keys")
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument("--no-preload", action="store_true",
                    help="skip SETting the key universe before measuring")
    lg.add_argument("--min-ops-per-sec", type=float, default=0.0,
                    help="exit 1 below this throughput floor")
    lg.add_argument("--cache-size", default="64MiB",
                    help="(--spawn only) server cache memory")
    lg.add_argument("--slab-size", default="1MiB",
                    help="(--spawn only) server slab size")
    lg.add_argument("--policy", default="pama", choices=POLICY_NAMES,
                    help="(--spawn only) server allocation policy")
    lg.add_argument("--shards", type=int, default=4,
                    help="(--spawn async only) shard count")
    lg.set_defaults(func=cmd_loadgen)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
