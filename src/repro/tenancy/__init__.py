"""Multi-tenant arbitration: tenant-tagged traces, reserves, stealing.

One cache, many applications: :func:`mix_tenants` interleaves
per-tenant synthetic workloads into a tenant-tagged trace, and
:class:`TenantArbiter` layers Memshare-style guaranteed reserves plus
an elastic pool over per-tenant PAMA, deciding cross-tenant slab
stealing by comparing marginal penalty mass per slab.  See
``docs/tenancy.md``.
"""

from repro.tenancy.arbiter import (TenantArbiter, TenantConfig,
                                   static_partition)
from repro.tenancy.mix import (TENANT_KEY_STRIDE, TenantSpec, mix_tenants,
                               tenant_configs)
from repro.tenancy.scenarios import (SCENARIOS, ScenarioResult,
                                     noisy_neighbor_specs, run_scenario)

__all__ = [
    "TenantArbiter", "TenantConfig", "static_partition",
    "TenantSpec", "mix_tenants", "tenant_configs", "TENANT_KEY_STRIDE",
    "SCENARIOS", "ScenarioResult", "noisy_neighbor_specs", "run_scenario",
]
