"""Tenant-tagged trace synthesis: interleave per-tenant workloads.

``mix_tenants`` builds one :class:`~repro.traces.record.Trace` whose
rows carry a ``tenants`` column: each tenant is an independent
:class:`~repro.traces.synthetic.SyntheticTraceGenerator` over its own
profile (ETC/APP/USR/SYS/VAR or custom) with a per-tenant penalty
scale, and the global stream interleaves them by weighted draw inside
arrival/departure phases — tenants can join late (a noisy neighbor
bursting in) or leave early.

Determinism: everything derives from the mix ``seed`` — the phase
interleaving, each tenant's sub-generator, and the global arrival
process — so a (specs, n, seed) triple always produces the identical
trace.

Key namespacing: tenant ``i``'s keys are shifted by
``i * TENANT_KEY_STRIDE`` so tenants never collide in the cache index
(and the arbiter's per-tenant ghost lists stay disjoint).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traces.penalty import PenaltyModel
from repro.traces.record import Trace
from repro.traces.synthetic import SyntheticTraceGenerator
from repro.traces.workloads import WorkloadProfile

#: key-id stride between tenants; far above any single generator's key
#: universe including its cold-key range (COLD_KEY_BASE + seed << 32
#: with the sub-seed capped below 2**16 stays under 2**50).
TENANT_KEY_STRIDE = 1 << 50

#: sub-generator seeds are folded into this range (see stride note).
_SUB_SEED_MOD = 1 << 16


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's slice of a mixed trace.

    Attributes:
        name: tenant label (reports, scenario output).
        profile: the tenant's workload shape.
        weight: relative request share while the tenant is active.
        penalty_scale: multiplier on the profile's miss penalties (how
            expensive this tenant's misses are relative to the others).
        arrival: fraction of the trace (0..1) at which the tenant's
            requests start appearing.
        departure: fraction at which they stop.
        sla_weight: weight in the total weighted service-time
            objective (threaded into :class:`TenantConfig`).
        reserve_fraction: fraction of the cache's slabs to guarantee
            this tenant when building arbiter configs.
    """

    name: str
    profile: WorkloadProfile
    weight: float = 1.0
    penalty_scale: float = 1.0
    arrival: float = 0.0
    departure: float = 1.0
    sla_weight: float = 1.0
    reserve_fraction: float = 0.0
    penalty_model: PenaltyModel | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name}: weight must be positive")
        if self.penalty_scale <= 0:
            raise ValueError(
                f"tenant {self.name}: penalty_scale must be positive")
        if not 0.0 <= self.arrival < self.departure <= 1.0:
            raise ValueError(
                f"tenant {self.name}: need 0 <= arrival < departure <= 1, "
                f"got [{self.arrival}, {self.departure}]")
        if self.sla_weight <= 0:
            raise ValueError(
                f"tenant {self.name}: sla_weight must be positive")
        if not 0.0 <= self.reserve_fraction <= 1.0:
            raise ValueError(
                f"tenant {self.name}: reserve_fraction must be in [0, 1]")


def _phases(specs: list[TenantSpec], n: int) -> list[tuple[int, int, list[int]]]:
    """Split rows into (start_row, end_row, active tenant idxs) phases."""
    edges = {0.0, 1.0}
    for s in specs:
        edges.add(s.arrival)
        edges.add(s.departure)
    bounds = sorted(edges)
    phases = []
    for lo, hi in zip(bounds, bounds[1:]):
        start, stop = round(lo * n), round(hi * n)
        if start >= stop:
            continue
        active = [i for i, s in enumerate(specs)
                  if s.arrival <= lo and s.departure >= hi]
        if not active:
            raise ValueError(
                f"no tenant active in trace fraction [{lo}, {hi}); "
                f"adjust arrival/departure schedules to cover the trace")
        phases.append((start, stop, active))
    return phases


def mix_tenants(specs: list[TenantSpec] | tuple[TenantSpec, ...], n: int,
                seed: int = 0, mean_interarrival: float = 1e-4) -> Trace:
    """Interleave tenant workloads into one tenant-tagged trace."""
    specs = list(specs)
    if not specs:
        raise ValueError("need at least one tenant spec")
    if n <= 0:
        raise ValueError("n must be positive")
    if len(specs) >= 2 ** 16:
        raise ValueError("at most 65535 tenants (uint16 tenant column)")

    # 1. assign each row a tenant, phase by phase (weighted draw among
    #    the tenants active in that phase).
    tenant_col = np.empty(n, dtype=np.uint16)
    for start, stop, active in _phases(specs, n):
        rng = np.random.default_rng(np.random.SeedSequence([seed, 777, start]))
        weights = np.array([specs[i].weight for i in active], dtype=np.float64)
        draws = rng.choice(len(active), size=stop - start,
                           p=weights / weights.sum())
        tenant_col[start:stop] = np.array(active, dtype=np.uint16)[draws]

    # 2. per tenant: generate its sub-trace and scatter the columns
    #    into the global arrays at that tenant's row positions.
    ops = np.empty(n, dtype=np.uint8)
    keys = np.empty(n, dtype=np.int64)
    key_sizes = np.empty(n, dtype=np.int32)
    value_sizes = np.empty(n, dtype=np.int32)
    penalties = np.empty(n, dtype=np.float64)
    for idx, spec in enumerate(specs):
        rows = np.flatnonzero(tenant_col == idx)
        if not len(rows):
            continue
        sub_seed = (seed * 1_000_003 + idx) % _SUB_SEED_MOD
        gen = SyntheticTraceGenerator(spec.profile, seed=sub_seed,
                                      penalty_model=spec.penalty_model,
                                      mean_interarrival=mean_interarrival)
        sub = gen.generate(len(rows))
        ops[rows] = sub.ops
        keys[rows] = sub.keys + idx * TENANT_KEY_STRIDE
        key_sizes[rows] = sub.key_sizes
        value_sizes[rows] = sub.value_sizes
        penalties[rows] = sub.penalties * spec.penalty_scale

    # 3. one global arrival process (tenant interleaving is in request
    #    order; wall-clock gaps are a property of the merged stream).
    rng = np.random.default_rng(np.random.SeedSequence([seed, 555]))
    timestamps = np.cumsum(rng.exponential(mean_interarrival, n))

    return Trace(ops, keys, key_sizes, value_sizes, penalties, timestamps,
                 meta={"workload": "tenant-mix", "seed": seed, "n": n,
                       "tenants": [s.name for s in specs]},
                 tenants=tenant_col)


def tenant_configs(specs: list[TenantSpec] | tuple[TenantSpec, ...],
                   total_slabs: int) -> list:
    """Build :class:`TenantConfig` contracts from specs for a cache size."""
    from repro.tenancy.arbiter import TenantConfig

    return [TenantConfig(name=s.name,
                         reserve_slabs=int(s.reserve_fraction * total_slabs),
                         sla_weight=s.sla_weight)
            for s in specs]
