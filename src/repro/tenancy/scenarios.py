"""Multi-tenant scenario suite: arbiter vs static partitioning.

Each scenario builds a tenant-tagged trace (``mix_tenants``), runs it
twice against the same cache geometry — once under the penalty-aware
:class:`~repro.tenancy.arbiter.TenantArbiter` (reserves + elastic pool
+ stealing) and once under the static-partition baseline (hard equal
boxes, no stealing) — and compares total weighted service time, the
multi-tenant objective.

The headline scenario is ``noisy-neighbor``: a high-SLA victim tenant
shares the cache with a bursty, cheap-to-miss neighbor that floods in
mid-trace.  Static partitioning wastes the neighbor's box before it
arrives and starves the victim after; the arbiter lets the victim's
penalty mass defend (and reclaim) slabs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.cache import SlabCache
from repro.cache.sizeclasses import SizeClassConfig
from repro.core.config import PamaConfig
from repro.sim.simulator import SimulationResult, simulate
from repro.tenancy.arbiter import TenantArbiter, static_partition
from repro.tenancy.mix import TenantSpec, mix_tenants, tenant_configs
from repro.traces.workloads import APP, ETC, SYS, USR, VAR


def noisy_neighbor_specs(scale: float = 0.05) -> list[TenantSpec]:
    """A high-SLA victim plus a mid-trace bursty neighbor.

    The victim's misses are 10x as expensive and weigh 5x in the SLA;
    the neighbor bursts in for trace fractions 0.35-0.75 at 3x the
    request rate with a memory-hungry working set (APP's large values)
    but cheap misses.  Static partitioning wastes the neighbor's box
    before it arrives and overfeeds it during the burst; the arbiter
    lets the victim expand into the idle memory, concedes only
    penalty-justified slabs during the burst (most noisy steal attempts
    are declined), and reclaims them afterwards.
    """
    return [
        TenantSpec(name="victim", profile=ETC.scaled(scale),
                   weight=1.0, penalty_scale=10.0,
                   sla_weight=5.0, reserve_fraction=0.25),
        TenantSpec(name="noisy", profile=APP.scaled(scale),
                   weight=3.0, penalty_scale=0.1,
                   arrival=0.35, departure=0.75,
                   sla_weight=1.0, reserve_fraction=0.05),
    ]


def arrival_departure_specs(scale: float = 0.05) -> list[TenantSpec]:
    """Four tenants joining and leaving on staggered schedules."""
    return [
        TenantSpec(name="etc", profile=ETC.scaled(scale), weight=1.0,
                   penalty_scale=2.0, sla_weight=2.0, reserve_fraction=0.15),
        TenantSpec(name="usr", profile=USR.scaled(scale), weight=1.5,
                   arrival=0.25, reserve_fraction=0.1),
        TenantSpec(name="sys", profile=SYS.scaled(scale), weight=1.0,
                   departure=0.6, penalty_scale=0.5),
        TenantSpec(name="var", profile=VAR.scaled(scale), weight=0.75,
                   arrival=0.5, penalty_scale=4.0, sla_weight=3.0,
                   reserve_fraction=0.1),
    ]


def mixed_profiles_specs(scale: float = 0.05) -> list[TenantSpec]:
    """Three always-on tenants with contrasting penalty economics."""
    return [
        TenantSpec(name="app", profile=APP.scaled(scale), weight=1.0,
                   penalty_scale=5.0, sla_weight=3.0, reserve_fraction=0.2),
        TenantSpec(name="etc", profile=ETC.scaled(scale), weight=2.0,
                   penalty_scale=1.0, reserve_fraction=0.2),
        TenantSpec(name="sys", profile=SYS.scaled(scale), weight=1.0,
                   penalty_scale=0.2, reserve_fraction=0.1),
    ]


#: scenario name -> (spec builder, one-line description).
SCENARIOS = {
    "noisy-neighbor": (noisy_neighbor_specs,
                       "high-SLA victim vs a mid-trace bursty neighbor"),
    "arrival-departure": (arrival_departure_specs,
                          "four tenants on staggered join/leave schedules"),
    "mixed-profiles": (mixed_profiles_specs,
                       "three steady tenants with contrasting penalties"),
}


@dataclass
class ScenarioResult:
    """Both runs of one scenario plus the weighted-service comparison."""

    name: str
    seed: int
    requests: int
    tenants: list[str]
    arbiter: SimulationResult
    static: SimulationResult
    steal_counts: dict[str, int] = field(default_factory=dict)

    @property
    def arbiter_weighted(self) -> float:
        return self.arbiter.total_weighted_service_time()

    @property
    def static_weighted(self) -> float:
        return self.static.total_weighted_service_time()

    @property
    def improvement(self) -> float:
        """Fractional weighted-service-time reduction vs the baseline."""
        base = self.static_weighted
        return (base - self.arbiter_weighted) / base if base else 0.0

    def report(self) -> str:
        lines = [
            f"scenario {self.name} (seed={self.seed}, "
            f"requests={self.requests})",
            f"  total weighted service time: "
            f"arbiter={self.arbiter_weighted:.3f}s  "
            f"static={self.static_weighted:.3f}s  "
            f"improvement={self.improvement * 100:.1f}%",
            f"  steals: approved={self.steal_counts.get('approved', 0)} "
            f"forced={self.steal_counts.get('forced', 0)} "
            f"declined={self.steal_counts.get('declined', 0)}",
            "  per-tenant (arbiter vs static):",
        ]
        for t, m in sorted(self.arbiter.tenant_metrics.items()):
            s = self.static.tenant_metrics.get(t, {})
            lines.append(
                f"    {m['name']:>8}: hit_ratio {m['hit_ratio']:.3f} vs "
                f"{s.get('hit_ratio', 0.0):.3f}  "
                f"avg_service {m['avg_service_time'] * 1e3:.2f}ms vs "
                f"{s.get('avg_service_time', 0.0) * 1e3:.2f}ms  "
                f"slabs {m['slabs']} vs {s.get('slabs', 0)}")
        return "\n".join(lines)


def run_scenario(name: str, requests: int = 60_000, seed: int = 7,
                 cache_bytes: int = 8 << 20, slab_bytes: int = 64 << 10,
                 window_gets: int = 10_000, value_window: int = 10_000,
                 scale: float = 0.05, steal_margin: float = 1.0,
                 dump_dir: str | None = None) -> ScenarioResult:
    """Run one named scenario: arbiter and static-partition baseline.

    ``dump_dir`` streams the arbiter run's timeline (with per-tenant
    window cells) as ``timeline.jsonl`` plus a ``meta.json``, the
    dump-directory layout ``repro-kv report`` renders.
    """
    try:
        build_specs, _desc = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; have {sorted(SCENARIOS)}") from None
    specs = build_specs(scale)
    trace = mix_tenants(specs, requests, seed=seed)
    config = PamaConfig(value_window=value_window)
    total_slabs = cache_bytes // slab_bytes

    def build_cache(policy) -> SlabCache:
        return SlabCache(cache_bytes, policy,
                         SizeClassConfig(slab_size=slab_bytes))

    timeline = None
    if dump_dir is not None:
        import json
        import os

        from repro.obs.timeline import JsonlSink, TimelineRecorder

        os.makedirs(dump_dir, exist_ok=True)
        timeline = TimelineRecorder(
            stride=window_gets,
            sink=JsonlSink(os.path.join(dump_dir, "timeline.jsonl")))
        with open(os.path.join(dump_dir, "meta.json"), "w") as fh:
            json.dump({"scenario": name, "seed": seed,
                       "requests": requests, "policy": "tenant-arbiter",
                       "tenants": [s.name for s in specs]}, fh, indent=2)

    arbiter = TenantArbiter(tenant_configs(specs, total_slabs),
                            config=config, steal_margin=steal_margin)
    arbiter_result = simulate(trace, build_cache(arbiter),
                              window_gets=window_gets, timeline=timeline)
    steal_counts = arbiter.steal_counts()

    baseline = static_partition(tenant_configs(specs, total_slabs),
                                total_slabs, config=config)
    static_result = simulate(trace, build_cache(baseline),
                             window_gets=window_gets)

    return ScenarioResult(name=name, seed=seed, requests=requests,
                          tenants=[s.name for s in specs],
                          arbiter=arbiter_result, static=static_result,
                          steal_counts=steal_counts)
