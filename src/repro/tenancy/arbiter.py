"""TenantArbiter: penalty-aware memory arbitration between tenants.

Production caches serve many applications from one memory pool.  The
arbiter layers Memshare-style tenancy (per-tenant guaranteed slab
reserves plus one elastic pool) on top of PAMA: each tenant runs its
own :class:`~repro.core.pama.PamaPolicy` over a private strip of
penalty bins, and cross-tenant slab *stealing* is decided exactly the
way PAMA decides intra-workload migration — by comparing the
requester's Eq.1 incoming value (ghost-hit mass the extra slab would
capture) against the donor slab's Eq.2 outgoing value (penalty mass
the candidate slab still serves).

Queue encoding: the substrate keys queues by ``(class_idx, bin_idx)``;
the arbiter widens the bin axis to ``tenant * num_bins + inner_bin``,
so every SlabCache mechanism (slab ownership, migration, LRU, stats)
works unchanged and a cross-tenant steal is just a slab migration
between queues whose ``bin_idx // num_bins`` differ.

Reserve semantics (Memshare, arXiv 1610.08129):

* a tenant may always grow while below its ``reserve_slabs``;
* free-pool grabs beyond the reserve must leave enough free slabs to
  cover every *other* tenant's still-unfilled reserve;
* a steal may only take from a donor tenant that stays at or above its
  reserve afterwards — so once a reserve is filled it never dips.

With a single tenant and no reserve the arbiter reduces to plain PAMA
decision-for-decision (the differential tests pin this ``==``-exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.config import PamaConfig
from repro.core.pama import PamaPolicy
from repro.policies.base import AllocationPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.cache import SlabCache
    from repro.cache.item import Item
    from repro.cache.queue import Queue


@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant arbitration contract.

    Attributes:
        name: label used in reports and scenario output.
        reserve_slabs: slabs guaranteed to this tenant; below it the
            tenant grows freely and no steal may push it back under.
        cap_slabs: hard ceiling on owned slabs (None = elastic).  Equal
            reserves == caps turns the arbiter into static partitioning
            (the baseline the scenarios compare against).
        sla_weight: weight of this tenant's service time in the total
            weighted service-time objective.
    """

    name: str
    reserve_slabs: int = 0
    cap_slabs: int | None = None
    sla_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.reserve_slabs < 0:
            raise ValueError("reserve_slabs must be >= 0")
        if self.cap_slabs is not None and self.cap_slabs < self.reserve_slabs:
            raise ValueError("cap_slabs must be >= reserve_slabs")
        if self.sla_weight <= 0:
            raise ValueError("sla_weight must be positive")


class _TenantView:
    """What a per-tenant inner PamaPolicy sees as "its cache".

    Forwards the attributes the policy's bookkeeping reads (the global
    access tick, events, timeline) and filters ``iter_queues`` to the
    tenant's own strip — the inner never makes allocation decisions
    (the arbiter replicates that logic with cross-tenant eligibility),
    but diagnostics like ``candidate_values`` stay tenant-scoped.
    """

    __slots__ = ("_cache", "tenant", "_nbins")

    def __init__(self, cache: SlabCache, tenant: int, nbins: int) -> None:
        self._cache = cache
        self.tenant = tenant
        self._nbins = nbins

    @property
    def accesses(self) -> int:
        return self._cache.accesses

    @property
    def events(self):
        return self._cache.events

    @property
    def timeline(self):
        return self._cache.timeline

    def iter_queues(self):
        t, nbins = self.tenant, self._nbins
        return (q for q in self._cache.iter_queues()
                if q.bin_idx // nbins == t)


class TenantArbiter(AllocationPolicy):
    """Per-tenant PAMA with reserves, an elastic pool, and stealing.

    Args:
        tenants: tenant contracts (or an int for that many default
            contracts named ``t0..tN-1``).
        config: shared :class:`PamaConfig` for every inner policy.
        allow_steal: False freezes cross-tenant movement entirely —
            combined with reserves == caps this is the static-partition
            baseline.
        steal_margin: multiplier (> 0) on the donor's outgoing value
            that a cross-tenant steal must beat; > 1 demands a larger
            penalty-mass advantage before taking another tenant's slab
            (intra-tenant migration always compares at margin 1, which
            keeps the single-tenant case exactly PAMA).
    """

    name = "tenant-arbiter"

    #: duck-typed marker the simulator checks (no sim -> tenancy import)
    #: to select the tenant-tagged replay loop.
    wants_tenants = True

    #: the fallback donor ignores reserves; an empty queue with no
    #: eligible donor must fail the SET instead of silently stealing.
    allow_fallback_donor = False

    def __init__(self, tenants: int | Sequence[TenantConfig],
                 config: PamaConfig | None = None,
                 allow_steal: bool = True,
                 steal_margin: float = 1.0) -> None:
        super().__init__()
        if isinstance(tenants, int):
            if tenants < 1:
                raise ValueError("need at least one tenant")
            tenants = [TenantConfig(name=f"t{i}") for i in range(tenants)]
        self.tenants: tuple[TenantConfig, ...] = tuple(tenants)
        if not self.tenants:
            raise ValueError("need at least one tenant")
        if steal_margin <= 0:
            raise ValueError("steal_margin must be positive")
        self.config = config or PamaConfig()
        self.allow_steal = allow_steal
        self.steal_margin = steal_margin
        self._nbins = self.config.num_bins
        self._inners: list[PamaPolicy] = [PamaPolicy(self.config)
                                          for _ in self.tenants]
        self.wants_key_hashes = self.config.tracker == "bloom"
        #: tenant id of the request being served; the tenant-tagged
        #: replay loop sets this before every operation.
        self.current_tenant = 0
        # steal accounting (cross-tenant decisions only; intra-tenant
        # migrations count on the usual cache.stats.migrations).
        self.steals_approved = 0
        self.steals_declined = 0
        self.steals_forced = 0
        # cached per-tenant slab ownership; recomputed when the pool's
        # (free, migrations) token moves — the only ways ownership can
        # change are a free-pool acquire or a slab transfer.
        self._owned: list[int] = [0] * len(self.tenants)
        self._slabs_token: tuple[int, int] | None = None
        #: latches True per tenant once its reserve is first filled;
        #: from then on the eligibility filter keeps it filled (the
        #: property tests assert this invariant).
        self._reserve_met = [cfg.reserve_slabs == 0 for cfg in self.tenants]

    # -- lifecycle -----------------------------------------------------
    @property
    def num_tenants(self) -> int:
        return len(self.tenants)

    def attach(self, cache: SlabCache) -> None:
        super().attach(cache)
        for t, inner in enumerate(self._inners):
            inner.attach(_TenantView(cache, t, self._nbins))

    def inner_policy(self, tenant: int) -> PamaPolicy:
        """The per-tenant PAMA instance (diagnostics and tests)."""
        return self._inners[tenant]

    def tenant_of(self, queue: Queue) -> int:
        return queue.bin_idx // self._nbins

    # -- slab ownership ------------------------------------------------
    def tenant_slabs(self) -> list[int]:
        """Slabs owned per tenant (cached; recomputed on pool change)."""
        cache = self.cache
        token = (cache.pool.free, cache.stats.migrations)
        if token != self._slabs_token:
            owned = [0] * len(self.tenants)
            nbins = self._nbins
            for q in cache.queues.values():
                if q.slabs:
                    owned[q.bin_idx // nbins] += q.slabs
            self._owned = owned
            self._slabs_token = token
            met = self._reserve_met
            for t, cfg in enumerate(self.tenants):
                if not met[t] and owned[t] >= cfg.reserve_slabs:
                    met[t] = True
        return self._owned

    def _unfilled_reserve_elsewhere(self, tenant: int,
                                    owned: list[int]) -> int:
        return sum(max(0, cfg.reserve_slabs - owned[t])
                   for t, cfg in enumerate(self.tenants) if t != tenant)

    # -- binning -------------------------------------------------------
    def bin_for(self, penalty: float) -> int:
        t = self.current_tenant
        return t * self._nbins + self._inners[t].bin_for(penalty)

    def bin_edges(self) -> tuple[float, ...] | None:
        # The bin depends on ``current_tenant``, re-pointed before every
        # request — there is no static edge table to precompute from.
        return None

    # -- event dispatch ------------------------------------------------
    def on_queue_created(self, queue: Queue) -> None:
        self._inners[queue.bin_idx // self._nbins].on_queue_created(queue)

    def on_hit(self, queue: Queue, item: Item,
               h1: int = 0, h2: int = 0) -> None:
        self._inners[queue.bin_idx // self._nbins].on_hit(queue, item, h1, h2)

    def on_miss(self, key: object, class_idx: int, penalty: float,
                h1: int = 0, h2: int = 0) -> None:
        # Keys are namespaced per tenant (mix_tenants strides them), so
        # only the requesting tenant's ghosts can know this key.
        self._inners[self.current_tenant].on_miss(key, class_idx, penalty,
                                                  h1, h2)

    def on_insert(self, queue: Queue, item: Item) -> None:
        self._inners[queue.bin_idx // self._nbins].on_insert(queue, item)

    def on_evict(self, queue: Queue, item: Item) -> None:
        self._inners[queue.bin_idx // self._nbins].on_evict(queue, item)

    def on_remove(self, queue: Queue, item: Item) -> None:
        self._inners[queue.bin_idx // self._nbins].on_remove(queue, item)

    # -- allocation decisions -------------------------------------------
    def wants_free_slab(self, queue: Queue) -> bool:
        tenant = queue.bin_idx // self._nbins
        cfg = self.tenants[tenant]
        owned = self.tenant_slabs()
        if cfg.cap_slabs is not None and owned[tenant] >= cfg.cap_slabs:
            return False
        if owned[tenant] < cfg.reserve_slabs:
            return True  # claiming its own guarantee
        # Elastic growth must leave the free pool able to cover every
        # other tenant's still-unfilled reserve.
        spare = self.cache.pool.free - 1
        return spare >= self._unfilled_reserve_elsewhere(tenant, owned)

    def resolve_pressure(self, queue: Queue, must_migrate: bool) -> Queue | None:
        for inner in self._inners:
            inner._maybe_rollover()
        tenant = queue.bin_idx // self._nbins
        cfg = self.tenants[tenant]
        state = queue.policy_data
        incoming = state.values.incoming_value()
        owned = self.tenant_slabs()
        nbins = self._nbins
        allow_cross = (self.allow_steal
                       and (cfg.cap_slabs is None
                            or owned[tenant] < cfg.cap_slabs))
        # Cross-tenant values compare in *objective* units: a slab's
        # marginal contribution to total weighted service time is
        # sla_weight x penalty mass, so a donor's outgoing value scales
        # by its SLA weight relative to the requester's (and by the
        # steal margin).  Intra-tenant comparisons stay raw — with one
        # tenant every scale factor is exactly 1.0 and the decision
        # sequence is bit-identical to plain PamaPolicy.
        sla_r = cfg.sla_weight

        donor: Queue | None = None
        donor_tenant = tenant
        min_out = float("inf")
        for q in self.cache.iter_queues():
            if not q.can_donate():
                continue
            d = q.bin_idx // nbins
            out = q.policy_data.values.outgoing_value()
            if d != tenant:
                # A steal must not break the donor tenant's guarantee.
                if not allow_cross:
                    continue
                if owned[d] - 1 < self.tenants[d].reserve_slabs:
                    continue
                out *= (self.tenants[d].sla_weight / sla_r) \
                    * self.steal_margin
            if out < min_out:
                donor, donor_tenant, min_out = q, d, out
        if donor is None:
            return None  # nothing eligible; the SET fails if slabless

        # From here the decision sequence mirrors PamaPolicy exactly
        # (Scenario 2 / Scenario 1 / migrate); the steal margin and SLA
        # scaling are already folded into min_out for cross moves.
        cross = donor_tenant != tenant
        if donor is queue:
            self._inners[tenant].migrations_declined += 1
            self._record_decision(queue, donor, incoming, min_out, "self")
            return queue
        if incoming <= min_out and not must_migrate:
            self._inners[tenant].migrations_declined += 1
            if cross:
                self.steals_declined += 1
            self._record_decision(queue, donor, incoming, min_out,
                                  "steal-declined" if cross else "declined")
            return None
        if incoming <= min_out:
            self._inners[tenant].migrations_forced += 1
            if cross:
                self.steals_forced += 1
            self._record_decision(queue, donor, incoming, min_out,
                                  "steal-forced" if cross else "forced")
        else:
            self._inners[tenant].migrations_approved += 1
            if cross:
                self.steals_approved += 1
            self._record_decision(queue, donor, incoming, min_out,
                                  "steal-approved" if cross else "approved")
        return donor

    def _record_decision(self, queue: Queue, donor: Queue, incoming: float,
                         min_out: float, outcome: str) -> None:
        timeline = self.cache.timeline
        if timeline is not None:
            timeline.note_decision(incoming, min_out, outcome)
        events = self.cache.events
        if events is not None:
            events.record("pama_decision", self.cache.accesses,
                          requester=queue.qid, donor=donor.qid,
                          incoming=incoming, outgoing=min_out,
                          outcome=outcome)

    # -- aggregate counters ---------------------------------------------
    @property
    def migrations_approved(self) -> int:
        return sum(p.migrations_approved for p in self._inners)

    @property
    def migrations_declined(self) -> int:
        return sum(p.migrations_declined for p in self._inners)

    @property
    def migrations_forced(self) -> int:
        return sum(p.migrations_forced for p in self._inners)

    def steal_counts(self) -> dict[str, int]:
        return {"approved": self.steals_approved,
                "declined": self.steals_declined,
                "forced": self.steals_forced}

    # -- integrity -----------------------------------------------------
    def check_invariants(self) -> None:
        """Audit tenancy invariants (driven by the property tests).

        * slab conservation: per-tenant ownership sums to the pool's
          allocated slab count;
        * reserve floor: once a tenant's reserve has been filled, its
          ownership never dips below the guarantee again;
        * caps: no tenant exceeds its ``cap_slabs``.
        """
        cache = self.cache
        owned = [0] * len(self.tenants)
        nbins = self._nbins
        for q in cache.queues.values():
            owned[q.bin_idx // nbins] += q.slabs
        assert sum(owned) + cache.pool.free == cache.pool.total, (
            f"slabs not conserved: {owned} owned + {cache.pool.free} free "
            f"!= {cache.pool.total} total")
        for t, cfg in enumerate(self.tenants):
            if self._reserve_met[t]:
                assert owned[t] >= cfg.reserve_slabs, (
                    f"tenant {cfg.name} dipped below its reserve: "
                    f"{owned[t]} < {cfg.reserve_slabs}")
            if cfg.cap_slabs is not None:
                assert owned[t] <= cfg.cap_slabs, (
                    f"tenant {cfg.name} exceeds its cap: "
                    f"{owned[t]} > {cfg.cap_slabs}")
        for inner in self._inners:
            inner.check_ghost_sync()


def static_partition(tenants: Sequence[TenantConfig], total_slabs: int,
                     config: PamaConfig | None = None) -> TenantArbiter:
    """The static-partition baseline: equal hard shares, no stealing.

    Splits ``total_slabs`` equally (the classic one-memcached-box-per
    -app deployment Memshare improves on), makes each share both the
    reserve and the cap, and disables stealing — every tenant runs PAMA
    inside a fixed memory box.
    """
    tenants = list(tenants)
    if not tenants:
        raise ValueError("need at least one tenant")
    share, rem = divmod(total_slabs, len(tenants))
    shares = [share + (1 if i < rem else 0) for i in range(len(tenants))]
    boxed = [TenantConfig(name=cfg.name, reserve_slabs=s,
                          cap_slabs=s, sla_weight=cfg.sla_weight)
             for cfg, s in zip(tenants, shares)]
    return TenantArbiter(boxed, config=config, allow_steal=False)
