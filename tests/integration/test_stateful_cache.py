"""Hypothesis stateful testing: the cache as a black-box state machine.

Models the cache as a dict plus LRU-ish capacity semantics and drives
random op sequences through every policy family, checking after each
step that (a) structural invariants hold and (b) the cache agrees with
the model on membership of recently-touched keys (eviction order is
policy-specific, but *presence after a SET* and *absence after DELETE*
are universal).
"""

from hypothesis import settings
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, rule)
from hypothesis import strategies as st

from repro.cache import SlabCache, SizeClassConfig
from repro.policies import make_policy

POLICY_CHOICES = ["memcached", "psa", "twemcache", "lama", "gds",
                  "pama", "pre-pama", "pama-adaptive"]

SIZES = [40, 200, 900, 3000]
PENALTIES = [0.0005, 0.005, 0.05, 0.5, 2.0]


class CacheMachine(RuleBasedStateMachine):
    @initialize(policy=st.sampled_from(POLICY_CHOICES),
                slabs=st.integers(2, 8))
    def setup(self, policy, slabs):
        classes = SizeClassConfig(slab_size=4096, base_size=64)
        kwargs = {"value_window": 500} if "pama" in policy else {}
        self.cache = SlabCache(slabs * 4096, make_policy(policy, **kwargs),
                               classes)
        self.model: dict[int, tuple[int, float]] = {}
        self.last_set: int | None = None

    @rule(key=st.integers(0, 60), size=st.sampled_from(SIZES),
          pen=st.sampled_from(PENALTIES))
    def do_set(self, key, size, pen):
        ok = self.cache.set(key, 8, size, pen)
        if ok:
            self.model[key] = (size, pen)
            self.last_set = key
        else:
            self.model.pop(key, None)
            self.last_set = None

    @rule(key=st.integers(0, 60))
    def do_get(self, key):
        entry = self.model.get(key)
        miss_info = (8, entry[0], entry[1]) if entry else (8, 100, 0.1)
        item = self.cache.get(key, miss_info)
        if item is not None:
            # a hit must return the stored attributes
            assert key in self.model
            size, pen = self.model[key]
            assert item.value_size == size
            assert item.penalty == pen
        else:
            # evictions may shrink the model lazily
            self.model.pop(key, None)

    @rule(key=st.integers(0, 60))
    def do_delete(self, key):
        self.cache.delete(key)
        self.model.pop(key, None)
        if self.last_set == key:
            self.last_set = None

    @invariant()
    def structural_integrity(self):
        if not hasattr(self, "cache"):
            return
        self.cache.check_invariants()

    @invariant()
    def cache_is_subset_of_model(self):
        if not hasattr(self, "cache"):
            return
        for key in self.cache.index:
            assert key in self.model, f"cache holds unknown key {key}"

    @invariant()
    def most_recent_set_is_present(self):
        if not hasattr(self, "cache"):
            return
        # the most recently stored key is the MRU of its queue; no
        # policy may have evicted it before any intervening operation
        if self.last_set is not None:
            assert self.last_set in self.cache


TestCacheStateMachine = CacheMachine.TestCase
TestCacheStateMachine.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None)
