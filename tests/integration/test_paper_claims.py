"""Integration tests: the paper's qualitative claims at small scale.

These replay scaled-down ETC/APP workloads through the full stack
(trace generator → cache substrate → policies → simulator) and assert
the *shape* of the paper's results — who wins, in which metric.  The
benchmark harness reproduces the full figures; these tests are the
fast go/no-go guard.
"""

import pytest

from repro._util import MIB
from repro.sim import ExperimentSpec, run_comparison
from repro.traces import APP, ETC, generate

POLICIES = ["memcached", "psa", "pre-pama", "pama"]


@pytest.fixture(scope="module")
def etc_comparison():
    trace = generate(ETC.scaled(0.15), 250_000, seed=101)
    spec = ExperimentSpec(
        name="integration-etc", cache_bytes=24 * MIB, slab_size=64 << 10,
        window_gets=50_000,
        policy_kwargs={"pama": {"value_window": 50_000},
                       "pre-pama": {"value_window": 50_000},
                       "psa": {"m_misses": 500}})
    return run_comparison(trace, spec, POLICIES)


class TestEtcShape:
    def test_reallocation_beats_static_on_hit_ratio(self, etc_comparison):
        """Fig 5: original Memcached has the lowest hit ratio."""
        results = etc_comparison.results
        static = results["memcached"].hit_ratio
        for name in ("psa", "pre-pama", "pama"):
            assert results[name].hit_ratio > static - 0.01, name

    def test_prepama_tops_hit_ratio(self, etc_comparison):
        """Fig 5: pre-PAMA achieves the highest hit ratios."""
        results = etc_comparison.results
        best = max(r.hit_ratio for r in results.values())
        assert results["pre-pama"].hit_ratio >= best - 0.015

    def test_pama_wins_service_time(self, etc_comparison):
        """Fig 6: PAMA achieves the shortest service time."""
        results = etc_comparison.results
        pama = results["pama"].avg_service_time
        for name in ("memcached", "psa", "pre-pama"):
            assert pama <= results[name].avg_service_time * 1.02, name

    def test_pama_clearly_beats_static(self, etc_comparison):
        """Fig 6: the PAMA vs Memcached gap is substantial."""
        results = etc_comparison.results
        assert (results["pama"].avg_service_time
                < 0.95 * results["memcached"].avg_service_time)

    def test_migrations_happen_only_in_reallocating_schemes(
            self, etc_comparison):
        results = etc_comparison.results
        assert results["memcached"].cache_stats["migrations"] == 0
        for name in ("psa", "pama"):
            assert results[name].cache_stats["migrations"] > 0, name


class TestAppRepeatShape:
    @pytest.fixture(scope="class")
    def app_comparison(self):
        trace = generate(APP.scaled(0.1), 120_000, seed=55).repeat(2)
        spec = ExperimentSpec(
            name="integration-app", cache_bytes=48 * MIB,
            slab_size=64 << 10, window_gets=40_000,
            policy_kwargs={"pama": {"value_window": 50_000},
                           "pre-pama": {"value_window": 50_000},
                           "psa": {"m_misses": 500}})
        return run_comparison(trace, spec, POLICIES)

    def test_second_pass_improves_hit_ratio(self, app_comparison):
        """Fig 7: cold misses vanish when the trace repeats."""
        for name, result in app_comparison.results.items():
            windows = result.windows
            half = len(windows) // 2
            first = sum(w.hits for w in windows[:half]) / max(
                sum(w.gets for w in windows[:half]), 1)
            second = sum(w.hits for w in windows[half:]) / max(
                sum(w.gets for w in windows[half:]), 1)
            assert second > first, name

    def test_pama_service_time_advantage_on_app(self, app_comparison):
        """Fig 8: PAMA's service time leads on APP too."""
        results = app_comparison.results
        pama = results["pama"].avg_service_time
        assert pama <= results["psa"].avg_service_time * 1.05
        assert pama <= results["memcached"].avg_service_time


class TestPamaAllocationShape:
    def test_allocation_more_even_than_psa(self):
        """Fig 3: PSA funnels slabs to the hottest class; PAMA spreads."""
        trace = generate(ETC.scaled(0.15), 200_000, seed=77)
        spec = ExperimentSpec(
            name="fig3-shape", cache_bytes=24 * MIB, slab_size=64 << 10,
            window_gets=50_000,
            policy_kwargs={"pama": {"value_window": 50_000},
                           "psa": {"m_misses": 300}})
        cmp = run_comparison(trace, spec, ["psa", "pama"])

        def top_class_share(result):
            dist = result.final_class_slabs
            return max(dist.values()) / sum(dist.values())

        assert (top_class_share(cmp.results["pama"])
                <= top_class_share(cmp.results["psa"]) + 0.02)
