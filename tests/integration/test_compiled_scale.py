"""Acceptance: a 10M-op compiled trace replays in window-bounded RSS.

The whole point of the columnar compiler is that replay memory is a
function of the *window*, not the trace: a ~330 MB compiled trace must
stream through ``Simulator.run`` without ever being materialized.  The
replay runs in a fresh subprocess so ``ru_maxrss`` measures only that
replay — the parent pytest process (which just compiled 10M rows) would
contaminate the high-water mark.  The streaming iterator madvises
consumed pages back to the kernel, so even the mmap'd file pages never
accumulate.
"""

import json
import os
import subprocess
import sys

import repro
from repro.traces import ETC, compile_synthetic
from repro.traces.compile import describe

N_OPS = 10_000_000
WINDOW = 1 << 17  # 131072 rows per streamed window

_CHILD = r"""
import json, resource, sys
from repro.sim import ExperimentSpec
from repro.sim.simulator import simulate
from repro.traces.compile import CompiledTrace

trace = CompiledTrace(sys.argv[1], window=int(sys.argv[2]))
base_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
spec = ExperimentSpec(name="rss", cache_bytes=8 << 20,
                      window_gets=2_000_000)
result = simulate(trace, spec.build_cache("memcached"),
                  hit_time=spec.hit_time, window_gets=spec.window_gets,
                  fill_on_miss=spec.fill_on_miss)
peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({"base_kib": base_kib, "peak_kib": peak_kib,
                  "total_gets": result.total_gets,
                  "hit_ratio": result.hit_ratio}))
"""


def test_10m_op_replay_rss_bounded_by_window(tmp_path):
    out = tmp_path / "10m.ctrc"
    compiled = compile_synthetic(ETC.scaled(0.1), N_OPS, out, seed=1,
                                 chunk=1 << 20)
    trace_bytes = compiled.nbytes
    assert len(compiled) == N_OPS
    assert trace_bytes > 300 * (1 << 20)  # the footprint we must NOT pay

    src_dir = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ, PYTHONPATH=src_dir)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(out), str(WINDOW)],
        capture_output=True, text=True, env=env, timeout=300)
    assert proc.returncode == 0, proc.stderr
    stats = json.loads(proc.stdout)

    # The replay really happened, over the whole trace.
    info = describe(compiled)
    assert stats["total_gets"] == info["gets"] > 8_000_000
    assert 0.0 < stats["hit_ratio"] < 1.0

    # RSS growth during replay stays bounded by the window machinery
    # (per-window tolist scratch + an 8 MiB cache + metrics), far below
    # the whole-trace footprint.  ~330 MB trace, <150 MiB growth.
    growth = (stats["peak_kib"] - stats["base_kib"]) * 1024
    assert growth < 150 * (1 << 20), (
        f"replay RSS grew {growth / (1 << 20):.0f} MiB "
        f"(trace is {trace_bytes / (1 << 20):.0f} MiB)")
    assert growth < trace_bytes / 2
