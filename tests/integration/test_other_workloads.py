"""End-to-end runs of the three Facebook pools the paper describes but
does not evaluate — asserting the very properties the paper cites as
its reasons for excluding them (§IV):

* USR: "two key size values (16B and 21B) and almost only one value
  size (2B)" → nearly all items land in one size class, so slab
  reallocation has nothing to do;
* SYS: "very small data set, and a 1G memory can produce almost a 100%
  hit ratio" (scaled here);
* VAR: "dominated by update requests" → few GETs to optimise.
"""

import numpy as np
import pytest

from repro._util import MIB
from repro.sim import ExperimentSpec, run_comparison
from repro.traces import SYS, USR, VAR, Op, generate


def spec(cache_mb, window=10_000):
    return ExperimentSpec(name="other", cache_bytes=cache_mb * MIB,
                          slab_size=64 << 10, window_gets=window,
                          policy_kwargs={"pama": {"value_window": 20_000}})


class TestUSR:
    @pytest.fixture(scope="class")
    def usr_cmp(self):
        trace = generate(USR.scaled(0.05), 120_000, seed=41)
        return trace, run_comparison(trace, spec(4), ["memcached", "pama"])

    def test_single_dominant_class(self, usr_cmp):
        trace, cmp = usr_cmp
        sizes = trace.key_sizes + trace.value_sizes
        assert set(np.unique(sizes)) == {18, 23}  # 16+2 and 21+2 bytes
        for result in cmp.results.values():
            assert len(result.final_class_slabs) == 1

    def test_reallocation_cannot_help(self, usr_cmp):
        _trace, cmp = usr_cmp
        static = cmp.results["memcached"]
        pama = cmp.results["pama"]
        # one size class -> PAMA can only shuffle penalty bins; its edge
        # over static LRU is marginal, as the paper implies
        assert abs(pama.hit_ratio - static.hit_ratio) < 0.05


class TestSYS:
    def test_modest_cache_gets_near_perfect_hit_ratio(self):
        trace = generate(SYS, 100_000, seed=42)
        cmp = run_comparison(trace, spec(64), ["memcached", "pama"])
        for name, result in cmp.results.items():
            assert result.hit_ratio > 0.93, (name, result.hit_ratio)


class TestVAR:
    def test_update_dominated_mix(self):
        trace = generate(VAR.scaled(0.1), 100_000, seed=43)
        n_sets = int(np.count_nonzero(trace.ops == Op.SET))
        n_gets = int(np.count_nonzero(trace.ops == Op.GET))
        assert n_sets > 2 * n_gets
        # deletes occur too (VAR has a delete share)
        assert int(np.count_nonzero(trace.ops == Op.DELETE)) > 0

    def test_pipeline_runs_clean(self):
        trace = generate(VAR.scaled(0.1), 80_000, seed=44)
        cmp = run_comparison(trace, spec(8), ["memcached", "psa", "pama"])
        for name, result in cmp.results.items():
            # GETs are a minority but the run must be fully consistent
            assert result.total_gets == trace.num_gets, name
            assert result.cache_stats["sets"] > 0
