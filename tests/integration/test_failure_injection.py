"""Failure-injection tests: malformed inputs, corrupt files, abrupt
disconnects, and policy-contract violations must fail loudly and
leave the system consistent."""

import socket

import numpy as np
import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.cache.errors import OutOfMemoryError, PolicyError
from repro.cache.snapshot import load_snapshot, save_snapshot
from repro.core import PamaPolicy
from repro.policies import StaticMemcachedPolicy
from repro.policies.base import AllocationPolicy
from repro.server import start_server
from repro.traces import load_npz


def small_cache(slabs=4, policy=None):
    classes = SizeClassConfig(slab_size=4096, base_size=64)
    return SlabCache(slabs * 4096, policy or StaticMemcachedPolicy(),
                     classes)


class TestCorruptFiles:
    def test_truncated_npz_trace(self, tmp_path):
        path = tmp_path / "broken.npz"
        path.write_bytes(b"PK\x03\x04 this is not a real archive")
        with pytest.raises(Exception):
            load_npz(path)

    def test_snapshot_wrong_version(self, tmp_path):
        path = tmp_path / "snap.npz"
        np.savez_compressed(path, version=np.int64(999),
                            keys=np.array([], dtype=np.int64),
                            key_sizes=np.array([], dtype=np.int32),
                            value_sizes=np.array([], dtype=np.int32),
                            penalties=np.array([]),
                            expiries=np.array([]))
        with pytest.raises(ValueError):
            load_snapshot(small_cache(), path)

    def test_snapshot_missing_fields(self, tmp_path):
        path = tmp_path / "snap.npz"
        np.savez_compressed(path, version=np.int64(1))
        with pytest.raises(KeyError):
            load_snapshot(small_cache(), path)

    def test_partial_restore_leaves_cache_consistent(self, tmp_path):
        donor = small_cache(slabs=8)
        for i in range(100):
            donor.set(i, 8, 50, 0.1)
        path = tmp_path / "snap.npz"
        save_snapshot(donor, path)
        # a 1-slab target cannot hold everything; restore must still
        # leave a fully consistent cache
        tiny = small_cache(slabs=1)
        stored = load_snapshot(tiny, path)
        assert stored == 100  # all SETs succeeded (with evictions)
        tiny.check_invariants()


class TestMisbehavingPolicy:
    def test_empty_donor_is_rejected(self):
        class BadPolicy(AllocationPolicy):
            name = "bad"

            def resolve_pressure(self, queue, must_migrate):
                # names a queue that owns no slabs
                return self.cache.queue_for(queue.class_idx + 1, 0)

        cache = small_cache(slabs=1, policy=BadPolicy())
        per_slab = 4096 // 64
        for i in range(per_slab):
            cache.set(i, 8, 50, 0.1)
        with pytest.raises(PolicyError):
            cache.set("overflow", 8, 50, 0.1)

    def test_foreign_victim_is_rejected(self):
        class BadVictim(AllocationPolicy):
            name = "bad-victim"

            def resolve_pressure(self, queue, must_migrate):
                return None

            def choose_victim(self, queue):
                # return an item from a different queue
                for q in self.cache.iter_queues():
                    if q is not queue and len(q.lru):
                        return q.lru.back
                return None

        cache = small_cache(slabs=2, policy=BadVictim())
        cache.set("other", 8, 3000, 0.1)  # populates a second queue
        per_slab = 4096 // 64
        for i in range(per_slab):
            cache.set(i, 8, 50, 0.1)
        with pytest.raises(PolicyError):
            cache.set("overflow", 8, 50, 0.1)

    def test_oom_on_zero_donors(self):
        cache = small_cache(slabs=1, policy=StaticMemcachedPolicy())
        per_slab = 4096 // 64
        for i in range(per_slab):
            cache.set(i, 8, 50, 0.1)
        # a class with no slab and no fallback donor -> failed SET, not
        # a crash, and the cache stays consistent
        assert not cache.set("big", 8, 3000, 0.1)
        cache.check_invariants()


class TestServerRobustness:
    @pytest.fixture
    def server(self):
        cache = SlabCache(1 << 20, PamaPolicy(),
                          SizeClassConfig(slab_size=64 << 10))
        srv = start_server(cache)
        yield srv
        srv.shutdown()
        srv.server_close()

    def test_abrupt_disconnect_mid_set(self, server):
        # announce 100 bytes, send 10, slam the connection
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(b"set k 0 0 100\r\n" + b"x" * 10)
        # the server must survive and keep serving other clients
        from repro.server import CacheClient
        with CacheClient(port=server.port) as client:
            assert client.set("ok", b"fine")
            assert client.get("ok") == b"fine"
        assert "k" not in server.cache

    def test_garbage_bytes(self, server):
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            f = sock.makefile("rb")
            sock.sendall(b"\x00\x01\x02\xff\r\n")
            assert f.readline().startswith(b"CLIENT_ERROR")
            sock.sendall(b"version\r\n")
            assert f.readline().startswith(b"VERSION")

    def test_wrong_data_trailer(self, server):
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            f = sock.makefile("rb")
            sock.sendall(b"set k 0 0 3\r\nabcXX")  # bad trailer
            assert f.readline().startswith(b"CLIENT_ERROR")
