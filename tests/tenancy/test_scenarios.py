"""Scenario acceptance: penalty-aware arbitration beats static boxes.

The fixed-seed noisy-neighbor bench is the PR's acceptance gate: the
arbiter (reserves + elastic pool + penalty-aware stealing) must beat
equal static partitioning on total weighted service time, and it must
do so *while actually arbitrating* — steal decisions recorded, both
tenants served.
"""

import json

import pytest

from repro.tenancy import SCENARIOS, run_scenario


@pytest.fixture(scope="module")
def noisy(tmp_path_factory):
    dump = tmp_path_factory.mktemp("noisy") / "dump"
    return run_scenario("noisy-neighbor", requests=30_000, seed=7,
                        dump_dir=str(dump)), dump


class TestNoisyNeighbor:
    def test_arbiter_beats_static_partitioning(self, noisy):
        result, _dump = noisy
        assert result.arbiter_weighted < result.static_weighted
        assert result.improvement > 0.0

    def test_stealing_was_exercised(self, noisy):
        result, _dump = noisy
        counts = result.steal_counts
        # decisions of every flavor happen on this seed; at minimum the
        # arbiter must have moved slabs across tenants at least once.
        assert counts["approved"] + counts["forced"] > 0
        assert counts["declined"] > 0

    def test_both_tenants_served_and_named(self, noisy):
        result, _dump = noisy
        names = {m["name"] for m in result.arbiter.tenant_metrics.values()}
        assert names == {"victim", "noisy"}
        for m in result.arbiter.tenant_metrics.values():
            assert m["gets"] > 0
            assert m["slabs"] > 0

    def test_victim_keeps_its_reserve(self, noisy):
        result, _dump = noisy
        total_slabs = (8 << 20) // (64 << 10)
        victim = next(m for m in result.arbiter.tenant_metrics.values()
                      if m["name"] == "victim")
        assert victim["slabs"] >= int(0.25 * total_slabs)

    def test_report_mentions_the_comparison(self, noisy):
        result, _dump = noisy
        text = result.report()
        assert "noisy-neighbor" in text
        assert "improvement" in text
        assert "victim" in text and "noisy" in text

    def test_dump_dir_renders_with_tenant_rows(self, noisy, tmp_path):
        from repro.obs.report import render_report

        _result, dump = noisy
        meta = json.loads((dump / "meta.json").read_text())
        assert meta["tenants"] == ["victim", "noisy"]
        rows = [json.loads(line) for line in
                (dump / "timeline.jsonl").read_text().splitlines()]
        assert rows and any(r.get("tenants") for r in rows)
        out = tmp_path / "report.html"
        render_report(str(dump), str(out))
        html = out.read_text()
        assert "victim" in html and "noisy" in html


class TestScenarioSuite:
    def test_registry_names(self):
        assert {"noisy-neighbor", "arrival-departure",
                "mixed-profiles"} <= set(SCENARIOS)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario("nope", requests=100)

    def test_arrival_departure_smoke(self):
        result = run_scenario("arrival-departure", requests=6_000, seed=3,
                              window_gets=2_000, value_window=2_000)
        assert result.arbiter.total_gets > 0
        assert len(result.arbiter.tenant_metrics) == 4
