"""Differential pin: a single-tenant arbiter IS plain PAMA.

With one tenant and no reserve, every piece of the arbiter must reduce
to the identity: the bin mapping is ``0 * nbins + b``, the eligibility
filter never rejects a queue, the SLA/steal-margin scaling is never
applied (the cross-tenant branch is unreachable), and
``wants_free_slab`` always grants.  So a replay under
``TenantArbiter(1)`` must match a replay under ``PamaPolicy`` with the
same config ``==``-exact — every float bit-for-bit, every counter to
the unit.  Any divergence means the arbiter's decision replica drifted
from the real policy.
"""

import random

import numpy as np

from repro.cache import SizeClassConfig, SlabCache
from repro.core.config import PamaConfig
from repro.core.pama import PamaPolicy
from repro.sim.simulator import simulate
from repro.tenancy import TenantArbiter, TenantConfig
from repro.traces.record import Trace


def mixed_trace(n=40_000, seed=1234):
    """Mixed GET/SET/DELETE trace, same shape as the replay pin suite.

    No tenant column on purpose: a plain trace must replay under the
    arbiter via the implicit all-zero tenant broadcast.
    """
    rng = random.Random(seed)
    ops, keys, ks, vs, pens = [], [], [], [], []
    sizes = (48, 150, 700, 2600, 9000)
    penalties = (0.0004, 0.004, 0.04, 0.4, 1.6)
    for _ in range(n):
        r = rng.random()
        op = 0 if r < 0.80 else (1 if r < 0.95 else 2)
        ops.append(op)
        keys.append(rng.randrange(3000))
        ks.append(16)
        vs.append(rng.choice(sizes))
        pens.append(rng.choice(penalties))
    return Trace(np.array(ops, dtype=np.uint8),
                 np.array(keys, dtype=np.int64),
                 np.array(ks, dtype=np.int32),
                 np.array(vs, dtype=np.int32),
                 np.array(pens, dtype=np.float64),
                 meta={"name": "mixed"})


def _run(policy):
    cache = SlabCache(8 << 20, policy,
                      SizeClassConfig(slab_size=64 << 10))
    return simulate(mixed_trace(), cache, window_gets=10_000)


def _assert_identical(ra, rp):
    assert ra.total_gets == rp.total_gets
    # exact equality on purpose: the arbiter layer must not perturb a
    # single float operation, let alone a migration decision.
    assert ra.hit_ratio == rp.hit_ratio
    assert ra.avg_service_time == rp.avg_service_time
    assert ra.cache_stats == rp.cache_stats
    assert ([w.hit_ratio for w in ra.windows]
            == [w.hit_ratio for w in rp.windows])
    assert ([w.avg_service_time for w in ra.windows]
            == [w.avg_service_time for w in rp.windows])
    assert ra.final_class_slabs == rp.final_class_slabs
    # tenant 0's queue bins are the plain policy's bins verbatim.
    assert ra.final_queue_slabs == rp.final_queue_slabs


class TestSingleTenantParity:
    def test_replay_bit_identical_to_plain_pama(self):
        config = PamaConfig(value_window=10_000)
        plain = PamaPolicy(config)
        arb = TenantArbiter(1, config=PamaConfig(value_window=10_000))
        rp = _run(plain)
        ra = _run(arb)
        _assert_identical(ra, rp)
        # decision counters agree and nothing registered as a steal.
        assert arb.migrations_approved == plain.migrations_approved
        assert arb.migrations_declined == plain.migrations_declined
        assert arb.migrations_forced == plain.migrations_forced
        assert arb.steal_counts() == {"approved": 0, "declined": 0,
                                      "forced": 0}

    def test_steal_margin_is_inert_with_one_tenant(self):
        # The margin only scales cross-tenant donors; with one tenant
        # it must not shift a single decision.
        config = PamaConfig(value_window=10_000)
        ra = _run(TenantArbiter(1, config=config))
        rb = _run(TenantArbiter(
            [TenantConfig(name="only", sla_weight=7.0)],
            config=PamaConfig(value_window=10_000), steal_margin=50.0))
        _assert_identical(ra, rb)

    def test_tenant_metrics_aggregate_to_globals(self):
        arb = TenantArbiter(1, config=PamaConfig(value_window=10_000))
        ra = _run(arb)
        assert set(ra.tenant_metrics) == {0}
        m = ra.tenant_metrics[0]
        assert m["gets"] == ra.total_gets
        assert m["hit_ratio"] == ra.hit_ratio
        assert m["avg_service_time"] == ra.avg_service_time
        assert m["slabs"] == sum(ra.final_queue_slabs.values())
        assert ra.total_weighted_service_time() == \
            m["sla_weight"] * m["service_sum"]
        arb.check_invariants()
