"""Unit tests for tenant-tagged trace synthesis (repro.tenancy.mix)."""

import numpy as np
import pytest

from repro.tenancy import TENANT_KEY_STRIDE, TenantSpec, mix_tenants
from repro.traces.workloads import APP, ETC, SYS


def two_specs():
    return [
        TenantSpec(name="etc", profile=ETC.scaled(0.02)),
        TenantSpec(name="app", profile=APP.scaled(0.02), weight=2.0,
                   penalty_scale=0.5),
    ]


class TestMixTenants:
    def test_deterministic_for_fixed_seed(self):
        a = mix_tenants(two_specs(), 5_000, seed=11)
        b = mix_tenants(two_specs(), 5_000, seed=11)
        assert (a.ops == b.ops).all()
        assert (a.keys == b.keys).all()
        assert (a.penalties == b.penalties).all()
        assert (a.timestamps == b.timestamps).all()
        assert (a.tenants == b.tenants).all()

    def test_keys_live_in_disjoint_tenant_bands(self):
        trace = mix_tenants(two_specs(), 5_000, seed=1)
        tenants = np.asarray(trace.tenants)
        bands = np.asarray(trace.keys) // TENANT_KEY_STRIDE
        assert (bands == tenants).all()

    def test_penalty_scale_applies_per_tenant(self):
        specs = [
            TenantSpec(name="cheap", profile=ETC.scaled(0.02),
                       penalty_scale=1.0),
            TenantSpec(name="dear", profile=ETC.scaled(0.02),
                       penalty_scale=100.0),
        ]
        trace = mix_tenants(specs, 6_000, seed=2)
        tenants = np.asarray(trace.tenants)
        pens = np.asarray(trace.penalties)
        # Same profile, same sub-seed space: the scaled tenant's mean
        # penalty must sit far above the unscaled one's.
        assert pens[tenants == 1].mean() > 10 * pens[tenants == 0].mean()

    def test_arrival_departure_bound_activity(self):
        specs = [
            TenantSpec(name="always", profile=ETC.scaled(0.02)),
            TenantSpec(name="burst", profile=APP.scaled(0.02),
                       arrival=0.4, departure=0.6),
        ]
        n = 10_000
        trace = mix_tenants(specs, n, seed=5)
        rows = np.flatnonzero(np.asarray(trace.tenants) == 1)
        assert len(rows) > 0
        assert rows.min() >= round(0.4 * n)
        assert rows.max() < round(0.6 * n)

    def test_weights_shape_request_shares(self):
        specs = [
            TenantSpec(name="light", profile=ETC.scaled(0.02), weight=1.0),
            TenantSpec(name="heavy", profile=ETC.scaled(0.02), weight=4.0),
        ]
        trace = mix_tenants(specs, 10_000, seed=8)
        share = (np.asarray(trace.tenants) == 1).mean()
        assert 0.7 < share < 0.9  # expectation 0.8

    def test_meta_names_tenants(self):
        trace = mix_tenants(two_specs(), 1_000, seed=0)
        assert trace.meta["workload"] == "tenant-mix"
        assert trace.meta["tenants"] == ["etc", "app"]
        assert trace.num_tenants == 2
        assert trace.tenants.dtype == np.uint16

    def test_timestamps_monotonic(self):
        trace = mix_tenants(two_specs(), 2_000, seed=0)
        assert (np.diff(trace.timestamps) >= 0).all()


class TestMixValidation:
    def test_rejects_empty_specs(self):
        with pytest.raises(ValueError):
            mix_tenants([], 100)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            mix_tenants(two_specs(), 0)

    def test_rejects_uncovered_gap(self):
        specs = [
            TenantSpec(name="early", profile=ETC.scaled(0.02),
                       departure=0.4),
            TenantSpec(name="late", profile=SYS.scaled(0.02),
                       arrival=0.6),
        ]
        with pytest.raises(ValueError, match="no tenant active"):
            mix_tenants(specs, 1_000)

    def test_spec_rejects_bad_schedule(self):
        with pytest.raises(ValueError):
            TenantSpec(name="x", profile=ETC, arrival=0.6, departure=0.4)
        with pytest.raises(ValueError):
            TenantSpec(name="x", profile=ETC, arrival=-0.1)
        with pytest.raises(ValueError):
            TenantSpec(name="x", profile=ETC, weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec(name="x", profile=ETC, penalty_scale=-1.0)
        with pytest.raises(ValueError):
            TenantSpec(name="x", profile=ETC, sla_weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec(name="x", profile=ETC, reserve_fraction=1.5)
