"""Property tests for the tenant arbiter's contracts.

Hypothesis drives (seed, reserve split, tenant mix) through full
replays and asserts the invariants the arbiter promises:

* slab conservation — per-tenant ownership plus the free pool always
  sums to the pool total, checked *during* the replay, not just after;
* reserve floor — once a tenant's reserve has been filled it never
  dips below the guarantee again, no matter what the other tenants'
  penalty mass does;
* determinism — a fixed (specs, n, seed) triple replays to identical
  results and identical steal decisions every time.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import SizeClassConfig, SlabCache
from repro.core.config import PamaConfig
from repro.sim.simulator import simulate
from repro.tenancy import (TenantArbiter, TenantConfig, TenantSpec,
                           mix_tenants, tenant_configs)
from repro.traces.workloads import APP, ETC, USR

#: small cache so reserves and steals actually bind: 32 slabs.
CACHE_BYTES = 2 << 20
SLAB_BYTES = 64 << 10
TOTAL_SLABS = CACHE_BYTES // SLAB_BYTES

CONFIG_KW = {"value_window": 2_000}


def _specs(reserve_a, reserve_b):
    return [
        TenantSpec(name="a", profile=ETC.scaled(0.02), penalty_scale=5.0,
                   sla_weight=3.0, reserve_fraction=reserve_a),
        TenantSpec(name="b", profile=APP.scaled(0.02), weight=2.0,
                   reserve_fraction=reserve_b),
        TenantSpec(name="c", profile=USR.scaled(0.02), weight=0.5,
                   arrival=0.3),
    ]


def _build(specs):
    arb = TenantArbiter(tenant_configs(specs, TOTAL_SLABS),
                        config=PamaConfig(**CONFIG_KW))
    cache = SlabCache(CACHE_BYTES, arb,
                      SizeClassConfig(slab_size=SLAB_BYTES))
    return arb, cache


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2 ** 16),
       reserve_a=st.sampled_from([0.0, 0.125, 0.25]),
       reserve_b=st.sampled_from([0.0, 0.125]))
def test_conservation_and_reserve_floor_throughout(seed, reserve_a,
                                                   reserve_b):
    """Drive the cache op-by-op, auditing invariants every 250 ops."""
    specs = _specs(reserve_a, reserve_b)
    trace = mix_tenants(specs, 4_000, seed=seed)
    arb, cache = _build(specs)
    ops = trace.ops.tolist()
    keys = trace.keys.tolist()
    ksz = trace.key_sizes.tolist()
    vsz = trace.value_sizes.tolist()
    pen = trace.penalties.tolist()
    tenants = trace.tenants.tolist()
    for i in range(len(trace)):
        arb.current_tenant = tenants[i]
        if ops[i] == 0:
            if cache.lookup(keys[i], ksz[i], vsz[i], pen[i]) is None:
                cache.set(keys[i], ksz[i], vsz[i], pen[i])
        elif ops[i] == 1:
            cache.set(keys[i], ksz[i], vsz[i], pen[i])
        else:
            cache.delete(keys[i])
        if i % 250 == 0:
            arb.check_invariants()
            cache.check_invariants()
    arb.check_invariants()
    cache.check_invariants()
    owned = arb.tenant_slabs()
    assert sum(owned) + cache.pool.free == cache.pool.total


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2 ** 16))
def test_fixed_seed_replay_is_deterministic(seed):
    """Two identical runs: identical outputs AND identical steals."""
    specs = _specs(0.25, 0.125)
    trace = mix_tenants(specs, 4_000, seed=seed)
    outcomes = []
    for _ in range(2):
        arb, cache = _build(specs)
        result = simulate(trace, cache, window_gets=1_000)
        outcomes.append((result.hit_ratio, result.avg_service_time,
                         result.total_gets, result.cache_stats,
                         result.final_queue_slabs, arb.steal_counts(),
                         arb.tenant_slabs(),
                         {t: (m["gets"], m["hits"], m["service_sum"])
                          for t, m in result.tenant_metrics.items()}))
    assert outcomes[0] == outcomes[1]


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2 ** 16))
def test_static_partition_never_crosses_boxes(seed):
    """The baseline's caps hold: each tenant stays inside its share."""
    specs = _specs(0.0, 0.0)
    trace = mix_tenants(specs, 4_000, seed=seed)
    from repro.tenancy import static_partition
    arb = static_partition(tenant_configs(specs, TOTAL_SLABS),
                           TOTAL_SLABS, config=PamaConfig(**CONFIG_KW))
    cache = SlabCache(CACHE_BYTES, arb,
                      SizeClassConfig(slab_size=SLAB_BYTES))
    simulate(trace, cache, window_gets=1_000)
    assert arb.steal_counts() == {"approved": 0, "declined": 0,
                                  "forced": 0}
    share = TOTAL_SLABS // len(specs)
    for t, owned in enumerate(arb.tenant_slabs()):
        assert owned <= share + 1
    arb.check_invariants()


class TestValidation:
    def test_tenant_config_rejects_bad_contracts(self):
        import pytest
        with pytest.raises(ValueError):
            TenantConfig(name="x", reserve_slabs=-1)
        with pytest.raises(ValueError):
            TenantConfig(name="x", reserve_slabs=4, cap_slabs=2)
        with pytest.raises(ValueError):
            TenantConfig(name="x", sla_weight=0.0)

    def test_arbiter_rejects_degenerate_args(self):
        import pytest
        with pytest.raises(ValueError):
            TenantArbiter(0)
        with pytest.raises(ValueError):
            TenantArbiter([])
        with pytest.raises(ValueError):
            TenantArbiter(2, steal_margin=0.0)

    def test_tenant_names_surface_in_metrics(self):
        specs = _specs(0.125, 0.0)
        trace = mix_tenants(specs, 2_000, seed=3)
        arb, cache = _build(specs)
        result = simulate(trace, cache, window_gets=1_000)
        names = {m["name"] for m in result.tenant_metrics.values()}
        assert names <= {"a", "b", "c"}
        assert np.asarray(trace.tenants).max() <= 2
