"""CLI surface of the tenancy subsystem."""

import pytest

from repro.cli import main


class TestTenancyCommand:
    def test_list_scenarios(self, capsys):
        assert main(["tenancy", "--list"]) == 0
        out = capsys.readouterr().out
        assert "noisy-neighbor" in out
        assert "arrival-departure" in out

    def test_missing_scenario_is_usage_error(self, capsys):
        assert main(["tenancy"]) == 2
        assert "scenario name" in capsys.readouterr().err

    def test_unknown_scenario_rejected(self, capsys):
        assert main(["tenancy", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_runs_scenario_with_dump_and_report(self, tmp_path, capsys):
        dump = tmp_path / "dump"
        assert main(["tenancy", "noisy-neighbor", "--requests", "8000",
                     "--seed", "7", "--window", "2000",
                     "--dump-dir", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "noisy-neighbor" in out
        assert "victim" in out and "noisy" in out
        assert (dump / "timeline.jsonl").exists()
        assert (dump / "meta.json").exists()
        html = tmp_path / "report.html"
        assert main(["report", str(dump), "--out", str(html)]) == 0
        assert html.stat().st_size > 0


class TestSimulateTenants:
    def test_simulate_with_tenant_mix(self, capsys):
        assert main(["simulate", "--tenants", "etc,usr",
                     "--requests", "6000", "--scale", "0.02",
                     "--cache-size", "2MiB", "--slab-size", "64KiB",
                     "--window", "2000", "--reserve", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "tenant-arbiter" in out
        assert "tenant      etc" in out
        assert "tenant      usr" in out
        assert "weighted service" in out

    def test_tenants_and_trace_are_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["simulate", "--tenants", "etc",
                  "--trace", str(tmp_path / "t.npz")])

    def test_duplicate_profiles_get_distinct_names(self, capsys):
        assert main(["simulate", "--tenants", "etc,etc",
                     "--requests", "4000", "--scale", "0.02",
                     "--cache-size", "2MiB", "--slab-size", "64KiB",
                     "--window", "2000"]) == 0
        out = capsys.readouterr().out
        assert "etc#0" in out and "etc#1" in out
