"""Golden regression: pinned metrics on a fixed seeded penalty trace.

The whole pipeline — trace generation, the slab substrate, the
policies, the service-time model — is deterministic, so these numbers
are reproducible to the last float.  A tight tolerance (1e-9 relative)
catches any silent behaviour change in the allocation stack; if a PR
moves them *intentionally*, regenerate with the snippet in the test.
"""

import pytest

from repro.cache import SizeClassConfig, SlabCache
from repro.policies import make_policy
from repro.sim.simulator import simulate
from repro.traces import ETC, generate

# generate(ETC.scaled(0.05), 60_000, seed=2026) -> 8 MiB cache,
# 64 KiB slabs, window 10_000.
GOLDEN = {
    "memcached": (0.798884300514381, 0.03498127776812192),
    "pre-pama": (0.8179562413967978, 0.03237275879631465),
    "pama": (0.806690574512787, 0.03193876719163116),
}
POLICY_KWARGS = {"pre-pama": {"value_window": 10_000},
                 "pama": {"value_window": 10_000}}
TOTAL_GETS = 55_212


@pytest.fixture(scope="module")
def results():
    trace = generate(ETC.scaled(0.05), 60_000, seed=2026)
    out = {}
    for policy in GOLDEN:
        cache = SlabCache(8 << 20,
                          make_policy(policy, **POLICY_KWARGS.get(policy, {})),
                          SizeClassConfig(slab_size=64 << 10))
        out[policy] = simulate(trace, cache, window_gets=10_000)
    return out


@pytest.mark.parametrize("policy", sorted(GOLDEN))
def test_golden_metrics(results, policy):
    hit, svc = GOLDEN[policy]
    r = results[policy]
    assert r.total_gets == TOTAL_GETS
    assert r.hit_ratio == pytest.approx(hit, rel=1e-9)
    assert r.avg_service_time == pytest.approx(svc, rel=1e-9)


def test_paper_ordering_holds(results):
    # Penalty-awareness buys service time even where it costs hit ratio:
    # pre-PAMA out-hits PAMA here, yet PAMA serves requests faster, and
    # both beat the frozen memcached allocation on both axes.
    svc = {p: r.avg_service_time for p, r in results.items()}
    assert svc["pama"] < svc["pre-pama"] < svc["memcached"]
    hits = {p: r.hit_ratio for p, r in results.items()}
    assert hits["pama"] < hits["pre-pama"]
    assert hits["memcached"] < hits["pama"]
