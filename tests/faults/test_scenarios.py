"""Named scenarios, the run_scenario harness, and the chaos CLI."""

import json

import pytest

from repro._util import MIB
from repro.cli import main
from repro.faults import (FaultPlan, make_plan, run_scenario,
                          scenario_names)
from repro.traces import ETC, generate


class TestMakePlan:
    def test_names_are_sorted_and_known(self):
        names = scenario_names()
        assert names == sorted(names)
        assert {"backend-brownout", "node-flap", "blackout"} <= set(names)

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            make_plan("nope", 100, ["a"])

    def test_bad_inputs(self):
        with pytest.raises(ValueError, match="positive"):
            make_plan("blackout", 0, ["a"])
        with pytest.raises(ValueError, match="node"):
            make_plan("blackout", 100, [])

    def test_plans_scale_with_ticks(self):
        for name in scenario_names():
            for ticks in (10, 1000, 100_000):
                plan = make_plan(name, ticks, ["a", "b"], seed=3)
                assert isinstance(plan, FaultPlan)
                assert not plan.empty
                assert plan.seed == 3

    def test_blackout_covers_every_node(self):
        nodes = ["a", "b", "c"]
        plan = make_plan("blackout", 1000, nodes)
        assert plan.nodes_touched() == set(nodes)
        assert all(plan.node_down(n, 450) for n in nodes)
        assert not any(plan.node_down(n, 0) for n in nodes)


class TestRunScenario:
    def run(self, seed=7):
        trace = generate(ETC.scaled(0.02), 20_000, seed=5)
        return run_scenario("node-flap", trace, policies=["pama"],
                            node_count=2, capacity_bytes=2 * MIB,
                            window_gets=5000, seed=seed)

    def test_report_shape(self):
        report = self.run()
        assert report.scenario == "node-flap"
        outcome = report.outcomes["pama"]
        assert outcome.baseline.total_gets == outcome.faulted.total_gets
        assert outcome.counters  # faults actually fired
        text = report.format()
        assert "node-flap" in text and "counters" in text

    def test_same_seed_identical_everything(self):
        a, b = self.run(), self.run()
        oa, ob = a.outcomes["pama"], b.outcomes["pama"]
        assert oa.counters == ob.counters
        assert oa.degraded_time == ob.degraded_time
        assert oa.faulted.hit_ratio == ob.faulted.hit_ratio
        assert oa.faulted.avg_service_time == ob.faulted.avg_service_time
        assert (oa.faulted.service_time_series()
                == ob.faulted.service_time_series())

    def test_seed_changes_the_faulted_run_only(self):
        oa = self.run(seed=7).outcomes["pama"]
        ob = self.run(seed=8).outcomes["pama"]
        assert oa.baseline.avg_service_time == ob.baseline.avg_service_time
        assert oa.counters != ob.counters


class TestBrownoutWidensAdvantage:
    def test_pama_gains_when_penalties_spike(self):
        # The acceptance claim: under a backend brownout the service-time
        # gap between penalty-aware and penalty-blind allocation grows.
        trace = generate(ETC.scaled(0.1), 120_000, seed=101)
        report = run_scenario("backend-brownout", trace,
                              policies=["pre-pama", "pama"], node_count=2,
                              capacity_bytes=4 * MIB, window_gets=30_000,
                              seed=7)
        base_adv, fault_adv = report.advantage()
        assert base_adv > 0
        assert fault_adv > base_adv
        assert "widened" in report.format()
        outcome = report.outcomes["pama"]
        assert outcome.counters["backend_error"] > 0
        assert outcome.counters["stale_served"] > 0
        assert outcome.degraded_time > 0


class TestChaosCli:
    ARGS = ["chaos", "node-flap", "--requests", "8000", "--scale", "0.02",
            "--window", "2000", "--cache-size", "4MiB", "--nodes", "2",
            "--policies", "pama", "--fault-seed", "7"]

    def test_list(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == scenario_names()

    def test_missing_and_unknown_scenario(self, capsys):
        assert main(["chaos"]) == 2
        assert main(["chaos", "nope"]) == 2
        assert main(["chaos", "node-flap", "--policies", "nope"]) == 2

    def test_runs_and_reports(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "chaos scenario 'node-flap'" in out
        assert "counters" in out

    def test_obs_out_dumps_fault_metrics(self, tmp_path, capsys):
        path = tmp_path / "chaos.json"
        assert main(self.ARGS + ["--obs-out", str(path)]) == 0
        dump = json.loads(path.read_text())
        counters = {m["name"] for m in dump["counters"]}
        assert any(n.startswith("faults_") for n in counters)
        gauges = {m["name"] for m in dump["gauges"]}
        assert "faults_degraded_time_seconds" in gauges
        assert dump["meta"]["scenario"] == "node-flap"
        assert "node_crash" in dump["events"]["kinds"]
