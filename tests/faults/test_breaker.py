"""CircuitBreaker state machine, driven by an explicit tick clock."""

import pytest

from repro.faults import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def trip(breaker, tick=0, n=None):
    for _ in range(n if n is not None else breaker.failure_threshold):
        breaker.record_failure(tick)


class TestValidation:
    def test_threshold_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_reset_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(reset_ticks=0)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        b = CircuitBreaker()
        assert b.state == CLOSED
        assert b.allow(0)

    def test_opens_after_threshold_consecutive_failures(self):
        b = CircuitBreaker(failure_threshold=3)
        trip(b, n=2)
        assert b.state == CLOSED
        b.record_failure(0)
        assert b.state == OPEN
        assert not b.allow(1)

    def test_success_resets_the_failure_streak(self):
        b = CircuitBreaker(failure_threshold=3)
        trip(b, n=2)
        b.record_success(0)
        trip(b, n=2)
        assert b.state == CLOSED  # streak broken, never reached 3

    def test_open_rejects_until_reset_ticks(self):
        b = CircuitBreaker(failure_threshold=1, reset_ticks=10)
        b.record_failure(100)
        assert not b.allow(109)
        assert b.allow(110)  # the half-open probe
        assert b.state == HALF_OPEN

    def test_half_open_probe_success_closes(self):
        b = CircuitBreaker(failure_threshold=1, reset_ticks=10)
        b.record_failure(0)
        assert b.allow(10)
        b.record_success(10)
        assert b.state == CLOSED
        assert b.allow(11)

    def test_half_open_probe_failure_reopens_with_fresh_cooldown(self):
        b = CircuitBreaker(failure_threshold=1, reset_ticks=10)
        b.record_failure(0)
        assert b.allow(10)
        b.record_failure(10)
        assert b.state == OPEN
        assert not b.allow(19)   # cool-down restarted at tick 10
        assert b.allow(20)

    def test_reopened_breaker_needs_full_threshold_again(self):
        b = CircuitBreaker(failure_threshold=2, reset_ticks=5)
        trip(b, tick=0)
        assert b.allow(5)
        b.record_success(5)
        b.record_failure(6)
        assert b.state == CLOSED  # one failure < threshold after close

    def test_transition_hook_and_count(self):
        seen = []
        b = CircuitBreaker(failure_threshold=1, reset_ticks=5,
                           on_transition=lambda o, n, t: seen.append((o, n, t)))
        b.record_failure(3)
        b.allow(8)
        b.record_success(8)
        assert seen == [(CLOSED, OPEN, 3), (OPEN, HALF_OPEN, 8),
                        (HALF_OPEN, CLOSED, 8)]
        assert b.transitions == 3

    def test_success_while_closed_is_not_a_transition(self):
        b = CircuitBreaker()
        b.record_success(0)
        assert b.transitions == 0
