"""Span tracing through the faulted cluster path.

The acceptance contract: a fault-injected run must yield at least one
sampled span tree that records both a *retry* (flaky connection ridden
out on the same node) and a *failover hop* (a later-rank node attempt
after the primary failed), and attaching the tracer must not change
simulation results.
"""

from repro.cache import SizeClassConfig
from repro.cluster import CacheCluster
from repro.faults import (FaultInjector, FaultPlan, FlakyConnection,
                          NodeCrash)
from repro.obs import SpanTracer
from repro.policies import make_policy
from repro.sim.simulator import simulate
from repro.traces import ETC, generate

MIB = 1 << 20
NODES = ["n0", "n1", "n2"]


def _run(tracer, n=4_000, seed=5):
    trace = generate(ETC.scaled(0.02), n, seed=seed)
    inj = FaultInjector(FaultPlan(
        [NodeCrash("n0", 500, rejoin=2_500),
         FlakyConnection(0, n, 0.10)], seed=13))
    cluster = CacheCluster(list(NODES), 2 * MIB,
                           lambda: make_policy("memcached"),
                           size_classes=SizeClassConfig(slab_size=64 << 10),
                           faults=inj, tracing=tracer)
    result = simulate(trace, cluster, window_gets=1_000, faults=inj,
                      tracing=tracer)
    return result, inj


def _attempts(spans):
    return [s for s in spans if s.name == "node_attempt"]


class TestFaultedSpanTrees:
    def test_retry_and_failover_both_captured(self):
        tracer = SpanTracer(sample=1.0, seed=13, capacity=8_192)
        _run(tracer)

        def has_retry(spans):
            return any(e["name"] == "retry" for s in _attempts(spans)
                       for e in s.events)

        def has_failover(spans):
            return any(s.attrs.get("failover") for s in _attempts(spans))

        retried = tracer.find_traces(has_retry)
        failed_over = tracer.find_traces(
            lambda spans: has_failover(spans) and
            any(s.status == "ok" for s in _attempts(spans)))
        assert retried, "no trace recorded a retry event"
        assert failed_over, "no trace recorded a successful failover hop"
        # spans form a proper tree: request root -> cluster op span(s)
        # -> node attempts (a miss nests both the get and the fill set)
        for spans in retried[:5] + failed_over[:5]:
            root = spans[0]
            ids = {s.span_id for s in spans}
            ops = {s.span_id for s in spans
                   if s.parent_id == root.span_id}
            assert root.parent_id is None
            assert root.name in ("get", "set", "delete")
            assert ops, "root has no cluster op spans"
            assert all(s.parent_id in ops for s in _attempts(spans))
            assert ids >= {s.parent_id for s in spans[1:]}
            assert all(s.end_tick >= s.start_tick for s in spans)

    def test_node_down_attempts_marked(self):
        tracer = SpanTracer(sample=1.0, seed=13, capacity=8_192)
        _run(tracer)
        down = tracer.find_traces(
            lambda spans: any(s.status == "node_down"
                              for s in _attempts(spans)))
        assert down, "crash window produced no node_down attempt spans"
        # the downed attempt is rank 0 (primary) during the crash window
        attempt = next(s for s in _attempts(down[0])
                       if s.status == "node_down")
        assert attempt.attrs["node"] == "n0"

    def test_tracing_does_not_perturb_results(self):
        plain, inj_a = _run(None)
        traced, inj_b = _run(SpanTracer(sample=1.0, seed=13,
                                        capacity=8_192))
        assert plain.hit_ratio == traced.hit_ratio
        assert plain.avg_service_time == traced.avg_service_time
        assert plain.cache_stats == traced.cache_stats
        assert inj_a.snapshot() == inj_b.snapshot()

    def test_sampling_thins_traces_deterministically(self):
        a = SpanTracer(sample=0.1, seed=7, capacity=8_192)
        b = SpanTracer(sample=0.1, seed=7, capacity=8_192)
        _run(a)
        _run(b)
        assert 0 < len(a.traces()) < 4_000
        assert ([s.as_dict() for t in a.traces() for s in t]
                == [s.as_dict() for t in b.traces() for s in t])
