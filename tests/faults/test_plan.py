"""FaultPlan: validation, query semantics, determinism contract."""

import pytest

from repro.faults import (BackendErrorBurst, BackendSpike, FaultPlan,
                          FlakyConnection, NodeCrash, SlowNode, rand01)
from repro.faults.plan import (CHAN_BACKEND_ERROR, CHAN_CONN_DROP,
                               CHAN_JITTER)


class TestValidation:
    def test_crash_needs_nonnegative_tick(self):
        with pytest.raises(ValueError, match=">= 0"):
            NodeCrash("a", -1)

    def test_rejoin_must_follow_crash(self):
        with pytest.raises(ValueError, match="rejoin"):
            NodeCrash("a", 10, rejoin=10)

    def test_windows_must_be_nonempty(self):
        with pytest.raises(ValueError):
            SlowNode("a", 5, 5, 0.1)
        with pytest.raises(ValueError):
            BackendSpike(-1, 10, 2.0)
        with pytest.raises(ValueError):
            BackendErrorBurst(10, 5, 0.5)
        with pytest.raises(ValueError):
            FlakyConnection(3, 3, 0.5)

    def test_rates_and_magnitudes(self):
        with pytest.raises(ValueError):
            SlowNode("a", 0, 10, 0.0)
        with pytest.raises(ValueError):
            BackendSpike(0, 10, 0.0)
        with pytest.raises(ValueError):
            BackendErrorBurst(0, 10, 1.5)
        with pytest.raises(ValueError):
            FlakyConnection(0, 10, -0.1)

    def test_non_fault_rejected(self):
        with pytest.raises(TypeError, match="not a fault"):
            FaultPlan(["nope"])


class TestRand01:
    def test_pure_function(self):
        assert rand01(7, 42, CHAN_JITTER, 3) == rand01(7, 42, CHAN_JITTER, 3)

    def test_in_unit_interval(self):
        draws = [rand01(1, t, CHAN_CONN_DROP) for t in range(1000)]
        assert all(0.0 <= u < 1.0 for u in draws)

    def test_channels_are_independent(self):
        a = rand01(1, 5, CHAN_BACKEND_ERROR)
        b = rand01(1, 5, CHAN_CONN_DROP)
        c = rand01(1, 5, CHAN_JITTER)
        assert len({a, b, c}) == 3

    def test_seed_and_tick_and_parts_matter(self):
        base = rand01(1, 5, CHAN_JITTER, 9)
        assert rand01(2, 5, CHAN_JITTER, 9) != base
        assert rand01(1, 6, CHAN_JITTER, 9) != base
        assert rand01(1, 5, CHAN_JITTER, 10) != base

    def test_roughly_uniform(self):
        draws = [rand01(3, t, CHAN_BACKEND_ERROR) for t in range(10_000)]
        assert abs(sum(draws) / len(draws) - 0.5) < 0.02


class TestQueries:
    def test_node_down_window(self):
        plan = FaultPlan([NodeCrash("a", 10, rejoin=20)])
        assert not plan.node_down("a", 9)
        assert plan.node_down("a", 10)
        assert plan.node_down("a", 19)
        assert not plan.node_down("a", 20)
        assert not plan.node_down("b", 15)

    def test_crash_without_rejoin_is_forever(self):
        plan = FaultPlan([NodeCrash("a", 5)])
        assert plan.node_down("a", 10 ** 9)

    def test_slow_extra_sums_overlaps(self):
        plan = FaultPlan([SlowNode("a", 0, 100, 0.01),
                          SlowNode("a", 50, 100, 0.02)])
        assert plan.slow_extra("a", 10) == pytest.approx(0.01)
        assert plan.slow_extra("a", 60) == pytest.approx(0.03)
        assert plan.slow_extra("a", 100) == 0.0
        assert plan.slow_extra("b", 60) == 0.0

    def test_backend_multiplier_compounds(self):
        plan = FaultPlan([BackendSpike(0, 100, 2.0),
                          BackendSpike(50, 100, 3.0)])
        assert plan.backend_multiplier(10) == pytest.approx(2.0)
        assert plan.backend_multiplier(60) == pytest.approx(6.0)
        assert plan.backend_multiplier(100) == pytest.approx(1.0)

    def test_backend_error_rate_zero_and_one(self):
        never = FaultPlan([BackendErrorBurst(0, 100, 0.0)])
        always = FaultPlan([BackendErrorBurst(0, 100, 1.0)])
        assert not any(never.backend_error(t) for t in range(100))
        assert all(always.backend_error(t) for t in range(100))
        assert not always.backend_error(100)  # outside the window

    def test_backend_error_rate_is_respected(self):
        plan = FaultPlan([BackendErrorBurst(0, 20_000, 0.1)], seed=11)
        rate = sum(plan.backend_error(t) for t in range(20_000)) / 20_000
        assert rate == pytest.approx(0.1, abs=0.01)

    def test_conn_dropped_scoping_and_attempts(self):
        plan = FaultPlan([FlakyConnection(0, 1000, 1.0, node="a")])
        assert plan.conn_dropped("a", 5)
        assert not plan.conn_dropped("b", 5)
        cluster_wide = FaultPlan([FlakyConnection(0, 1000, 1.0)])
        assert cluster_wide.conn_dropped("b", 5)
        # a retry is a fresh draw, not a replay of the failed attempt
        flaky = FaultPlan([FlakyConnection(0, 10_000, 0.5)], seed=3)
        differs = any(
            flaky.conn_dropped("a", t, 0) != flaky.conn_dropped("a", t, 1)
            for t in range(100))
        assert differs

    def test_identical_plans_give_identical_trajectories(self):
        def mk():
            return FaultPlan([BackendErrorBurst(0, 5000, 0.2),
                              FlakyConnection(0, 5000, 0.1)], seed=42)

        p, q = mk(), mk()
        for t in range(5000):
            assert p.backend_error(t) == q.backend_error(t)
            assert p.conn_dropped("n", t) == q.conn_dropped("n", t)
            assert p.jitter(t, 1) == q.jitter(t, 1)

    def test_seed_changes_trajectory_not_rate(self):
        a = FaultPlan([BackendErrorBurst(0, 10_000, 0.2)], seed=1)
        b = FaultPlan([BackendErrorBurst(0, 10_000, 0.2)], seed=2)
        hits_a = [a.backend_error(t) for t in range(10_000)]
        hits_b = [b.backend_error(t) for t in range(10_000)]
        assert hits_a != hits_b
        assert sum(hits_a) / 10_000 == pytest.approx(0.2, abs=0.02)
        assert sum(hits_b) / 10_000 == pytest.approx(0.2, abs=0.02)


class TestIntrospection:
    def test_empty(self):
        assert FaultPlan().empty
        assert not FaultPlan([NodeCrash("a", 0)]).empty

    def test_nodes_touched(self):
        plan = FaultPlan([NodeCrash("a", 0), SlowNode("b", 0, 10, 0.1),
                          FlakyConnection(0, 10, 0.5, node="c"),
                          FlakyConnection(0, 10, 0.5),
                          BackendSpike(0, 10, 2.0)])
        assert plan.nodes_touched() == {"a", "b", "c"}

    def test_describe(self):
        assert "no faults" in FaultPlan(seed=9).describe()
        text = FaultPlan([NodeCrash("a", 3)], seed=9).describe()
        assert "seed=9" in text and "NodeCrash" in text
