"""The cluster's resilient routing under injected faults.

The two load-bearing guarantees:

* ``faults=None`` and an *empty* plan produce byte-identical
  simulation results (arming the layer costs nothing but time);
* the whole faulted pipeline is deterministic — same seed, same
  trajectory, same counters.
"""

import pytest

from repro.cache import SizeClassConfig
from repro.cluster import CacheCluster
from repro.faults import (FaultInjector, FaultPlan, FlakyConnection,
                          NodeCrash, ResilienceConfig, SlowNode)
from repro.policies import make_policy
from repro.sim.simulator import simulate
from repro.traces import ETC, generate

MIB = 1 << 20
NODES = ["n0", "n1", "n2"]


def build_cluster(faults=None, policy="memcached", nodes=NODES):
    return CacheCluster(list(nodes), 2 * MIB,
                        lambda: make_policy(policy),
                        size_classes=SizeClassConfig(slab_size=64 << 10),
                        faults=faults)


def small_trace(n=20_000, seed=5):
    return generate(ETC.scaled(0.02), n, seed=seed)


def keys_owned_by(cluster, node, count=5):
    """Key strings whose primary owner is ``node``."""
    out = []
    i = 0
    while len(out) < count:
        key = f"probe-{i}"
        if cluster.ring.node_for(key) == node:
            out.append(key)
        i += 1
    return out


class TestDisabledPathIdentity:
    def test_empty_plan_equals_no_injector(self):
        trace = small_trace()
        plain = simulate(trace, build_cluster(), window_gets=5000)
        inj = FaultInjector(FaultPlan())
        armed = simulate(trace, build_cluster(inj), window_gets=5000,
                         faults=inj)
        assert armed.hit_ratio == plain.hit_ratio
        assert armed.avg_service_time == plain.avg_service_time
        assert armed.total_gets == plain.total_gets
        assert armed.hit_ratio_series() == plain.hit_ratio_series()
        assert armed.service_time_series() == plain.service_time_series()
        assert armed.cache_stats == plain.cache_stats
        # nothing fired
        assert inj.counters == {}
        assert inj.degraded_time == 0.0

    def test_faulted_run_is_deterministic(self):
        trace = small_trace()
        plan_faults = [NodeCrash("n0", 2000, rejoin=6000),
                       FlakyConnection(0, 20_000, 0.02),
                       SlowNode("n1", 8000, 12_000, 0.01)]

        def run():
            inj = FaultInjector(FaultPlan(plan_faults, seed=13))
            result = simulate(trace, build_cluster(inj), window_gets=5000,
                              faults=inj)
            return result, inj.snapshot()

        (r1, c1), (r2, c2) = run(), run()
        assert c1 == c2
        assert r1.hit_ratio == r2.hit_ratio
        assert r1.avg_service_time == r2.avg_service_time
        assert r1.service_time_series() == r2.service_time_series()

    def test_different_seed_different_trajectory(self):
        trace = small_trace()

        def run(seed):
            inj = FaultInjector(
                FaultPlan([FlakyConnection(0, 20_000, 0.05)], seed=seed))
            simulate(trace, build_cluster(inj), window_gets=5000, faults=inj)
            return inj.snapshot()

        assert run(1) != run(2)


class TestFailover:
    def test_down_node_fails_over_to_ring_successor(self):
        inj = FaultInjector(FaultPlan([NodeCrash("n0", 0)]))
        cluster = build_cluster(inj)
        inj.advance()
        key = keys_owned_by(cluster, "n0", 1)[0]
        assert cluster.ring.successors(key)[0] == "n0"
        backup = cluster.ring.successors(key)[1]
        assert cluster.set(key, 16, 100, 0.1)
        assert key in cluster.nodes[backup]
        assert key not in cluster.nodes["n0"]
        assert inj.counters["failovers"] == 1
        assert inj.counters["node_down"] == 1
        # discovering the dead node cost one op timeout
        assert inj.consume_latency() == pytest.approx(
            inj.resilience.op_timeout)

    def test_failover_disabled_degrades_instead(self):
        cfg = ResilienceConfig(failover=False)
        inj = FaultInjector(FaultPlan([NodeCrash("n0", 0)]), resilience=cfg)
        cluster = build_cluster(inj)
        inj.advance()
        key = keys_owned_by(cluster, "n0", 1)[0]
        assert cluster.set(key, 16, 100, 0.1) is False
        assert cluster.get(key) is None
        assert inj.counters["op_failed"] == 2
        assert "failovers" not in inj.counters

    def test_failover_agrees_with_permanent_removal(self):
        inj = FaultInjector(FaultPlan([NodeCrash("n0", 0)]))
        cluster = build_cluster(inj)
        reference = build_cluster()
        reference.remove_node("n0")
        for key in keys_owned_by(cluster, "n0", 10):
            live = [n for n in cluster.ring.successors(key) if n != "n0"]
            assert live[0] == reference.ring.node_for(key)


class TestBreaker:
    def test_persistent_crash_opens_the_breaker(self):
        cfg = ResilienceConfig(breaker_threshold=3, breaker_reset_ticks=50)
        inj = FaultInjector(FaultPlan([NodeCrash("n0", 0)]), resilience=cfg)
        cluster = build_cluster(inj)
        keys = keys_owned_by(cluster, "n0", 10)
        for key in keys:
            inj.advance()
            cluster.get(key)
        assert cluster.breakers["n0"].state == "open"
        assert inj.counters["breaker_open"] == 1
        assert inj.counters["breaker_rejected"] > 0
        # open breaker short-circuits: failures stop accruing node_down
        assert inj.counters["node_down"] == cfg.breaker_threshold

    def test_breaker_recovers_after_rejoin(self):
        cfg = ResilienceConfig(breaker_threshold=2, breaker_reset_ticks=5)
        inj = FaultInjector(FaultPlan([NodeCrash("n0", 0, rejoin=3)]),
                            resilience=cfg)
        cluster = build_cluster(inj)
        keys = keys_owned_by(cluster, "n0", 12)
        for key in keys:
            inj.advance()
            cluster.get(key)
        assert cluster.breakers["n0"].state == "closed"
        assert inj.counters["breaker_closed"] == 1
        assert inj.counters["node_rejoin"] == 1


class TestNodeRejoin:
    def test_rejoin_restarts_cold(self):
        inj = FaultInjector(FaultPlan([NodeCrash("n0", 5, rejoin=10)]))
        cluster = build_cluster(inj)
        key = keys_owned_by(cluster, "n0", 1)[0]
        inj.advance()  # tick 0: healthy
        cluster.set(key, 16, 100, 0.1)
        assert key in cluster.nodes["n0"]
        old_cache = cluster.nodes["n0"]
        while inj.advance() < 5:
            pass
        cluster.get(key)  # tick 5: observed down (restarts are detected
        while inj.advance() < 10:  # on access, like a real client would)
            pass
        cluster.get(key)  # first touch after the rejoin window
        assert cluster.nodes["n0"] is not old_cache
        assert len(cluster.nodes["n0"]) == 0
        assert inj.counters["node_rejoin"] == 1


class TestTransientFaults:
    def test_conn_drop_is_retried(self):
        # Certain drop on every attempt: retries exhaust, next node wins.
        inj = FaultInjector(
            FaultPlan([FlakyConnection(0, 100, 1.0, node="n0")]))
        cluster = build_cluster(inj)
        inj.advance()
        key = keys_owned_by(cluster, "n0", 1)[0]
        assert cluster.set(key, 16, 100, 0.1)
        assert inj.counters["conn_drop"] == 1 + inj.resilience.max_retries
        assert inj.counters["retries"] == inj.resilience.max_retries
        assert inj.counters["failovers"] == 1
        assert inj.consume_latency() > 0  # backoff delays accrued

    def test_slow_node_below_timeout_adds_latency(self):
        inj = FaultInjector(FaultPlan([SlowNode("n0", 0, 100, 0.01)]))
        cluster = build_cluster(inj)
        inj.advance()
        key = keys_owned_by(cluster, "n0", 1)[0]
        cluster.set(key, 16, 100, 0.1)
        assert inj.counters["slow_op"] == 1
        assert inj.consume_latency() == pytest.approx(0.01)
        assert key in cluster.nodes["n0"]  # served locally, just slowly

    def test_slow_node_at_timeout_is_a_timeout(self):
        cfg = ResilienceConfig(op_timeout=0.05, max_retries=1)
        inj = FaultInjector(FaultPlan([SlowNode("n0", 0, 100, 0.05)]),
                            resilience=cfg)
        cluster = build_cluster(inj)
        inj.advance()
        key = keys_owned_by(cluster, "n0", 1)[0]
        assert cluster.set(key, 16, 100, 0.1)
        assert inj.counters["op_timeout"] == 2  # first try + one retry
        assert inj.counters["failovers"] == 1
        assert key not in cluster.nodes["n0"]


class TestBlackout:
    def test_all_nodes_down_degrades_but_ring_survives(self):
        inj = FaultInjector(FaultPlan([NodeCrash(n, 0) for n in NODES]))
        cluster = build_cluster(inj)
        for i in range(20):
            inj.advance()
            assert cluster.get(f"k{i}") is None
            assert cluster.set(f"k{i}", 16, 100, 0.1) is False
        assert inj.counters["op_failed"] == 40
        assert set(cluster.ring.nodes) == set(NODES)
        cluster.check_invariants()

    def test_remove_node_still_refuses_to_empty_the_ring(self):
        inj = FaultInjector(FaultPlan([NodeCrash("solo", 0)]))
        cluster = build_cluster(inj, nodes=["solo"])
        with pytest.raises(ValueError, match="last node"):
            cluster.remove_node("solo")
        # crashed-but-present is fine; gone would be unroutable
        cluster.check_invariants()


class TestServeStale:
    def trace_with_misses(self):
        return generate(ETC.scaled(0.02), 10_000, seed=9)

    def run(self, serve_stale):
        cfg = ResilienceConfig(serve_stale=serve_stale)
        from repro.faults import BackendErrorBurst
        inj = FaultInjector(FaultPlan([BackendErrorBurst(0, 10_000, 1.0)]),
                            resilience=cfg)
        result = simulate(self.trace_with_misses(), build_cluster(inj),
                          window_gets=2000, faults=inj)
        return result, inj

    def test_stale_serving_beats_error_penalty(self):
        stale, inj_s = self.run(serve_stale=True)
        hard, inj_h = self.run(serve_stale=False)
        assert inj_s.counters["stale_served"] == inj_s.counters[
            "backend_error"]
        assert inj_h.counters["backend_give_up"] == inj_h.counters[
            "backend_error"]
        assert "stale_served" not in inj_h.counters
        assert stale.avg_service_time < hard.avg_service_time
        assert inj_s.degraded_time < inj_h.degraded_time
        assert inj_s.degraded_time > 0
