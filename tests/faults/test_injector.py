"""FaultInjector: clock, latency channel, counters, obs mirroring."""

from repro import obs
from repro.faults import FaultInjector, FaultPlan
from repro.obs import EventTrace, Registry


class TestClockAndLatency:
    def test_tick_starts_before_zero_and_advances(self):
        inj = FaultInjector()
        assert inj.tick == -1
        assert inj.advance() == 0
        assert inj.advance() == 1

    def test_latency_channel_accumulates_and_drains(self):
        inj = FaultInjector()
        inj.add_latency(0.01)
        inj.add_latency(0.02)
        assert inj.consume_latency() == 0.03
        assert inj.consume_latency() == 0.0

    def test_advance_clears_stale_latency(self):
        inj = FaultInjector()
        inj.add_latency(1.0)
        inj.advance()
        assert inj.consume_latency() == 0.0

    def test_default_plan_is_empty(self):
        assert FaultInjector().plan.empty


class TestAccounting:
    def test_counters_and_snapshot(self):
        inj = FaultInjector(FaultPlan())
        inj.count("retries")
        inj.count("retries", 2)
        inj.note_degraded(0.5)
        snap = inj.snapshot()
        assert snap["retries"] == 3
        assert snap["degraded_time"] == 0.5

    def test_events_dropped_without_a_trace(self):
        inj = FaultInjector()
        inj.event("node_crash", node="a")  # no sink attached: no-op

    def test_obs_mirroring(self):
        reg, events = Registry(), EventTrace()
        inj = FaultInjector(obs=reg, events=events)
        inj.advance()
        inj.count("conn_drop")
        inj.count("conn_drop")
        inj.note_degraded(0.25)
        inj.event("breaker_transition", node="a", old="closed", new="open")
        assert reg.counter("faults_conn_drop_total", "").value == 2
        assert reg.gauge("faults_degraded_time_seconds", "").value == 0.25
        kinds = [e.kind for e in events]
        assert "breaker_transition" in kinds

    def test_global_obs_auto_attach(self):
        obs.enable()
        try:
            inj = FaultInjector()
            assert inj.obs is obs.get_registry()
            inj.count("node_down")
            assert obs.get_registry().counter(
                "faults_node_down_total", "").value == 1
        finally:
            obs.disable()

    def test_no_obs_by_default(self):
        assert FaultInjector().obs is None
