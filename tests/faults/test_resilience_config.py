"""ResilienceConfig validation and the backoff formula."""

import pytest

from repro.faults import ResilienceConfig


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = ResilienceConfig()
        assert cfg.failover and cfg.serve_stale

    @pytest.mark.parametrize("kwargs", [
        {"op_timeout": -1.0},
        {"backoff_base": -0.1},
        {"max_retries": -1},
        {"backoff_factor": 0.5},
        {"backoff_jitter": 1.5},
        {"breaker_threshold": 0},
        {"breaker_reset_ticks": 0},
        {"stale_serve_time": -1.0},
        {"error_penalty": -1.0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ResilienceConfig().op_timeout = 1.0


class TestBackoff:
    def test_exponential_growth(self):
        cfg = ResilienceConfig(backoff_base=0.01, backoff_factor=2.0,
                               backoff_jitter=0.0)
        assert cfg.backoff(1, 0.0) == pytest.approx(0.01)
        assert cfg.backoff(2, 0.0) == pytest.approx(0.02)
        assert cfg.backoff(3, 0.0) == pytest.approx(0.04)

    def test_jitter_scales_with_the_draw(self):
        cfg = ResilienceConfig(backoff_base=0.01, backoff_factor=2.0,
                               backoff_jitter=0.5)
        assert cfg.backoff(1, 0.0) == pytest.approx(0.01)
        assert cfg.backoff(1, 1.0) == pytest.approx(0.015)
