"""Multi-client stress test: the server under concurrent load."""

import threading

import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.core import PamaPolicy
from repro.server import CacheClient, start_server


@pytest.fixture
def server():
    cache = SlabCache(4 << 20, PamaPolicy(),
                      SizeClassConfig(slab_size=64 << 10))
    srv = start_server(cache)
    yield srv
    srv.shutdown()
    srv.server_close()


class TestConcurrentClients:
    N_THREADS = 8
    OPS_PER_THREAD = 150

    def test_parallel_mixed_workload(self, server):
        errors: list[Exception] = []

        def worker(tid: int) -> None:
            try:
                with CacheClient(port=server.port) as client:
                    for i in range(self.OPS_PER_THREAD):
                        key = f"t{tid}:k{i % 20}"
                        if i % 3 == 0:
                            client.set(key, f"v{tid}:{i}".encode(),
                                       penalty=0.01 * (tid + 1))
                        elif i % 3 == 1:
                            value = client.get(key)
                            if value is not None:
                                assert value.startswith(f"v{tid}:".encode())
                        else:
                            client.delete(key)
            except Exception as exc:  # noqa: BLE001 - surface to main thread
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        server.cache.check_invariants()

    def test_shared_counter_under_contention(self, server):
        with CacheClient(port=server.port) as seed:
            seed.set("counter", b"0")
        increments_per_thread = 50
        errors: list[Exception] = []

        def bump() -> None:
            try:
                with CacheClient(port=server.port) as client:
                    for _ in range(increments_per_thread):
                        client.incr("counter", 1)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=bump) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        with CacheClient(port=server.port) as check:
            # incr is atomic under the server's lock: no lost updates
            assert check.get("counter") == str(
                6 * increments_per_thread).encode()
