"""Smoke tests for the memtier-style load generator."""

import pytest

from repro.cache import SizeClassConfig
from repro.core import PamaPolicy
from repro.server import (LoadgenConfig, ShardSet, run_loadgen_sync,
                          start_async_server)


@pytest.fixture
def handle():
    shards = ShardSet(8 << 20, PamaPolicy,
                      SizeClassConfig(slab_size=64 << 10), nshards=2)
    h = start_async_server(shards)
    yield h
    h.stop()


class TestLoadgen:
    def test_smoke_run_accounts_every_op(self, handle):
        cfg = LoadgenConfig(connections=4, pipeline=4, ops=400,
                            get_ratio=0.8, keys=100, value_size=32, seed=7)
        result = run_loadgen_sync("127.0.0.1", handle.port, cfg)
        assert result.ops == 400
        assert result.gets + result.sets == 400
        assert result.errors == 0
        assert result.elapsed > 0
        assert result.ops_per_sec > 0

    def test_preload_makes_gets_hit(self, handle):
        cfg = LoadgenConfig(connections=2, pipeline=2, ops=200,
                            get_ratio=1.0, keys=50, value_size=16,
                            seed=3, preload=True)
        result = run_loadgen_sync("127.0.0.1", handle.port, cfg)
        assert result.gets == 200
        assert result.sets == 0
        assert result.hit_ratio == 1.0  # every key preloaded, none evicted

    def test_latencies_recorded_per_batch(self, handle):
        cfg = LoadgenConfig(connections=2, pipeline=8, ops=160,
                            keys=50, seed=1)
        result = run_loadgen_sync("127.0.0.1", handle.port, cfg)
        assert len(result.batch_latencies) == 160 // 8
        assert result.latency_quantile(0.5) > 0
        assert (result.latency_quantile(0.99)
                >= result.latency_quantile(0.5))

    def test_deterministic_op_mix(self, handle):
        # the op sequence is a pure function of the seed: two runs issue
        # identical get/set splits
        cfg = LoadgenConfig(connections=3, pipeline=4, ops=300,
                            get_ratio=0.5, keys=80, seed=42)
        a = run_loadgen_sync("127.0.0.1", handle.port, cfg)
        b = run_loadgen_sync("127.0.0.1", handle.port, cfg)
        assert (a.gets, a.sets) == (b.gets, b.sets)
        assert a.gets > 0 and a.sets > 0

    def test_format_mentions_throughput(self, handle):
        cfg = LoadgenConfig(connections=2, pipeline=2, ops=100,
                            keys=20, seed=5)
        result = run_loadgen_sync("127.0.0.1", handle.port, cfg)
        text = result.format()
        assert "ops/s" in text
        assert "p99" in text

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadgenConfig(connections=0)
        with pytest.raises(ValueError):
            LoadgenConfig(get_ratio=1.5)
        with pytest.raises(ValueError):
            LoadgenConfig(ops=-1)
