"""Back-compat pins for the shared shard-routing function.

``shard_of`` moved from a server-local helper to the shared
:func:`repro.bloom.hashing.key_shard` (so the simulator's key-sharded
replay routes exactly like the async server).  These pins guarantee the
move changed nothing observable: string keys land on the same shards
they always did, the seed is unchanged, and the vectorized router
agrees element-wise.
"""

import numpy as np

from repro.bloom.hashing import SHARD_SEED as HASHING_SHARD_SEED
from repro.bloom.hashing import hash_key, key_shard, key_shard_array
from repro.server.shard import SHARD_SEED, shard_of

# Captured from the pre-refactor server-local shard_of: any drift here
# would re-home live keys on a rolling upgrade.
PINNED_STR_4 = [3, 1, 1, 3, 0, 3, 2, 1, 0, 3]
PINNED_STR_8 = [3, 5, 1, 3, 0, 3, 2, 5, 0, 7]
PINNED_INT_4 = [2, 1, 3, 0, 2, 1, 3, 3, 2, 0]


class TestShardOfBackCompat:
    def test_string_keys_pinned(self):
        assert [shard_of(f"key:{i}", 4) for i in range(10)] == PINNED_STR_4
        assert [shard_of(f"key:{i}", 8) for i in range(10)] == PINNED_STR_8

    def test_int_keys_accepted(self):
        # key-type-agnostic: the simulator routes int64 trace keys
        # through the same function the server routes str keys through.
        assert [shard_of(i, 4) for i in range(10)] == PINNED_INT_4

    def test_seed_unchanged_and_reexported(self):
        assert SHARD_SEED == 0x51A8D
        assert SHARD_SEED is HASHING_SHARD_SEED

    def test_shard_of_is_seeded_hash_mod(self):
        for key in ("key:0", "a-longer-key", 12345, -7):
            for nshards in (1, 2, 4, 8, 13):
                assert (shard_of(key, nshards)
                        == hash_key(key, SHARD_SEED) % nshards)
                assert shard_of(key, nshards) == key_shard(key, nshards)

    def test_vectorized_router_agrees(self):
        keys = np.arange(-50, 50, dtype=np.int64)
        for nshards in (1, 2, 4, 8):
            got = key_shard_array(keys, nshards).tolist()
            assert got == [shard_of(int(k), nshards) for k in keys]
