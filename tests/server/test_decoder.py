"""Unit tests for the incremental pipelined decoder."""

import pytest

from repro.server import protocol as p


def drain(decoder):
    return list(decoder.events())


def feed_all(data: bytes, chunk: int = 0):
    """Feed ``data`` (whole, or in ``chunk``-byte pieces); return events."""
    d = p.StreamDecoder()
    events = []
    if chunk:
        for i in range(0, len(data), chunk):
            d.feed(data[i:i + chunk])
            events.extend(d.events())
    else:
        d.feed(data)
        events.extend(d.events())
    return events


class TestBasicDecoding:
    def test_single_get(self):
        (ev,) = feed_all(b"get alpha\r\n")
        assert ev[0] == p.EV_COMMAND
        assert ev[1] == p.GetCommand(keys=("alpha",))
        assert ev[2] is None

    def test_storage_with_data_block(self):
        (ev,) = feed_all(b"set k 7 0 3\r\nabc\r\n")
        assert ev[0] == p.EV_COMMAND
        assert ev[1].verb == "set" and ev[1].nbytes == 3
        assert ev[2] == b"abc"

    def test_pipelined_burst_decodes_in_one_pass(self):
        data = (b"set a 0 0 1\r\nx\r\n"
                b"get a\r\n"
                b"delete a noreply\r\n"
                b"version\r\n")
        events = feed_all(data)
        kinds = [type(ev[1]).__name__ for ev in events]
        assert kinds == ["SetCommand", "GetCommand", "DeleteCommand",
                        "VersionCommand"]

    def test_empty_lines_are_skipped(self):
        events = feed_all(b"\r\n\r\nversion\r\n")
        assert len(events) == 1
        assert isinstance(events[0][1], p.VersionCommand)

    def test_bare_lf_line_endings_accepted(self):
        (ev,) = feed_all(b"get alpha\n")
        assert ev[1] == p.GetCommand(keys=("alpha",))

    def test_value_containing_crlf_survives(self):
        payload = b"a\r\nEND\r\nb"
        (ev,) = feed_all(b"set k 0 0 %d\r\n%s\r\n" % (len(payload), payload))
        assert ev[2] == payload


class TestChunkedArrival:
    @pytest.mark.parametrize("chunk", [1, 2, 3, 7])
    def test_byte_at_a_time_equals_one_shot(self, chunk):
        data = (b"set k 1 0 5\r\nhello\r\n"
                b"gets k\r\n"
                b"incr n 4\r\n"
                b"quit\r\n")
        assert feed_all(data, chunk=chunk) == feed_all(data)

    def test_data_block_split_across_chunks(self):
        d = p.StreamDecoder()
        d.feed(b"set k 0 0 6\r\nfoo")
        assert drain(d) == []
        d.feed(b"bar\r\nversion\r\n")
        events = drain(d)
        assert events[0][2] == b"foobar"
        assert isinstance(events[1][1], p.VersionCommand)

    def test_buffered_counts_unconsumed_bytes(self):
        d = p.StreamDecoder()
        d.feed(b"set k 0 0 10\r\nabc")
        drain(d)
        assert d.buffered == 3  # partial data block retained


class TestErrorRecovery:
    def test_recoverable_storage_error_drains_data_block(self):
        # flags is bad but the byte count (7) is readable: the 7+2
        # payload bytes spell a valid command and must NOT be decoded.
        events = feed_all(b"set k bad 0 7\r\nversion\r\nversion\r\n")
        assert events[0][0] == p.EV_ERROR
        assert len(events) == 2
        assert isinstance(events[1][1], p.VersionCommand)

    def test_drain_split_across_chunks(self):
        d = p.StreamDecoder()
        d.feed(b"set k bad 0 10\r\nabc")
        assert drain(d) == []  # still draining, no event yet
        d.feed(b"0123456\r\nversion\r\n")
        events = drain(d)
        assert events[0][0] == p.EV_ERROR
        assert isinstance(events[1][1], p.VersionCommand)

    def test_unknowable_byte_count_is_fatal(self):
        events = feed_all(b"set k 0 0 xyz\r\nwhatever")
        assert events[-1][0] == p.EV_FATAL
        d = p.StreamDecoder()
        d.feed(b"set k 0 0 xyz\r\n")
        list(d.events())
        assert d.closed
        d.feed(b"version\r\n")  # refused after close
        assert drain(d) == []

    def test_bad_trailer_is_fatal(self):
        events = feed_all(b"set k 0 0 3\r\nabcXYjunk")
        assert events == [(p.EV_FATAL, "bad data chunk")]

    def test_unknown_command_is_recoverable(self):
        events = feed_all(b"bogus\r\nversion\r\n")
        assert events[0][0] == p.EV_ERROR
        assert isinstance(events[1][1], p.VersionCommand)

    def test_oversized_line_is_fatal(self):
        events = feed_all(b"g" * (p.StreamDecoder.MAX_LINE + 2))
        assert events == [(p.EV_FATAL, "command line too long")]
