"""End-to-end tests for the protocol correctness fixes.

Covers gets/cas (cas ids on the wire), connection resync after a
malformed storage line, strict unsigned incr/decr parsing, the
SERVER_ERROR path for unexpected failures, and ``stats detail``.
"""

import socket

import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.core import PamaPolicy
from repro.server import CacheClient, start_server


@pytest.fixture
def server():
    cache = SlabCache(2 << 20, PamaPolicy(),
                      SizeClassConfig(slab_size=64 << 10))
    srv = start_server(cache)
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture
def client(server):
    with CacheClient(port=server.port) as c:
        yield c


@pytest.fixture
def raw(server):
    with socket.create_connection(("127.0.0.1", server.port),
                                  timeout=5.0) as sock:
        yield sock, sock.makefile("rb")


class TestGetsCas:
    def test_gets_returns_cas_that_changes_on_store(self, client):
        client.set("k", b"one")
        value, cas1 = client.gets("k")
        assert value == b"one"
        client.set("k", b"two")
        value, cas2 = client.gets("k")
        assert value == b"two"
        assert cas2 > cas1

    def test_cas_round_trip(self, client):
        client.set("k", b"v1")
        _, cas = client.gets("k")
        assert client.cas("k", b"v2", cas) is True          # STORED
        assert client.get("k") == b"v2"
        assert client.cas("k", b"v3", cas) is False         # EXISTS (stale)
        assert client.get("k") == b"v2"
        client.delete("k")
        assert client.cas("k", b"v4", cas) is None          # NOT_FOUND

    def test_wire_formats(self, raw):
        sock, f = raw
        sock.sendall(b"set k 7 0 3\r\nabc\r\n")
        assert f.readline() == b"STORED\r\n"
        sock.sendall(b"get k\r\n")
        assert len(f.readline().split()) == 4   # VALUE key flags bytes
        f.readline(), f.readline()              # data, END
        sock.sendall(b"gets k\r\n")
        parts = f.readline().split()
        assert len(parts) == 5                  # ... + cas unique
        assert parts[:4] == [b"VALUE", b"k", b"7", b"3"]
        assert parts[4].isdigit()

    def test_cas_requires_unsigned_unique(self, raw):
        sock, f = raw
        sock.sendall(b"cas k 0 0 3 -1\r\nabc\r\n")
        assert f.readline().startswith(b"CLIENT_ERROR")
        # byte count was readable, so the data block is drained and the
        # connection stays in sync
        sock.sendall(b"version\r\n")
        assert f.readline().startswith(b"VERSION")


class TestStorageLineResync:
    def test_bad_flags_drains_data_block(self, raw):
        sock, f = raw
        # flags is not an integer but the byte count (7) is readable:
        # the server must consume the 7+2 payload bytes — which spell a
        # valid command — without executing them.
        sock.sendall(b"set k bad 0 7\r\nversion\r\n")
        assert f.readline().startswith(b"CLIENT_ERROR")
        sock.sendall(b"version\r\n")
        assert f.readline().startswith(b"VERSION")
        sock.sendall(b"quit\r\n")
        assert f.readline() == b""  # exactly one VERSION was answered

    def test_unknowable_byte_count_closes_connection(self, raw):
        sock, f = raw
        sock.sendall(b"set k 0 0 xyz\r\n")
        assert f.readline().startswith(b"CLIENT_ERROR")
        assert f.readline() == b""  # server closed: resync impossible

    def test_bad_trailer_closes_connection(self, raw):
        sock, f = raw
        sock.sendall(b"set k 0 0 3\r\nabcXYjunk")
        assert f.readline().startswith(b"CLIENT_ERROR")
        assert f.readline() == b""

    def test_eof_mid_data_block_is_silent(self, raw):
        sock, f = raw
        sock.sendall(b"set k 0 0 10\r\nabc")
        sock.shutdown(socket.SHUT_WR)
        assert f.readline() == b""  # no reply, no hang

    def test_eof_mid_drain_is_silent(self, raw):
        sock, f = raw
        sock.sendall(b"set k bad 0 10\r\nabc")
        sock.shutdown(socket.SHUT_WR)
        assert f.readline() == b""


class TestStrictIncrDecr:
    def test_incr_decr_still_work(self, client):
        client.set("n", b"10")
        assert client.incr("n", 5) == 15
        assert client.decr("n", 20) == 0  # clamped

    @pytest.mark.parametrize("delta", [b"+5", b"1_0", b"5.0", b"-3"])
    def test_signed_or_exotic_deltas_rejected(self, raw, delta):
        sock, f = raw
        sock.sendall(b"set n 0 0 2\r\n10\r\n")
        assert f.readline() == b"STORED\r\n"
        sock.sendall(b"incr n " + delta + b"\r\n")
        assert f.readline().startswith(b"CLIENT_ERROR")
        # parse error only — connection stays usable
        sock.sendall(b"incr n 1\r\n")
        assert f.readline() == b"11\r\n"

    @pytest.mark.parametrize("value", [b"+10", b" 10 ", b"1_0", b"ten"])
    def test_non_numeric_stored_values_rejected(self, client, value):
        client.set("n", value)
        with pytest.raises(RuntimeError, match="CLIENT_ERROR"):
            client.incr("n")


class TestServerErrorPath:
    def test_unexpected_exception_replies_then_closes(self, server, raw):
        sock, f = raw

        def boom(*_a, **_k):
            raise RuntimeError("boom")

        server.cache.get = boom
        sock.sendall(b"get k\r\n")
        assert f.readline() == b"SERVER_ERROR boom\r\n"
        assert f.readline() == b""  # closed after the reply
        assert server.registry.get("server_errors_total").value == 1


class TestStatsDetail:
    def test_plain_stats_has_flat_counters_only(self, client):
        client.set("k", b"v")
        stats = client.stats()
        assert int(stats["cache_sets_total"]) >= 1
        assert not any("latency" in k for k in stats)

    def test_stats_detail_exposes_registry_and_events(self, client):
        client.set("k", b"v")
        client.get("k")
        stats = client.stats("detail")
        assert int(stats["cache_hits_total"]) >= 1
        assert int(stats["server_cmd_latency_seconds{cmd=get}_count"]) >= 1
        assert "server_cmd_latency_seconds{cmd=get}_p99" in stats
        assert int(stats["events_recorded"]) >= 0

    def test_stats_rejects_unknown_argument(self, raw):
        sock, f = raw
        sock.sendall(b"stats bogus\r\n")
        assert f.readline().startswith(b"CLIENT_ERROR")
