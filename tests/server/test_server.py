"""End-to-end tests for the server and client over real sockets."""

import socket

import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.core import PamaPolicy
from repro.policies import StaticMemcachedPolicy
from repro.server import CacheClient, start_server


@pytest.fixture
def server():
    cache = SlabCache(2 << 20, PamaPolicy(),
                      SizeClassConfig(slab_size=64 << 10))
    srv = start_server(cache)
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture
def client(server):
    with CacheClient(port=server.port) as c:
        yield c


class TestServerRoundTrip:
    def test_set_get_delete(self, client):
        assert client.set("alpha", b"value-1", penalty=0.2)
        assert client.get("alpha") == b"value-1"
        assert client.delete("alpha")
        assert client.get("alpha") is None
        assert not client.delete("alpha")

    def test_penalty_rides_in_flags(self, server, client):
        client.set("k", b"data", penalty=0.25)
        item = server.cache.index["k"]
        assert item.penalty == pytest.approx(0.25)
        # penalty bin routed through PAMA's config
        assert item.bin_idx == server.cache.policy.bin_for(0.25)

    def test_binary_safe_values(self, client):
        payload = bytes(range(256)) + b"\r\nEND\r\n"
        client.set("bin", payload)
        assert client.get("bin") == payload

    def test_multiple_clients(self, server):
        with CacheClient(port=server.port) as a, \
                CacheClient(port=server.port) as b:
            a.set("shared", b"from-a")
            assert b.get("shared") == b"from-a"

    def test_stats_and_version(self, client):
        client.set("x", b"1")
        client.get("x")
        stats = client.stats()
        assert stats["policy"] == "pama"
        assert int(stats["hits"]) >= 1
        assert client.version().startswith("repro-pama/")

    def test_protocol_error_keeps_connection(self, server):
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            f = sock.makefile("rb")
            sock.sendall(b"nonsense\r\n")
            assert f.readline().startswith(b"CLIENT_ERROR")
            sock.sendall(b"version\r\n")
            assert f.readline().startswith(b"VERSION")

    def test_oversized_item_not_stored(self, server):
        with CacheClient(port=server.port) as c:
            assert not c.set("big", b"x" * (128 << 10))  # > one 64KiB slab


class TestServerWithStaticPolicy:
    def test_static_policy_server(self):
        cache = SlabCache(1 << 20, StaticMemcachedPolicy(),
                          SizeClassConfig(slab_size=64 << 10))
        srv = start_server(cache)
        try:
            with CacheClient(port=srv.port) as c:
                for i in range(50):
                    c.set(f"k{i}", b"y" * 100)
                assert int(c.stats()["sets"]) == 50
        finally:
            srv.shutdown()
            srv.server_close()
