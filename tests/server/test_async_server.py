"""End-to-end tests for the async sharded front end."""

import socket

import pytest

from repro.cache import SizeClassConfig
from repro.core import PamaPolicy
from repro.obs import SpanTracer
from repro.server import (CacheClient, ShardSet, shard_of,
                          start_async_server)


def make_shards(nshards: int = 4) -> ShardSet:
    return ShardSet(8 << 20, PamaPolicy,
                    SizeClassConfig(slab_size=64 << 10), nshards=nshards)


@pytest.fixture
def handle():
    h = start_async_server(make_shards())
    yield h
    h.stop()


class TestRoundTrip:
    def test_set_get_delete(self, handle):
        with CacheClient(port=handle.port) as c:
            assert c.set("alpha", b"one")
            assert c.get("alpha") == b"one"
            assert c.delete("alpha")
            assert c.get("alpha") is None

    def test_storage_verbs(self, handle):
        with CacheClient(port=handle.port) as c:
            assert not c.replace("k", b"x")   # absent
            assert c.add("k", b"head")
            assert not c.add("k", b"again")   # present
            assert c.append("k", b"-tail")
            assert c.prepend("k", b"pre-")
            assert c.get("k") == b"pre-head-tail"

    def test_gets_cas(self, handle):
        with CacheClient(port=handle.port) as c:
            c.set("k", b"v1")
            value, cas = c.gets("k")
            assert value == b"v1"
            assert c.cas("k", b"v2", cas) is True
            assert c.cas("k", b"v3", cas) is False  # stale id
            assert c.get("k") == b"v2"

    def test_incr_decr(self, handle):
        with CacheClient(port=handle.port) as c:
            c.set("n", b"10")
            assert c.incr("n", 5) == 15
            assert c.decr("n", 20) == 0  # clamps at zero
            assert c.incr("missing") is None

    def test_binary_safe_values(self, handle):
        payload = bytes(range(256)) + b"\r\nEND\r\n" + bytes(range(256))
        with CacheClient(port=handle.port) as c:
            c.set("bin", payload)
            assert c.get("bin") == payload

    def test_version_and_touch(self, handle):
        with CacheClient(port=handle.port) as c:
            assert c.version().startswith("repro-pama/")
            c.set("k", b"v")
            assert c.touch("k", 100)
            assert not c.touch("missing", 100)


class TestSharding:
    def test_keys_land_on_their_hash_shard(self, handle):
        keys = [f"key-{i}" for i in range(200)]
        with CacheClient(port=handle.port) as c:
            for k in keys:
                c.set(k, b"v")
        shards = handle.shards
        for k in keys:
            idx = shard_of(k, shards.nshards)
            assert shards.shards[idx].get(k) is not None

    def test_distribution_covers_every_shard(self, handle):
        with CacheClient(port=handle.port) as c:
            for i in range(400):
                c.set(f"key-{i}", b"v")
        per_shard = [len(s) for s in handle.shards.shards]
        assert all(n > 0 for n in per_shard)
        assert sum(per_shard) == 400

    def test_stats_aggregate_across_shards(self, handle):
        with CacheClient(port=handle.port) as c:
            for i in range(100):
                c.set(f"key-{i}", b"v")
            for i in range(100):
                c.get(f"key-{i}")
            stats = c.stats()
        assert int(stats["items"]) == 100
        assert int(stats["shards"]) == 4
        assert int(float(stats["hits"])) >= 100
        total = sum(len(s) for s in handle.shards.shards)
        assert int(stats["items"]) == total

    def test_flush_all_clears_every_shard(self, handle):
        with CacheClient(port=handle.port) as c:
            for i in range(100):
                c.set(f"key-{i}", b"v")
            c.flush_all()
            assert c.get("key-0") is None
        assert all(len(s) == 0 for s in handle.shards.shards)


class TestPipelining:
    def test_noreply_pipelined_burst(self, handle):
        # one TCP segment carrying many noreply sets plus a version
        # sentinel: replies must be exactly the sentinel's.
        burst = bytearray()
        for i in range(50):
            burst += b"set k%d 0 0 2 noreply\r\nv%d\r\n" % (i, i % 10)
        burst += b"get k7\r\nversion\r\nquit\r\n"
        with socket.create_connection(("127.0.0.1", handle.port)) as sock:
            sock.sendall(bytes(burst))
            reply = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                reply += chunk
        assert reply.startswith(b"VALUE k7 0 2\r\nv7\r\nEND\r\n")
        assert b"VERSION repro-pama/" in reply
        assert reply.count(b"STORED") == 0  # noreply suppressed all

    def test_protocol_error_recovery(self, handle):
        # a bad storage line (unparseable flags, readable byte count)
        # must drain its data block and keep the connection usable
        with socket.create_connection(("127.0.0.1", handle.port)) as sock:
            sock.sendall(b"set k bad 0 7\r\nversion\r\nversion\r\nquit\r\n")
            reply = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                reply += chunk
        assert reply.startswith(b"CLIENT_ERROR")
        assert reply.count(b"VERSION repro-pama/") == 1


class TestObservability:
    def test_per_shard_latency_histograms(self, handle):
        with CacheClient(port=handle.port) as c:
            for i in range(100):
                c.set(f"key-{i}", b"v")
                c.get(f"key-{i}")
        shard_labels = {dict(m.labels).get("shard")
                        for m in handle.registry.collect()
                        if m.name == "server_cmd_latency_seconds"}
        shard_labels -= {"-", None}
        assert len(shard_labels) >= 2  # several shards saw traffic

    def test_tracer_records_spans(self):
        tracer = SpanTracer(sample=1.0)
        handle = start_async_server(make_shards(), tracing=tracer)
        try:
            with CacheClient(port=handle.port) as c:
                for i in range(10):
                    c.set(f"k{i}", b"v")
        finally:
            handle.stop()
        assert tracer.finished_traces >= 10

    def test_bytes_counters_move(self, handle):
        with CacheClient(port=handle.port) as c:
            c.set("k", b"hello")
            c.get("k")
        read = handle.registry.get("server_bytes_read_total")
        written = handle.registry.get("server_bytes_written_total")
        assert read.value > 0
        assert written.value > 0
