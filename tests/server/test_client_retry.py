"""CacheClient resilience: bounded retries, deterministic backoff,
reconnect-on-failure, and the non-retry of non-idempotent ops."""

import socket

import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.core import PamaPolicy
from repro.server import CacheClient, start_server


@pytest.fixture
def server():
    cache = SlabCache(2 << 20, PamaPolicy(),
                      SizeClassConfig(slab_size=64 << 10))
    srv = start_server(cache)
    yield srv
    srv.shutdown()
    srv.server_close()


def make_client(server, **kwargs):
    kwargs.setdefault("_sleep", lambda s: None)
    return CacheClient(port=server.port, **kwargs)


class TestValidationAndDefaults:
    def test_negative_retries_rejected(self, server):
        with pytest.raises(ValueError, match="retries"):
            make_client(server, retries=-1)

    def test_default_is_no_retry(self, server):
        with make_client(server) as client:
            assert client.retries == 0
            client._sock.shutdown(socket.SHUT_RDWR)  # break the transport
            with pytest.raises(OSError):
                client.get("k")
            assert client.reconnects == 0


class TestBackoffDeterminism:
    def test_same_seed_same_delays(self, server):
        with make_client(server, retry_seed=9) as a, \
                make_client(server, retry_seed=9) as b:
            assert [a._backoff_delay(i) for i in (1, 2, 3)] \
                == [b._backoff_delay(i) for i in (1, 2, 3)]

    def test_different_seed_different_delays(self, server):
        with make_client(server, retry_seed=1) as a, \
                make_client(server, retry_seed=2) as b:
            assert a._backoff_delay(1) != b._backoff_delay(1)

    def test_exponential_envelope(self, server):
        with make_client(server, backoff_base=0.1, backoff_factor=2.0,
                         backoff_jitter=0.5) as client:
            for attempt in (1, 2, 3):
                delay = client._backoff_delay(attempt)
                base = 0.1 * 2.0 ** (attempt - 1)
                assert base <= delay <= base * 1.5


class TestRetry:
    def test_reconnects_and_succeeds_after_connection_loss(self, server):
        slept = []
        with make_client(server, retries=2, _sleep=slept.append) as client:
            client.set("k", b"v")
            client._sock.shutdown(socket.SHUT_RDWR)  # drop the connection
            assert client.get("k") == b"v"
            assert client.reconnects == 1
            assert len(slept) == 1 and slept[0] > 0

    def test_retries_are_bounded(self, server):
        with make_client(server, retries=2) as client:
            calls = []

            def always_fails():
                calls.append(1)
                raise ConnectionError("down")

            with pytest.raises(ConnectionError):
                client._retry(always_fails)
            assert len(calls) == 3  # first try + two retries

    def test_each_idempotent_op_survives_a_drop(self, server):
        ops = [lambda c: c.set("k", b"v"), lambda c: c.get("k"),
               lambda c: c.gets("k"), lambda c: c.touch("k", 60),
               lambda c: c.delete("nope"), lambda c: c.stats(),
               lambda c: c.version(), lambda c: c.flush_all()]
        for op in ops:
            with make_client(server, retries=1) as client:
                client.set("k", b"v")
                client._sock.shutdown(socket.SHUT_RDWR)
                op(client)  # must not raise
                assert client.reconnects == 1

    def test_non_idempotent_ops_are_not_retried(self, server):
        with make_client(server, retries=5) as client:
            client.set("n", b"1")
            _, cas_id = client.gets("n")
            client._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises(OSError):
                client.incr("n")
            client._reconnect()
            client._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises(OSError):
                client.cas("n", b"2", cas_id)
            assert client.reconnects == 1  # only the explicit one
