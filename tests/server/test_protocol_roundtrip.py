"""Property test: parse_command(format_request(cmd)) == cmd.

``format_request`` renders any command dataclass back to its request
line; round-tripping through the parser over generated commands checks
both directions of the grammar at once (field order, optional tokens,
verb aliases, the cas extra field).
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server import protocol as p

# memcached keys: 1-250 bytes, no whitespace or control characters.
_KEY_ALPHABET = string.ascii_letters + string.digits + "._-/%#@"
keys = st.text(_KEY_ALPHABET, min_size=1, max_size=250)
unsigned = st.integers(min_value=0, max_value=2**32 - 1)
exptimes = st.integers(min_value=-(2**31), max_value=2**31 - 1)
noreply = st.booleans()


@st.composite
def set_commands(draw):
    verb = draw(st.sampled_from(p.STORAGE_VERBS))
    cas_unique = draw(unsigned) if verb == "cas" else None
    return p.SetCommand(key=draw(keys), flags=draw(unsigned),
                        exptime=draw(exptimes), nbytes=draw(unsigned),
                        noreply=draw(noreply), verb=verb,
                        cas_unique=cas_unique)


get_commands = st.builds(
    p.GetCommand,
    keys=st.lists(keys, min_size=1, max_size=5).map(tuple),
    with_cas=st.booleans())

commands = st.one_of(
    set_commands(),
    get_commands,
    st.builds(p.DeleteCommand, key=keys, noreply=noreply),
    st.builds(p.IncrDecrCommand, key=keys, delta=st.integers(
        min_value=0, max_value=2**64 - 1), decrement=st.booleans(),
        noreply=noreply),
    st.builds(p.TouchCommand, key=keys, exptime=exptimes, noreply=noreply),
    st.builds(p.FlushAllCommand, noreply=noreply),
    st.builds(p.StatsCommand, arg=st.sampled_from([None, "detail"])),
    st.just(p.VersionCommand()),
    st.just(p.QuitCommand()),
)


@settings(max_examples=300, deadline=None)
@given(commands)
def test_round_trip(cmd):
    line = p.format_request(cmd)
    assert p.parse_command(line) == cmd


@settings(max_examples=100, deadline=None)
@given(set_commands())
def test_storage_parse_errors_stay_recoverable(cmd):
    """Corrupting the flags field of any valid storage line must yield
    an error that carries the (intact) byte count for resync."""
    line = p.format_request(cmd).split(b" ")
    line[2] = b"not-a-number"
    try:
        p.parse_command(b" ".join(line))
    except p.ProtocolError as exc:
        assert exc.data_bytes == cmd.nbytes
        assert not exc.fatal
    else:  # pragma: no cover
        raise AssertionError("corrupt flags should not parse")
