"""Differential testing: the async front end vs the legacy server.

Each script is a raw byte stream sent over a fresh connection; the
complete reply stream (read to EOF) must be **byte-identical** between
the two servers.  Scripts that exercise ``gets``/``cas`` run at
``shards=1`` only: the sharded server allocates cas ids per shard, so
multi-shard cas ids legitimately diverge from the legacy server's
single global counter — those scripts mask the cas field instead.
"""

import re
import socket

import pytest

from repro.cache import SizeClassConfig, SlabCache
from repro.core import PamaPolicy
from repro.server import ShardSet, start_async_server, start_server

CLASSES = SizeClassConfig(slab_size=64 << 10)
CAPACITY = 8 << 20


def replay(port: int, script: bytes, chunk: int = 0) -> bytes:
    """Send ``script`` on a fresh connection; return all reply bytes."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        if chunk:
            for i in range(0, len(script), chunk):
                sock.sendall(script[i:i + chunk])
        else:
            sock.sendall(script)
        sock.shutdown(socket.SHUT_WR)
        reply = bytearray()
        while True:
            data = sock.recv(65536)
            if not data:
                return bytes(reply)
            reply += data


def differential(script: bytes, nshards: int, chunk: int = 0,
                 mask_cas: bool = False) -> None:
    cache = SlabCache(CAPACITY, PamaPolicy(), CLASSES)
    legacy = start_server(cache)
    shards = ShardSet(CAPACITY, PamaPolicy, CLASSES, nshards=nshards)
    handle = start_async_server(shards)
    try:
        expected = replay(legacy.port, script, chunk=chunk)
        actual = replay(handle.port, script, chunk=chunk)
        if mask_cas:
            # VALUE <key> <flags> <bytes> <cas> -> cas id blanked
            blank = re.compile(rb"(VALUE \S+ \d+ \d+) \d+\r\n")
            expected = blank.sub(rb"\1 *\r\n", expected)
            actual = blank.sub(rb"\1 *\r\n", actual)
        assert actual == expected
    finally:
        handle.stop()
        legacy.shutdown()
        legacy.server_close()


BASIC_SCRIPT = (
    b"version\r\n"
    b"set alpha 7 0 3\r\nabc\r\n"
    b"get alpha\r\n"
    b"get alpha beta\r\n"
    b"add alpha 0 0 1\r\nx\r\n"
    b"replace alpha 9 0 5\r\nhello\r\n"
    b"append alpha 0 0 5\r\n-tail\r\n"
    b"prepend alpha 0 0 4\r\npre-\r\n"
    b"get alpha\r\n"
    b"delete alpha\r\n"
    b"delete alpha\r\n"
    b"get alpha\r\n"
    b"quit\r\n"
)

NUMERIC_SCRIPT = (
    b"set n 0 0 2\r\n10\r\n"
    b"incr n 5\r\n"
    b"decr n 100\r\n"
    b"incr n 18446744073709551615\r\n"
    b"incr missing 1\r\n"
    b"set word 0 0 3\r\nfoo\r\n"
    b"incr word 1\r\n"
    b"set padded 0 0 4\r\n+10 \r\n"
    b"incr padded 1\r\n"
    b"quit\r\n"
)

NOREPLY_SCRIPT = (
    b"set a 0 0 1 noreply\r\nx\r\n"
    b"set b 0 0 1 noreply\r\ny\r\n"
    b"delete a noreply\r\n"
    b"incr q 1 noreply\r\n"
    b"get a b\r\n"
    b"flush_all noreply\r\n"
    b"get b\r\n"
    b"quit\r\n"
)

CAS_SCRIPT = (
    b"set k 0 0 2\r\nv1\r\n"
    b"gets k\r\n"
    b"cas k 0 0 2 1\r\nv2\r\n"
    b"cas k 0 0 2 1\r\nv3\r\n"
    b"cas missing 0 0 1 7\r\nz\r\n"
    b"gets k\r\n"
    b"quit\r\n"
)

ERROR_SCRIPT = (
    b"bogus command\r\n"
    b"set k bad 0 7\r\nget k\r\n\r\n"   # recoverable: data block drained
    b"version\r\n"
    b"get\r\n"
    b"incr k notanumber\r\n"
    b"quit\r\n"
)

FATAL_SCRIPT = (
    b"set ok 0 0 1\r\nx\r\n"
    b"set k 0 0 zzz\r\n"                # unknowable count: must close
    b"version\r\n"                      # never answered
)

TOUCH_SCRIPT = (
    b"set k 3 0 5\r\nhello\r\n"
    b"touch k 100\r\n"
    b"touch missing 100\r\n"
    b"get k\r\n"
    b"quit\r\n"
)

BINARY_SCRIPT = (
    b"set bin 0 0 12\r\na\r\nEND\r\nb\r\n\r\n"
    b"get bin\r\n"
    b"quit\r\n"
)


class TestSingleShardByteIdentical:
    """shards=1: the full protocol, cas ids included, byte for byte."""

    @pytest.mark.parametrize("script", [
        BASIC_SCRIPT, NUMERIC_SCRIPT, NOREPLY_SCRIPT, CAS_SCRIPT,
        ERROR_SCRIPT, FATAL_SCRIPT, TOUCH_SCRIPT, BINARY_SCRIPT,
    ], ids=["basic", "numeric", "noreply", "cas", "error", "fatal",
            "touch", "binary"])
    def test_replies_match(self, script):
        differential(script, nshards=1)

    def test_chunked_send_equals_one_shot(self):
        # drip-feed the bytes: the incremental decoder must produce the
        # same replies as the blocking readline server
        differential(BASIC_SCRIPT + NUMERIC_SCRIPT, nshards=1, chunk=3)

    def test_error_script_chunked(self):
        differential(ERROR_SCRIPT, nshards=1, chunk=5)


class TestMultiShard:
    """shards=4: identical replies modulo per-shard cas ids."""

    @pytest.mark.parametrize("script", [
        BASIC_SCRIPT, NUMERIC_SCRIPT, NOREPLY_SCRIPT, ERROR_SCRIPT,
        TOUCH_SCRIPT, BINARY_SCRIPT,
    ], ids=["basic", "numeric", "noreply", "error", "touch", "binary"])
    def test_replies_match(self, script):
        differential(script, nshards=4)

    def test_gets_with_cas_masked(self):
        differential(CAS_SCRIPT, nshards=4, mask_cas=True)

    def test_many_keys_across_shards(self):
        script = bytearray()
        for i in range(60):
            script += b"set key-%d 0 0 4\r\nv%03d\r\n" % (i, i)
        for i in range(60):
            script += b"get key-%d\r\n" % i
        script += b"quit\r\n"
        differential(bytes(script), nshards=4)
        differential(bytes(script), nshards=4, chunk=17)
