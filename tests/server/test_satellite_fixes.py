"""Regression tests for the serving-path edge-case bugfixes.

Each test here fails on the pre-fix code:

* ``CacheClient`` returned a silently **truncated value** when the
  server died mid-data-block (``file.read(n)`` returns short at EOF).
* ``incr``/``decr`` replied the new number even when the resized
  payload **failed to store** — the server lied to the client.
* ``server_bytes_read_total`` never counted a **partial data block**
  (the handler returned before the counter increment).
* ``CacheClient.incr`` raised a bare ``ValueError`` on a
  ``SERVER_ERROR``/``ERROR`` reply (``int(b"SERVER_ERROR ...")``).
* the threaded server's tracer sampling path read
  ``cache.accesses`` **without the lock** — a data race against every
  other handler thread.
"""

import socket
import socketserver
import threading
import time

import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.core import PamaPolicy
from repro.obs import SpanTracer
from repro.server import CacheClient, ShardSet, start_async_server, start_server


@pytest.fixture
def server():
    cache = SlabCache(2 << 20, PamaPolicy(),
                      SizeClassConfig(slab_size=64 << 10))
    srv = start_server(cache)
    yield srv
    srv.shutdown()
    srv.server_close()


class ScriptedServer:
    """A fake server that sends a canned reply per request line, then
    optionally closes — for driving the client's error paths."""

    def __init__(self, replies: list[bytes], close_after: bool = True):
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                for reply in outer.replies:
                    if not self.rfile.readline():
                        return
                    self.wfile.write(reply)
                if outer.close_after:
                    return  # connection closes here

        self.replies = replies
        self.close_after = close_after
        self._srv = socketserver.TCPServer(("127.0.0.1", 0), Handler)
        self.port = self._srv.server_address[1]
        self._thread = threading.Thread(target=self._srv.serve_forever,
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._srv.shutdown()
        self._srv.server_close()


class TestTruncatedValueRaises:
    def test_get_truncated_mid_value_raises_connection_error(self):
        # The server promises 10 bytes but dies after 3: the client must
        # raise, not hand back b"abc" as if it were the stored value.
        fake = ScriptedServer([b"VALUE k 0 10\r\nabc"])
        try:
            with pytest.raises(ConnectionError, match="mid-value"):
                with CacheClient(port=fake.port) as c:
                    c.get("k")
        finally:
            fake.stop()

    def test_gets_truncated_mid_value_raises_connection_error(self):
        fake = ScriptedServer([b"VALUE k 0 10 42\r\nabc"])
        try:
            with pytest.raises(ConnectionError, match="mid-value"):
                with CacheClient(port=fake.port) as c:
                    c.gets("k")
        finally:
            fake.stop()

    def test_get_truncated_mid_trailer_raises(self):
        # value complete but the connection dies inside the CRLF
        fake = ScriptedServer([b"VALUE k 0 3\r\nabc\r"])
        try:
            with pytest.raises(ConnectionError):
                with CacheClient(port=fake.port) as c:
                    c.get("k")
        finally:
            fake.stop()

    def test_intact_value_still_returned(self):
        fake = ScriptedServer([b"VALUE k 0 3\r\nabc\r\nEND\r\n"],
                              close_after=False)
        try:
            with CacheClient(port=fake.port) as c:
                assert c.get("k") == b"abc"
        finally:
            fake.stop()


class TestIncrStoreFailure:
    def _break_set(self, cache):
        cache.set = lambda *a, **k: False

    def test_threaded_server_replies_server_error(self, server):
        with CacheClient(port=server.port) as c:
            c.set("n", b"10")
            self._break_set(server.cache)
            with pytest.raises(RuntimeError, match="SERVER_ERROR"):
                c.incr("n", 5)
            # orderly reply: the connection stays usable
            assert c.get("n") is not None

    def test_async_server_replies_server_error(self):
        shards = ShardSet(2 << 20, PamaPolicy,
                          SizeClassConfig(slab_size=64 << 10), nshards=2)
        handle = start_async_server(shards)
        try:
            with CacheClient(port=handle.port) as c:
                c.set("n", b"10")
                self._break_set(shards.shard_for("n"))
                with pytest.raises(RuntimeError, match="SERVER_ERROR"):
                    c.incr("n", 5)
        finally:
            handle.stop()

    def test_store_failure_does_not_fake_the_counter(self, server):
        with CacheClient(port=server.port) as c:
            c.set("n", b"10")
            self._break_set(server.cache)
            with pytest.raises(RuntimeError):
                c.decr("n", 1)


class TestBytesReadAccounting:
    def test_partial_data_block_is_counted(self, server):
        line = b"set k 0 0 10\r\n"
        partial = b"abc"
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(line + partial)
            sock.shutdown(socket.SHUT_WR)
            assert sock.makefile("rb").readline() == b""  # silent close
        counter = server.registry.get("server_bytes_read_total")
        deadline = time.time() + 5
        while counter.value < len(line) + len(partial):
            if time.time() > deadline:
                break
            time.sleep(0.01)
        # pre-fix: only the command line was counted (the handler
        # returned before the increment), leaving the 3 payload bytes out
        assert counter.value == len(line) + len(partial)


class TestClientIncrErrorReplies:
    @pytest.mark.parametrize("reply", [b"SERVER_ERROR boom\r\n",
                                       b"ERROR\r\n"])
    def test_error_reply_raises_runtime_error(self, reply):
        fake = ScriptedServer([reply], close_after=False)
        try:
            with CacheClient(port=fake.port) as c:
                # pre-fix this was int(b"SERVER_ERROR boom") -> a bare
                # ValueError that hid the server's message entirely.
                with pytest.raises(RuntimeError,
                                   match=reply.split()[0].decode()):
                    c.incr("n", 1)
        finally:
            fake.stop()


class LockCheckedCache(SlabCache):
    """SlabCache whose ``accesses`` reads record lock violations."""

    def __init__(self, *args, **kwargs):
        self._accesses = 0
        self._guard = None
        self.unlocked_reads = 0
        super().__init__(*args, **kwargs)

    @property
    def accesses(self):
        guard = self._guard
        if guard is not None and not guard.locked():
            self.unlocked_reads += 1
        return self._accesses

    @accesses.setter
    def accesses(self, value):
        self._accesses = value


class TestTracerTickUnderLock:
    def test_sampling_tick_snapshot_holds_the_lock(self):
        cache = LockCheckedCache(2 << 20, PamaPolicy(),
                                 SizeClassConfig(slab_size=64 << 10))
        srv = start_server(cache, tracing=SpanTracer(sample=1.0))
        cache._guard = srv.lock
        try:
            with CacheClient(port=srv.port) as c:
                for i in range(10):
                    c.set(f"k{i}", b"v")
                    c.get(f"k{i}")
            # the handler records the trace *after* replying, so wait
            # for the final command's span to land before asserting
            deadline = time.time() + 5
            while srv.tracer.finished_traces < 20 and time.time() < deadline:
                time.sleep(0.01)
            # every accesses read on the serving path (ops under the
            # dispatch lock, tracer tick snapshot) must hold the lock
            assert cache.unlocked_reads == 0
            assert srv.tracer.finished_traces >= 20
        finally:
            srv.shutdown()
            srv.server_close()
