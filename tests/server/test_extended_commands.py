"""Tests for the extended memcached commands over the wire."""

import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.core import PamaPolicy
from repro.server import CacheClient, start_server
from repro.server import protocol as p


@pytest.fixture
def server():
    cache = SlabCache(2 << 20, PamaPolicy(),
                      SizeClassConfig(slab_size=64 << 10))
    srv = start_server(cache)
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture
def client(server):
    with CacheClient(port=server.port) as c:
        yield c


class TestParseExtended:
    def test_storage_verbs(self):
        for verb in ("add", "replace", "append", "prepend"):
            cmd = p.parse_command(f"{verb} k 0 0 3".encode())
            assert isinstance(cmd, p.SetCommand)
            assert cmd.verb == verb

    def test_incr_decr(self):
        cmd = p.parse_command(b"incr counter 5")
        assert isinstance(cmd, p.IncrDecrCommand)
        assert cmd.delta == 5 and not cmd.decrement
        assert p.parse_command(b"decr counter 2").decrement

    def test_touch_and_flush(self):
        assert isinstance(p.parse_command(b"touch k 60"), p.TouchCommand)
        assert isinstance(p.parse_command(b"flush_all"), p.FlushAllCommand)

    @pytest.mark.parametrize("line", [
        b"incr k", b"incr k abc", b"incr k -1", b"touch k",
        b"touch k abc", b"flush_all now please",
    ])
    def test_malformed_extended(self, line):
        with pytest.raises(p.ProtocolError):
            p.parse_command(line)


class TestResolveExptime:
    def test_semantics(self):
        now = 1_000_000.0
        assert p.resolve_exptime(0, now) == 0.0
        assert p.resolve_exptime(60, now) == now + 60
        assert p.resolve_exptime(p.RELATIVE_EXPTIME_LIMIT, now) \
            == now + p.RELATIVE_EXPTIME_LIMIT
        absolute = p.RELATIVE_EXPTIME_LIMIT + 10
        assert p.resolve_exptime(absolute, now) == float(absolute)
        assert p.resolve_exptime(-1, now) < now


class TestAddReplace:
    def test_add_only_when_absent(self, client):
        assert client.add("k", b"first")
        assert not client.add("k", b"second")
        assert client.get("k") == b"first"

    def test_replace_only_when_present(self, client):
        assert not client.replace("k", b"nope")
        client.set("k", b"v1")
        assert client.replace("k", b"v2")
        assert client.get("k") == b"v2"


class TestAppendPrepend:
    def test_append(self, client):
        client.set("k", b"hello")
        assert client.append("k", b" world")
        assert client.get("k") == b"hello world"

    def test_prepend(self, client):
        client.set("k", b"world")
        assert client.prepend("k", b"hello ")
        assert client.get("k") == b"hello world"

    def test_concat_on_absent_fails(self, client):
        assert not client.append("missing", b"x")
        assert not client.prepend("missing", b"x")


class TestIncrDecr:
    def test_incr(self, client):
        client.set("n", b"10")
        assert client.incr("n", 5) == 15
        assert client.get("n") == b"15"

    def test_decr_clamps_at_zero(self, client):
        client.set("n", b"3")
        assert client.decr("n", 10) == 0

    def test_absent_returns_none(self, client):
        assert client.incr("missing") is None

    def test_non_numeric_error(self, client):
        client.set("s", b"abc")
        with pytest.raises(RuntimeError):
            client.incr("s")


class TestTouchFlush:
    def test_touch_over_wire(self, server, client):
        client.set("k", b"v", exptime=1)
        assert client.touch("k", 3600)
        item = server.cache.index["k"]
        assert item.expires_at > server.cache.clock() + 3000

    def test_touch_absent(self, client):
        assert not client.touch("missing", 60)

    def test_exptime_expires_items(self, server, client):
        client.set("k", b"v", exptime=-1)  # negative: expired on arrival
        assert client.get("k") is None

    def test_flush_all(self, client):
        for i in range(10):
            client.set(f"k{i}", b"v")
        client.flush_all()
        assert all(client.get(f"k{i}") is None for i in range(10))
