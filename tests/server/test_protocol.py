"""Tests for the memcached text-protocol parser and formatters."""

import pytest

from repro.server import protocol as p


class TestParseCommand:
    def test_set(self):
        cmd = p.parse_command(b"set mykey 100000 0 5")
        assert isinstance(cmd, p.SetCommand)
        assert cmd.key == "mykey" and cmd.nbytes == 5
        assert cmd.penalty == pytest.approx(0.1)  # flags are microseconds
        assert not cmd.noreply

    def test_set_noreply(self):
        cmd = p.parse_command(b"set k 0 0 3 noreply")
        assert cmd.noreply

    def test_get_multi(self):
        cmd = p.parse_command(b"get a b c")
        assert isinstance(cmd, p.GetCommand)
        assert cmd.keys == ("a", "b", "c")

    def test_gets_alias(self):
        assert isinstance(p.parse_command(b"gets a"), p.GetCommand)

    def test_delete(self):
        cmd = p.parse_command(b"delete k")
        assert isinstance(cmd, p.DeleteCommand) and not cmd.noreply

    def test_admin_commands(self):
        assert isinstance(p.parse_command(b"stats"), p.StatsCommand)
        assert isinstance(p.parse_command(b"version"), p.VersionCommand)
        assert isinstance(p.parse_command(b"quit"), p.QuitCommand)

    @pytest.mark.parametrize("line", [
        b"", b"bogus x", b"set k 0 0", b"set k a b c", b"set k 0 0 -1",
        b"set k 0 0 5 extra", b"get", b"delete", b"delete k banana",
        b"set " + b"k" * 300 + b" 0 0 1",
        b"\xff\xfe invalid utf8",
    ])
    def test_malformed(self, line):
        with pytest.raises(p.ProtocolError):
            p.parse_command(line)


class TestFormatting:
    def test_value_block(self):
        out = p.format_value("k", 7, b"abc")
        assert out == b"VALUE k 7 3\r\nabc\r\n"

    def test_stats(self):
        out = p.format_stats({"b": 1, "a": 2})
        assert out == b"STAT a 2\r\nSTAT b 1\r\nEND\r\n"

    def test_simple_responses(self):
        assert p.format_stored() == b"STORED\r\n"
        assert p.format_not_stored() == b"NOT_STORED\r\n"
        assert p.format_deleted(True) == b"DELETED\r\n"
        assert p.format_deleted(False) == b"NOT_FOUND\r\n"
        assert p.format_error("x").startswith(b"CLIENT_ERROR")
        assert p.format_version("v1") == b"VERSION v1\r\n"
