"""Tests for trace I/O, statistics, and burst injection."""

import numpy as np
import pytest

from repro.traces import (ETC, Op, analyze, generate, inject_burst, iter_csv,
                          load_csv, load_npz, save_csv, save_npz)
from repro.traces.burst import BURST_KEY_BASE


@pytest.fixture
def trace():
    return generate(ETC.scaled(0.05), 5_000, seed=9)


class TestIO:
    def test_npz_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_npz(trace, path)
        loaded = load_npz(path)
        assert len(loaded) == len(trace)
        assert (loaded.ops == trace.ops).all()
        assert (loaded.keys == trace.keys).all()
        assert np.allclose(loaded.penalties, trace.penalties)
        assert loaded.meta["workload"] == "etc"

    def test_csv_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        small = trace.slice(0, 500)
        save_csv(small, path)
        loaded = load_csv(path)
        assert len(loaded) == 500
        assert (loaded.keys == small.keys).all()
        assert np.allclose(loaded.penalties, small.penalties, rtol=1e-4)

    def test_csv_streaming(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        save_csv(trace.slice(0, 100), path)
        rows = list(iter_csv(path))
        assert len(rows) == 100
        assert rows[0].key == int(trace.keys[0])

    def test_csv_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n1,2\n")
        with pytest.raises(ValueError):
            list(iter_csv(path))

    def test_csv_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,key,key_size,value_size,penalty,timestamp\n"
                        "GET,notanint,16,100,0.1,0.0\n")
        with pytest.raises(ValueError):
            list(iter_csv(path))


class TestStats:
    def test_analyze_counts(self, trace):
        stats = analyze(trace)
        assert stats.n_requests == len(trace)
        assert stats.n_gets + stats.n_sets + stats.n_deletes == len(trace)
        assert stats.unique_keys == trace.unique_keys
        assert 0 < stats.top1pct_access_share <= 1

    def test_penalty_by_size_has_spread(self, trace):
        stats = analyze(trace)
        assert stats.penalty_by_size
        for bucket in stats.penalty_by_size:
            assert bucket.penalty_min <= bucket.penalty_p50 <= bucket.penalty_max

    def test_format_is_printable(self, trace):
        text = analyze(trace).format()
        assert "requests" in text and "size bucket" in text

    def test_empty_trace_rejected(self):
        from repro.traces.record import Trace
        empty = Trace(np.empty(0, np.uint8), np.empty(0, np.int64),
                      np.empty(0, np.int32), np.empty(0, np.int32),
                      np.empty(0))
        with pytest.raises(ValueError):
            analyze(empty)


class TestBurst:
    def test_burst_inserted_after_nth_get(self, trace):
        out = inject_burst(trace, at_get=1_000, total_bytes=100_000,
                           size_lo=256, size_hi=1_024)
        start, end = out.meta["burst_span"]
        # everything before the splice is the original trace
        assert (out.keys[:start] == trace.keys[:start]).all()
        burst_keys = out.keys[start:end]
        assert (burst_keys >= BURST_KEY_BASE).all()
        # GET/SET pairs per item
        assert (out.ops[start:end:2] == Op.GET).all()
        assert (out.ops[start + 1:end:2] == Op.SET).all()

    def test_burst_total_bytes(self, trace):
        out = inject_burst(trace, at_get=500, total_bytes=200_000,
                           size_lo=512, size_hi=512, key_size=24)
        assert out.meta["burst_bytes"] >= 200_000
        assert out.meta["burst_bytes"] < 200_000 + 512 + 24 + 1

    def test_set_only_burst(self, trace):
        out = inject_burst(trace, at_get=500, total_bytes=50_000,
                           size_lo=256, size_hi=512, with_gets=False)
        start, end = out.meta["burst_span"]
        assert (out.ops[start:end] == Op.SET).all()

    def test_burst_beyond_trace_rejected(self, trace):
        with pytest.raises(ValueError):
            inject_burst(trace, at_get=10**9, total_bytes=1000,
                         size_lo=64, size_hi=128)

    def test_invalid_params(self, trace):
        with pytest.raises(ValueError):
            inject_burst(trace, at_get=10, total_bytes=0,
                         size_lo=64, size_hi=128)
        with pytest.raises(ValueError):
            inject_burst(trace, at_get=10, total_bytes=100,
                         size_lo=0, size_hi=128)
