"""Tests for the workload profiles."""

import pytest

from repro.traces import PROFILES, SizeMixture, WorkloadProfile, get_profile


class TestSizeMixture:
    def test_valid(self):
        SizeMixture(((0.5, 10, 100), (0.5, 100, 1000)))

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            SizeMixture(((0.5, 10, 100),))

    def test_bad_band(self):
        with pytest.raises(ValueError):
            SizeMixture(((1.0, 100, 10),))
        with pytest.raises(ValueError):
            SizeMixture(((1.0, 0, 10),))
        with pytest.raises(ValueError):
            SizeMixture(())


FACEBOOK_POOLS = {"etc", "app", "usr", "sys", "var"}
TABLE_V_ZOO = {"twitter-cache", "twitter-cache15", "zippydb", "udb",
               "rtdata", "dedup"}


class TestWorkloadProfile:
    def test_facebook_pools_and_zoo_defined(self):
        assert set(PROFILES) == FACEBOOK_POOLS | TABLE_V_ZOO

    def test_get_profile_case_insensitive(self):
        assert get_profile("ETC").name == "etc"
        with pytest.raises(ValueError):
            get_profile("nope")

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", num_keys=10, get_fraction=0.5,
                            set_fraction=0.2)

    def test_usr_has_fixed_sizes(self):
        usr = get_profile("usr")
        assert usr.value_sizes.bands == ((1.0, 2, 2),)
        key_sizes = {band[1] for band in usr.key_sizes.bands}
        assert key_sizes == {16, 21}

    def test_var_is_update_dominated(self):
        var = get_profile("var")
        assert var.set_fraction > var.get_fraction

    def test_app_has_high_cold_fraction(self):
        # APP's defining trait in the paper: ~40% of misses are cold
        assert get_profile("app").cold_fraction > get_profile("etc").cold_fraction

    def test_scaled(self):
        etc = get_profile("etc")
        half = etc.scaled(0.5)
        assert half.num_keys == etc.num_keys // 2
        assert half.zipf_alpha == etc.zipf_alpha

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", num_keys=0)
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", num_keys=10, zipf_alpha=0.0)
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", num_keys=10, cold_fraction=1.0)


class TestWorkloadZoo:
    """The arXiv 2009.04403 Table-V-style profile set."""

    def test_all_zoo_profiles_resolve(self):
        for name in TABLE_V_ZOO:
            assert get_profile(name).name == name

    def test_facebook_pools_stay_flat_load(self):
        # The PAMA-paper pools predate the zoo knobs; they must keep
        # generating exactly the traces the pinned experiments replay.
        for name in FACEBOOK_POOLS:
            p = get_profile(name)
            assert p.drift_per_request == 0.0
            assert p.diurnal_amplitude == 0.0

    def test_twitter_cache_is_read_dominated_and_diurnal(self):
        p = get_profile("twitter-cache")
        assert p.get_fraction >= 0.95
        assert p.zipf_alpha > 1.0  # extreme skew
        assert p.diurnal_period == 86_400.0 and p.diurnal_amplitude > 0

    def test_twitter_cache15_is_write_heavy(self):
        assert get_profile("twitter-cache15").set_fraction \
            > 10 * get_profile("twitter-cache").set_fraction

    def test_udb_values_span_four_decades(self):
        bands = get_profile("udb").value_sizes.bands
        lo = min(b[1] for b in bands)
        hi = max(b[2] for b in bands)
        assert hi / lo >= 10_000

    def test_rtdata_is_update_dominated_with_fast_drift(self):
        p = get_profile("rtdata")
        assert p.set_fraction > p.get_fraction
        assert p.drift_per_request > 0

    def test_dedup_fixed_keys_weak_skew(self):
        p = get_profile("dedup")
        assert p.key_sizes.bands == ((1.0, 20, 20),)
        assert p.zipf_alpha < 0.7
        assert p.diurnal_amplitude == 0.0  # content-addressed: no tide

    def test_scaled_preserves_zoo_knobs(self):
        p = get_profile("twitter-cache").scaled(0.01)
        assert p.drift_per_request == 0.002
        assert p.diurnal_period == 86_400.0
        assert p.diurnal_amplitude == 0.5

    def test_invalid_zoo_knobs_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", num_keys=10, drift_per_request=-0.1)
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", num_keys=10, diurnal_period=-1.0)
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", num_keys=10, diurnal_amplitude=1.0)
