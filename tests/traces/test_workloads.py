"""Tests for the workload profiles."""

import pytest

from repro.traces import PROFILES, SizeMixture, WorkloadProfile, get_profile


class TestSizeMixture:
    def test_valid(self):
        SizeMixture(((0.5, 10, 100), (0.5, 100, 1000)))

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            SizeMixture(((0.5, 10, 100),))

    def test_bad_band(self):
        with pytest.raises(ValueError):
            SizeMixture(((1.0, 100, 10),))
        with pytest.raises(ValueError):
            SizeMixture(((1.0, 0, 10),))
        with pytest.raises(ValueError):
            SizeMixture(())


class TestWorkloadProfile:
    def test_five_facebook_pools_defined(self):
        assert set(PROFILES) == {"etc", "app", "usr", "sys", "var"}

    def test_get_profile_case_insensitive(self):
        assert get_profile("ETC").name == "etc"
        with pytest.raises(ValueError):
            get_profile("nope")

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", num_keys=10, get_fraction=0.5,
                            set_fraction=0.2)

    def test_usr_has_fixed_sizes(self):
        usr = get_profile("usr")
        assert usr.value_sizes.bands == ((1.0, 2, 2),)
        key_sizes = {band[1] for band in usr.key_sizes.bands}
        assert key_sizes == {16, 21}

    def test_var_is_update_dominated(self):
        var = get_profile("var")
        assert var.set_fraction > var.get_fraction

    def test_app_has_high_cold_fraction(self):
        # APP's defining trait in the paper: ~40% of misses are cold
        assert get_profile("app").cold_fraction > get_profile("etc").cold_fraction

    def test_scaled(self):
        etc = get_profile("etc")
        half = etc.scaled(0.5)
        assert half.num_keys == etc.num_keys // 2
        assert half.zipf_alpha == etc.zipf_alpha

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", num_keys=0)
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", num_keys=10, zipf_alpha=0.0)
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", num_keys=10, cold_fraction=1.0)
