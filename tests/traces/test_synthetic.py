"""Tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.traces import ETC, USR, Op, WorkloadProfile, generate
from repro.traces.synthetic import SyntheticTraceGenerator, zipf_cdf


class TestZipfCdf:
    def test_shape(self):
        cdf = zipf_cdf(100, 1.0)
        assert len(cdf) == 100
        assert cdf[-1] == pytest.approx(1.0)
        assert (np.diff(cdf) > 0).all()

    def test_higher_alpha_more_skew(self):
        mild = zipf_cdf(1000, 0.5)
        steep = zipf_cdf(1000, 1.5)
        assert steep[0] > mild[0]  # rank-0 mass larger under steeper skew

    def test_invalid(self):
        with pytest.raises(ValueError):
            zipf_cdf(0, 1.0)


class TestGenerator:
    def test_deterministic(self):
        a = generate(ETC.scaled(0.05), 5_000, seed=3)
        b = generate(ETC.scaled(0.05), 5_000, seed=3)
        assert (a.keys == b.keys).all()
        assert (a.ops == b.ops).all()
        assert (a.penalties == b.penalties).all()

    def test_seed_changes_trace(self):
        a = generate(ETC.scaled(0.05), 5_000, seed=3)
        b = generate(ETC.scaled(0.05), 5_000, seed=4)
        assert not (a.keys == b.keys).all()

    def test_operation_mix_matches_profile(self):
        trace = generate(ETC.scaled(0.05), 40_000, seed=1)
        get_frac = np.count_nonzero(trace.ops == Op.GET) / len(trace)
        assert abs(get_frac - ETC.get_fraction) < 0.02

    def test_sizes_respect_mixture_bounds(self):
        trace = generate(USR.scaled(0.05), 5_000, seed=1)
        assert set(np.unique(trace.value_sizes)) == {2}
        assert set(np.unique(trace.key_sizes)) <= {16, 21}

    def test_per_key_attributes_stable(self):
        trace = generate(ETC.scaled(0.05), 30_000, seed=2)
        seen: dict[int, tuple] = {}
        for i in range(len(trace)):
            k = int(trace.keys[i])
            attrs = (int(trace.key_sizes[i]), int(trace.value_sizes[i]),
                     float(trace.penalties[i]))
            if k in seen:
                assert seen[k] == attrs, f"key {k} changed attributes"
            seen[k] = attrs

    def test_popularity_is_skewed(self):
        trace = generate(ETC.scaled(0.1), 50_000, seed=5)
        _keys, counts = np.unique(trace.keys, return_counts=True)
        counts = np.sort(counts)[::-1]
        top_share = counts[: max(1, len(counts) // 100)].sum() / counts.sum()
        assert top_share > 0.2  # top 1% of keys take >20% of accesses

    def test_cold_keys_are_one_timers(self):
        profile = ETC.scaled(0.05)
        trace = generate(profile, 20_000, seed=6)
        gen_base = SyntheticTraceGenerator.COLD_KEY_BASE
        cold_mask = trace.keys >= gen_base
        assert cold_mask.any()
        cold_keys, counts = np.unique(trace.keys[cold_mask], return_counts=True)
        assert (counts == 1).all()

    def test_churn_rotates_hot_set(self):
        profile = WorkloadProfile(name="churny", num_keys=1_000,
                                  churn_interval=5_000, churn_fraction=0.5,
                                  cold_fraction=0.0, get_fraction=1.0,
                                  set_fraction=0.0)
        gen = SyntheticTraceGenerator(profile, seed=1)
        early = gen.generate(5_000, start_position=0)
        late = gen.generate(5_000, start_position=50_000)
        assert early.keys.min() < 1_000
        assert late.keys.min() >= 1_000  # whole universe shifted

    def test_timestamps_increase(self):
        trace = generate(ETC.scaled(0.05), 2_000, seed=1)
        assert (np.diff(trace.timestamps) > 0).all()

    def test_penalties_bounded(self):
        trace = generate(ETC.scaled(0.05), 20_000, seed=1)
        assert trace.penalties.min() > 0
        assert trace.penalties.max() <= 5.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            generate(ETC, 0)


class TestDrift:
    @staticmethod
    def _profile(drift):
        return WorkloadProfile(name="drifty", num_keys=1_000,
                               cold_fraction=0.0, get_fraction=1.0,
                               set_fraction=0.0, drift_per_request=drift)

    def test_hot_set_glides_continuously(self):
        gen = SyntheticTraceGenerator(self._profile(0.05), seed=3)
        early = gen.generate(2_000, start_position=0)
        late = gen.generate(2_000, start_position=100_000)
        # 100k requests x 0.05 drift = 5000-id glide: disjoint hot sets.
        assert late.keys.min() >= early.keys.max()
        assert np.median(late.keys) > np.median(early.keys) + 4_000

    def test_zero_drift_is_stationary(self):
        gen = SyntheticTraceGenerator(self._profile(0.0), seed=3)
        late = gen.generate(2_000, start_position=100_000)
        assert late.keys.max() < 1_000

    def test_drift_composes_with_churn(self):
        profile = WorkloadProfile(name="both", num_keys=1_000,
                                  cold_fraction=0.0, get_fraction=1.0,
                                  set_fraction=0.0, drift_per_request=0.01,
                                  churn_interval=5_000, churn_fraction=0.5)
        gen = SyntheticTraceGenerator(profile, seed=3)
        late = gen.generate(1_000, start_position=50_000)
        # churn alone shifts by 10*500=5000; drift adds 50000*0.01=500.
        assert late.keys.min() >= 5_000 + 500

    def test_chunks_are_position_anchored(self):
        # Drift and diurnal phase key off the absolute position, so a
        # chunk depends only on (seed, start_position) — never on what
        # was generated before it.
        profile = WorkloadProfile(name="drifty", num_keys=1_000,
                                  cold_fraction=0.0, get_fraction=1.0,
                                  set_fraction=0.0, drift_per_request=0.05,
                                  diurnal_period=0.5,
                                  diurnal_amplitude=0.6)
        gen = SyntheticTraceGenerator(profile, seed=9)
        for p in range(0, 3_000, 1_000):
            gen.generate(1_000, start_position=p)  # advance through...
        sequential = gen.generate(1_000, start_position=3_000)
        direct = SyntheticTraceGenerator(profile, seed=9).generate(
            1_000, start_position=3_000)
        assert (sequential.keys == direct.keys).all()
        assert (sequential.ops == direct.ops).all()
        assert (sequential.timestamps == direct.timestamps).all()


class TestDiurnal:
    @staticmethod
    def _profile(amplitude, period):
        return WorkloadProfile(name="tidal", num_keys=1_000,
                               cold_fraction=0.0, get_fraction=1.0,
                               set_fraction=0.0, diurnal_period=period,
                               diurnal_amplitude=amplitude)

    def test_rate_peaks_compress_gaps(self):
        # One full cycle over 4000 requests (mean gap 1e-4 -> t in
        # [0, 0.4), period 0.4).  Peak rate at position ~1000, trough
        # at ~3000; with A=0.9 the mean gap differs by ~19x.
        gen = SyntheticTraceGenerator(self._profile(0.9, 0.4), seed=7)
        gaps = np.diff(gen.generate(4_000).timestamps)
        peak = gaps[900:1100].mean()
        trough = gaps[2900:3100].mean()
        assert trough > 5 * peak

    def test_zero_amplitude_identical_to_flat(self):
        flat = SyntheticTraceGenerator(
            self._profile(0.0, 0.4), seed=7).generate(2_000)
        plain = SyntheticTraceGenerator(
            WorkloadProfile(name="tidal", num_keys=1_000,
                            cold_fraction=0.0, get_fraction=1.0,
                            set_fraction=0.0), seed=7).generate(2_000)
        assert (flat.timestamps == plain.timestamps).all()

    def test_timestamps_still_monotonic(self):
        trace = SyntheticTraceGenerator(
            self._profile(0.95, 0.1), seed=11).generate(5_000)
        assert (np.diff(trace.timestamps) > 0).all()
