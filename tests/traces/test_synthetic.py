"""Tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.traces import ETC, USR, Op, WorkloadProfile, generate
from repro.traces.synthetic import SyntheticTraceGenerator, zipf_cdf


class TestZipfCdf:
    def test_shape(self):
        cdf = zipf_cdf(100, 1.0)
        assert len(cdf) == 100
        assert cdf[-1] == pytest.approx(1.0)
        assert (np.diff(cdf) > 0).all()

    def test_higher_alpha_more_skew(self):
        mild = zipf_cdf(1000, 0.5)
        steep = zipf_cdf(1000, 1.5)
        assert steep[0] > mild[0]  # rank-0 mass larger under steeper skew

    def test_invalid(self):
        with pytest.raises(ValueError):
            zipf_cdf(0, 1.0)


class TestGenerator:
    def test_deterministic(self):
        a = generate(ETC.scaled(0.05), 5_000, seed=3)
        b = generate(ETC.scaled(0.05), 5_000, seed=3)
        assert (a.keys == b.keys).all()
        assert (a.ops == b.ops).all()
        assert (a.penalties == b.penalties).all()

    def test_seed_changes_trace(self):
        a = generate(ETC.scaled(0.05), 5_000, seed=3)
        b = generate(ETC.scaled(0.05), 5_000, seed=4)
        assert not (a.keys == b.keys).all()

    def test_operation_mix_matches_profile(self):
        trace = generate(ETC.scaled(0.05), 40_000, seed=1)
        get_frac = np.count_nonzero(trace.ops == Op.GET) / len(trace)
        assert abs(get_frac - ETC.get_fraction) < 0.02

    def test_sizes_respect_mixture_bounds(self):
        trace = generate(USR.scaled(0.05), 5_000, seed=1)
        assert set(np.unique(trace.value_sizes)) == {2}
        assert set(np.unique(trace.key_sizes)) <= {16, 21}

    def test_per_key_attributes_stable(self):
        trace = generate(ETC.scaled(0.05), 30_000, seed=2)
        seen: dict[int, tuple] = {}
        for i in range(len(trace)):
            k = int(trace.keys[i])
            attrs = (int(trace.key_sizes[i]), int(trace.value_sizes[i]),
                     float(trace.penalties[i]))
            if k in seen:
                assert seen[k] == attrs, f"key {k} changed attributes"
            seen[k] = attrs

    def test_popularity_is_skewed(self):
        trace = generate(ETC.scaled(0.1), 50_000, seed=5)
        _keys, counts = np.unique(trace.keys, return_counts=True)
        counts = np.sort(counts)[::-1]
        top_share = counts[: max(1, len(counts) // 100)].sum() / counts.sum()
        assert top_share > 0.2  # top 1% of keys take >20% of accesses

    def test_cold_keys_are_one_timers(self):
        profile = ETC.scaled(0.05)
        trace = generate(profile, 20_000, seed=6)
        gen_base = SyntheticTraceGenerator.COLD_KEY_BASE
        cold_mask = trace.keys >= gen_base
        assert cold_mask.any()
        cold_keys, counts = np.unique(trace.keys[cold_mask], return_counts=True)
        assert (counts == 1).all()

    def test_churn_rotates_hot_set(self):
        profile = WorkloadProfile(name="churny", num_keys=1_000,
                                  churn_interval=5_000, churn_fraction=0.5,
                                  cold_fraction=0.0, get_fraction=1.0,
                                  set_fraction=0.0)
        gen = SyntheticTraceGenerator(profile, seed=1)
        early = gen.generate(5_000, start_position=0)
        late = gen.generate(5_000, start_position=50_000)
        assert early.keys.min() < 1_000
        assert late.keys.min() >= 1_000  # whole universe shifted

    def test_timestamps_increase(self):
        trace = generate(ETC.scaled(0.05), 2_000, seed=1)
        assert (np.diff(trace.timestamps) > 0).all()

    def test_penalties_bounded(self):
        trace = generate(ETC.scaled(0.05), 20_000, seed=1)
        assert trace.penalties.min() > 0
        assert trace.penalties.max() <= 5.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            generate(ETC, 0)
