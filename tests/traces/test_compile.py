"""Tests for the columnar trace compiler (repro.traces.compile)."""

import json
import pickle

import numpy as np
import pytest

from repro.traces import (ETC, CompiledTrace, CompiledTraceWriter, Op, Trace,
                          TraceMetaWarning, compile_csv, compile_synthetic,
                          compile_trace, generate, is_compiled_trace,
                          load_csv, load_npz, save_csv, save_npz)
from repro.traces.compile import COLUMN_DTYPES, FORMAT, describe
from repro.traces.record import TRACE_COLUMNS


@pytest.fixture
def trace():
    return generate(ETC.scaled(0.02), 8_000, seed=17)


def assert_traces_equal(a, b, penalty_rtol=0.0, timestamp_atol=0.0):
    assert len(a) == len(b)
    assert (np.asarray(a.ops) == np.asarray(b.ops)).all()
    assert (np.asarray(a.keys) == np.asarray(b.keys)).all()
    assert (np.asarray(a.key_sizes) == np.asarray(b.key_sizes)).all()
    assert (np.asarray(a.value_sizes) == np.asarray(b.value_sizes)).all()
    if penalty_rtol:
        assert np.allclose(a.penalties, b.penalties, rtol=penalty_rtol)
    else:
        assert (np.asarray(a.penalties) == np.asarray(b.penalties)).all()
    if timestamp_atol:
        assert np.allclose(a.timestamps, b.timestamps, atol=timestamp_atol)
    else:
        assert (np.asarray(a.timestamps) == np.asarray(b.timestamps)).all()


class TestWriterReader:
    def test_roundtrip_exact(self, trace, tmp_path):
        c = compile_trace(trace, tmp_path / "t.ctrc")
        assert len(c) == len(trace)
        assert_traces_equal(c, trace)
        assert c.meta["workload"] == "etc"

    def test_chunked_append_equals_whole(self, trace, tmp_path):
        whole = compile_trace(trace, tmp_path / "whole.ctrc")
        with CompiledTraceWriter(tmp_path / "chunked.ctrc",
                                 meta=trace.meta) as w:
            for start in range(0, len(trace), 1_000):
                w.append(trace.slice(start, start + 1_000))
        chunked = CompiledTrace(tmp_path / "chunked.ctrc")
        assert_traces_equal(whole, chunked)

    def test_columns_are_mmap_views(self, trace, tmp_path):
        c = compile_trace(trace, tmp_path / "t.ctrc")
        for name in TRACE_COLUMNS:
            arr = getattr(c, name)
            assert isinstance(arr, np.memmap)
            assert arr.dtype == COLUMN_DTYPES[name]

    def test_plain_np_load_reads_columns(self, trace, tmp_path):
        # The column files are standard .npy: no custom reader needed.
        compile_trace(trace, tmp_path / "t.ctrc")
        keys = np.load(tmp_path / "t.ctrc" / "keys.npy")
        assert (keys == trace.keys).all()

    def test_empty_trace(self, tmp_path):
        empty = Trace(np.empty(0, np.uint8), np.empty(0, np.int64),
                      np.empty(0, np.int32), np.empty(0, np.int32),
                      np.empty(0), meta={"label": "empty"})
        c = compile_trace(empty, tmp_path / "e.ctrc")
        assert len(c) == 0
        assert list(c.iter_windows()) == []
        assert c.meta["label"] == "empty"
        assert describe(c)["gets"] == 0

    def test_append_after_close_rejected(self, trace, tmp_path):
        w = CompiledTraceWriter(tmp_path / "t.ctrc")
        w.append(trace)
        w.close()
        with pytest.raises(ValueError, match="closed"):
            w.append(trace)
        w.close()  # idempotent

    def test_mismatched_chunk_columns_rejected(self, trace, tmp_path):
        with pytest.raises(ValueError, match="rows"):
            with CompiledTraceWriter(tmp_path / "t.ctrc") as w:
                w.append({"ops": trace.ops, "keys": trace.keys[:10],
                          "key_sizes": trace.key_sizes,
                          "value_sizes": trace.value_sizes,
                          "penalties": trace.penalties,
                          "timestamps": trace.timestamps})

    def test_not_a_compiled_trace(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CompiledTrace(tmp_path / "missing")
        assert not is_compiled_trace(tmp_path / "missing")

    def test_bad_format_tag_rejected(self, trace, tmp_path):
        compile_trace(trace, tmp_path / "t.ctrc")
        meta_file = tmp_path / "t.ctrc" / "meta.json"
        doc = json.loads(meta_file.read_text())
        doc["format"] = "other/v9"
        meta_file.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="format"):
            CompiledTrace(tmp_path / "t.ctrc")

    def test_truncated_column_rejected(self, trace, tmp_path):
        compile_trace(trace, tmp_path / "t.ctrc")
        keys = np.load(tmp_path / "t.ctrc" / "keys.npy")
        np.save(tmp_path / "t.ctrc" / "keys.npy", keys[:-5])
        with pytest.raises(ValueError, match="shape"):
            CompiledTrace(tmp_path / "t.ctrc")


class TestWindows:
    @pytest.mark.parametrize("window", [1, 7, 1_000, 8_000, 100_000])
    def test_windows_cover_trace_exactly(self, trace, tmp_path, window):
        c = compile_trace(trace, tmp_path / "t.ctrc")
        windows = list(c.iter_windows(window))
        assert sum(len(w) for w in windows) == len(trace)
        assert all(len(w) <= window for w in windows)
        rebuilt = windows[0]
        for w in windows[1:]:
            rebuilt = Trace(
                np.concatenate([rebuilt.ops, w.ops]),
                np.concatenate([rebuilt.keys, w.keys]),
                np.concatenate([rebuilt.key_sizes, w.key_sizes]),
                np.concatenate([rebuilt.value_sizes, w.value_sizes]),
                np.concatenate([rebuilt.penalties, w.penalties]),
                np.concatenate([rebuilt.timestamps, w.timestamps]))
        assert_traces_equal(rebuilt, trace)

    def test_bad_window_rejected(self, trace, tmp_path):
        c = compile_trace(trace, tmp_path / "t.ctrc")
        with pytest.raises(ValueError):
            list(c.iter_windows(0))
        with pytest.raises(ValueError):
            CompiledTrace(c.path, window=-1)

    def test_pickles_by_path(self, trace, tmp_path):
        c = compile_trace(trace, tmp_path / "t.ctrc")
        c2 = pickle.loads(pickle.dumps(c))
        assert c2.path == c.path and len(c2) == len(c)
        assert_traces_equal(c, c2)

    def test_slice_materializes(self, trace, tmp_path):
        c = compile_trace(trace, tmp_path / "t.ctrc")
        part = c.slice(100, 200)
        assert isinstance(part, Trace)
        assert_traces_equal(part, trace.slice(100, 200))


class TestCompileSynthetic:
    def test_deterministic(self, tmp_path):
        p = ETC.scaled(0.01)
        a = compile_synthetic(p, 20_000, tmp_path / "a.ctrc", seed=3,
                              chunk=4_096)
        b = compile_synthetic(p, 20_000, tmp_path / "b.ctrc", seed=3,
                              chunk=4_096)
        assert_traces_equal(a, b)
        assert a.meta["workload"] == "etc" and a.meta["n"] == 20_000

    def test_matches_generator_chunks(self, tmp_path):
        from repro.traces import SyntheticTraceGenerator
        p = ETC.scaled(0.01)
        c = compile_synthetic(p, 10_000, tmp_path / "c.ctrc", seed=9,
                              chunk=2_500)
        gen = SyntheticTraceGenerator(p, seed=9)
        pos = 0
        for w in c.iter_windows(2_500):
            assert_traces_equal(w, gen.generate(2_500, start_position=pos))
            pos += 2_500

    def test_rejects_nonpositive(self, tmp_path):
        with pytest.raises(ValueError):
            compile_synthetic(ETC.scaled(0.01), 0, tmp_path / "x.ctrc")


class TestPersistenceRoundTrip:
    """npz <-> CSV <-> compiled equality (the satellite suite)."""

    def test_npz_and_compiled_agree_exactly(self, trace, tmp_path):
        save_npz(trace, tmp_path / "t.npz")
        from_npz = load_npz(tmp_path / "t.npz")
        compiled = compile_trace(trace, tmp_path / "t.ctrc")
        assert_traces_equal(from_npz, compiled)
        assert from_npz.meta["workload"] == compiled.meta["workload"]

    def test_csv_compiles_like_it_loads(self, trace, tmp_path):
        small = trace.slice(0, 1_500)
        save_csv(small, tmp_path / "t.csv")
        from_csv = load_csv(tmp_path / "t.csv")
        compiled = compile_csv(tmp_path / "t.csv", tmp_path / "t.ctrc",
                               chunk=400)
        assert_traces_equal(from_csv, compiled)
        # CSV rounds penalties to 6 significant digits and timestamps
        # to microseconds; equality with the source is approximate.
        assert_traces_equal(compiled, small, penalty_rtol=1e-5,
                            timestamp_atol=1e-6)

    def test_zero_penalty_rows_survive_all_formats(self, tmp_path):
        n = 64
        trace = Trace(np.zeros(n, np.uint8), np.arange(n, dtype=np.int64),
                      np.full(n, 16, np.int32), np.full(n, 100, np.int32),
                      np.zeros(n), np.linspace(0, 1, n),
                      meta={"label": "zero-penalty"})
        save_npz(trace, tmp_path / "z.npz")
        save_csv(trace, tmp_path / "z.csv")
        compiled = compile_trace(trace, tmp_path / "z.ctrc")
        assert (load_npz(tmp_path / "z.npz").penalties == 0).all()
        assert (load_csv(tmp_path / "z.csv").penalties == 0).all()
        assert (np.asarray(compiled.penalties) == 0).all()

    def test_empty_trace_roundtrips(self, tmp_path):
        empty = Trace(np.empty(0, np.uint8), np.empty(0, np.int64),
                      np.empty(0, np.int32), np.empty(0, np.int32),
                      np.empty(0), meta={"n": 0})
        save_npz(empty, tmp_path / "e.npz")
        assert len(load_npz(tmp_path / "e.npz")) == 0
        save_csv(empty, tmp_path / "e.csv")
        assert len(load_csv(tmp_path / "e.csv")) == 0
        assert len(compile_trace(empty, tmp_path / "e.ctrc")) == 0


class TestMeta:
    def test_numpy_scalars_unwrap(self, trace, tmp_path):
        trace.meta["count"] = np.int64(41)
        trace.meta["ratio"] = np.float64(0.25)
        save_npz(trace, tmp_path / "t.npz")
        meta = load_npz(tmp_path / "t.npz").meta
        assert meta["count"] == 41 and isinstance(meta["count"], int)
        assert meta["ratio"] == 0.25

    def test_tuples_come_back_as_lists(self, trace, tmp_path):
        trace.meta["span"] = (10, 20)
        save_npz(trace, tmp_path / "t.npz")
        assert load_npz(tmp_path / "t.npz").meta["span"] == [10, 20]

    def test_private_keys_dropped(self, trace, tmp_path):
        trace.meta["_shm"] = object()  # the shared-memory pin
        save_npz(trace, tmp_path / "t.npz")
        assert "_shm" not in load_npz(tmp_path / "t.npz").meta

    def test_unserializable_value_warns_and_stringifies(self, trace,
                                                        tmp_path):
        class Odd:
            def __repr__(self):
                return "Odd<1>"

        trace.meta["odd"] = Odd()
        with pytest.warns(TraceMetaWarning, match="odd"):
            save_npz(trace, tmp_path / "t.npz")
        assert load_npz(tmp_path / "t.npz").meta["odd"] == "Odd<1>"

    def test_new_archives_load_without_pickle(self, trace, tmp_path):
        save_npz(trace, tmp_path / "t.npz")
        # np.load(allow_pickle=False) is the loader default; an archive
        # needing pickle would raise here.
        with np.load(tmp_path / "t.npz", allow_pickle=False) as data:
            assert "meta_json" in data.files

    def test_legacy_archive_still_loads(self, trace, tmp_path):
        # The pre-JSON writer stored (key, repr(value)) object pairs.
        meta_items = sorted(
            (str(k), repr(v))
            for k, v in {"workload": "etc", "seed": 17,
                         "nested": {"a": [1, 2]}}.items())
        np.savez_compressed(
            tmp_path / "legacy.npz", ops=trace.ops, keys=trace.keys,
            key_sizes=trace.key_sizes, value_sizes=trace.value_sizes,
            penalties=trace.penalties, timestamps=trace.timestamps,
            meta=np.array(meta_items, dtype=object))
        loaded = load_npz(tmp_path / "legacy.npz")
        assert loaded.meta["workload"] == "etc"
        assert loaded.meta["seed"] == 17
        assert loaded.meta["nested"] == {"a": [1, 2]}
        assert (loaded.keys == trace.keys).all()

    def test_compiled_meta_is_json(self, trace, tmp_path):
        trace.meta["tag"] = np.int32(5)
        c = compile_trace(trace, tmp_path / "t.ctrc")
        assert c.meta["tag"] == 5
        doc = json.loads((tmp_path / "t.ctrc" / "meta.json").read_text())
        assert doc["format"] == FORMAT and doc["n"] == len(trace)


class TestDescribe:
    def test_counts_match_full_scan(self, trace, tmp_path):
        c = compile_trace(trace, tmp_path / "t.ctrc")
        c.window = 1_000  # force several windows
        info = describe(c)
        assert info["rows"] == len(trace)
        assert info["gets"] == int((trace.ops == Op.GET).sum())
        assert info["sets"] == int((trace.ops == Op.SET).sum())
        assert info["deletes"] == int((trace.ops == Op.DELETE).sum())
        assert info["mean_penalty"] == pytest.approx(
            float(trace.penalties.mean()))
        assert info["max_penalty"] == pytest.approx(
            float(trace.penalties.max()))


class TestChunkedFromRequests:
    def test_chunked_builder_matches_one_shot(self, trace, tmp_path):
        from repro.traces import from_requests
        reqs = [trace[i] for i in range(500)]
        small_chunks = from_requests(iter(reqs), chunk_rows=64)
        one_shot = from_requests(iter(reqs), chunk_rows=10**9)
        assert_traces_equal(small_chunks, one_shot)

    def test_empty_iterable(self):
        from repro.traces import from_requests
        t = from_requests(iter(()))
        assert len(t) == 0
        assert t.ops.dtype == np.uint8 and t.keys.dtype == np.int64

    def test_iter_request_chunks_bounded(self, trace, tmp_path):
        from repro.traces import iter_request_chunks
        save_csv(trace.slice(0, 1_000), tmp_path / "t.csv")
        chunks = list(iter_request_chunks(tmp_path / "t.csv",
                                          chunk_rows=128))
        assert all(len(c) <= 128 for c in chunks)
        assert sum(len(c) for c in chunks) == 1_000
