"""Tests for the penalty model and the trace-gap estimator."""

import numpy as np
import pytest

from repro.traces import Op, Trace, infer_penalties
from repro.traces.penalty import PenaltyModel, splitmix64_array, uniform01


class TestVectorHashing:
    def test_matches_scalar_splitmix(self):
        from repro.bloom.hashing import splitmix64
        keys = np.array([0, 1, 42, 2**40], dtype=np.int64)
        out = splitmix64_array(keys, seed=0)
        # seed=0 path: x ^ (0 * gamma) == x, so equals scalar splitmix64
        for k, h in zip(keys.tolist(), out.tolist()):
            assert h == splitmix64(k)

    def test_uniform_range_and_determinism(self):
        keys = np.arange(10_000, dtype=np.int64)
        u = uniform01(keys, seed=5)
        assert (u >= 0).all() and (u < 1).all()
        assert (u == uniform01(keys, seed=5)).all()
        assert abs(u.mean() - 0.5) < 0.02


class TestPenaltyModel:
    def test_deterministic_per_key(self):
        m = PenaltyModel(seed=1)
        assert m.penalty_for(5, 100) == m.penalty_for(5, 100)

    def test_bounds(self):
        m = PenaltyModel(seed=1)
        keys = np.arange(20_000, dtype=np.int64)
        pens = m.penalties_for(keys, np.full(20_000, 500))
        assert pens.min() >= m.min_penalty
        assert pens.max() <= m.cap

    def test_fig1_shape_scatter_at_every_size(self):
        """At any fixed size, penalties must span decades (Fig 1)."""
        m = PenaltyModel(seed=2, unknown_fraction=0.0)
        keys = np.arange(30_000, dtype=np.int64)
        for size in (64, 1_000, 100_000):
            pens = m.penalties_for(keys, np.full(len(keys), size))
            assert np.percentile(pens, 99) / np.percentile(pens, 1) > 50

    def test_size_correlation_direction(self):
        m = PenaltyModel(seed=3, correlation=0.4, unknown_fraction=0.0)
        keys = np.arange(30_000, dtype=np.int64)
        small = m.penalties_for(keys, np.full(len(keys), 64)).mean()
        large = m.penalties_for(keys, np.full(len(keys), 100_000)).mean()
        assert large > small

    def test_unknown_fraction_gets_default(self):
        m = PenaltyModel(seed=4, unknown_fraction=0.3)
        keys = np.arange(50_000, dtype=np.int64)
        pens = m.penalties_for(keys, np.full(len(keys), 500))
        frac = np.count_nonzero(pens == m.default_penalty) / len(pens)
        assert abs(frac - 0.3) < 0.02

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PenaltyModel(base_penalty=0)
        with pytest.raises(ValueError):
            PenaltyModel(unknown_fraction=1.5)
        with pytest.raises(ValueError):
            PenaltyModel(cap=0.0001, min_penalty=0.001)


def make_trace(rows):
    """rows: (op, key, t) tuples."""
    ops = np.array([r[0] for r in rows], dtype=np.uint8)
    keys = np.array([r[1] for r in rows], dtype=np.int64)
    ts = np.array([r[2] for r in rows], dtype=np.float64)
    n = len(rows)
    return Trace(ops, keys, np.full(n, 16, np.int32),
                 np.full(n, 100, np.int32), np.zeros(n), ts)


class TestInferPenalties:
    def test_gap_measured(self):
        trace = make_trace([
            (Op.GET, 1, 0.0),   # cold miss
            (Op.SET, 1, 0.8),   # fill 0.8s later -> penalty 0.8
            (Op.GET, 1, 1.0),   # hit; inherits measured penalty
        ])
        pens = infer_penalties(trace)
        assert pens[0] == pytest.approx(0.8)
        assert pens[2] == pytest.approx(0.8)

    def test_excessive_gap_discarded(self):
        trace = make_trace([
            (Op.GET, 1, 0.0),
            (Op.SET, 1, 10.0),  # > 5s cap: not believable
        ])
        pens = infer_penalties(trace)
        assert pens[0] == pytest.approx(0.1)  # paper's default

    def test_never_set_keeps_default(self):
        trace = make_trace([(Op.GET, 1, 0.0), (Op.GET, 2, 0.5)])
        assert (infer_penalties(trace) == 0.1).all()

    def test_delete_resets_seen(self):
        trace = make_trace([
            (Op.GET, 1, 0.0),
            (Op.SET, 1, 0.2),
            (Op.DELETE, 1, 0.5),
            (Op.GET, 1, 1.0),   # miss again after delete
            (Op.SET, 1, 1.6),   # second measured gap 0.6
        ])
        pens = infer_penalties(trace)
        assert pens[0] == pytest.approx(0.2)
        assert pens[3] == pytest.approx(0.6)

    def test_backfill_earlier_accesses(self):
        trace = make_trace([
            (Op.SET, 1, 0.0),
            (Op.GET, 1, 0.1),   # hit: penalty unknown yet -> default
            (Op.DELETE, 1, 0.2),
            (Op.GET, 1, 0.3),   # miss
            (Op.SET, 1, 0.7),   # measured 0.4
        ])
        pens = infer_penalties(trace)
        assert pens[1] == pytest.approx(0.4)  # back-filled
