"""Tests for the Twitter production-trace format reader."""

import pytest

from repro.traces import Op
from repro.traces.twitter import (TwitterTraceError, iter_twitter_lines,
                                  load_twitter)

SAMPLE = """\
# timestamp,key,key_size,value_size,client,op,ttl
0.0,keyA,12,100,1,get,0
0.5,keyA,12,100,1,set,3600
1.0,keyB,8,50,2,get,0
1.5,keyB,8,50,2,add,0
2.0,keyA,12,100,3,gets,0
2.5,keyC,10,0,1,delete,0
3.0,keyD,9,4,4,incr,0
"""


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "twitter.csv"
    path.write_text(SAMPLE)
    return path


class TestParsing:
    def test_line_iterator(self):
        rows = list(iter_twitter_lines(SAMPLE.splitlines()))
        assert len(rows) == 7
        ts, key, ksz, vsz, op, ttl = rows[1]
        assert ts == 0.5 and ksz == 12 and vsz == 100
        assert op == Op.SET and ttl == 3600

    def test_op_mapping(self):
        rows = list(iter_twitter_lines(SAMPLE.splitlines()))
        ops = [r[4] for r in rows]
        assert ops == [Op.GET, Op.SET, Op.GET, Op.SET, Op.GET, Op.DELETE,
                       Op.GET]

    def test_same_key_same_id(self):
        rows = list(iter_twitter_lines(SAMPLE.splitlines()))
        assert rows[0][1] == rows[1][1] == rows[4][1]
        assert rows[0][1] != rows[2][1]

    def test_strict_rejects_malformed(self):
        with pytest.raises(TwitterTraceError):
            list(iter_twitter_lines(["1.0,k,12,100,1,get"]))  # 6 fields
        with pytest.raises(TwitterTraceError):
            list(iter_twitter_lines(["1.0,k,12,100,1,frobnicate,0"]))
        with pytest.raises(TwitterTraceError):
            list(iter_twitter_lines(["abc,k,12,100,1,get,0"]))

    def test_lenient_skips_malformed(self):
        lines = ["garbage", "1.0,k,12,100,1,get,0", "2.0,k,12,x,1,get,0"]
        rows = list(iter_twitter_lines(lines, strict=False))
        assert len(rows) == 1


class TestLoading:
    def test_load_with_synthetic_penalties(self, trace_file):
        trace = load_twitter(trace_file)
        assert len(trace) == 7
        assert trace.meta["workload"] == "twitter"
        assert (trace.penalties > 0).all()
        # same key -> same deterministic penalty
        assert trace.penalties[0] == trace.penalties[4]

    def test_load_with_inferred_penalties(self, trace_file):
        trace = load_twitter(trace_file, infer=True)
        # keyA: GET at 0.0 then SET at 0.5 -> measured 0.5s penalty
        assert trace.penalties[0] == pytest.approx(0.5)
        # keyB: GET at 1.0, add at 1.5 -> measured 0.5s
        assert trace.penalties[2] == pytest.approx(0.5)

    def test_limit(self, trace_file):
        assert len(load_twitter(trace_file, limit=3)) == 3

    def test_empty_raises(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("# nothing\n")
        with pytest.raises(TwitterTraceError):
            load_twitter(empty)

    def test_simulates(self, trace_file):
        from repro.cache import SlabCache, SizeClassConfig
        from repro.core import PamaPolicy
        from repro.sim import simulate
        trace = load_twitter(trace_file)
        cache = SlabCache(1 << 20, PamaPolicy(),
                          SizeClassConfig(slab_size=64 << 10))
        result = simulate(trace, cache, window_gets=100)
        assert result.total_gets == 4
