"""Tests for the Trace container."""

import numpy as np
import pytest

from repro.traces import Op, Request, Trace


def tiny_trace(n=6):
    return Trace(
        ops=np.array([0, 1, 0, 0, 2, 0], dtype=np.uint8)[:n],
        keys=np.arange(n, dtype=np.int64),
        key_sizes=np.full(n, 16, dtype=np.int32),
        value_sizes=(np.arange(n, dtype=np.int32) + 1) * 100,
        penalties=np.linspace(0.01, 0.06, n),
        timestamps=np.linspace(0.0, 1.0, n),
        meta={"workload": "test"},
    )


class TestTrace:
    def test_len_and_getitem(self):
        t = tiny_trace()
        assert len(t) == 6
        req = t[1]
        assert isinstance(req, Request)
        assert req.op == Op.SET
        assert req.key == 1
        assert req.value_size == 200

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(3, dtype=np.uint8), np.zeros(2, dtype=np.int64),
                  np.zeros(3, dtype=np.int32), np.zeros(3, dtype=np.int32),
                  np.zeros(3))

    def test_iter_rows_matches_getitem(self):
        t = tiny_trace()
        for i, (op, key, ksz, vsz, pen) in enumerate(t.iter_rows()):
            req = t[i]
            assert (op, key, ksz, vsz) == (req.op, req.key, req.key_size,
                                           req.value_size)
            assert pen == pytest.approx(req.penalty)

    def test_slice(self):
        t = tiny_trace()
        s = t.slice(2, 5)
        assert len(s) == 3
        assert s[0].key == 2

    def test_concat_shifts_timestamps(self):
        t = tiny_trace()
        joined = t.concat(t)
        assert len(joined) == 12
        assert joined.timestamps[6] >= joined.timestamps[5]
        assert joined.meta["concatenated"]

    def test_repeat(self):
        t = tiny_trace()
        r = t.repeat(3)
        assert len(r) == 18
        assert r.meta["repeats"] == 3
        assert (r.keys[:6] == r.keys[6:12]).all()
        with pytest.raises(ValueError):
            t.repeat(0)

    def test_num_gets_and_unique_keys(self):
        t = tiny_trace()
        assert t.num_gets == 4
        assert t.unique_keys == 6

    def test_default_timestamps_zero(self):
        t = Trace(np.zeros(2, dtype=np.uint8), np.zeros(2, dtype=np.int64),
                  np.ones(2, dtype=np.int32), np.ones(2, dtype=np.int32),
                  np.ones(2))
        assert (t.timestamps == 0).all()


class TestSharedTrace:
    def test_round_trip_preserves_columns_and_meta(self):
        from repro.traces import SharedTrace, attach_shared_trace

        t = tiny_trace()
        with SharedTrace(t) as shared:
            got = attach_shared_trace(shared.descriptor)
            for col in ("ops", "keys", "key_sizes", "value_sizes",
                        "penalties", "timestamps"):
                np.testing.assert_array_equal(getattr(got, col),
                                              getattr(t, col))
                assert getattr(got, col).dtype == getattr(t, col).dtype
            assert got.meta["workload"] == "test"
            del got  # drop the attachment before the owner unlinks

    def test_descriptor_is_small_and_picklable(self):
        import pickle

        from repro.traces import SharedTrace

        t = tiny_trace()
        with SharedTrace(t) as shared:
            blob = pickle.dumps(shared.descriptor)
            # the whole point: workers receive a handle, not the columns
            assert len(blob) < 1024
            assert pickle.loads(blob).n == len(t)

    def test_attached_view_is_zero_copy(self):
        from repro.traces import SharedTrace, attach_shared_trace

        t = tiny_trace()
        with SharedTrace(t) as shared:
            a = attach_shared_trace(shared.descriptor)
            b = attach_shared_trace(shared.descriptor)
            a.penalties[0] = 42.0  # visible through the shared block
            assert b.penalties[0] == 42.0
            assert t.penalties[0] != 42.0  # owner's copy is independent
            del a, b

    def test_close_is_idempotent(self):
        from repro.traces import SharedTrace

        shared = SharedTrace(tiny_trace())
        shared.close()
        shared.close()
