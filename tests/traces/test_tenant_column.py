"""The tenant column across the trace substrate: v1 <-> v2 compat.

Compiled-trace format v2 adds a ``<u2 tenants`` column; v1 directories
(no ``tenants.npy``) must keep opening with an implicit all-zero
column, single-tenant ``.npz`` archives must stay byte-compatible with
the pre-tenancy writer, and a tenant column whose length disagrees
with the op column is data corruption the reader must reject (the
regression in this suite failed before compile-meta validation checked
per-column shapes).
"""

import numpy as np
import pytest

from repro.tenancy import TenantSpec, mix_tenants
from repro.traces import (ETC, FORMAT_V1, FORMAT_V2, CompiledTrace,
                          CompiledTraceWriter, Trace, compile_trace,
                          generate, load_npz, save_npz)
from repro.traces.compile import COLUMN_DTYPES, describe
from repro.traces.workloads import APP


@pytest.fixture
def plain_trace():
    return generate(ETC.scaled(0.02), 4_000, seed=17)


@pytest.fixture
def tenant_trace():
    specs = [TenantSpec(name="etc", profile=ETC.scaled(0.02)),
             TenantSpec(name="app", profile=APP.scaled(0.02))]
    return mix_tenants(specs, 4_000, seed=5)


class TestTraceTenants:
    def test_default_is_zero_broadcast(self, plain_trace):
        assert plain_trace.tenants.dtype == np.uint16
        assert len(plain_trace.tenants) == len(plain_trace)
        assert not plain_trace.tenants.any()
        assert plain_trace.num_tenants == 1

    def test_slice_and_concat_thread_tenants(self, tenant_trace):
        part = tenant_trace.slice(100, 300)
        assert (np.asarray(part.tenants)
                == np.asarray(tenant_trace.tenants[100:300])).all()
        glued = tenant_trace.slice(0, 2_000).concat(
            tenant_trace.slice(2_000, None))
        assert (np.asarray(glued.tenants)
                == np.asarray(tenant_trace.tenants)).all()

    def test_length_mismatch_rejected(self, plain_trace):
        with pytest.raises(ValueError, match="tenants"):
            Trace(plain_trace.ops, plain_trace.keys,
                  plain_trace.key_sizes, plain_trace.value_sizes,
                  plain_trace.penalties, plain_trace.timestamps,
                  tenants=np.zeros(7, dtype=np.uint16))


class TestCompiledV1V2:
    def test_compile_defaults_to_v2(self, plain_trace, tmp_path):
        c = compile_trace(plain_trace, tmp_path / "t.ctrc")
        assert c.format == FORMAT_V2
        assert (tmp_path / "t.ctrc" / "tenants.npy").exists()
        assert c.tenants.dtype == COLUMN_DTYPES["tenants"]
        assert not np.asarray(c.tenants).any()

    def test_v2_roundtrips_tenant_column(self, tenant_trace, tmp_path):
        c = compile_trace(tenant_trace, tmp_path / "t.ctrc")
        assert (np.asarray(c.tenants)
                == np.asarray(tenant_trace.tenants)).all()
        part = c.slice(500, 1_500)
        assert (np.asarray(part.tenants)
                == np.asarray(tenant_trace.tenants[500:1_500])).all()
        windows = np.concatenate([np.asarray(w.tenants)
                                  for w in c.iter_windows(1_000)])
        assert (windows == np.asarray(tenant_trace.tenants)).all()

    def test_v1_directory_opens_with_zero_tenants(self, plain_trace,
                                                  tmp_path):
        with CompiledTraceWriter(tmp_path / "v1.ctrc",
                                 meta=plain_trace.meta,
                                 format=FORMAT_V1) as w:
            w.append(plain_trace)
        assert not (tmp_path / "v1.ctrc" / "tenants.npy").exists()
        c = CompiledTrace(tmp_path / "v1.ctrc")
        assert c.format == FORMAT_V1
        assert len(c.tenants) == len(plain_trace)
        assert not np.asarray(c.tenants).any()
        assert (np.asarray(c.keys) == plain_trace.keys).all()

    def test_describe_reports_format_and_tenant_count(self, tenant_trace,
                                                      plain_trace,
                                                      tmp_path):
        two = describe(compile_trace(tenant_trace, tmp_path / "two.ctrc"))
        assert two["format"] == FORMAT_V2
        assert two["tenants"] == 2
        with CompiledTraceWriter(tmp_path / "v1.ctrc",
                                 format=FORMAT_V1) as w:
            w.append(plain_trace)
        one = describe(CompiledTrace(tmp_path / "v1.ctrc"))
        assert one["format"] == FORMAT_V1
        assert one["tenants"] == 1

    def test_dict_chunks_may_omit_tenants(self, plain_trace, tmp_path):
        with CompiledTraceWriter(tmp_path / "t.ctrc") as w:
            w.append({"ops": plain_trace.ops, "keys": plain_trace.keys,
                      "key_sizes": plain_trace.key_sizes,
                      "value_sizes": plain_trace.value_sizes,
                      "penalties": plain_trace.penalties,
                      "timestamps": plain_trace.timestamps})
        c = CompiledTrace(tmp_path / "t.ctrc")
        assert not np.asarray(c.tenants).any()


class TestCorruptTenantColumn:
    """Regression: a truncated tenant column must fail the open."""

    def test_truncated_tenants_rejected(self, tenant_trace, tmp_path):
        compile_trace(tenant_trace, tmp_path / "t.ctrc")
        tenants = np.load(tmp_path / "t.ctrc" / "tenants.npy")
        np.save(tmp_path / "t.ctrc" / "tenants.npy", tenants[:-9])
        with pytest.raises(ValueError, match="tenants"):
            CompiledTrace(tmp_path / "t.ctrc")

    def test_retyped_tenants_rejected(self, tenant_trace, tmp_path):
        compile_trace(tenant_trace, tmp_path / "t.ctrc")
        tenants = np.load(tmp_path / "t.ctrc" / "tenants.npy")
        np.save(tmp_path / "t.ctrc" / "tenants.npy",
                tenants.astype(np.int64))
        with pytest.raises(ValueError, match="tenants"):
            CompiledTrace(tmp_path / "t.ctrc")


class TestNpzTenants:
    def test_tenant_trace_roundtrips(self, tenant_trace, tmp_path):
        save_npz(tenant_trace, tmp_path / "t.npz")
        loaded = load_npz(tmp_path / "t.npz")
        assert (np.asarray(loaded.tenants)
                == np.asarray(tenant_trace.tenants)).all()
        assert loaded.num_tenants == 2

    def test_single_tenant_archive_omits_column(self, plain_trace,
                                                tmp_path):
        # Pre-tenancy readers must keep loading new single-tenant
        # archives, so the all-zero column is not written at all.
        save_npz(plain_trace, tmp_path / "t.npz")
        with np.load(tmp_path / "t.npz", allow_pickle=False) as data:
            assert "tenants" not in data.files
        loaded = load_npz(tmp_path / "t.npz")
        assert not loaded.tenants.any()
