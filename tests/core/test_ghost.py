"""Tests for the ghost list, including a brute-force oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ghost import GhostList


class TestGhostBasics:
    def test_push_and_lookup(self):
        g = GhostList(seg_len=2, num_segments=2)
        g.push("a", 0.5)
        assert "a" in g
        entry = g.lookup("a")
        assert entry.penalty == 0.5 and entry.seg == 0
        g.check_invariants()

    def test_segments_by_eviction_recency(self):
        g = GhostList(seg_len=2, num_segments=3)
        for i in range(5):
            g.push(i, 0.1)
        # most recent push (4) at top: segment 0
        assert g.segment_of(4) == 0 and g.segment_of(3) == 0
        assert g.segment_of(2) == 1 and g.segment_of(1) == 1
        assert g.segment_of(0) == 2
        g.check_invariants()

    def test_capacity_drop(self):
        g = GhostList(seg_len=2, num_segments=2)
        dropped = [g.push(i, 0.1) for i in range(6)]
        assert dropped[:4] == [None] * 4
        assert dropped[4] == 0 and dropped[5] == 1
        assert len(g) == 4
        assert 0 not in g and 1 not in g
        g.check_invariants()

    def test_remove(self):
        g = GhostList(seg_len=2, num_segments=2)
        for i in range(4):
            g.push(i, 0.1)
        assert g.remove(2)
        assert not g.remove(2)
        assert len(g) == 3
        # entries below the removed one move up a distance
        assert g.segment_of(3) == 0
        assert g.segment_of(1) == 0
        assert g.segment_of(0) == 1
        g.check_invariants()

    def test_repush_refreshes_position(self):
        g = GhostList(seg_len=1, num_segments=3)
        g.push("a", 0.1)
        g.push("b", 0.2)
        g.push("a", 0.3)  # re-eviction of a
        assert g.segment_of("a") == 0
        assert g.segment_of("b") == 1
        assert g.lookup("a").penalty == 0.3
        assert len(g) == 2
        g.check_invariants()

    def test_segment_of_absent(self):
        g = GhostList(2, 2)
        assert g.segment_of("nope") == -1

    def test_clear(self):
        g = GhostList(2, 2)
        for i in range(3):
            g.push(i, 0.1)
        g.clear()
        assert len(g) == 0 and 0 not in g
        g.check_invariants()

    def test_iteration_order_top_down(self):
        g = GhostList(3, 2)
        for i in range(4):
            g.push(i, 0.1)
        assert [e.key for e in g] == [3, 2, 1, 0]

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            GhostList(0, 2)
        with pytest.raises(ValueError):
            GhostList(2, 0)


class TestGhostOracle:
    @settings(max_examples=80, deadline=None)
    @given(
        seg_len=st.integers(1, 4),
        num_segments=st.integers(1, 4),
        ops=st.lists(st.tuples(st.sampled_from(["push", "remove", "repush"]),
                               st.integers(0, 30)), max_size=150),
    )
    def test_random_ops_match_oracle(self, seg_len, num_segments, ops):
        g = GhostList(seg_len, num_segments)
        model = []  # keys, top first
        for op, k in ops:
            if op == "push":
                key = f"k{k}"
                if key in model:
                    model.remove(key)
                g.push(key, 0.1)
                model.insert(0, key)
                if len(model) > g.capacity:
                    model.pop()
            elif op == "remove" and model:
                key = model[k % len(model)]
                g.remove(key)
                model.remove(key)
            elif op == "repush" and model:
                key = model[k % len(model)]
                g.push(key, 0.2)
                model.remove(key)
                model.insert(0, key)
            g.check_invariants()
            assert [e.key for e in g] == model
            for d, key in enumerate(model):
                assert g.segment_of(key) == d // seg_len
