"""Tests for pre-PAMA (the penalty-blind ablation)."""

from repro.cache import SlabCache, SizeClassConfig
from repro.core import PamaConfig, PrePamaPolicy


def prepama_cache(slabs=8):
    classes = SizeClassConfig(slab_size=4096, base_size=64)
    policy = PrePamaPolicy(PamaConfig(value_window=1_000_000))
    return SlabCache(slabs * 4096, policy, classes), policy


class TestPrePama:
    def test_single_bin_per_class(self):
        cache, policy = prepama_cache()
        cache.set("cheap", 8, 50, 0.0005)
        cache.set("dear", 8, 50, 2.0)
        assert policy.bin_for(0.0005) == 0
        assert policy.bin_for(2.0) == 0
        assert len(cache.queues) == 1  # same class, same (only) bin

    def test_values_count_requests_not_penalties(self):
        cache, policy = prepama_cache()
        for i in range(5):
            cache.set(i, 8, 50, 2.0)  # expensive items
        queue = next(iter(cache.iter_queues()))
        cache.get(0)  # bottom segment hit
        # value contribution is 1 (a count), not the 2.0s penalty
        assert queue.policy_data.values.out == [0.5 * 0 + 1.0, 0.0, 0.0]

    def test_name(self):
        assert PrePamaPolicy().name == "pre-pama"

    def test_runs_mixed_workload(self):
        import random
        rng = random.Random(2)
        cache, policy = prepama_cache(slabs=8)
        for i in range(4000):
            key = rng.randrange(300)
            size = rng.choice([40, 200, 900, 3000])
            pen = rng.choice([0.0005, 0.05, 2.0])
            if cache.get(key, (8, size, pen)) is None:
                cache.set(key, 8, size, pen)
        cache.check_invariants()
        assert cache.stats.hits > 0
