"""Tests for adaptive penalty binning."""

import random

import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.core import AdaptivePamaPolicy, PamaConfig
from repro.core.pama import PamaPolicy
from repro.policies import make_policy


def adaptive_cache(slabs=8, **kwargs):
    kwargs.setdefault("warmup_samples", 200)
    classes = SizeClassConfig(slab_size=4096, base_size=64)
    policy = AdaptivePamaPolicy(PamaConfig(value_window=100_000), **kwargs)
    return SlabCache(slabs * 4096, policy, classes), policy


class TestLearning:
    def test_uses_fixed_edges_before_warmup(self):
        _cache, policy = adaptive_cache()
        assert policy.learned_edges is None
        assert policy.bin_for(0.05) == PamaConfig().bin_for(0.05)

    def test_learns_quantile_edges(self):
        cache, policy = adaptive_cache(warmup_samples=300)
        rng = random.Random(0)
        for i in range(400):
            cache.set(i, 8, 50, rng.uniform(0.01, 0.02))
        assert policy.learned_edges is not None
        # all mass in (10ms, 20ms): learned edges must live there too
        assert all(0.01 <= e <= 0.02 for e in policy.learned_edges)

    def test_balanced_bins_on_clustered_penalties(self):
        """Penalties clustered in one *fixed* bin spread over all
        learned bins — the failure mode this extension removes."""
        cache, policy = adaptive_cache(warmup_samples=300)
        rng = random.Random(1)
        pens = [rng.uniform(0.011, 0.099) for _ in range(2000)]  # one fixed bin
        fixed = PamaConfig()
        assert len({fixed.bin_for(p) for p in pens}) == 1
        for i, p in enumerate(pens):
            cache.set(i % 500, 8, 50, p)
        learned_bins = {policy.bin_for(p) for p in pens}
        assert len(learned_bins) >= 4

    def test_degenerate_distribution_collapses_edges(self):
        cache, policy = adaptive_cache(warmup_samples=100)
        for i in range(200):
            cache.set(i, 8, 50, 0.1)  # a single repeated penalty
        assert policy.learned_edges == (0.1,)
        assert policy.bin_for(0.0001) == 0
        assert policy.bin_for(4.0) == 0

    def test_refresh_relearns(self):
        cache, policy = adaptive_cache(warmup_samples=100,
                                       refresh_interval=200)
        rng = random.Random(2)
        for i in range(1000):
            cache.set(i % 300, 8, 50, rng.uniform(0.001, 1.0))
        assert policy.relearn_count >= 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AdaptivePamaPolicy(warmup_samples=0)
        with pytest.raises(ValueError):
            AdaptivePamaPolicy(refresh_interval=-1)

    def test_nan_penalty_observation_ignored(self):
        _cache, policy = adaptive_cache()
        policy.observe_penalty(float("nan"))
        assert policy._observed == 0


class TestBehaviour:
    def test_invariants_and_routing_under_churn(self):
        cache, policy = adaptive_cache(slabs=8, warmup_samples=500)
        rng = random.Random(3)
        for i in range(6000):
            key = rng.randrange(400)
            size = rng.choice([40, 200, 900])
            pen = rng.lognormvariate(-3.0, 1.0)
            if cache.get(key, (8, size, min(pen, 5.0))) is None:
                cache.set(key, 8, size, min(pen, 5.0))
        cache.check_invariants()
        assert policy.learned_edges is not None
        # multiple learned subclasses actually hold items
        bins = {q.bin_idx for q in cache.iter_queues() if len(q.lru)}
        assert len(bins) >= 2

    def test_beats_fixed_bins_on_clustered_penalties(self):
        """When every penalty lands in one fixed bin, fixed-bin PAMA
        loses its subclassing; adaptive PAMA must match or beat its
        service time."""
        def run(policy):
            classes = SizeClassConfig(slab_size=4096, base_size=64)
            cache = SlabCache(6 * 4096, policy, classes)
            rng = random.Random(4)
            for _ in range(25_000):
                key = rng.randrange(600)
                # all penalties inside the fixed (10ms,100ms] bin, but
                # spanning a decade — room for penalty-aware decisions
                pen = 0.011 * (9.0 ** rng.random())
                if cache.get(key, (8, 50 if key % 2 else 800, pen)) is None:
                    cache.set(key, 8, 50 if key % 2 else 800, pen)
            return cache.stats.total_miss_penalty

        fixed = run(PamaPolicy(PamaConfig(value_window=10_000)))
        adaptive = run(AdaptivePamaPolicy(PamaConfig(value_window=10_000),
                                          warmup_samples=2_000))
        assert adaptive <= fixed * 1.05

    def test_registry(self):
        policy = make_policy("pama-adaptive", warmup_samples=123,
                             value_window=777)
        assert isinstance(policy, AdaptivePamaPolicy)
        assert policy.warmup_samples == 123
        assert policy.config.value_window == 777
