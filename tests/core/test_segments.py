"""Tests for the exact segment tracker, including a brute-force oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.item import Item
from repro.cache.lru import LRUList
from repro.core.segments import SegmentTracker


def make_item(key):
    return Item(key, 8, 32, 0.01)


def tracked_list(seg_len, num_segments):
    lru = LRUList()
    tracker = SegmentTracker(lru, seg_len, num_segments)
    return lru, tracker


class TestSegmentAssignment:
    def test_first_item_is_segment_zero(self):
        lru, tracker = tracked_list(seg_len=2, num_segments=3)
        a = make_item("a")
        lru.push_front(a)
        assert a.seg == 0
        tracker.check_invariants()

    def test_fill_across_segments(self):
        lru, tracker = tracked_list(seg_len=2, num_segments=3)
        items = [make_item(i) for i in range(8)]
        for it in items:
            lru.push_front(it)
        # bottom-distance: items[0] is deepest (pushed first)
        assert items[0].seg == 0 and items[1].seg == 0
        assert items[2].seg == 1 and items[3].seg == 1
        assert items[4].seg == 2 and items[5].seg == 2
        assert items[6].seg == -1 and items[7].seg == -1
        tracker.check_invariants()

    def test_promotion_shifts_segments(self):
        lru, tracker = tracked_list(seg_len=2, num_segments=2)
        items = [make_item(i) for i in range(5)]
        for it in items:
            lru.push_front(it)
        # order (MRU→LRU): 4 3 2 1 0 ; segs: -1 1 1 0 0
        lru.move_to_front(items[0])  # bottom item promoted
        # new order: 0 4 3 2 1 ; distances: 1→0, 2→1, 3→2, 4→3, 0→4
        assert items[1].seg == 0
        assert items[2].seg == 0
        assert items[3].seg == 1
        assert items[4].seg == 1
        assert items[0].seg == -1
        tracker.check_invariants()

    def test_eviction_from_bottom(self):
        lru, tracker = tracked_list(seg_len=2, num_segments=2)
        items = [make_item(i) for i in range(6)]
        for it in items:
            lru.push_front(it)
        victim = lru.pop_back()
        assert victim is items[0]
        assert items[1].seg == 0 and items[2].seg == 0
        assert items[3].seg == 1 and items[4].seg == 1
        assert items[5].seg == -1
        tracker.check_invariants()

    def test_segment_on_access_reads_pre_promotion_segment(self):
        lru, tracker = tracked_list(seg_len=1, num_segments=3)
        items = [make_item(i) for i in range(4)]
        for it in items:
            lru.push_front(it)
        assert tracker.segment_on_access(items[1]) == 1
        lru.move_to_front(items[1])
        assert tracker.segment_on_access(items[1]) == -1

    def test_seg_len_one(self):
        lru, tracker = tracked_list(seg_len=1, num_segments=4)
        items = [make_item(i) for i in range(6)]
        for it in items:
            lru.push_front(it)
        for d, it in enumerate(items):
            assert it.seg == (d if d < 4 else -1)
        lru.remove(items[2])
        tracker.check_invariants()
        assert items[3].seg == 2 and items[4].seg == 3 and items[5].seg == -1


class TestConstruction:
    def test_rejects_non_empty_list(self):
        lru = LRUList()
        lru.push_front(make_item(0))
        with pytest.raises(ValueError):
            SegmentTracker(lru, 2, 2)

    def test_rejects_double_observer(self):
        lru, _ = tracked_list(2, 2)
        with pytest.raises(ValueError):
            SegmentTracker(lru, 2, 2)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SegmentTracker(LRUList(), 0, 2)
        with pytest.raises(ValueError):
            SegmentTracker(LRUList(), 2, 0)

    def test_rollover_is_noop(self):
        lru, tracker = tracked_list(2, 2)
        tracker.rollover()
        tracker.check_invariants()


class TestSegmentTrackerOracle:
    """Drive random op sequences; check_invariants recomputes every
    item's segment brute-force and compares boundary pointers."""

    @settings(max_examples=80, deadline=None)
    @given(
        seg_len=st.integers(1, 4),
        num_segments=st.integers(1, 4),
        ops=st.lists(st.tuples(st.sampled_from(["push", "move", "pop", "remove"]),
                               st.integers(0, 24)), max_size=150),
    )
    def test_random_ops_match_oracle(self, seg_len, num_segments, ops):
        lru, tracker = tracked_list(seg_len, num_segments)
        live = {}
        counter = [0]
        for op, k in ops:
            if op == "push":
                key = f"k{counter[0]}"
                counter[0] += 1
                it = make_item(key)
                live[key] = it
                lru.push_front(it)
            elif op == "move" and live:
                key = sorted(live)[k % len(live)]
                lru.move_to_front(live[key])
            elif op == "pop" and live:
                victim = lru.pop_back()
                del live[victim.key]
            elif op == "remove" and live:
                key = sorted(live)[k % len(live)]
                lru.remove(live.pop(key))
            tracker.check_invariants()
