"""Tests for PamaConfig."""

import pytest

from repro.core.config import (DEFAULT_PENALTY_EDGES, PamaConfig)


class TestPenaltyBinning:
    def test_paper_bins(self):
        cfg = PamaConfig()
        assert cfg.num_bins == 5
        assert cfg.penalty_edges == DEFAULT_PENALTY_EDGES

    def test_bin_edges(self):
        cfg = PamaConfig()
        # (0,1ms], (1ms,10ms], (10ms,100ms], (100ms,1s], (1s,5s]
        assert cfg.bin_for(0.0005) == 0
        assert cfg.bin_for(0.001) == 0
        assert cfg.bin_for(0.0011) == 1
        assert cfg.bin_for(0.01) == 1
        assert cfg.bin_for(0.05) == 2
        assert cfg.bin_for(0.1) == 2
        assert cfg.bin_for(0.5) == 3
        assert cfg.bin_for(1.0) == 3
        assert cfg.bin_for(2.0) == 4
        assert cfg.bin_for(5.0) == 4

    def test_above_cap_goes_to_last_bin(self):
        cfg = PamaConfig()
        assert cfg.bin_for(100.0) == 4

    def test_zero_penalty_first_bin(self):
        assert PamaConfig().bin_for(0.0) == 0

    def test_invalid_penalty(self):
        cfg = PamaConfig()
        with pytest.raises(ValueError):
            cfg.bin_for(float("nan"))
        with pytest.raises(ValueError):
            cfg.bin_for(-1.0)


class TestConfigValidation:
    def test_segments_from_m(self):
        cfg = PamaConfig(m=2)
        assert cfg.num_segments == 3
        assert cfg.ghost_depth_segments == 3

    def test_m_zero_allowed(self):
        # Fig 10 sweeps m=0: candidate segment only
        cfg = PamaConfig(m=0)
        assert cfg.num_segments == 1

    def test_segment_weights_eq2(self):
        cfg = PamaConfig(m=2)
        assert cfg.segment_weights() == [0.5, 0.25, 0.125]

    def test_ghost_override(self):
        cfg = PamaConfig(m=1, ghost_segments=4)
        assert cfg.ghost_depth_segments == 4

    def test_rebuild_interval_defaults_to_window(self):
        cfg = PamaConfig(value_window=12345)
        assert cfg.rebuild_interval == 12345
        cfg2 = PamaConfig(value_window=12345, bloom_rebuild_interval=99)
        assert cfg2.rebuild_interval == 99

    @pytest.mark.parametrize("kwargs", [
        dict(penalty_edges=()),
        dict(penalty_edges=(0.1, 0.01)),
        dict(penalty_edges=(-0.1, 0.01)),
        dict(m=-1),
        dict(value_window=0),
        dict(window_mode="bogus"),
        dict(decay=1.5),
        dict(tracker="magic"),
        dict(bloom_fp_rate=0.0),
    ])
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            PamaConfig(**kwargs)
