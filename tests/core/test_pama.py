"""Behavioural tests for the PAMA policy on a real cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import SlabCache, SizeClassConfig
from repro.core import PamaConfig, PamaPolicy
from repro.core.pama import PamaQueueState


def pama_cache(slabs=16, **cfg_kwargs):
    cfg_kwargs.setdefault("value_window", 1_000_000)  # no rollover noise
    classes = SizeClassConfig(slab_size=4096, base_size=64)
    policy = PamaPolicy(PamaConfig(**cfg_kwargs))
    return SlabCache(slabs * 4096, policy, classes), policy


class TestSubclassRouting:
    def test_items_bin_by_penalty(self):
        cache, policy = pama_cache()
        cache.set("cheap", 8, 50, 0.0005)
        cache.set("mid", 8, 50, 0.05)
        cache.set("dear", 8, 50, 2.0)
        bins = {cache.index[k].bin_idx for k in ("cheap", "mid", "dear")}
        assert bins == {0, 2, 4}
        # three separate subclass queues in the same size class
        assert len(cache.queues) == 3
        assert len({q.class_idx for q in cache.iter_queues()}) == 1

    def test_queue_state_installed(self):
        cache, policy = pama_cache()
        cache.set("k", 8, 50, 0.05)
        queue = next(iter(cache.iter_queues()))
        assert isinstance(queue.policy_data, PamaQueueState)
        assert queue.lru.observer is queue.policy_data.tracker


class TestValueTracking:
    def test_hits_near_bottom_accrue_outgoing_value(self):
        cache, policy = pama_cache()
        for i in range(5):
            cache.set(i, 8, 50, 0.05)
        queue = next(iter(cache.iter_queues()))
        state: PamaQueueState = queue.policy_data
        assert state.values.outgoing_value() == 0.0
        cache.get(0)  # bottom item: segment 0
        assert state.values.outgoing_value() == pytest.approx(0.05 * 0.5)

    def test_misses_on_ghosts_accrue_incoming_value(self):
        cache, policy = pama_cache(slabs=1)
        per_slab = 4096 // 64
        for i in range(per_slab + 3):  # 3 evictions into the ghost
            cache.set(i, 8, 50, 0.0005)
        queue = next(iter(cache.iter_queues()))
        state: PamaQueueState = queue.policy_data
        assert len(state.ghost) == 3
        cache.get(0, miss_info=(8, 50, 0.0005))  # ghost hit
        assert state.values.incoming_value() > 0.0

    def test_ghost_entry_removed_on_reinsert(self):
        cache, policy = pama_cache(slabs=1)
        per_slab = 4096 // 64
        for i in range(per_slab + 1):
            cache.set(i, 8, 50, 0.0005)
        assert 0 in policy.ghost_owner
        cache.set(0, 8, 50, 0.0005)  # key 0 returns
        assert 0 not in policy.ghost_owner
        queue = next(iter(cache.iter_queues()))
        assert 0 not in queue.policy_data.ghost

    def test_delete_does_not_create_ghost(self):
        cache, policy = pama_cache()
        cache.set("k", 8, 50, 0.05)
        cache.delete("k")
        assert "k" not in policy.ghost_owner

    def test_miss_without_ghost_is_silent(self):
        cache, policy = pama_cache()
        cache.get("never-seen", miss_info=(8, 50, 0.05))  # no crash


class TestMigrationDecision:
    def test_migrates_from_low_value_subclass(self):
        cache, policy = pama_cache(slabs=2)
        per_slab = 4096 // 64
        # fill the cache with cheap items, never accessed (low value)
        for i in range(2 * per_slab):
            cache.set(("cheap", i), 8, 50, 0.0005)
        # build incoming value for the expensive subclass: evict around
        # via misses... instead drive sets of expensive items: the queue
        # has no slab -> forced migration from the cheap queue
        assert cache.set(("dear", 0), 8, 50, 2.0)
        assert cache.stats.migrations == 1
        dear_queue = cache.queues[(0, policy.bin_for(2.0))]
        assert dear_queue.slabs == 1

    def test_declines_migration_when_incoming_low(self):
        cache, policy = pama_cache(slabs=2)
        per_slab = 4096 // 64
        for i in range(per_slab):
            cache.set(("cheap", i), 8, 50, 0.0005)
            cache.get(("cheap", i))  # give the cheap queue outgoing value
        for i in range(per_slab):
            cache.set(("dear", i), 8, 50, 2.0)
        migrations_before = cache.stats.migrations
        # dear queue full, zero incoming value, cheap has outgoing value:
        # overflow should evict within the dear queue, not migrate
        cache.set(("dear", per_slab), 8, 50, 2.0)
        assert cache.stats.migrations == migrations_before
        assert policy.migrations_declined >= 1

    def test_same_queue_candidate_evicts_in_place(self):
        cache, policy = pama_cache(slabs=1)
        per_slab = 4096 // 64
        for i in range(per_slab + 5):
            cache.set(i, 8, 50, 0.0005)
        # single queue: pressure resolves within it, never via pool
        assert cache.stats.migrations == 0
        assert cache.stats.evictions == 5


class TestWindowRollover:
    def test_values_decay_at_window(self):
        cache, policy = pama_cache(slabs=4, value_window=10, decay=0.5)
        for i in range(5):
            cache.set(i, 8, 50, 0.05)
        cache.get(0)
        queue = next(iter(cache.iter_queues()))
        v0 = queue.policy_data.values.outgoing_value()
        assert v0 > 0
        for _ in range(25):  # push past several windows
            cache.get("nothing", miss_info=None)
        v1 = queue.policy_data.values.outgoing_value()
        assert v1 < v0

    def test_reset_mode_zeroes(self):
        cache, policy = pama_cache(slabs=4, value_window=10,
                                   window_mode="reset")
        for i in range(5):
            cache.set(i, 8, 50, 0.05)
        cache.get(0)
        queue = next(iter(cache.iter_queues()))
        for _ in range(25):
            cache.get("nothing")
        assert queue.policy_data.values.outgoing_value() == 0.0


class TestIntegrity:
    def test_invariants_under_mixed_workload(self):
        import random
        rng = random.Random(0)
        cache, policy = pama_cache(slabs=8, value_window=500)
        for i in range(5000):
            key = rng.randrange(400)
            size = rng.choice([40, 200, 900, 3000])
            pen = rng.choice([0.0005, 0.005, 0.05, 0.5, 2.0])
            r = rng.random()
            if r < 0.7:
                if cache.get(key, (8, size, pen)) is None:
                    cache.set(key, 8, size, pen)
            elif r < 0.95:
                cache.set(key, 8, size, pen)
            else:
                cache.delete(key)
        cache.check_invariants()
        for q in cache.iter_queues():
            state = q.policy_data
            state.ghost.check_invariants()
            if hasattr(state.tracker, "check_invariants"):
                state.tracker.check_invariants()
        # ghost_owner must agree with the per-queue ghosts
        for key, state in policy.ghost_owner.items():
            assert key in state.ghost


class TestGhostOwnerSync:
    """ghost_owner ↔ per-queue ghost lists stay a bijection.

    The on_miss fast path relies on it: a ghost_owner entry whose key
    is missing from the owning ghost would silently drop incoming
    value (pre-fix this was an unreachable defensively-coded branch;
    it is now an asserted invariant, and these property tests drive
    the op space that has to maintain it).
    """

    OPS = ["get", "set", "delete"]
    # two penalty levels → two bins; tiny keyspace → constant churn
    PENALTIES = [0.0005, 2.0]

    @staticmethod
    def _apply(cache, op, key, penalty):
        if op == "get":
            cache.get(key, miss_info=(8, 50, penalty))
        elif op == "set":
            cache.set(key, 8, 50, penalty)
        else:
            cache.delete(key)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(OPS),
                              st.integers(min_value=0, max_value=30),
                              st.sampled_from(PENALTIES)),
                    min_size=1, max_size=120),
           st.integers(min_value=1, max_value=4))
    def test_random_ops_preserve_sync(self, ops, slabs):
        cache, policy = pama_cache(slabs=slabs)
        for op, key, penalty in ops:
            self._apply(cache, op, key, penalty)
        policy.check_ghost_sync()
        cache.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(OPS),
                              st.integers(min_value=0, max_value=10),
                              st.sampled_from(PENALTIES)),
                    min_size=20, max_size=60))
    def test_sync_holds_at_every_step_with_rollover(self, ops):
        # value_window=16 interleaves rollovers with the op stream
        cache, policy = pama_cache(slabs=1, value_window=16)
        for op, key, penalty in ops:
            self._apply(cache, op, key, penalty)
            policy.check_ghost_sync()

    def test_check_ghost_sync_detects_dangling_owner(self):
        cache, policy = pama_cache(slabs=1)
        per_slab = 4096 // 64
        for i in range(per_slab + 2):
            cache.set(i, 8, 50, 0.0005)
        policy.check_ghost_sync()  # healthy
        # manufacture the corruption the invariant exists to catch
        key, state = next(iter(policy.ghost_owner.items()))
        state.ghost.remove(key)
        with pytest.raises(AssertionError):
            policy.check_ghost_sync()
