"""The steady-state segment-membership path must not build lists/tuples.

Before the hash-once overhaul every Bloom probe materialised a fresh
list of ``nhashes`` positions (via ``double_hashes``) and re-hashed the
key per filter.  These tests hold the optimized path to the
allocation-free contract two ways:

* a ``tracemalloc`` peak budget around a burst of probes — small enough
  that a single per-probe position list (>500 bytes with its boxed
  ints) would blow it, while the fast path's word-sized integer
  temporaries fit comfortably;
* a bytecode audit that no probe-path function contains a list/tuple/
  map-building opcode or a nested comprehension.
"""

import dis
import tracemalloc

from repro.bloom.bloom import BloomFilter
from repro.bloom.hashing import hash_pair
from repro.bloom.removal import RemovalFilter
from repro.cache.item import Item
from repro.cache.lru import LRUList
from repro.core.bloom_tracker import BloomSegmentTracker
from repro.core.segments import SegmentTracker

#: bytes of transient allocation allowed across a probe burst: the
#: ``queries`` counter churn plus a few 1-2 machine-word ints alive at
#: once inside a probe expression.  One position list per probe (the old
#: behaviour: 56B header + 8B/slot + ~28B per boxed position) cannot fit.
PROBE_PEAK_BUDGET = 512

#: opcodes that build a transient container.
_CONTAINER_OPS = {"BUILD_LIST", "BUILD_TUPLE", "BUILD_MAP", "BUILD_SET",
                  "LIST_EXTEND", "LIST_APPEND", "SET_ADD", "MAP_ADD"}

#: every function on the steady-state segment-membership path.
PROBE_PATH_FUNCTIONS = [
    BloomFilter.add_hashes,
    BloomFilter.contains_hashes,
    RemovalFilter.masks_hashes,
    RemovalFilter.mark_removed_hashes,
    RemovalFilter.on_segment_add_hashes,
    BloomSegmentTracker.segment_on_access,
    SegmentTracker.segment_on_access,
]


def _tracker():
    lru = LRUList()
    tracker = BloomSegmentTracker(lru, 8, 4)
    items = [Item(k, 16, 48, 0.01) for k in range(64)]
    for it in items:
        lru.push_front(it)
    tracker.rebuild()
    return tracker, items


class TestProbeAllocations:
    def _peak_over(self, tracker, item, pairs, repeats):
        # warm up so one-time allocations (counter ints crossing the
        # small-int cache, lazily created internals) are out of the way.
        for h1, h2 in pairs:
            tracker.segment_on_access(item, h1, h2)
        base, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        for _ in range(repeats):
            for h1, h2 in pairs:
                tracker.segment_on_access(item, h1, h2)
        _, peak = tracemalloc.get_traced_memory()
        return peak - base

    def test_membership_miss_probes_allocate_no_containers(self):
        tracker, items = _tracker()
        pairs = [hash_pair(k) for k in range(10_000, 10_064)]
        tracemalloc.start()
        try:
            peak = self._peak_over(tracker, items[0], pairs, repeats=50)
        finally:
            tracemalloc.stop()
        assert peak <= PROBE_PEAK_BUDGET, (
            f"miss-probe burst peaked at {peak}B transient: something on "
            f"the probe path is building per-request objects again")

    def test_membership_hit_probes_allocate_no_containers(self):
        tracker, items = _tracker()
        # keys known to sit in the bottom segments (rebuild() saw them);
        # positives also exercise the removal-filter marking path.
        pairs = [hash_pair(it.key) for it in items[:32]]
        tracemalloc.start()
        try:
            peak = self._peak_over(tracker, items[0], pairs, repeats=4)
        finally:
            tracemalloc.stop()
        assert peak <= PROBE_PEAK_BUDGET, (
            f"hit-probe burst peaked at {peak}B transient")


class TestProbeBytecode:
    def test_probe_path_builds_no_lists_or_tuples(self):
        for func in PROBE_PATH_FUNCTIONS:
            code = func.__code__
            ops = {ins.opname for ins in dis.get_instructions(code)}
            assert not (ops & _CONTAINER_OPS), (
                f"{func.__qualname__} builds a container on the probe "
                f"path: {sorted(ops & _CONTAINER_OPS)}")
            # comprehensions compile to nested code objects; their
            # presence means a per-call list is being materialised.
            nested = [c for c in code.co_consts if hasattr(c, "co_code")]
            assert not nested, (
                f"{func.__qualname__} contains a comprehension/closure: "
                f"{[c.co_name for c in nested]}")
