"""Tests for the Bloom-filter segment tracker (the paper's mechanism)."""

from repro.cache.item import Item
from repro.cache.lru import LRUList
from repro.core.bloom_tracker import BloomSegmentTracker
from repro.core import PamaConfig, PamaPolicy
from repro.cache import SlabCache, SizeClassConfig


def make_item(key):
    return Item(key, 8, 32, 0.01)


def build(seg_len=4, num_segments=2, n_items=12):
    lru = LRUList()
    tracker = BloomSegmentTracker(lru, seg_len, num_segments, fp_rate=0.001)
    items = [make_item(i) for i in range(n_items)]
    for it in items:
        lru.push_front(it)
    return lru, tracker, items


class TestBloomTracker:
    def test_empty_before_rebuild(self):
        lru, tracker, items = build()
        # filters start empty: every access reports "not in segments"
        assert tracker.segment_on_access(items[0]) == -1

    def test_rebuild_indexes_bottom_segments(self):
        lru, tracker, items = build(seg_len=4, num_segments=2)
        tracker.rebuild()
        # bottom 4 items → segment 0; next 4 → segment 1; rest untracked
        assert tracker.segment_on_access(items[0]) == 0
        assert tracker.segment_on_access(items[5]) == 1
        assert tracker.segment_on_access(items[10]) == -1

    def test_removal_filter_masks_promoted_items(self):
        lru, tracker, items = build()
        tracker.rebuild()
        assert tracker.segment_on_access(items[0]) == 0
        lru.move_to_front(items[0])
        # item left the segment: the removal filter must mask it now
        assert tracker.segment_on_access(items[0]) == -1

    def test_rebuild_clears_stale_masks(self):
        lru, tracker, items = build(seg_len=4, num_segments=2)
        tracker.rebuild()
        tracker.segment_on_access(items[0])    # marks item 0 removed
        lru.move_to_front(items[0])
        # push item 0 back to the bottom region by promoting others
        for it in items[1:]:
            lru.move_to_front(it)
        tracker.rebuild()
        # the rebuild re-adds key 0 to a segment; clear-on-readd fires
        assert tracker.removal.clears >= 1
        assert tracker.segment_on_access(items[0]) >= 0

    def test_rollover_triggers_rebuild(self):
        lru, tracker, items = build()
        before = tracker.rebuilds
        tracker.rollover()
        assert tracker.rebuilds == before + 1


class TestBloomTrackerInPolicy:
    def test_pama_runs_with_bloom_tracker(self):
        import random
        rng = random.Random(4)
        classes = SizeClassConfig(slab_size=4096, base_size=64)
        policy = PamaPolicy(PamaConfig(tracker="bloom", value_window=500))
        cache = SlabCache(8 * 4096, policy, classes)
        for i in range(4000):
            key = rng.randrange(300)
            size = rng.choice([40, 200, 900])
            pen = rng.choice([0.0005, 0.05, 2.0])
            if cache.get(key, (8, size, pen)) is None:
                cache.set(key, 8, size, pen)
        cache.check_invariants()
        # trackers must have been rebuilt by window rollovers
        trackers = [q.policy_data.tracker for q in cache.iter_queues()]
        assert any(t.rebuilds > 0 for t in trackers)
        assert cache.stats.hits > 0

    def test_agreement_with_exact_tracker(self):
        """Same workload under exact vs bloom tracking: hit ratios close.

        The bloom tracker only affects *value accounting*, so cache
        contents may drift, but aggregate behaviour should stay in the
        same ballpark (the ablation bench quantifies this precisely).
        """
        import random

        def run(tracker):
            rng = random.Random(9)
            classes = SizeClassConfig(slab_size=4096, base_size=64)
            policy = PamaPolicy(PamaConfig(tracker=tracker, value_window=500))
            cache = SlabCache(16 * 4096, policy, classes)
            for i in range(6000):
                key = rng.randrange(500)
                size = rng.choice([40, 200, 900])
                pen = rng.choice([0.0005, 0.05, 2.0])
                if cache.get(key, (8, size, pen)) is None:
                    cache.set(key, 8, size, pen)
            return cache.stats.hit_ratio

        exact, bloom = run("exact"), run("bloom")
        assert abs(exact - bloom) < 0.15
