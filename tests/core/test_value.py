"""Tests for segment value accounting (Eq. 1 / Eq. 2)."""

import math

import pytest

from repro.core.value import ValueAccumulator


class TestValueAccumulator:
    def test_eq1_accumulation(self):
        acc = ValueAccumulator(3)
        acc.add_outgoing(0, 0.5)
        acc.add_outgoing(0, 0.25)
        acc.add_outgoing(2, 1.0)
        assert acc.out == [0.75, 0.0, 1.0]
        assert acc.out_hits == [2, 0, 1]

    def test_eq2_weighted_sum(self):
        acc = ValueAccumulator(3)
        acc.add_outgoing(0, 1.0)
        acc.add_outgoing(1, 1.0)
        acc.add_outgoing(2, 1.0)
        # V = 1/2 + 1/4 + 1/8
        assert math.isclose(acc.outgoing_value(), 0.875)

    def test_candidate_segment_weighs_most(self):
        near = ValueAccumulator(3)
        near.add_outgoing(0, 1.0)
        far = ValueAccumulator(3)
        far.add_outgoing(2, 1.0)
        assert near.outgoing_value() > far.outgoing_value()

    def test_incoming_independent_of_outgoing(self):
        acc = ValueAccumulator(2)
        acc.add_incoming(0, 2.0)
        assert acc.incoming_value() == 1.0
        assert acc.outgoing_value() == 0.0

    def test_reset_mode(self):
        acc = ValueAccumulator(2)
        acc.add_outgoing(0, 1.0)
        acc.add_incoming(1, 1.0)
        acc.rollover("reset", 0.5)
        assert acc.outgoing_value() == 0.0
        assert acc.incoming_value() == 0.0
        assert acc.out_hits == [0, 0]

    def test_decay_mode(self):
        acc = ValueAccumulator(1)
        acc.add_outgoing(0, 2.0)
        acc.rollover("decay", 0.5)
        assert math.isclose(acc.outgoing_value(), 0.5)  # 2.0*0.5 * w0(=0.5)
        acc.add_outgoing(0, 2.0)
        assert math.isclose(acc.outgoing_value(), 1.5)

    def test_unknown_mode_rejected(self):
        acc = ValueAccumulator(1)
        with pytest.raises(ValueError):
            acc.rollover("fade", 0.5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ValueAccumulator(0)


class TestDecayKeepsSmallCounts:
    """Regression: int-truncating decay collapsed counts of 1 to 0."""

    def test_single_hit_survives_decay(self):
        acc = ValueAccumulator(2)
        acc.add_outgoing(0, 1.0)
        acc.add_incoming(1, 1.0)
        acc.rollover("decay", 0.5)
        # pre-fix: int(1 * 0.5) == 0 — the segment forgot its only hit
        assert acc.out_hits[0] == pytest.approx(0.5)
        assert acc.inc_hits[1] == pytest.approx(0.5)

    def test_repeated_decay_fades_but_never_zeroes(self):
        acc = ValueAccumulator(1)
        acc.add_outgoing(0, 1.0)
        for _ in range(10):
            acc.rollover("decay", 0.5)
        assert 0 < acc.out_hits[0] == pytest.approx(0.5 ** 10)

    def test_counts_decay_like_values(self):
        # pre-PAMA's count-based values must fade at the same rate as
        # PAMA's penalty-based ones, not collapse to zero first.
        acc = ValueAccumulator(1)
        for _ in range(3):
            acc.add_outgoing(0, 0.25)
        for _ in range(4):
            acc.rollover("decay", 0.9)
        assert acc.out_hits[0] / 3 == pytest.approx(acc.out[0] / 0.75)

    def test_reset_still_returns_ints(self):
        acc = ValueAccumulator(1)
        acc.add_outgoing(0, 1.0)
        acc.rollover("decay", 0.5)
        acc.rollover("reset", 0.5)
        assert acc.out_hits == [0] and acc.inc_hits == [0]
