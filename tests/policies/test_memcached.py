"""Tests for the original-Memcached (static) policy."""

from repro.cache import SlabCache, SizeClassConfig
from repro.policies import StaticMemcachedPolicy


def static_cache(slabs=4):
    classes = SizeClassConfig(slab_size=4096, base_size=64)
    return SlabCache(slabs * 4096, StaticMemcachedPolicy(), classes)


class TestStaticPolicy:
    def test_never_migrates(self):
        cache = static_cache(slabs=4)
        per_slab = 4096 // 64
        # class 0 grabs all four slabs during warm-up
        for i in range(4 * per_slab):
            cache.set(i, 8, 50, 0.1)
        assert cache.pool.free == 0
        # heavy pressure on another class cannot steal a slab
        for i in range(50):
            cache.set(("big", i), 8, 3000, 0.1)
        assert cache.stats.migrations == 0
        assert cache.stats.set_failures == 50
        assert cache.class_slab_distribution() == {0: 4}

    def test_allocation_frozen_after_warmup(self):
        cache = static_cache(slabs=4)
        cache.set("small", 8, 50, 0.1)
        cache.set("large", 8, 3000, 0.1)
        dist_before = cache.class_slab_distribution()
        # churn within existing classes only
        for i in range(500):
            cache.set(i, 8, 50, 0.1)
            cache.set(("l", i), 8, 3000, 0.1)
        assert cache.class_slab_distribution().keys() == dist_before.keys()
        cache.check_invariants()

    def test_evicts_lru_within_class(self):
        cache = static_cache(slabs=1)
        per_slab = 4096 // 64
        for i in range(per_slab + 1):
            cache.set(i, 8, 50, 0.1)
        assert 0 not in cache
        assert 1 in cache
