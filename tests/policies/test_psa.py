"""Tests for the PSA baseline."""

import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.policies import PSAPolicy


def psa_cache(slabs=8, m_misses=10):
    classes = SizeClassConfig(slab_size=4096, base_size=64)
    return SlabCache(slabs * 4096, PSAPolicy(m_misses=m_misses), classes)


class TestPSA:
    def test_invalid_m(self):
        with pytest.raises(ValueError):
            PSAPolicy(m_misses=0)

    def test_moves_slab_to_missing_class(self):
        cache = psa_cache(slabs=2, m_misses=10)
        per_slab = 4096 // 64
        # class 0 takes both slabs and then sits idle (density 0)
        for i in range(2 * per_slab):
            cache.set(i, 8, 50, 0.1)
        assert cache.class_slab_distribution() == {0: 2}
        # misses hammer the large class; after M misses PSA relocates
        big_class = cache.size_classes.class_for_size(3008)
        for i in range(12):
            cache.get(("big", i), miss_info=(8, 3000, 0.1))
        assert cache.stats.migrations >= 1
        assert cache.class_slab_distribution().get(big_class, 0) >= 1

    def test_donor_is_lowest_density(self):
        cache = psa_cache(slabs=3, m_misses=20)
        per_slab_small = 4096 // 64
        # two small classes: class 0 active, class 1 idle
        for i in range(per_slab_small):
            cache.set(("a", i), 8, 50, 0.1)
        for i in range(4096 // 128):
            cache.set(("b", i), 8, 100, 0.1)
        # keep class 0 hot so its density is high
        for r in range(3):
            for i in range(per_slab_small):
                cache.get(("a", i))
        # drive misses on the big class to trigger relocation
        for i in range(25):
            cache.get(("big", i), miss_info=(8, 3000, 0.1))
        dist = cache.class_slab_distribution()
        assert dist.get(0, 0) == 1          # hot class kept its slab
        assert dist.get(1, 0) == 0          # idle class donated
        cache.check_invariants()

    def test_window_resets_after_rebalance(self):
        policy = PSAPolicy(m_misses=5)
        classes = SizeClassConfig(slab_size=4096, base_size=64)
        cache = SlabCache(2 * 4096, policy, classes)
        cache.set(0, 8, 50, 0.1)
        for i in range(5):
            cache.get(("x", i), miss_info=(8, 50, 0.1))
        assert policy._window == {}  # cleared by the rebalance

    def test_pressure_evicts_within_class(self):
        cache = psa_cache(slabs=1, m_misses=1000)
        per_slab = 4096 // 64
        for i in range(per_slab + 3):
            cache.set(i, 8, 50, 0.1)
        assert cache.stats.evictions == 3
        assert cache.stats.migrations == 0
