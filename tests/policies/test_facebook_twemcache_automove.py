"""Tests for the Facebook age balancer, Twemcache, and the automover."""

import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.policies import AutoMovePolicy, FacebookPolicy, TwemcachePolicy


def build(policy, slabs=8):
    classes = SizeClassConfig(slab_size=4096, base_size=64)
    return SlabCache(slabs * 4096, policy, classes)


class TestFacebookPolicy:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FacebookPolicy(check_interval=0)
        with pytest.raises(ValueError):
            FacebookPolicy(youth_threshold=1.5)

    def test_balances_lru_ages(self):
        cache = build(FacebookPolicy(check_interval=50), slabs=2)
        per_slab = 4096 // 64
        # class 0 takes both slabs; its items then age (no accesses)
        for i in range(2 * per_slab):
            cache.set(i, 8, 50, 0.1)
        # class 5 stays young: constant churn on one key
        cache.set("young", 8, 2000, 0.1)
        for i in range(300):
            cache.get("young")
            cache.set("young", 8, 2000, 0.1)
        # the young class's LRU item is far younger than the old class's
        assert cache.stats.migrations >= 1
        young_class = cache.size_classes.class_for_size(2008)
        assert cache.class_slab_distribution().get(young_class, 0) >= 1

    def test_no_move_with_single_queue(self):
        cache = build(FacebookPolicy(check_interval=10), slabs=2)
        for i in range(500):
            cache.set(i % 40, 8, 50, 0.1)
            cache.get(i % 40)
        assert cache.stats.migrations == 0


class TestTwemcachePolicy:
    def test_steals_random_slab_under_pressure(self):
        cache = build(TwemcachePolicy(seed=7), slabs=2)
        per_slab = 4096 // 64
        for i in range(2 * per_slab):
            cache.set(i, 8, 50, 0.1)
        assert cache.set("big", 8, 3000, 0.1)
        assert cache.stats.migrations == 1

    def test_deterministic_with_seed(self):
        def run(seed):
            cache = build(TwemcachePolicy(seed=seed), slabs=4)
            for i in range(800):
                cache.set(i % 150, 8, (i % 3 + 1) * 500, 0.1)
            return cache.class_slab_distribution()

        assert run(3) == run(3)

    def test_handles_empty_donor_set(self):
        # one queue holding every slab can still resolve pressure on itself
        cache = build(TwemcachePolicy(seed=0), slabs=1)
        per_slab = 4096 // 64
        for i in range(per_slab + 5):
            cache.set(i, 8, 50, 0.1)
        cache.check_invariants()


class TestAutoMovePolicy:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AutoMovePolicy(window_accesses=0)
        with pytest.raises(ValueError):
            AutoMovePolicy(required_streak=0)

    def test_moves_after_persistent_misses(self):
        cache = build(AutoMovePolicy(window_accesses=100, required_streak=3),
                      slabs=2)
        per_slab = 4096 // 64
        for i in range(2 * per_slab):
            cache.set(i, 8, 50, 0.1)
        # class 0 then never misses; the big class misses for 3+ windows
        for i in range(400):
            cache.get(("big", i), miss_info=(8, 3000, 0.1))
        assert cache.stats.migrations >= 1
        big_class = cache.size_classes.class_for_size(3008)
        assert cache.class_slab_distribution().get(big_class, 0) >= 1

    def test_no_move_without_zero_miss_donor(self):
        cache = build(AutoMovePolicy(window_accesses=50, required_streak=2),
                      slabs=2)
        per_slab = 4096 // 64
        for i in range(2 * per_slab):
            cache.set(i, 8, 50, 0.1)
        # both classes miss every window: no eligible donor
        for i in range(300):
            cache.get(("small-miss", i), miss_info=(8, 50, 0.1))
            cache.get(("big-miss", i), miss_info=(8, 3000, 0.1))
        assert cache.stats.migrations == 0
