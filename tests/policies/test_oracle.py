"""Tests for the clairvoyant (Belady) oracle policy."""

import numpy as np
import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.policies import OraclePolicy, StaticMemcachedPolicy, make_policy
from repro.sim import simulate
from repro.traces import ETC, Op, Trace, generate


def manual_trace(keys, penalties=None):
    """All-GET trace over int keys, size 50, optional per-row penalties."""
    n = len(keys)
    pens = np.asarray(penalties if penalties is not None else [0.1] * n)
    return Trace(np.full(n, Op.GET, np.uint8),
                 np.asarray(keys, np.int64),
                 np.full(n, 8, np.int32), np.full(n, 50, np.int32), pens)


def oracle_cache(trace, slabs=1, cost_aware=False):
    classes = SizeClassConfig(slab_size=128, base_size=64)  # 2 slots/slab
    policy = OraclePolicy(trace, cost_aware=cost_aware)
    return SlabCache(slabs * 128, policy, classes)


class TestBeladyChoice:
    def test_evicts_farthest_next_use(self):
        # 2-slot cache; classic MIN example
        keys = [1, 2, 3, 1, 2, 3]
        trace = manual_trace(keys)
        cache = oracle_cache(trace)
        result = simulate(trace, cache, window_gets=100)
        # MIN on 1,2,3,1,2,3 with 2 slots: misses 1,2,3 then
        # at 3's fill it evicts whichever of {1,2} is used later... with
        # MIN the achievable hits here are 2 (hits on 1 and 2 OR 2 and 3)
        assert result.cache_stats["hits"] >= 2

    def test_never_used_again_is_first_victim(self):
        keys = [1, 2, 3, 1, 1, 1]  # 2 and 3 never recur
        trace = manual_trace(keys)
        cache = oracle_cache(trace)
        simulate(trace, cache, window_gets=100)
        assert 1 in cache  # the recurring key survived throughout

    def test_beats_lru_on_adversarial_loop(self):
        # cyclic scan of 3 keys through a 2-slot cache: LRU gets 0 hits,
        # MIN hits every other access asymptotically
        keys = [1, 2, 3] * 30
        trace = manual_trace(keys)

        def run(policy_factory):
            classes = SizeClassConfig(slab_size=128, base_size=64)
            cache = SlabCache(128, policy_factory(), classes)
            return simulate(trace, cache, window_gets=1000).hit_ratio

        lru = run(StaticMemcachedPolicy)
        belady = run(lambda: OraclePolicy(trace))
        assert lru == 0.0
        assert belady > 0.3

    def test_oracle_upper_bounds_online_policies_on_etc(self):
        trace = generate(ETC.scaled(0.02), 30_000, seed=13)
        classes = SizeClassConfig(slab_size=64 << 10, base_size=64)

        def run(policy):
            cache = SlabCache(2 << 20, policy, classes)
            return simulate(trace, cache, window_gets=10_000).hit_ratio

        belady = run(OraclePolicy(trace))
        lru = run(StaticMemcachedPolicy())
        assert belady >= lru - 0.005


class TestCostAwareOracle:
    def test_prefers_keeping_expensive_items(self):
        # keys 1 (cheap) and 2 (dear) recur equally; 1-slot pressure
        keys = [1, 2, 3, 1, 2, 1, 2]
        pens = [0.001 if k == 1 else 2.0 for k in keys]
        trace = manual_trace(keys, pens)
        cache = oracle_cache(trace, cost_aware=True)
        result = simulate(trace, cache, window_gets=100)
        # expensive key 2's misses should be minimised
        assert result.cache_stats["total_miss_penalty"] < sum(
            p for k, p in zip(keys, pens) if k == 2)

    def test_cost_oracle_lowers_penalty_vs_plain_oracle(self):
        import random
        rng = random.Random(7)
        keys, pens = [], []
        for _ in range(8_000):
            k = rng.randrange(200)
            keys.append(k)
            pens.append(3.0 if k % 4 == 0 else 0.001)
        trace = manual_trace(keys, pens)

        def run(cost_aware):
            classes = SizeClassConfig(slab_size=4096, base_size=64)
            cache = SlabCache(2 * 4096, OraclePolicy(trace, cost_aware),
                              classes)
            simulate(trace, cache, window_gets=10_000)
            return cache.stats.total_miss_penalty

        assert run(True) <= run(False) * 1.02


class TestRegistry:
    def test_make_policy_requires_trace(self):
        with pytest.raises(ValueError):
            make_policy("oracle")
        trace = manual_trace([1, 2, 3])
        policy = make_policy("oracle-cost", trace=trace)
        assert policy.name == "oracle-cost"
        assert policy.cost_aware
