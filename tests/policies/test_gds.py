"""Tests for the GreedyDual-Size extension policy."""

import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.policies import GreedyDualSizePolicy


def gds_cache(slabs=4):
    classes = SizeClassConfig(slab_size=4096, base_size=64)
    return SlabCache(slabs * 4096, GreedyDualSizePolicy(), classes)


class TestGdsEviction:
    def test_evicts_cheapest_item_not_lru(self):
        cache = gds_cache(slabs=1)
        per_slab = 4096 // 64
        # the oldest item is expensive; the rest are cheap
        cache.set("dear", 8, 50, 5.0)
        for i in range(per_slab - 1):
            cache.set(i, 8, 50, 0.001)
        cache.set("overflow", 8, 50, 0.001)  # forces one eviction
        # strict LRU would kill "dear"; GDS keeps it and drops a cheap one
        assert "dear" in cache
        assert cache.stats.evictions == 1

    def test_hit_refreshes_priority(self):
        cache = gds_cache(slabs=1)
        per_slab = 4096 // 64
        for i in range(per_slab):
            cache.set(i, 8, 50, 0.01)
        # raise the inflation by churning evictions
        for i in range(100, 100 + per_slab):
            cache.set(i, 8, 50, 0.01)
        # key 105 was just inserted at high inflation; keys with old low
        # H fall first even if recently touched less
        assert 105 in cache

    def test_inflation_is_monotone(self):
        cache = gds_cache(slabs=1)
        policy = cache.policy
        per_slab = 4096 // 64
        inflations = []
        for i in range(3 * per_slab):
            cache.set(i, 8, 50, 0.01)
            state = next(iter(cache.iter_queues())).policy_data
            inflations.append(state.inflation)
        assert inflations == sorted(inflations)
        assert inflations[-1] > 0

    def test_pressure_takes_from_cheapest_queue(self):
        cache = gds_cache(slabs=2)
        per_slab = 4096 // 64
        # class 0 holds both slabs: one full of cheap, accessed items
        for i in range(2 * per_slab):
            cache.set(i, 8, 50, 0.0001)
        # a large expensive item arrives; the cheap class donates
        assert cache.set("big", 8, 3000, 4.0)
        assert cache.stats.migrations == 1
        cache.check_invariants()

    def test_invariants_under_churn(self):
        import random
        rng = random.Random(3)
        cache = gds_cache(slabs=8)
        for i in range(6000):
            key = rng.randrange(500)
            size = rng.choice([40, 200, 900, 3000])
            pen = rng.choice([0.0005, 0.05, 2.0])
            if cache.get(key, (8, size, pen)) is None:
                cache.set(key, 8, size, pen)
        cache.check_invariants()
        assert cache.stats.hits > 0

    def test_cost_awareness_beats_lru_on_skewed_penalties(self):
        """Same trace, items with equal popularity but wildly different
        penalties: GDS must end with lower total miss penalty than LRU."""
        import random
        from repro.policies import StaticMemcachedPolicy

        def run(policy):
            classes = SizeClassConfig(slab_size=4096, base_size=64)
            cache = SlabCache(2 * 4096, policy, classes)
            rng = random.Random(11)
            for _ in range(20_000):
                key = rng.randrange(300)
                pen = 2.0 if key % 2 else 0.001
                if cache.get(key, (8, 50, pen)) is None:
                    cache.set(key, 8, 50, pen)
            return cache.stats.total_miss_penalty

        assert run(GreedyDualSizePolicy()) < run(StaticMemcachedPolicy())
