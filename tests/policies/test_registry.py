"""Tests for the policy registry and the base-policy contract."""

import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.cache.errors import PolicyError
from repro.core import PamaPolicy, PrePamaPolicy
from repro.policies import POLICY_NAMES, AllocationPolicy, make_policy
from repro.policies.base import default_donor


class TestMakePolicy:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_all_names_construct(self, name):
        policy = make_policy(name)
        assert policy.name in (name, "pre-pama")

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("nonsense")

    def test_kwargs_forwarded(self):
        policy = make_policy("psa", m_misses=77)
        assert policy.m_misses == 77

    def test_pama_kwargs_build_config(self):
        policy = make_policy("pama", m=4, value_window=999)
        assert policy.config.m == 4
        assert policy.config.value_window == 999

    def test_prepama_aliases(self):
        assert isinstance(make_policy("prepama"), PrePamaPolicy)
        assert isinstance(make_policy("pre-pama"), PrePamaPolicy)


class TestPolicyContract:
    def test_double_attach_rejected(self):
        classes = SizeClassConfig(slab_size=4096, base_size=64)
        policy = make_policy("memcached")
        SlabCache(4 * 4096, policy, classes)
        with pytest.raises(PolicyError):
            SlabCache(4 * 4096, policy, classes)

    def test_default_donor_prefers_free_slots(self):
        classes = SizeClassConfig(slab_size=4096, base_size=64)
        cache = SlabCache(4 * 4096, make_policy("memcached"), classes)
        cache.set("a", 8, 50, 0.1)     # class 0: 1 slab, mostly free
        cache.set("b", 8, 3000, 0.1)   # big class: 1 slab, 1/1 used
        requester = cache.queue_for(2, 0)
        donor = default_donor(cache, requester)
        assert donor is cache.queues[(0, 0)]

    def test_default_donor_none_when_no_slabs(self):
        classes = SizeClassConfig(slab_size=4096, base_size=64)
        cache = SlabCache(4 * 4096, make_policy("memcached"), classes)
        requester = cache.queue_for(0, 0)
        assert default_donor(cache, requester) is None

    def test_policy_names_unique(self):
        names = [make_policy(n).name for n in POLICY_NAMES]
        assert len(set(names)) == len(POLICY_NAMES)
