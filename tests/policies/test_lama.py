"""Tests for the LAMA-lite MRC+DP policy."""

import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.policies import LamaPolicy


def lama_cache(slabs=16, **kwargs):
    kwargs.setdefault("epoch_accesses", 500)
    kwargs.setdefault("sample_shift", 0)  # profile every key in tests
    classes = SizeClassConfig(slab_size=4096, base_size=64)
    return SlabCache(slabs * 4096, LamaPolicy(**kwargs), classes)


class TestLama:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LamaPolicy(objective="magic")
        with pytest.raises(ValueError):
            LamaPolicy(epoch_accesses=0)

    def test_reallocates_toward_hot_class(self):
        cache = lama_cache(slabs=4)
        policy = cache.policy
        per_slab = 4096 // 64
        # warm-up: both classes exist; the large class hoards slabs
        for i in range(6):
            cache.set(("big", i), 8, 3000, 0.1)
        for i in range(per_slab):
            cache.set(("small", i), 8, 50, 0.1)
        # then only the small class is ever accessed, with reuse
        # distances that want more than its one slab
        import random
        rng = random.Random(0)
        for _ in range(4000):
            i = rng.randrange(2 * per_slab)
            if cache.get(("small", i), miss_info=(8, 50, 0.1)) is None:
                cache.set(("small", i), 8, 50, 0.1)
        assert policy.reallocations >= 1
        dist = cache.class_slab_distribution()
        assert dist.get(0, 0) >= 2  # small class gained slabs
        cache.check_invariants()

    def test_service_objective_weighs_penalties(self):
        # same miss pressure on two classes, very different penalties:
        # the service objective should favour the expensive class
        cache = lama_cache(slabs=6, objective="service")
        import random
        rng = random.Random(1)
        for step in range(6000):
            i = rng.randrange(200)
            if rng.random() < 0.5:
                key, size, pen = ("cheap", i), 50, 0.001
            else:
                key, size, pen = ("dear", i), 100, 2.0
            if cache.get(key, (8, size, pen)) is None:
                cache.set(key, 8, size, pen)
        dist = cache.class_slab_distribution()
        cheap_class = cache.size_classes.class_for_size(58)
        dear_class = cache.size_classes.class_for_size(108)
        assert dist.get(dear_class, 0) >= dist.get(cheap_class, 0)
        cache.check_invariants()

    def test_runs_clean_on_mixed_workload(self):
        import random
        rng = random.Random(5)
        cache = lama_cache(slabs=8, sample_shift=2)
        for i in range(5000):
            key = rng.randrange(400)
            size = rng.choice([40, 200, 900, 3000])
            if cache.get(key, (8, size, 0.1)) is None:
                cache.set(key, 8, size, 0.1)
        cache.check_invariants()
