"""Tests for the reuse-distance profiler substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.policies.mrc import DistanceHistogram, FenwickTree, ReuseDistanceProfiler


class TestFenwickTree:
    def test_prefix_sums(self):
        t = FenwickTree(10)
        t.add(0, 1)
        t.add(5, 2)
        t.add(9, 3)
        assert t.prefix_sum(-1) == 0
        assert t.prefix_sum(0) == 1
        assert t.prefix_sum(4) == 1
        assert t.prefix_sum(5) == 3
        assert t.prefix_sum(9) == 6

    def test_range_sum(self):
        t = FenwickTree(8)
        for i in range(8):
            t.add(i, 1)
        assert t.range_sum(2, 5) == 4
        assert t.range_sum(5, 2) == 0

    def test_bounds(self):
        t = FenwickTree(4)
        with pytest.raises(IndexError):
            t.add(4, 1)
        with pytest.raises(ValueError):
            FenwickTree(0)

    @settings(max_examples=40)
    @given(st.lists(st.tuples(st.integers(0, 31), st.integers(-2, 3)),
                    max_size=60))
    def test_matches_list_model(self, updates):
        t = FenwickTree(32)
        model = [0] * 32
        for idx, delta in updates:
            t.add(idx, delta)
            model[idx] += delta
        for q in range(32):
            assert t.prefix_sum(q) == sum(model[: q + 1])


class TestReuseDistanceProfiler:
    def test_exact_when_unsampled(self):
        p = ReuseDistanceProfiler(sample_shift=0)
        assert p.record(1) is None  # cold
        assert p.record(2) is None
        assert p.record(3) is None
        # stack: 3 2 1 — re-access of 1 has 2 distinct keys in between
        assert p.record(1) == 2
        # now 1 is MRU: immediate re-access distance 0
        assert p.record(1) == 0

    def test_sampling_scales_distance(self):
        p = ReuseDistanceProfiler(sample_shift=3)
        assert p.scale == 8
        # find two sampled keys
        sampled = [k for k in range(4000) if p.sampled(k)][:2]
        assert len(sampled) == 2
        a, b = sampled
        p.record(a)
        p.record(b)
        d = p.record(a)
        assert d == 1 * 8  # one distinct sampled key in between, scaled

    def test_forget(self):
        p = ReuseDistanceProfiler(sample_shift=0)
        p.record(1)
        p.record(2)
        p.forget(2)
        assert p.record(1) == 0  # key 2 no longer counts

    def test_compaction_preserves_distances(self):
        p = ReuseDistanceProfiler(sample_shift=0, capacity=64)
        for i in range(60):
            p.record(i)
        # trigger compaction by exceeding capacity
        for i in range(10):
            p.record(100 + i)
        assert p.rebuilds >= 1
        # key 59 was accessed before keys 100..109 → distance 10
        assert p.record(59) == 10

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ReuseDistanceProfiler(sample_shift=-1)
        with pytest.raises(ValueError):
            ReuseDistanceProfiler(capacity=1)


class TestDistanceHistogram:
    def test_cold_counted(self):
        h = DistanceHistogram()
        h.add(None)
        h.add(5)
        assert h.cold == 1 and h.total == 2

    def test_hits_within_monotone(self):
        h = DistanceHistogram()
        for d in (1, 2, 4, 8, 100, 1000):
            h.add(d)
        prev = 0.0
        for limit in (1, 2, 5, 10, 200, 10_000):
            cur = h.hits_within(limit)
            assert cur >= prev
            prev = cur
        assert h.hits_within(10_000) == 6.0
        assert h.hits_within(0) == 0.0

    def test_decay(self):
        h = DistanceHistogram()
        for _ in range(10):
            h.add(4)
        h.decay(0.5)
        assert h.hits_within(100) == 5.0
