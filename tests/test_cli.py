"""Tests for the repro-kv CLI."""

import pytest

from repro.cli import main


class TestGenerateAnalyze:
    def test_generate_npz_and_analyze(self, tmp_path, capsys):
        out = tmp_path / "trace.npz"
        assert main(["generate", "--workload", "etc", "--requests", "3000",
                     "--scale", "0.02", "--out", str(out)]) == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "3000 requests" in captured

        assert main(["analyze", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "unique keys" in captured
        assert "size bucket" in captured

    def test_generate_csv(self, tmp_path):
        out = tmp_path / "trace.csv"
        assert main(["generate", "--requests", "500", "--scale", "0.02",
                     "--out", str(out)]) == 0
        header = out.read_text().splitlines()[0]
        assert header == "op,key,key_size,value_size,penalty,timestamp"


class TestSimulate:
    def test_simulate_synthesized(self, capsys):
        assert main(["simulate", "--requests", "5000", "--scale", "0.02",
                     "--cache-size", "2MiB", "--slab-size", "64KiB",
                     "--policy", "pama", "--window", "1000",
                     "--chart"]) == 0
        out = capsys.readouterr().out
        assert "hit ratio" in out
        assert "hit ratio per window" in out

    def test_simulate_from_file(self, tmp_path, capsys):
        path = tmp_path / "t.npz"
        main(["generate", "--requests", "2000", "--scale", "0.02",
              "--out", str(path)])
        capsys.readouterr()
        assert main(["simulate", "--trace", str(path),
                     "--cache-size", "1MiB", "--slab-size", "64KiB",
                     "--policy", "memcached"]) == 0
        assert "memcached" in capsys.readouterr().out


class TestReplayShards:
    def test_simulate_sharded_replay(self, capsys):
        assert main(["simulate", "--requests", "4000", "--scale", "0.02",
                     "--cache-size", "2MiB", "--slab-size", "64KiB",
                     "--policy", "pama", "--window", "1000",
                     "--replay-shards", "2", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "shards" in out and "2" in out
        assert "hit ratio" in out

    def test_profile_sharded_replay(self, capsys):
        assert main(["profile", "--requests", "2000", "--scale", "0.02",
                     "--cache-size", "2MiB", "--slab-size", "64KiB",
                     "--policy", "pama", "--replay-shards", "2",
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "2 shards" in out
        assert "cumulative" in out  # pstats table rendered


class TestCompare:
    def test_compare_policies(self, capsys):
        assert main(["compare", "--requests", "5000", "--scale", "0.02",
                     "--cache-size", "2MiB", "--slab-size", "64KiB",
                     "--policies", "memcached,pama", "--window", "1000"]) == 0
        out = capsys.readouterr().out
        assert "memcached" in out and "pama" in out
        assert "hit_ratio" in out

    def test_unknown_policy_rejected(self, capsys):
        assert main(["compare", "--requests", "100", "--scale", "0.02",
                     "--policies", "bogus"]) == 2


class TestCluster:
    def test_cluster_comparison(self, capsys):
        assert main(["cluster", "--requests", "5000", "--scale", "0.02",
                     "--cache-size", "2MiB", "--slab-size", "64KiB",
                     "--nodes", "1,2", "--window", "1000",
                     "--policy", "pama"]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "hit_ratio" in out
        assert out.count("MiB") >= 2

    def test_cluster_skips_undersized_nodes(self, capsys):
        assert main(["cluster", "--requests", "1000", "--scale", "0.02",
                     "--cache-size", "128KiB", "--slab-size", "64KiB",
                     "--nodes", "1,64", "--window", "1000"]) == 0
        err = capsys.readouterr().err
        assert "skipping 64 nodes" in err


class TestObs:
    def test_dump_json_and_prom_and_diff(self, tmp_path, capsys):
        prefix = str(tmp_path / "snap")
        assert main(["obs", "dump", "--requests", "4000", "--scale", "0.02",
                     "--cache-size", "1MiB", "--slab-size", "64KiB",
                     "--window", "1000", "--format", "both",
                     "--out", prefix]) == 0
        capsys.readouterr()

        import json
        doc = json.loads((tmp_path / "snap.json").read_text())
        names = {c["name"] for c in doc["counters"]}
        assert "cache_gets_total" in names
        assert doc["meta"]["policy"] == "pama"
        assert doc["events"]["recorded"] >= 0
        prom = (tmp_path / "snap.prom").read_text()
        assert "# TYPE cache_gets_total counter" in prom
        assert "sim_service_time_seconds_bucket" in prom

        # a second, longer replay diffs against the first
        assert main(["obs", "dump", "--requests", "6000", "--scale", "0.02",
                     "--cache-size", "1MiB", "--slab-size", "64KiB",
                     "--window", "1000", "--out", str(tmp_path / "b.json"),
                     "--seed", "9"]) == 0
        capsys.readouterr()
        assert main(["obs", "diff", prefix + ".json",
                     str(tmp_path / "b.json")]) == 0
        out = capsys.readouterr().out
        assert "cache_gets_total" in out

    def test_dump_to_stdout(self, capsys):
        assert main(["obs", "dump", "--requests", "2000", "--scale", "0.02",
                     "--cache-size", "1MiB", "--slab-size", "64KiB",
                     "--window", "1000", "--format", "prom"]) == 0
        assert "cache_gets_total" in capsys.readouterr().out

    def test_both_requires_out(self):
        with pytest.raises(SystemExit):
            main(["obs", "dump", "--requests", "100", "--format", "both"])


class TestReport:
    def test_chaos_dump_then_report(self, tmp_path, capsys):
        dump = str(tmp_path / "dump")
        assert main(["chaos", "node-flap", "--requests", "6000",
                     "--scale", "0.02", "--cache-size", "1MiB",
                     "--slab-size", "64KiB", "--window", "1000",
                     "--policies", "pama", "--dump-dir", dump]) == 0
        capsys.readouterr()
        for name in ("meta.json", "timeline.jsonl", "spans.json",
                     "snapshot.json"):
            assert (tmp_path / "dump" / name).exists(), name

        out = str(tmp_path / "report.html")
        assert main(["report", dump, "--out", out,
                     "--title", "node flap"]) == 0
        assert "report.html" in capsys.readouterr().err
        html = (tmp_path / "report.html").read_text()
        assert "node flap" in html
        assert "<svg" in html

    def test_obs_dump_dir_then_report(self, tmp_path, capsys):
        dump = str(tmp_path / "dump")
        assert main(["obs", "dump", "--requests", "4000", "--scale",
                     "0.02", "--cache-size", "1MiB", "--slab-size",
                     "64KiB", "--window", "1000", "--dump-dir",
                     dump]) == 0
        capsys.readouterr()
        assert (tmp_path / "dump" / "timeline.jsonl").exists()
        assert main(["report", dump,
                     "--out", str(tmp_path / "r.html")]) == 0

    def test_report_rejects_bad_dump(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "missing"),
                     "--out", str(tmp_path / "r.html")]) == 1
        assert "report:" in capsys.readouterr().err

        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "timeline.jsonl").write_text('{"window": 0}\n')
        assert main(["report", str(bad),
                     "--out", str(tmp_path / "r.html")]) == 1
        assert "invalid dump" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestTraceCompile:
    def test_compile_synthetic_info_and_simulate(self, tmp_path, capsys):
        out = tmp_path / "zoo.ctrc"
        assert main(["trace", "compile", "--workload", "zippydb",
                     "--scale", "0.01", "--requests", "4000",
                     "--out", str(out)]) == 0
        assert "4,000" in capsys.readouterr().out

        assert main(["trace", "info", str(out)]) == 0
        info = capsys.readouterr().out
        assert "zippydb" in info and "4,000" in info

        assert main(["simulate", "--trace", str(out),
                     "--policy", "memcached",
                     "--cache-size", "2MiB"]) == 0
        assert "memcached" in capsys.readouterr().out

    def test_compile_from_npz_and_analyze_routes(self, tmp_path, capsys):
        npz = tmp_path / "t.npz"
        main(["generate", "--requests", "2000", "--scale", "0.02",
              "--out", str(npz)])
        capsys.readouterr()
        out = tmp_path / "t.ctrc"
        assert main(["trace", "compile", "--trace", str(npz),
                     "--out", str(out)]) == 0
        capsys.readouterr()
        # analyze recognizes a compiled directory and describes it.
        assert main(["analyze", str(out)]) == 0
        assert "2,000" in capsys.readouterr().out
