"""Tests for item expiration (TTL), touch, and flush_all."""

import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.core import PamaPolicy
from repro.policies import StaticMemcachedPolicy


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def cache(clock):
    return SlabCache(16 * 4096, StaticMemcachedPolicy(),
                     SizeClassConfig(slab_size=4096, base_size=64),
                     clock=clock)


class TestExpiry:
    def test_item_expires(self, cache, clock):
        cache.set("k", 4, 50, 0.1, expires_at=clock.t + 10)
        assert cache.get("k") is not None
        clock.advance(11)
        assert cache.get("k") is None
        assert cache.stats.expired == 1
        assert "k" not in cache

    def test_no_expiry_by_default(self, cache, clock):
        cache.set("k", 4, 50, 0.1)
        clock.advance(10**9)
        assert cache.get("k") is not None

    def test_expiry_boundary_inclusive(self, cache, clock):
        cache.set("k", 4, 50, 0.1, expires_at=clock.t + 5)
        clock.advance(5)  # exactly at expiry -> expired
        assert cache.get("k") is None

    def test_expired_slot_is_reusable(self, cache, clock):
        cache.set("k", 4, 50, 0.1, expires_at=clock.t + 1)
        clock.advance(2)
        cache.get("k")
        cache.set("k2", 4, 50, 0.1)
        cache.check_invariants()
        assert len(cache) == 1

    def test_replacing_clears_expiry(self, cache, clock):
        cache.set("k", 4, 50, 0.1, expires_at=clock.t + 1)
        cache.set("k", 4, 50, 0.1)  # no expiry
        clock.advance(100)
        assert cache.get("k") is not None

    def test_expiry_with_pama_policy(self, clock):
        cache = SlabCache(16 * 4096, PamaPolicy(),
                          SizeClassConfig(slab_size=4096, base_size=64),
                          clock=clock)
        for i in range(30):
            cache.set(i, 8, 50, 0.05, expires_at=clock.t + 1 + i)
        clock.advance(15.5)
        hits = sum(1 for i in range(30) if cache.get(i) is not None)
        assert hits == 15
        cache.check_invariants()
        # expired items did not become ghosts (they were not evicted
        # under pressure)
        assert len(cache.policy.ghost_owner) == 0


class TestTouch:
    def test_touch_extends_life(self, cache, clock):
        cache.set("k", 4, 50, 0.1, expires_at=clock.t + 5)
        assert cache.touch("k", clock.t + 100)
        clock.advance(50)
        assert cache.get("k") is not None

    def test_touch_absent(self, cache):
        assert not cache.touch("nope", 12345.0)

    def test_touch_expired_reports_not_found(self, cache, clock):
        cache.set("k", 4, 50, 0.1, expires_at=clock.t + 1)
        clock.advance(2)
        assert not cache.touch("k", clock.t + 100)
        assert cache.stats.expired == 1


class TestFlushAll:
    def test_flush_drops_everything_keeps_slabs(self, cache):
        for i in range(40):
            cache.set(i, 8, 50, 0.1)
        slabs_before = cache.class_slab_distribution()
        dropped = cache.flush_all()
        assert dropped == 40
        assert len(cache) == 0
        assert cache.class_slab_distribution() == slabs_before
        assert cache.stats.flushes == 1
        cache.check_invariants()

    def test_flush_empty(self, cache):
        assert cache.flush_all() == 0

    def test_cache_usable_after_flush(self, cache):
        for i in range(20):
            cache.set(i, 8, 50, 0.1)
        cache.flush_all()
        cache.set("fresh", 8, 50, 0.1)
        assert cache.get("fresh") is not None
