"""Tests for cache snapshot / restore."""

import pytest

from repro.cache import SlabCache, SizeClassConfig
from repro.cache.snapshot import load_snapshot, save_snapshot
from repro.core import PamaPolicy
from repro.policies import StaticMemcachedPolicy


def small_cache(slabs=16, policy=None):
    classes = SizeClassConfig(slab_size=4096, base_size=64)
    return SlabCache(slabs * 4096, policy or StaticMemcachedPolicy(),
                     classes)


class TestSnapshotRoundTrip:
    def test_contents_restored(self, tmp_path):
        cache = small_cache()
        for i in range(30):
            cache.set(i, 8, 50 + (i % 3) * 400, 0.01 * (i + 1))
        path = tmp_path / "snap.npz"
        assert save_snapshot(cache, path) == 30

        fresh = small_cache()
        assert load_snapshot(fresh, path) == 30
        assert len(fresh) == 30
        for i in range(30):
            a, b = cache.index[i], fresh.index[i]
            assert (a.key_size, a.value_size) == (b.key_size, b.value_size)
            assert a.penalty == pytest.approx(b.penalty)
        fresh.check_invariants()

    def test_recency_order_preserved(self, tmp_path):
        cache = small_cache(slabs=4)
        n = 100  # more than one slab's worth (64 slots)
        for i in range(n):
            cache.set(i, 8, 50, 0.1)
        cache.get(3)  # make key 3 the most recent
        path = tmp_path / "snap.npz"
        save_snapshot(cache, path)

        # restore into a tiny cache: only the most recent items survive
        tiny = small_cache(slabs=1)
        load_snapshot(tiny, path)
        per_slab = tiny.size_classes.slots_per_slab(0)
        assert 3 in tiny  # the freshest key made it
        assert len(tiny) == per_slab
        # the survivors are the most recently used ones (plus key 3)
        expected = set(range(n - per_slab + 1, n)) | {3}
        assert set(tiny.index) == expected

    def test_cross_policy_restore(self, tmp_path):
        cache = small_cache()
        for i in range(25):
            cache.set(i, 8, 50, 0.001 * (10 ** (i % 4)))
        path = tmp_path / "snap.npz"
        save_snapshot(cache, path)

        pama = small_cache(policy=PamaPolicy())
        assert load_snapshot(pama, path) == 25
        pama.check_invariants()
        # items were re-binned by penalty through PAMA's SET path
        bins = {q.bin_idx for q in pama.iter_queues() if len(q.lru)}
        assert len(bins) > 1

    def test_expiry_persisted(self, tmp_path):
        clock_value = [1000.0]
        cache = small_cache()
        cache.clock = lambda: clock_value[0]
        cache.set("nope", 4, 50, 0.1)  # non-int key
        path = tmp_path / "snap.npz"
        with pytest.raises(TypeError):
            save_snapshot(cache, path)
        cache.delete("nope")
        cache.set(1, 8, 50, 0.1, expires_at=2000.0)
        save_snapshot(cache, path)

        fresh = small_cache()
        fresh.clock = lambda: clock_value[0]
        load_snapshot(fresh, path)
        assert fresh.index[1].expires_at == 2000.0

    def test_empty_cache_snapshot(self, tmp_path):
        cache = small_cache()
        path = tmp_path / "snap.npz"
        assert save_snapshot(cache, path) == 0
        fresh = small_cache()
        assert load_snapshot(fresh, path) == 0
