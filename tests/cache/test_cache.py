"""Tests for the SlabCache substrate (with the static policy)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import SlabCache, SizeClassConfig
from repro.cache.errors import InvalidItemError
from repro.policies.memcached import StaticMemcachedPolicy
from repro.policies.twemcache import TwemcachePolicy


def small_cache(slabs=16, policy=None):
    cfg = SizeClassConfig(slab_size=4096, base_size=64)
    return SlabCache(slabs * 4096, policy or StaticMemcachedPolicy(), cfg)


class TestBasicOps:
    def test_set_get_roundtrip(self):
        cache = small_cache()
        assert cache.set("k", 4, 100, 0.05, value=b"payload")
        item = cache.get("k")
        assert item is not None
        assert item.value == b"payload"
        assert item.penalty == 0.05
        assert cache.stats.hits == 1

    def test_miss_returns_none(self):
        cache = small_cache()
        assert cache.get("absent") is None
        assert cache.stats.misses == 1

    def test_delete(self):
        cache = small_cache()
        cache.set("k", 4, 100, 0.05)
        assert cache.delete("k")
        assert not cache.delete("k")
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_contains_and_len(self):
        cache = small_cache()
        cache.set(1, 8, 50, 0.1)
        cache.set(2, 8, 50, 0.1)
        assert 1 in cache and 2 in cache and 3 not in cache
        assert len(cache) == 2

    def test_replacement_same_key_updates_value(self):
        cache = small_cache()
        cache.set("k", 4, 100, 0.05, value="v1")
        cache.set("k", 4, 100, 0.05, value="v2")
        assert len(cache) == 1
        assert cache.get("k").value == "v2"
        assert cache.stats.evictions == 0

    def test_replacement_can_change_class(self):
        cache = small_cache()
        cache.set("k", 4, 50, 0.05)
        first = cache.index["k"].class_idx
        cache.set("k", 4, 3000, 0.05)
        second = cache.index["k"].class_idx
        assert second > first
        assert len(cache) == 1
        cache.check_invariants()

    def test_item_too_large_rejected_not_fatal(self):
        cache = small_cache()
        assert not cache.set("big", 10, 10_000, 0.1)  # > 4096 slab
        assert cache.stats.rejected_too_large == 1

    def test_invalid_sizes_raise(self):
        cache = small_cache()
        with pytest.raises(InvalidItemError):
            cache.set("k", -1, 10, 0.1)
        with pytest.raises(InvalidItemError):
            cache.set("k", 0, 0, 0.1)
        with pytest.raises(InvalidItemError):
            cache.set("k", 4, 10, float("nan"))
        with pytest.raises(InvalidItemError):
            cache.set("k", 4, 10, -0.5)


class TestAllocationMechanics:
    def test_free_slabs_granted_on_demand(self):
        cache = small_cache(slabs=4)
        cache.set(1, 8, 50, 0.1)
        assert cache.pool.free == 3
        assert cache.class_slab_distribution() == {0: 1}

    def test_eviction_within_class_when_full(self):
        cache = small_cache(slabs=2)
        cfg = cache.size_classes
        per_slab = cfg.slots_per_slab(cfg.class_for_size(58))
        capacity = 2 * per_slab
        for i in range(capacity + 10):
            cache.set(i, 8, 50, 0.1)
        assert len(cache) == capacity
        assert cache.stats.evictions == 10
        # strictly LRU: the first 10 inserted keys are gone
        assert all(i not in cache for i in range(10))
        assert all(i in cache for i in range(10, capacity + 10))
        cache.check_invariants()

    def test_static_policy_set_fails_when_no_slab_for_new_class(self):
        cache = small_cache(slabs=1)
        cache.set(1, 8, 50, 0.1)           # class 0 takes the only slab
        ok = cache.set(2, 8, 3000, 0.1)    # a large class gets nothing
        assert not ok
        assert cache.stats.set_failures == 1
        assert 1 in cache

    def test_migration_frees_slab_worth_of_items(self):
        cache = small_cache(slabs=1, policy=TwemcachePolicy(seed=3))
        per_slab = cache.size_classes.slots_per_slab(0)
        for i in range(per_slab):
            cache.set(i, 8, 50, 0.1)
        assert cache.pool.free == 0
        # new class must steal the single slab from class 0
        assert cache.set("large", 8, 3000, 0.1)
        assert cache.stats.migrations == 1
        assert cache.class_slab_distribution() == {
            cache.size_classes.class_for_size(3008): 1}
        assert len(cache) == 1  # all class-0 items evicted
        cache.check_invariants()

    def test_miss_info_accumulates_penalty(self):
        cache = small_cache()
        cache.get("a", miss_info=(8, 100, 0.25))
        cache.get("b", miss_info=(8, 100, 0.5))
        assert math.isclose(cache.stats.total_miss_penalty, 0.75)
        assert math.isclose(cache.stats.avg_service_time(hit_time=0.0), 0.375)

    def test_miss_info_counts_class_stats(self):
        cache = small_cache()
        cache.get("a", miss_info=(8, 100, 0.25))
        cls = cache.size_classes.class_for_size(108)
        q = cache.queues[(cls, 0)]
        assert q.stats.misses == 1

    def test_access_tick_monotone(self):
        cache = small_cache()
        cache.set(1, 8, 50, 0.1)
        t1 = cache.accesses
        cache.get(1)
        assert cache.accesses == t1 + 1
        assert cache.index[1].last_access == cache.accesses


class TestStatsAndIntrospection:
    def test_hit_ratio(self):
        cache = small_cache()
        cache.set(1, 8, 50, 0.1)
        cache.get(1)
        cache.get(2)
        assert cache.stats.hit_ratio == 0.5

    def test_describe_mentions_policy(self):
        cache = small_cache()
        assert "memcached" in cache.describe()

    def test_slab_distribution_by_queue(self):
        cache = small_cache()
        cache.set(1, 8, 50, 0.1)
        cache.set(2, 8, 3000, 0.1)
        dist = cache.slab_distribution()
        assert len(dist) == 2
        assert all(n == 1 for n in dist.values())

    def test_used_bytes(self):
        cache = small_cache()
        cache.set(1, 8, 50, 0.1)
        cache.set(2, 8, 100, 0.1)
        assert cache.used_bytes == 58 + 108


class TestPropertyBasedWorkload:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["get", "set", "del"]),
                              st.integers(0, 40),
                              st.sampled_from([30, 100, 500, 2000])),
                    max_size=300))
    def test_invariants_under_random_ops(self, ops):
        cache = small_cache(slabs=8, policy=TwemcachePolicy(seed=1))
        for op, key, size in ops:
            if op == "get":
                cache.get(key, miss_info=(8, size, 0.1))
            elif op == "set":
                cache.set(key, 8, size, 0.1)
            else:
                cache.delete(key)
        cache.check_invariants()
        assert cache.stats.gets == sum(1 for o in ops if o[0] == "get")
