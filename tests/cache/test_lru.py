"""Tests for the intrusive LRU list."""

import random

from hypothesis import given, settings, strategies as st

from repro.cache.item import Item
from repro.cache.lru import LRUList


def make_item(key):
    return Item(key, key_size=8, value_size=32, penalty=0.01)


class TestLRUListBasics:
    def test_empty(self):
        lru = LRUList()
        assert len(lru) == 0
        assert lru.front is None and lru.back is None
        assert lru.pop_back() is None
        lru.check_invariants()

    def test_push_order(self):
        lru = LRUList()
        items = [make_item(i) for i in range(5)]
        for it in items:
            lru.push_front(it)
        assert [i.key for i in lru] == [4, 3, 2, 1, 0]
        assert [i.key for i in lru.iter_from_back()] == [0, 1, 2, 3, 4]
        assert lru.front.key == 4 and lru.back.key == 0

    def test_move_to_front(self):
        lru = LRUList()
        items = [make_item(i) for i in range(4)]
        for it in items:
            lru.push_front(it)
        lru.move_to_front(items[1])
        assert [i.key for i in lru] == [1, 3, 2, 0]
        lru.check_invariants()

    def test_move_front_item_is_noop(self):
        lru = LRUList()
        a, b = make_item("a"), make_item("b")
        lru.push_front(a)
        lru.push_front(b)
        lru.move_to_front(b)
        assert [i.key for i in lru] == ["b", "a"]

    def test_remove_middle(self):
        lru = LRUList()
        items = [make_item(i) for i in range(3)]
        for it in items:
            lru.push_front(it)
        lru.remove(items[1])
        assert [i.key for i in lru] == [2, 0]
        assert items[1].prev is None and items[1].next is None

    def test_pop_back(self):
        lru = LRUList()
        for i in range(3):
            lru.push_front(make_item(i))
        assert lru.pop_back().key == 0
        assert lru.pop_back().key == 1
        assert lru.pop_back().key == 2
        assert lru.pop_back() is None

    def test_remove_only_item(self):
        lru = LRUList()
        it = make_item(0)
        lru.push_front(it)
        lru.remove(it)
        assert len(lru) == 0 and lru.front is None and lru.back is None
        lru.check_invariants()


class RecordingObserver:
    def __init__(self):
        self.events = []

    def on_push_front(self, item):
        self.events.append(("push", item.key))

    def on_remove(self, item):
        # Links must still be intact at callback time.
        assert item.prev is not None or item.next is not None or True
        self.events.append(("remove", item.key))


class TestObserver:
    def test_events_fire(self):
        lru = LRUList()
        obs = RecordingObserver()
        lru.observer = obs
        a, b = make_item("a"), make_item("b")
        lru.push_front(a)
        lru.push_front(b)
        lru.move_to_front(a)
        lru.remove(b)
        assert obs.events == [
            ("push", "a"), ("push", "b"),
            ("remove", "a"), ("push", "a"),
            ("remove", "b"),
        ]

    def test_on_remove_sees_links(self):
        lru = LRUList()
        seen = {}

        class Probe:
            def on_push_front(self, item):
                pass

            def on_remove(self, item):
                seen["prev"] = item.prev
                seen["next"] = item.next

        lru.observer = Probe()
        a, b, c = make_item("a"), make_item("b"), make_item("c")
        for it in (a, b, c):
            lru.push_front(it)
        lru.remove(b)
        assert seen["prev"] is c and seen["next"] is a


class TestLRUPropertyBased:
    @settings(max_examples=60)
    @given(st.lists(st.tuples(st.sampled_from(["push", "move", "pop", "remove"]),
                              st.integers(0, 19)), max_size=120))
    def test_matches_python_list_model(self, ops):
        lru = LRUList()
        model = []  # front at index 0
        items = {}
        for op, k in ops:
            if op == "push":
                if k in items:
                    continue
                it = make_item(k)
                items[k] = it
                lru.push_front(it)
                model.insert(0, k)
            elif op == "move" and k in items:
                lru.move_to_front(items[k])
                model.remove(k)
                model.insert(0, k)
            elif op == "pop" and model:
                popped = lru.pop_back()
                expect = model.pop()
                assert popped.key == expect
                del items[expect]
            elif op == "remove" and k in items:
                lru.remove(items[k])
                model.remove(k)
                del items[k]
            lru.check_invariants()
            assert [i.key for i in lru] == model
