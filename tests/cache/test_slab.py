"""Tests for the slab pool accounting."""

import pytest

from repro.cache.errors import OutOfMemoryError
from repro.cache.slab import SlabPool


class TestSlabPool:
    def test_capacity_division(self):
        pool = SlabPool(capacity_bytes=10 * 4096 + 100, slab_size=4096)
        assert pool.total == 10
        assert pool.free == 10

    def test_acquire_and_release(self):
        pool = SlabPool(8 * 4096, 4096)
        pool.acquire((0, 0))
        pool.acquire((0, 0))
        pool.acquire((1, 0))
        assert pool.free == 5
        assert pool.owned_by((0, 0)) == 2
        pool.release((0, 0))
        assert pool.free == 6
        assert pool.owned_by((0, 0)) == 1
        pool.check_invariants()

    def test_exhaustion(self):
        pool = SlabPool(2 * 64, 64)
        pool.acquire((0, 0))
        pool.acquire((0, 0))
        with pytest.raises(OutOfMemoryError):
            pool.acquire((0, 0))

    def test_transfer(self):
        pool = SlabPool(4 * 64, 64)
        pool.acquire((0, 0))
        pool.transfer((0, 0), (3, 1))
        assert pool.owned_by((0, 0)) == 0
        assert pool.owned_by((3, 1)) == 1
        assert pool.free == 3
        pool.check_invariants()

    def test_transfer_from_empty_owner(self):
        pool = SlabPool(4 * 64, 64)
        with pytest.raises(OutOfMemoryError):
            pool.transfer((0, 0), (1, 0))

    def test_release_unowned(self):
        pool = SlabPool(4 * 64, 64)
        with pytest.raises(OutOfMemoryError):
            pool.release((9, 9))

    def test_ownership_snapshot_excludes_zero(self):
        pool = SlabPool(4 * 64, 64)
        pool.acquire((0, 0))
        pool.release((0, 0))
        pool.acquire((1, 0))
        assert pool.ownership() == {(1, 0): 1}

    def test_sub_slab_capacity_rejected(self):
        with pytest.raises(ValueError):
            SlabPool(63, 64)
        with pytest.raises(ValueError):
            SlabPool(64, 0)
