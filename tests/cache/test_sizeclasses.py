"""Tests for the size-class geometry."""

import pytest
from hypothesis import given, strategies as st

from repro._util import MIB
from repro.cache.errors import InvalidItemError, ItemTooLargeError
from repro.cache.sizeclasses import SizeClassConfig


class TestGeometry:
    def test_paper_layout(self):
        # 1 MiB slabs, 64 B base, doubling: 64, 128, ..., 1 MiB -> 15 classes
        cfg = SizeClassConfig()
        assert cfg.slot_size(0) == 64
        assert cfg.slot_size(1) == 128
        assert cfg.num_classes == 15
        assert cfg.slot_size(cfg.num_classes - 1) == MIB
        assert cfg.slots_per_slab(0) == MIB // 64
        assert cfg.slots_per_slab(cfg.num_classes - 1) == 1

    def test_class_for_size_boundaries(self):
        cfg = SizeClassConfig()
        assert cfg.class_for_size(1) == 0
        assert cfg.class_for_size(64) == 0
        assert cfg.class_for_size(65) == 1
        assert cfg.class_for_size(128) == 1
        assert cfg.class_for_size(MIB) == cfg.num_classes - 1

    def test_too_large_rejected(self):
        cfg = SizeClassConfig()
        with pytest.raises(ItemTooLargeError):
            cfg.class_for_size(MIB + 1)

    def test_non_positive_rejected(self):
        cfg = SizeClassConfig()
        with pytest.raises(InvalidItemError):
            cfg.class_for_size(0)
        with pytest.raises(InvalidItemError):
            cfg.class_for_size(-5)

    def test_item_overhead_shifts_class(self):
        cfg = SizeClassConfig(item_overhead=56)
        # 60 B item + 56 B overhead = 116 B -> class 1
        assert cfg.class_for_size(60) == 1

    def test_non_doubling_growth(self):
        cfg = SizeClassConfig(slab_size=1 << 16, base_size=80, growth=1.25)
        sizes = [cfg.slot_size(i) for i in range(cfg.num_classes)]
        assert sizes == sorted(sizes)
        assert sizes[-1] == 1 << 16
        # consecutive ratios near the growth factor (integer rounding)
        for a, b in zip(sizes, sizes[1:-1]):
            assert b / a <= 1.26

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SizeClassConfig(slab_size=0)
        with pytest.raises(ValueError):
            SizeClassConfig(growth=1.0)
        with pytest.raises(ValueError):
            SizeClassConfig(base_size=2 * MIB, slab_size=MIB)
        with pytest.raises(ValueError):
            SizeClassConfig(item_overhead=-1)

    def test_describe_lists_all_classes(self):
        cfg = SizeClassConfig(slab_size=4096, base_size=64)
        text = cfg.describe()
        assert len(text.splitlines()) == cfg.num_classes + 1

    @given(st.integers(min_value=1, max_value=MIB))
    def test_chosen_class_fits_and_is_tight(self, size):
        cfg = SizeClassConfig()
        idx = cfg.class_for_size(size)
        assert size <= cfg.slot_size(idx)
        if idx > 0:
            assert size > cfg.slot_size(idx - 1)

    @given(st.integers(min_value=0, max_value=14))
    def test_slab_fully_divisible(self, idx):
        cfg = SizeClassConfig()
        assert cfg.slots_per_slab(idx) * cfg.slot_size(idx) <= cfg.slab_size
        assert cfg.slots_per_slab(idx) >= 1
