"""Tests for shared helpers."""

import pytest

from repro._util import (GIB, KIB, MIB, fmt_bytes, fmt_seconds, next_pow2,
                         parse_size)


class TestFmtBytes:
    def test_units(self):
        assert fmt_bytes(0) == "0B"
        assert fmt_bytes(512) == "512B"
        assert fmt_bytes(2 * KIB) == "2.0KiB"
        assert fmt_bytes(3 * MIB) == "3.0MiB"
        assert fmt_bytes(4 * GIB) == "4.0GiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fmt_bytes(-1)


class TestFmtSeconds:
    def test_units(self):
        assert fmt_seconds(0) == "0s"
        assert fmt_seconds(5e-5) == "50.0us"
        assert fmt_seconds(0.025) == "25.0ms"
        assert fmt_seconds(1.5) == "1.50s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fmt_seconds(-0.1)


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("64KiB", 64 * KIB), ("64kb", 64 * KIB), ("64k", 64 * KIB),
        ("4GB", 4 * GIB), ("1.5MiB", int(1.5 * MIB)), ("1048576", MIB),
        (" 2 MiB ", 2 * MIB), ("100b", 100),
    ])
    def test_formats(self, text, expected):
        assert parse_size(text) == expected

    def test_missing_number(self):
        with pytest.raises(ValueError):
            parse_size("MiB")


class TestNextPow2:
    def test_values(self):
        assert next_pow2(1) == 1
        assert next_pow2(2) == 2
        assert next_pow2(3) == 4
        assert next_pow2(1025) == 2048

    def test_invalid(self):
        with pytest.raises(ValueError):
            next_pow2(0)
