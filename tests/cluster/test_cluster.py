"""Tests for the cache cluster."""

import pytest

from repro._util import MIB
from repro.cache import SizeClassConfig
from repro.cluster import CacheCluster
from repro.core import PamaPolicy
from repro.policies import StaticMemcachedPolicy
from repro.sim import simulate
from repro.traces import ETC, generate


def small_cluster(nodes=("n1", "n2", "n3"), policy=StaticMemcachedPolicy):
    return CacheCluster(list(nodes), capacity_bytes=MIB,
                        policy_factory=policy,
                        size_classes=SizeClassConfig(slab_size=64 << 10))


class TestClusterBasics:
    def test_roundtrip_routes_consistently(self):
        cluster = small_cluster()
        cluster.set("k", 4, 100, 0.1, value="v")
        assert "k" in cluster
        assert cluster.get("k").value == "v"
        assert cluster.delete("k")
        assert cluster.get("k") is None

    def test_items_spread_over_nodes(self):
        cluster = small_cluster()
        for i in range(900):
            cluster.set(i, 8, 50, 0.1)
        per_node = [len(n) for n in cluster.nodes.values()]
        assert sum(per_node) == 900
        assert all(count > 100 for count in per_node), per_node

    def test_aggregate_stats(self):
        cluster = small_cluster()
        cluster.set(1, 8, 50, 0.1)
        cluster.get(1)
        cluster.get(2, miss_info=(8, 50, 0.5))
        s = cluster.stats
        assert s.gets == 2 and s.hits == 1 and s.misses == 1
        assert s.total_miss_penalty == pytest.approx(0.5)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CacheCluster([], MIB, StaticMemcachedPolicy)
        with pytest.raises(ValueError):
            CacheCluster(["a", "a"], MIB, StaticMemcachedPolicy)

    def test_policies_are_independent_instances(self):
        cluster = small_cluster(policy=PamaPolicy)
        policies = {id(n.policy) for n in cluster.nodes.values()}
        assert len(policies) == 3


class TestTopologyChanges:
    def test_add_node(self):
        cluster = small_cluster()
        for i in range(300):
            cluster.set(i, 8, 50, 0.1)
        cluster.add_node("n4")
        assert len(cluster.nodes) == 4
        # new node starts cold but receives traffic
        for i in range(300):
            cluster.get(i, miss_info=(8, 50, 0.1))
        cluster.check_invariants()

    def test_remove_node_loses_its_items(self):
        cluster = small_cluster()
        for i in range(600):
            cluster.set(i, 8, 50, 0.1)
        victim = cluster.node_names()[0]
        lost = len(cluster.nodes[victim])
        total = len(cluster)
        cluster.remove_node(victim)
        assert len(cluster) == total - lost
        cluster.check_invariants()

    def test_cannot_remove_last_node(self):
        cluster = small_cluster(nodes=("only",))
        with pytest.raises(ValueError):
            cluster.remove_node("only")

    def test_duplicate_node_rejected(self):
        cluster = small_cluster()
        with pytest.raises(ValueError):
            cluster.add_node("n1")

    def test_survivors_keep_their_items(self):
        cluster = small_cluster()
        for i in range(600):
            cluster.set(i, 8, 50, 0.1)
        survivors_items = {
            name: set(node.index) for name, node in cluster.nodes.items()
            if name != "n2"}
        cluster.remove_node("n2")
        for name, keys in survivors_items.items():
            assert set(cluster.nodes[name].index) == keys


class TestClusterSimulation:
    def test_simulator_runs_against_cluster(self):
        trace = generate(ETC.scaled(0.02), 20_000, seed=8)
        cluster = CacheCluster(
            ["a", "b"], capacity_bytes=4 * MIB,
            policy_factory=PamaPolicy,
            size_classes=SizeClassConfig(slab_size=64 << 10))
        result = simulate(trace, cluster, window_gets=5_000)
        assert result.policy == "pama"
        assert result.total_gets == trace.num_gets
        assert 0.0 < result.hit_ratio < 1.0
        assert result.windows[0].class_slabs
        cluster.check_invariants()

    def test_more_nodes_same_total_memory_close_hit_ratio(self):
        trace = generate(ETC.scaled(0.02), 20_000, seed=8)

        def run(names, per_node):
            cluster = CacheCluster(
                list(names), capacity_bytes=per_node,
                policy_factory=PamaPolicy,
                size_classes=SizeClassConfig(slab_size=64 << 10))
            return simulate(trace, cluster, window_gets=5_000).hit_ratio

        one = run(["a"], 8 * MIB)
        four = run(["a", "b", "c", "d"], 2 * MIB)
        # sharding costs a little (per-node fragmentation) but not much
        assert four > one - 0.15
