"""Property tests for ConsistentHashRing (hypothesis).

The three guarantees the cluster (and the fault layer's failover)
lean on: routing is a pure function of the node set, keys stay
roughly balanced at replicas=64, and topology changes remap only the
keys they must (~1/n).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ConsistentHashRing

node_names = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
            max_size=12),
    min_size=2, max_size=8, unique=True)

keys = [f"key:{i}" for i in range(2000)]


def build(nodes, replicas=64):
    ring = ConsistentHashRing(replicas=replicas)
    for n in nodes:
        ring.add_node(n)
    return ring


@given(node_names)
@settings(max_examples=50, deadline=None)
def test_routing_is_a_pure_function_of_the_node_set(nodes):
    a = build(nodes)
    b = build(list(reversed(nodes)))  # insertion order must not matter
    for key in keys[:500]:
        assert a.node_for(key) == b.node_for(key)


@given(node_names)
@settings(max_examples=50, deadline=None)
def test_key_balance_at_replicas_64(nodes):
    ring = build(nodes)
    counts = ring.distribution(keys)
    ideal = len(keys) / len(nodes)
    # 64 virtual nodes keeps every share within a small constant of
    # ideal: no node starved, none owning most of the space.
    assert all(c > 0 for c in counts.values())
    assert max(counts.values()) <= 3.0 * ideal


@given(node_names, st.text(alphabet="xyz", min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_add_node_moves_keys_only_to_the_new_node(nodes, newcomer):
    newcomer = "new-" + newcomer  # never collides with existing names
    before = build(nodes)
    after = build(nodes)
    after.add_node(newcomer)
    moved = 0
    for key in keys:
        old, new = before.node_for(key), after.node_for(key)
        if old != new:
            assert new == newcomer
            moved += 1
    # ~1/(n+1) of keys remap, bounded well below a full reshuffle
    assert moved / len(keys) <= 3.0 / (len(nodes) + 1)


@given(node_names)
@settings(max_examples=50, deadline=None)
def test_remove_node_moves_only_its_own_keys(nodes):
    victim = nodes[0]
    before = build(nodes)
    after = build(nodes)
    after.remove_node(victim)
    for key in keys:
        old = before.node_for(key)
        if old == victim:
            assert after.node_for(key) != victim
        else:
            assert after.node_for(key) == old


@given(node_names)
@settings(max_examples=50, deadline=None)
def test_successors_start_at_the_owner_and_cover_every_node(nodes):
    ring = build(nodes)
    for key in keys[:200]:
        succ = ring.successors(key)
        assert succ[0] == ring.node_for(key)
        assert sorted(succ) == sorted(nodes)  # each node exactly once


@given(node_names)
@settings(max_examples=25, deadline=None)
def test_failover_order_agrees_with_removal(nodes):
    """successors()[1] is where keys would land if the owner left —
    the property the chaos failover path relies on."""
    ring = build(nodes)
    for key in keys[:100]:
        succ = ring.successors(key)
        without_owner = build(nodes)
        without_owner.remove_node(succ[0])
        assert without_owner.node_for(key) == succ[1]
