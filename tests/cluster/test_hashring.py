"""Tests for the consistent-hash ring."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ConsistentHashRing


def ring_with(*nodes, replicas=64):
    ring = ConsistentHashRing(replicas=replicas)
    for n in nodes:
        ring.add_node(n)
    return ring


class TestRingBasics:
    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            ConsistentHashRing().node_for("k")

    def test_single_node_owns_everything(self):
        ring = ring_with("a")
        assert all(ring.node_for(i) == "a" for i in range(100))

    def test_routing_deterministic(self):
        ring = ring_with("a", "b", "c")
        assert ring.node_for(42) == ring.node_for(42)

    def test_duplicate_add_rejected(self):
        ring = ring_with("a")
        with pytest.raises(ValueError):
            ring.add_node("a")

    def test_remove_absent_rejected(self):
        with pytest.raises(ValueError):
            ring_with("a").remove_node("b")

    def test_invalid_replicas(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(replicas=0)

    def test_nodes_view(self):
        ring = ring_with("a", "b")
        assert ring.nodes == {"a", "b"}
        assert len(ring) == 2


class TestBalanceAndStability:
    def test_reasonable_balance(self):
        ring = ring_with("a", "b", "c", "d", replicas=128)
        dist = ring.distribution(range(20_000))
        for count in dist.values():
            assert 0.5 * 5_000 < count < 1.6 * 5_000, dist

    def test_minimal_remap_on_node_add(self):
        before = ring_with("a", "b", "c", "d")
        after = ring_with("a", "b", "c", "d")
        after.add_node("e")
        moved = before.remap_fraction(range(20_000), after)
        # ideal is 1/5 = 0.2; allow slack for virtual-node variance
        assert moved < 0.35, moved
        # naive mod-N hashing would remap ~0.8 of keys
        assert moved > 0.05

    def test_removed_nodes_keys_spread(self):
        ring = ring_with("a", "b", "c")
        keys_of_c = [k for k in range(10_000) if ring.node_for(k) == "c"]
        ring.remove_node("c")
        new_owners = {ring.node_for(k) for k in keys_of_c}
        assert new_owners <= {"a", "b"} and len(new_owners) == 2

    def test_survivor_routing_unchanged(self):
        ring = ring_with("a", "b", "c")
        kept = {k: ring.node_for(k) for k in range(5_000)
                if ring.node_for(k) != "c"}
        ring.remove_node("c")
        for key, owner in kept.items():
            assert ring.node_for(key) == owner

    @settings(max_examples=30)
    @given(st.sets(st.sampled_from(["n1", "n2", "n3", "n4", "n5"]),
                   min_size=1),
           st.integers(0, 10_000))
    def test_routing_total_and_consistent(self, nodes, key):
        ring = ring_with(*sorted(nodes))
        owner = ring.node_for(key)
        assert owner in nodes
        assert ring.node_for(key) == owner

    def test_remap_fraction_empty_keys(self):
        a, b = ring_with("x"), ring_with("x")
        assert a.remap_fraction([], b) == 0.0
