"""Tests for the simulated backend."""

import math

import pytest

from repro.backend import SimulatedBackend
from repro.traces.penalty import PenaltyModel


class TestSimulatedBackend:
    def test_fetch_is_deterministic_at_fixed_time(self):
        b = SimulatedBackend()
        assert b.fetch(1, 100, now=0.0) == b.fetch(1, 100, now=0.0)

    def test_load_factor_cycle(self):
        b = SimulatedBackend(diurnal_amplitude=0.5, diurnal_period=100.0)
        assert b.load_factor(0.0) == pytest.approx(1.0)
        assert b.load_factor(25.0) == pytest.approx(1.5)
        assert b.load_factor(75.0) == pytest.approx(0.5)

    def test_flat_when_amplitude_zero(self):
        b = SimulatedBackend(diurnal_amplitude=0.0)
        base = b.penalty_model.penalty_for(7, 200)
        for t in (0.0, 1000.0, 54321.0):
            assert b.fetch(7, 200, now=t) == pytest.approx(base)

    def test_counters(self):
        b = SimulatedBackend()
        total = sum(b.fetch(k, 100) for k in range(5))
        assert b.fetches == 5
        assert b.total_cost == pytest.approx(total)

    def test_shared_penalty_model(self):
        model = PenaltyModel(seed=9)
        b = SimulatedBackend(penalty_model=model, diurnal_amplitude=0.0)
        assert b.fetch(3, 500) == pytest.approx(model.penalty_for(3, 500))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SimulatedBackend(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            SimulatedBackend(diurnal_period=0)
